"""E4 — Theorem 3: Select-and-Send in O(n log n) on any network.

Logic in :mod:`repro.experiments.e4_select_and_send`.
"""

from __future__ import annotations

from repro.experiments import get_experiment


def test_e4(benchmark, table_reporter):
    report = get_experiment("e4")()
    for table in report.tables:
        table_reporter.record("e4", table)
    table_reporter.record(
        "e4",
        "\n".join(
            f"[{'PASS' if claim.holds else 'FAIL'}] {claim.description}"
            + (f"  ({claim.details})" if claim.details else "")
            for claim in report.claims
        ),
    )
    assert report.ok, report.render()

    from repro.core import SelectAndSend
    from repro.sim import run_broadcast
    from repro.topology import random_tree

    net = random_tree(256, seed=5)
    benchmark.pedantic(
        lambda: run_broadcast(net, SelectAndSend(), require_completion=True),
        rounds=3, iterations=1,
    )
