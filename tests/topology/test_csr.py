"""CSR-native topology generation: structure, determinism, and exact
equivalence with the legacy (dict-of-sets) layered builders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.channel import ChannelKernel
from repro.sim.errors import ConfigurationError
from repro.sim.fast import run_broadcast_fast
from repro.core.randomized import KnownRadiusKP
from repro.topology import (
    CSRNetwork,
    complete_layered,
    complete_layered_csr,
    gnp_random_csr,
    km_hard_layered,
    km_hard_layered_csr,
    uniform_complete_layered,
    uniform_complete_layered_csr,
)


def _edge_set(net) -> set[tuple[int, int]]:
    """Undirected edge set of any network exposing ``out_neighbors``."""
    return {
        (min(u, v), max(u, v))
        for u, nbrs in net.out_neighbors.items()
        for v in nbrs
    }


def _csr_edge_set(net: CSRNetwork) -> set[tuple[int, int]]:
    indptr, indices = net.csr_arrays()
    src = np.repeat(np.arange(net.n), np.diff(indptr))
    return {(min(u, v), max(u, v)) for u, v in zip(src.tolist(), indices.tolist())}


class TestCSRNetworkStructure:
    def test_gnp_is_simple_symmetric_and_connected(self):
        net = gnp_random_csr(800, 9 / 800, seed=4)
        indptr, indices = net.csr_arrays()
        src = np.repeat(np.arange(net.n), np.diff(indptr))
        assert not np.any(src == indices), "self-loops"
        pairs = set(zip(src.tolist(), indices.tolist()))
        assert len(pairs) == len(indices), "duplicate edges"
        assert all((v, u) in pairs for u, v in pairs), "asymmetric edge"
        # rows sorted (CSR canonical form, required by the kernels)
        for i in (0, 1, net.n // 2, net.n - 1):
            row = indices[indptr[i]:indptr[i + 1]]
            assert np.all(np.diff(row) > 0)
        depths = net.depths_array()
        assert depths[0] == 0 and np.all(depths >= 0), "disconnected node"

    def test_gnp_deterministic_per_seed(self):
        a = gnp_random_csr(300, 10 / 300, seed=9)
        b = gnp_random_csr(300, 10 / 300, seed=9)
        c = gnp_random_csr(300, 10 / 300, seed=10)
        assert np.array_equal(a.csr_arrays()[1], b.csr_arrays()[1])
        assert not np.array_equal(a.csr_arrays()[1], c.csr_arrays()[1])

    def test_gnp_density_tracks_p(self):
        n, p = 2000, 8 / 2000
        net = gnp_random_csr(n, p, seed=0)
        expected = p * n * (n - 1) / 2
        assert 0.7 * expected < net.num_edges < 1.4 * expected

    def test_sparse_gnp_augmented_to_connected(self):
        # Far below the connectivity threshold: augmentation must kick in
        # and still yield one component with every edge symmetric.
        net = gnp_random_csr(500, 1.5 / 500, seed=2)
        assert np.all(net.depths_array() >= 0)
        pairs = _csr_edge_set(net)
        assert len(pairs) >= net.n - 1

    def test_resample_mode_raises_when_hopeless(self):
        with pytest.raises(ConfigurationError):
            gnp_random_csr(400, 0.5 / 400, seed=0, connect="resample",
                           max_attempts=3)

    def test_layers_and_radius_match_bfs(self):
        net = gnp_random_csr(400, 10 / 400, seed=1)
        depths = net.depths_array()
        assert net.radius == int(depths.max())
        for d, layer in enumerate(net.layers()):
            assert sorted(layer) == np.flatnonzero(depths == d).tolist()


class TestLegacyEquivalence:
    """The CSR builders reproduce the legacy generators edge for edge."""

    def test_km_hard_layered_exact(self):
        for n, depth, seed in [(60, 4, 0), (97, 6, 3), (200, 8, 11)]:
            legacy = km_hard_layered(n, depth, seed=seed)
            csr = km_hard_layered_csr(n, depth, seed=seed)
            assert csr.n == legacy.n and csr.r == legacy.r
            assert _csr_edge_set(csr) == _edge_set(legacy)

    def test_uniform_complete_layered_exact(self):
        for n, depth, relabel in [(50, 5, None), (80, 4, 7)]:
            legacy = uniform_complete_layered(n, depth, relabel_seed=relabel)
            csr = uniform_complete_layered_csr(n, depth, relabel_seed=relabel)
            assert _csr_edge_set(csr) == _edge_set(legacy)

    def test_complete_layered_exact(self):
        legacy = complete_layered([1, 4, 9, 2], relabel_seed=13)
        csr = complete_layered_csr([1, 4, 9, 2], relabel_seed=13)
        assert _csr_edge_set(csr) == _edge_set(legacy)

    def test_to_radio_network_round_trip(self):
        csr = km_hard_layered_csr(80, 5, seed=1)
        net = csr.to_radio_network()
        assert _edge_set(net) == _csr_edge_set(csr)
        assert net.r == csr.r and net.source == 0


class TestEngineAdoption:
    def test_channel_kernel_adopts_csr_zero_copy(self):
        net = gnp_random_csr(200, 12 / 200, seed=5)
        kernel = ChannelKernel(net)
        indptr, indices = net.csr_arrays()
        assert kernel.indptr is indptr and kernel.indices is indices
        assert kernel.index[7] == 7 and kernel.index.get(net.n) is None
        with pytest.raises(KeyError):
            kernel.index[net.n]

    def test_fast_engine_identical_on_csr_and_converted(self):
        csr = km_hard_layered_csr(90, 5, seed=4)
        legacy = csr.to_radio_network()
        for seed in (0, 1):
            a = run_broadcast_fast(csr, KnownRadiusKP(csr.r, csr.radius),
                                   seed=seed)
            b = run_broadcast_fast(legacy, KnownRadiusKP(legacy.r, csr.radius),
                                   seed=seed)
            assert a.wake_times == b.wake_times
            assert a.time == b.time and a.layer_times == b.layer_times
