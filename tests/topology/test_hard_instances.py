"""Radius-2 hard-instance search (Alon-et-al substitution, E8)."""

from __future__ import annotations

import pytest

from repro.core.randomized import KnownRadiusKP
from repro.sim.errors import ConfigurationError
from repro.topology.hard_instances import (
    HardInstanceReport,
    random_radius2,
    search_radius2_hard_instance,
)


def test_random_radius2_structure():
    net = random_radius2(30, mid_size=8, edge_prob=0.4, seed=1)
    assert net.n == 30
    assert net.radius == 2
    # Layer 1 is exactly the mid set, all adjacent to the source.
    assert len(net.layers()[1]) == 8
    assert net.degree(0) == 8


def test_random_radius2_every_outer_node_has_parent():
    net = random_radius2(25, mid_size=5, edge_prob=0.05, seed=2)
    for w in net.layers()[2]:
        assert net.degree(w) >= 1


def test_random_radius2_parameter_validation():
    with pytest.raises(ConfigurationError):
        random_radius2(5, mid_size=4, edge_prob=0.5, seed=0)
    with pytest.raises(ConfigurationError):
        random_radius2(10, mid_size=0, edge_prob=0.5, seed=0)


def test_search_returns_worst_sample():
    algo = KnownRadiusKP(29, 2)
    report = search_radius2_hard_instance(
        30, algo, trials=4, runs_per_trial=2, seed=0
    )
    assert isinstance(report, HardInstanceReport)
    assert report.samples == 4
    assert len(report.all_scores) == 4
    assert report.score == max(report.all_scores)
    assert report.network.radius == 2


def test_search_requires_trials():
    algo = KnownRadiusKP(29, 2)
    with pytest.raises(ConfigurationError):
        search_radius2_hard_instance(30, algo, trials=0)


def test_search_with_injected_runner_counts_calls():
    calls = []

    class _Fake:
        def __init__(self, time):
            self.time = time

    def runner(net, algo, seed):
        calls.append(seed)
        return _Fake(time=float(seed % 7))

    algo = KnownRadiusKP(29, 2)
    report = search_radius2_hard_instance(
        30, algo, trials=3, runs_per_trial=2, seed=1, runner=runner
    )
    assert len(calls) == 6
    assert report.samples == 3
