"""Benchmark registry: timing protocol, record schema, regression gates.

The load-bearing invariant is the CI contract: ``repro bench --compare``
must *warn* on a regression by default and exit nonzero only under
``REPRO_BENCH_STRICT=1`` — a noisy shared runner must never fail a PR,
while dedicated hardware must never let one slip.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.bench import (
    Benchmark,
    BenchmarkRegistry,
    append_trajectory,
    baseline_path,
    compare_record,
    environment_fingerprint,
    load_baseline,
    read_trajectory,
    run_benchmark,
    strict_mode,
    trajectory_path,
    validate_record,
    write_baseline,
)


def _noop_bench(name="unit", **kwargs):
    kwargs.setdefault("repeats", 2)
    kwargs.setdefault("quick_repeats", 2)
    kwargs.setdefault("warmup", 0)
    return Benchmark(name=name, build=lambda quick: (lambda: None), **kwargs)


class TestRegistry:
    def test_duplicate_names_are_rejected(self):
        registry = BenchmarkRegistry()
        registry.add(_noop_bench("a"))
        with pytest.raises(ValueError):
            registry.add(_noop_bench("a"))

    def test_select_matches_names_and_tags(self):
        registry = BenchmarkRegistry()
        registry.add(_noop_bench("fast_engine", tags=("engine",)))
        registry.add(_noop_bench("sweep_pool", tags=("sweep",)))
        assert [b.name for b in registry.select("engine")] == ["fast_engine"]
        assert [b.name for b in registry.select("sweep")] == ["sweep_pool"]
        assert len(registry.select("")) == 2
        assert registry.select("nomatch") == []

    def test_get_unknown_name_lists_registered(self):
        registry = BenchmarkRegistry()
        registry.add(_noop_bench("a"))
        with pytest.raises(KeyError, match="'a'"):
            registry.get("b")

    def test_tolerance_must_be_a_ratio_above_one(self):
        with pytest.raises(ValueError):
            _noop_bench(tolerance=1.0)
        with pytest.raises(ValueError):
            _noop_bench(tolerance=0.9)


class TestTimingProtocol:
    def test_setup_runs_outside_the_timed_region(self):
        calls = {"build": 0, "thunk": 0}

        def build(quick):
            calls["build"] += 1

            def thunk():
                calls["thunk"] += 1

            return thunk

        bench = Benchmark(name="counting", build=build, repeats=3, warmup=2)
        record = run_benchmark(bench)
        assert calls["build"] == 1
        assert calls["thunk"] == 2 + 3  # warmup + timed
        assert record["repeats"] == 3 and record["warmup"] == 2
        assert len(record["times_s"]) == 3

    def test_quick_uses_quick_repeats_and_flags_the_record(self):
        bench = _noop_bench(repeats=5, quick_repeats=2)
        record = run_benchmark(bench, quick=True)
        assert record["quick"] is True
        assert record["repeats"] == 2

    def test_record_passes_its_own_schema_check(self):
        record = run_benchmark(_noop_bench())
        assert validate_record(record) == []
        assert record["min_s"] == min(record["times_s"])

    def test_validate_record_catches_violations(self):
        record = run_benchmark(_noop_bench())
        record["min_s"] = record["min_s"] + 1.0
        assert any("min_s" in e for e in validate_record(record))
        del record["bench"]
        assert any("bench" in e for e in validate_record(record))
        record["schema"] = 99
        assert any("newer" in e for e in validate_record(record))
        assert validate_record({}) != []

    def test_environment_fingerprint_fields(self):
        env = environment_fingerprint()
        for key in ("git_sha", "python", "numpy", "platform", "cpu_count"):
            assert env[key] is not None


class TestTrajectoryAndBaselines:
    def test_append_and_read_round_trip(self, tmp_path):
        record = run_benchmark(_noop_bench())
        path = append_trajectory(record, tmp_path)
        append_trajectory(record, tmp_path)
        assert path == trajectory_path(tmp_path)
        records = read_trajectory(path)
        assert len(records) == 2
        assert records[0] == json.loads(json.dumps(record))

    def test_read_rejects_non_object_lines(self, tmp_path):
        path = tmp_path / "BENCH_trajectory.jsonl"
        path.write_text('{"bench": "a"}\n[1, 2]\n')
        with pytest.raises(ValueError, match="not a JSON object"):
            read_trajectory(path)

    def test_baseline_write_load_round_trip(self, tmp_path):
        record = run_benchmark(_noop_bench("my_bench"))
        path = write_baseline(record, tmp_path)
        assert path == baseline_path("my_bench", tmp_path)
        assert load_baseline("my_bench", tmp_path) == json.loads(json.dumps(record))
        assert load_baseline("absent", tmp_path) is None


def _record(min_s, tolerance=1.3, quick=False, bench="b"):
    return {
        "bench": bench, "min_s": min_s, "tolerance": tolerance, "quick": quick,
    }


class TestComparison:
    def test_within_tolerance_is_ok(self):
        comparison = compare_record(_record(1.2), _record(1.0))
        assert comparison.status == "ok" and not comparison.regressed
        assert comparison.ratio == pytest.approx(1.2)

    def test_beyond_tolerance_is_a_regression(self):
        comparison = compare_record(_record(1.4), _record(1.0))
        assert comparison.status == "regression" and comparison.regressed
        assert "regression" in comparison.describe()

    def test_faster_than_margin_is_improved(self):
        comparison = compare_record(_record(0.5), _record(1.0))
        assert comparison.status == "improved" and not comparison.regressed

    def test_missing_baseline(self):
        comparison = compare_record(_record(1.0), None)
        assert comparison.status == "no-baseline"
        assert comparison.ratio is None
        assert "no committed baseline" in comparison.describe()

    def test_quick_vs_full_modes_never_compare(self):
        comparison = compare_record(_record(9.0, quick=True), _record(1.0))
        assert comparison.status == "mode-mismatch"
        assert not comparison.regressed
        assert "not comparable" in comparison.describe()

    def test_tolerance_comes_from_the_record(self):
        # The registered tolerance at measurement time decides, not a
        # stale value stored in the baseline.
        comparison = compare_record(
            _record(1.4, tolerance=1.5), _record(1.0, tolerance=1.1)
        )
        assert comparison.status == "ok"


class TestStrictMode:
    def test_env_flag(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_STRICT", raising=False)
        assert strict_mode() is False
        monkeypatch.setenv("REPRO_BENCH_STRICT", "1")
        assert strict_mode() is True
        monkeypatch.setenv("REPRO_BENCH_STRICT", "0")
        assert strict_mode() is False
