"""E12 — Fault tolerance: broadcasting under crashes, jamming, loss and
adversarial wake-up delays.

The paper's model is pristine — its only adversary is the topology (and,
in Section 3, the jamming adversary *inside* the lower-bound proof).
This experiment turns the fault layer of :mod:`repro.sim.faults` on the
paper's algorithms and checks the semantics end to end:

* an empty plan is exactly the pristine execution;
* a crash on the unique source-to-node path leaves the far side
  uninformed forever (the run settles incomplete);
* message loss degrades broadcasting time monotonically;
* a jam window on a receiver delays its wake past the window, and an
  adversarial wake-up delay acts as a completion-time floor;
* all three engines (reference, fast, batched) produce bit-identical
  faulty executions — wake times and fault counters alike.
"""

from __future__ import annotations

from ..analysis import render_table, summarize
from ..baselines import BGIBroadcast, RoundRobinBroadcast
from ..sim import FaultPlan, repeat_broadcast, run_broadcast
from ..sim.fast import run_broadcast_batch, run_broadcast_fast
from ..topology import gnp_connected, path
from .base import ExperimentReport, register


def _mean_time(net, algorithm, faults, runs: int, max_steps: int) -> float:
    results = repeat_broadcast(
        net,
        algorithm,
        runs=runs,
        max_steps=max_steps,
        require_completion=False,
        faults=faults,
    )
    return summarize([r.time for r in results]).mean


@register("e12")
def run(quick: bool = False) -> ExperimentReport:
    report = ExperimentReport(
        "e12", "Fault injection: crashes, jamming, loss, wake delays"
    )
    n = 16 if quick else 32
    runs = 10 if quick else 25
    line = path(n)
    max_steps = 64 * n * n

    # --- Empty plan is inert ------------------------------------------
    rr = RoundRobinBroadcast(line.r)
    pristine = run_broadcast(line, rr, seed=1, max_steps=max_steps)
    inert = run_broadcast(
        line, rr, seed=1, max_steps=max_steps, faults=FaultPlan()
    )
    report.check(
        "an empty fault plan reproduces the pristine execution exactly",
        pristine.wake_times == inert.wake_times
        and pristine.time == inert.time
        and inert.fault_counters is not None
        and inert.fault_counters.to_dict()
        == {"crashed_nodes": 0, "jammed_slots": 0,
            "lost_messages": 0, "delayed_wakes": 0},
        f"time {pristine.time} vs {inert.time}",
    )

    # --- A crash on the unique path partitions the broadcast ----------
    cut = n // 2
    crashed = run_broadcast(
        line, rr, seed=1, max_steps=max_steps,
        faults=FaultPlan(crashes=((cut, 0),)),
    )
    report.check(
        "crashing a path node at slot 0 leaves every node behind it uninformed",
        (not crashed.completed)
        and crashed.informed == cut
        and crashed.fault_counters.crashed_nodes == 1,
        f"informed {crashed.informed}/{n} with node {cut} crashed",
    )

    # --- Loss probability degrades time monotonically -----------------
    loss_rows = []
    means = []
    for p in (0.0, 0.3, 0.6):
        plan = FaultPlan(loss_probability=p, seed=5) if p else None
        mean = _mean_time(line, rr, plan, runs, max_steps)
        means.append(mean)
        loss_rows.append([f"{p:.1f}", f"{mean:.1f}"])
    report.add_table(
        render_table(
            ["loss probability", f"mean time over {runs} trials (path n={n})"],
            loss_rows,
        )
    )
    report.check(
        "broadcasting time grows monotonically with message-loss probability",
        means[0] <= means[1] <= means[2] and means[0] < means[2],
        " -> ".join(f"{m:.1f}" for m in means),
    )

    # --- Jam window and wake-delay floors -----------------------------
    window = 4 * n
    jam_plan = FaultPlan(jams=tuple((slot, 1) for slot in range(window)))
    jammed = run_broadcast(line, rr, seed=1, max_steps=max_steps, faults=jam_plan)
    delay_plan = FaultPlan(wake_delays=((1, window),))
    delayed = run_broadcast(line, rr, seed=1, max_steps=max_steps, faults=delay_plan)
    report.check(
        "jamming a receiver for a window delays its wake past the window",
        jammed.completed and jammed.wake_times[1] >= window,
        f"node 1 woke at slot {jammed.wake_times.get(1)} (window {window})",
    )
    report.check(
        "an adversarial wake-up delay is a floor on the node's wake slot",
        delayed.completed
        and delayed.wake_times[1] >= window
        and delayed.time >= window,
        f"node 1 woke at slot {delayed.wake_times.get(1)}, time {delayed.time}",
    )

    # --- Three-engine parity under a nontrivial plan ------------------
    net = gnp_connected(24 if quick else 40, 0.2, seed=4)
    bgi = BGIBroadcast(net.r)
    plan = FaultPlan(
        crashes=((3, 6), (7, 2)),
        jams=tuple((slot, 5) for slot in range(8)),
        loss_probability=0.25,
        wake_delays=((9, 10),),
        seed=17,
    )
    parity = True
    details = []
    batch = run_broadcast_batch(
        net, bgi, trials=3, base_seed=0, max_steps=max_steps, faults=plan
    )
    for trial, seed in enumerate((0, 1, 2)):
        ref = run_broadcast(net, bgi, seed=seed, max_steps=max_steps, faults=plan)
        fast = run_broadcast_fast(net, bgi, seed=seed, max_steps=max_steps, faults=plan)
        same = (
            ref.wake_times == fast.wake_times == batch[trial].wake_times
            and ref.time == fast.time == batch[trial].time
            and ref.fault_counters
            == fast.fault_counters
            == batch[trial].fault_counters
        )
        parity &= same
        details.append(f"seed {seed}: {'ok' if same else 'MISMATCH'}")
    report.check(
        "reference, fast, and batched engines agree bit-for-bit under faults",
        parity,
        "; ".join(details),
    )
    return report
