"""Forensics overhead benchmark (emits ``BENCH_forensics.json``).

Two contracts, one measurement each:

1. **Zero overhead when off.**  The trace-recording branches this layer
   added to the fast engines cost one attribute check per slot at
   ``TraceLevel.NONE``; the traces-off batched workload must stay flat.
   Under ``REPRO_BENCH_STRICT=1`` (dedicated hardware) the off path is
   gated at ≤ 1.02x against the committed baseline — tighter than any
   other gate in the suite, because "off" is supposed to mean *off*.
2. **Forensics observes, never perturbs.**  A ``TraceLevel.FULL`` batch
   plus a per-trial :func:`~repro.obs.forensics.analyze` pass must
   reproduce the plain batch's outcomes bit for bit; the enabled cost is
   recorded (it is a per-slot python loop by design — debug tooling, not
   a hot path) but only baselined loosely via the registry's
   ``forensics_overhead`` entry.

The workload and timing protocol come from the shared benchmark
registry: the ``forensics_overhead`` entry that ``repro bench`` runs
measures exactly what this test measures.
"""

from __future__ import annotations

import json
import os
import pathlib

from repro.analysis import render_table
from repro.obs.bench import Benchmark, environment_fingerprint, run_benchmark
from repro.obs.suite import batched_workload, forensics_overhead_workload

# Mirrors BENCH_telemetry.json vs BENCH_telemetry_overhead.json: this
# file is the pytest record; the registry's pinned baseline (written by
# ``repro bench --update-baseline``) is BENCH_forensics_overhead.json.
BENCH_PATH = pathlib.Path(__file__).parent / "results" / "BENCH_forensics.json"

REPEATS = 3  # best-of to shave scheduler noise

#: Strict-mode bar for the traces-off path against the committed
#: baseline: tracing machinery that is off must not cost wall clock.
MAX_OFF_REGRESSION = 1.02


def test_forensics_overhead_and_bench_baseline(table_reporter):
    _, _, trials = batched_workload(quick=False)
    plain, forensic = forensics_overhead_workload(quick=False)

    # FULL tracing + analysis must never change what the engine computes.
    # These two calls double as the warmup for the timed runs below.
    plain_results = plain()
    reports = forensic()
    assert [r.slots for r in reports] == [r.time for r in plain_results]
    assert [r.dag.wake_slots for r in reports] == [
        {0: -1, **r.wake_times} for r in plain_results
    ]

    env = environment_fingerprint()
    off_record = run_benchmark(
        Benchmark("forensics_overhead_off", lambda quick: plain,
                  repeats=REPEATS, warmup=0),
        env=env,
    )
    on_record = run_benchmark(
        Benchmark("forensics_overhead_on", lambda quick: forensic,
                  repeats=REPEATS, warmup=0),
        env=env,
    )
    off_s, on_s = off_record["min_s"], on_record["min_s"]

    slots = sum(r.time for r in plain_results)
    overhead = on_s / off_s
    record = {
        "bench": "forensics-overhead",
        "git_sha": env["git_sha"],
        "network": "km_hard_layered(128, 32, seed=17)",
        "algorithm": "kp-known-d(stage_constant=32)",
        "trials": trials,
        "trial_slots": slots,
        "traces_off_s": round(off_s, 4),
        "forensics_on_s": round(on_s, 4),
        "overhead_ratio": round(overhead, 3),
        "slots_per_s_off": round(slots / off_s),
        "slots_per_s_on": round(slots / on_s),
        "wasted_slot_fraction_mean": round(
            sum(r.wasted_slot_fraction for r in reports) / len(reports), 6
        ),
    }

    baseline = None
    if BENCH_PATH.exists():
        baseline = json.loads(BENCH_PATH.read_text())

    table_reporter.record(
        "forensics-overhead",
        render_table(
            ["path", "wall (s)", "trial-slots/s"],
            [
                ["traces off", f"{off_s:.3f}", f"{slots / off_s:.0f}"],
                ["FULL + analyze", f"{on_s:.3f}", f"{slots / on_s:.0f}"],
                ["overhead", f"{overhead:.2f}x", ""],
            ],
            title=f"BatchedFastEngine, {trials} trials ({slots} trial-slots)",
        ),
    )

    BENCH_PATH.parent.mkdir(exist_ok=True)
    BENCH_PATH.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")

    if baseline is not None and os.environ.get("REPRO_BENCH_STRICT") == "1":
        regression = off_s / baseline["traces_off_s"]
        assert regression < MAX_OFF_REGRESSION, (
            f"traces-off path regressed {regression:.3f}x vs baseline "
            f"{baseline['git_sha']} — tracing that is off must be free"
        )
