"""Engine instrumentation: zero-overhead defaults, metric parity, timings.

Two invariants matter: (1) instrumentation must never change what an
engine computes — results with metrics on are bit-identical to results
with metrics off; (2) the three engines must agree on every counter and
histogram for the same (network, algorithm, seed), just as they agree on
the results themselves.
"""

from __future__ import annotations

import pytest

from repro.baselines import BGIBroadcast, RoundRobinBroadcast
from repro.obs.metrics import MetricsRegistry
from repro.obs.timings import Timings
from repro.sim import run_broadcast
from repro.sim.fast import run_broadcast_batch, run_broadcast_fast
from repro.sim.serialization import result_from_dict, result_to_dict
from repro.topology import gnp_connected, path, uniform_complete_layered

SEED = 13


def _net():
    return gnp_connected(30, 0.2, seed=4)


def _result_key(result):
    return (result.completed, result.time, result.wake_times, result.layer_times)


class TestResultsUnchanged:
    """Metrics on == metrics off, per engine."""

    def test_reference_engine(self):
        net = _net()
        algorithm = BGIBroadcast(net.r)
        plain = run_broadcast(net, algorithm, seed=SEED)
        instrumented = run_broadcast(net, algorithm, seed=SEED,
                                     metrics=MetricsRegistry())
        assert _result_key(instrumented) == _result_key(plain)
        assert plain.timings is None
        assert instrumented.timings is not None

    def test_fast_engine(self):
        net = _net()
        algorithm = BGIBroadcast(net.r)
        plain = run_broadcast_fast(net, algorithm, seed=SEED)
        instrumented = run_broadcast_fast(net, algorithm, seed=SEED,
                                          metrics=MetricsRegistry())
        assert _result_key(instrumented) == _result_key(plain)

    def test_batched_engine(self):
        net = _net()
        algorithm = BGIBroadcast(net.r)
        seeds = [1, 2, 3]
        plain = run_broadcast_batch(net, algorithm, seeds=seeds)
        instrumented = run_broadcast_batch(net, algorithm, seeds=seeds,
                                           metrics=MetricsRegistry())
        assert [_result_key(r) for r in instrumented] == [
            _result_key(r) for r in plain
        ]


class TestCounterParity:
    """All three engines tally the same counters and histograms."""

    @pytest.mark.parametrize("make_net", [
        pytest.param(lambda: path(15), id="path"),
        pytest.param(lambda: uniform_complete_layered(32, 4), id="layered"),
        pytest.param(_net, id="gnp"),
    ])
    def test_single_run_parity(self, make_net):
        net = make_net()
        algorithm = RoundRobinBroadcast(net.r)
        ref, fast = MetricsRegistry(), MetricsRegistry()
        run_broadcast(net, algorithm, seed=SEED, metrics=ref)
        run_broadcast_fast(net, algorithm, seed=SEED, metrics=fast)
        assert fast.to_dict() == ref.to_dict()

    def test_batched_matches_serial_reference(self):
        net = _net()
        algorithm = BGIBroadcast(net.r)
        seeds = [5, 6, 7]
        serial, batched = MetricsRegistry(), MetricsRegistry()
        for seed in seeds:
            run_broadcast(net, algorithm, seed=seed, metrics=serial)
        run_broadcast_batch(net, algorithm, seeds=seeds, metrics=batched)
        # Counters and histograms must tally identically even though the
        # batched engine buffers its collision observations and flushes
        # them once per run (histograms are order-invariant).
        batched_dict, serial_dict = batched.to_dict(), serial.to_dict()
        assert batched_dict["counters"] == serial_dict["counters"]
        assert batched_dict["histograms"] == serial_dict["histograms"]
        # The batch-only liveness gauge exists on the batched side alone;
        # it reads 0 once every trial has settled.
        assert serial_dict["gauges"] == {}
        assert batched_dict["gauges"] == {"batch_active_trials": 0}

    def test_expected_counters_present(self):
        net = path(10)
        algorithm = RoundRobinBroadcast(net.r)
        metrics = MetricsRegistry()
        result = run_broadcast(net, algorithm, seed=0, metrics=metrics)
        counters = metrics.to_dict()["counters"]
        assert counters["runs_total"] == 1
        assert counters["runs_completed"] == 1
        assert counters["engine_slots"] == result.time
        assert counters["engine_transmissions"] >= net.n - 1
        histograms = metrics.to_dict()["histograms"]
        assert histograms["slots_to_completion"]["count"] == 1
        assert histograms["slots_to_completion"]["max"] == result.time
        # One transmissions-per-node observation per node.
        assert histograms["transmissions_per_node"]["count"] == net.n
        assert histograms["collisions_per_slot"]["count"] == result.time


class TestProfilingIdentity:
    """cProfile wrapping must observe, never perturb (repro profile)."""

    def test_profiled_single_run_matches_plain(self):
        from repro.obs.profile import profile_call

        net = _net()
        algorithm = BGIBroadcast(net.r)
        plain = run_broadcast_fast(net, algorithm, seed=SEED)
        profiled, stats = profile_call(
            lambda: run_broadcast_fast(net, algorithm, seed=SEED)
        )
        assert _result_key(profiled) == _result_key(plain)
        assert stats.total_calls > 0

    def test_profiled_instrumented_batch_matches_plain(self):
        from repro.obs.profile import profile_call

        net = _net()
        algorithm = BGIBroadcast(net.r)
        seeds = [1, 2, 3]
        plain_registry, profiled_registry = MetricsRegistry(), MetricsRegistry()
        plain = run_broadcast_batch(net, algorithm, seeds=seeds,
                                    metrics=plain_registry)
        profiled, _ = profile_call(
            lambda: run_broadcast_batch(net, algorithm, seeds=seeds,
                                        metrics=profiled_registry)
        )
        assert [_result_key(r) for r in profiled] == [
            _result_key(r) for r in plain
        ]
        # The metric tallies survive profiling unchanged too.
        assert profiled_registry.to_dict() == plain_registry.to_dict()


class TestBatchedFlush:
    """The batched engine buffers collision observations until flush."""

    def _engine(self):
        from repro.sim.fast import BatchedFastEngine

        net = _net()
        registry = MetricsRegistry()
        return BatchedFastEngine(net, BGIBroadcast(net.r), seeds=[5, 6],
                                 metrics=registry), registry

    def test_manual_stepping_requires_flush(self):
        engine, registry = self._engine()
        for _ in range(4):
            engine.run_step()
        histogram = registry.histograms["collisions_per_slot"]
        assert histogram.total == 0  # buffered, not yet observed
        engine.flush_metrics()
        assert histogram.total == 8  # 4 slots x 2 active trials

    def test_flush_is_idempotent(self):
        engine, registry = self._engine()
        for _ in range(3):
            engine.run_step()
        engine.flush_metrics()
        snapshot = registry.to_dict()
        engine.flush_metrics()
        assert registry.to_dict() == snapshot

    def test_run_flushes_and_zeroes_the_gauge(self):
        engine, registry = self._engine()
        engine.run(max_steps=10_000)
        assert engine.all_settled
        assert registry.gauges["batch_active_trials"].value == 0
        slots = registry.counters["engine_slots"].value
        assert registry.histograms["collisions_per_slot"].total == slots


class TestTimings:
    def test_reference_engine_stage_names(self):
        net = path(8)
        metrics = MetricsRegistry()
        result = run_broadcast(net, RoundRobinBroadcast(net.r), seed=0,
                               metrics=metrics)
        stages = set(result.timings.stages)
        assert {"engine.actions", "engine.channel", "engine.step"} <= stages
        assert result.timings.count("engine.step") == result.time

    def test_fast_engine_stage_names(self):
        net = path(8)
        result = run_broadcast_fast(net, RoundRobinBroadcast(net.r), seed=0,
                                    metrics=MetricsRegistry())
        stages = set(result.timings.stages)
        assert {"engine.coins", "engine.channel", "engine.step"} <= stages

    def test_batch_shares_one_timings_object(self):
        net = path(8)
        results = run_broadcast_batch(net, RoundRobinBroadcast(net.r),
                                      seeds=[0, 1], metrics=MetricsRegistry())
        assert results[0].timings is results[1].timings

    def test_explicit_timings_without_metrics(self):
        net = path(8)
        timings = Timings()
        result = run_broadcast(net, RoundRobinBroadcast(net.r), seed=0,
                               timings=timings)
        assert result.timings is timings
        assert timings.count("engine.step") == result.time


class TestSerialization:
    def test_uninstrumented_result_has_no_timings_key(self):
        net = path(6)
        result = run_broadcast(net, RoundRobinBroadcast(net.r), seed=0)
        assert "timings" not in result_to_dict(result)

    def test_timings_round_trip(self):
        net = path(6)
        result = run_broadcast(net, RoundRobinBroadcast(net.r), seed=0,
                               metrics=MetricsRegistry())
        data = result_to_dict(result)
        assert "timings" in data
        clone = result_from_dict(data)
        assert clone.timings.to_dict() == result.timings.to_dict()
        assert _result_key(clone) == _result_key(result)
