"""E6 — Section 4.2 remark: round-robin O(nD) vs Select-and-Send
O(n log n); interleaving gives O(n min(D, log n)).

Logic in :mod:`repro.experiments.e6_interleaving`.
"""

from __future__ import annotations

from repro.experiments import get_experiment


def test_e6(benchmark, table_reporter):
    report = get_experiment("e6")()
    for table in report.tables:
        table_reporter.record("e6", table)
    table_reporter.record(
        "e6",
        "\n".join(
            f"[{'PASS' if claim.holds else 'FAIL'}] {claim.description}"
            + (f"  ({claim.details})" if claim.details else "")
            for claim in report.claims
        ),
    )
    assert report.ok, report.render()

    from repro.baselines import InterleavedBroadcast, RoundRobinBroadcast
    from repro.core import SelectAndSend
    from repro.sim import run_broadcast
    from repro.topology import uniform_complete_layered

    net = uniform_complete_layered(256, 16, relabel_seed=9)
    algo = InterleavedBroadcast(RoundRobinBroadcast(net.r), SelectAndSend())
    benchmark.pedantic(
        lambda: run_broadcast(net, algo, require_completion=True),
        rounds=3, iterations=1,
    )
