"""Property-based tests of the batched engine (hypothesis, dev extra).

Three invariants of :func:`run_broadcast_batch` that must hold for any
seeds and any small topology:

* permuting the seed list permutes the results and changes nothing else
  (trials are independent — no cross-trial state leaks);
* a batch of one is the single-trial fast path exactly;
* nodes still holding the ``ASLEEP`` sentinel never transmit (no
  spontaneous transmissions, the radio-model ground rule).
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.baselines import BGIBroadcast, RoundRobinBroadcast
from repro.core import KnownRadiusKP
from repro.sim.fast import BatchedFastEngine, run_broadcast_batch, run_broadcast_fast
from repro.topology import gnp_connected, path, star

SETTINGS = settings(max_examples=20, deadline=None)

ALGORITHMS = [
    lambda net: KnownRadiusKP(net.r, max(1, net.radius), stage_constant=4),
    lambda net: BGIBroadcast(net.r),
    lambda net: RoundRobinBroadcast(net.r),
]


@st.composite
def networks(draw):
    kind = draw(st.sampled_from(["path", "star", "gnp"]))
    n = draw(st.integers(min_value=4, max_value=16))
    if kind == "path":
        return path(n)
    if kind == "star":
        return star(n)
    return gnp_connected(n, 0.4, seed=draw(st.integers(0, 5)))


def _fingerprint(result):
    return (result.seed, result.completed, result.time, tuple(sorted(result.wake_times.items())))


@SETTINGS
@given(
    net=networks(),
    algo_index=st.integers(0, len(ALGORITHMS) - 1),
    seeds=st.lists(st.integers(0, 2**32), min_size=2, max_size=5, unique=True),
    permutation=st.randoms(use_true_random=False),
)
def test_permuting_seeds_permutes_results(net, algo_index, seeds, permutation):
    make = ALGORITHMS[algo_index]
    shuffled = list(seeds)
    permutation.shuffle(shuffled)

    original = run_broadcast_batch(net, make(net), seeds=seeds)
    permuted = run_broadcast_batch(net, make(net), seeds=shuffled)

    by_seed = {r.seed: _fingerprint(r) for r in original}
    assert [r.seed for r in permuted] == shuffled
    for r in permuted:
        assert _fingerprint(r) == by_seed[r.seed]


@SETTINGS
@given(
    net=networks(),
    algo_index=st.integers(0, len(ALGORITHMS) - 1),
    seed=st.integers(0, 2**32),
)
def test_batch_of_one_equals_single_trial(net, algo_index, seed):
    make = ALGORITHMS[algo_index]
    (batched,) = run_broadcast_batch(net, make(net), seeds=[seed])
    single = run_broadcast_fast(net, make(net), seed=seed)
    assert _fingerprint(batched) == _fingerprint(single)
    assert batched.informed == single.informed
    assert batched.layer_times == single.layer_times


@SETTINGS
@given(
    net=networks(),
    algo_index=st.integers(0, len(ALGORITHMS) - 1),
    seeds=st.lists(st.integers(0, 2**32), min_size=1, max_size=4, unique=True),
    slots=st.integers(1, 40),
)
def test_asleep_nodes_never_transmit(net, algo_index, seeds, slots):
    make = ALGORITHMS[algo_index]
    engine = BatchedFastEngine(net, make(net), seeds)
    for _ in range(slots):
        asleep_before = ~engine.awake
        mask = engine.run_step()
        assert not np.logical_and(mask, asleep_before).any()
        if engine.all_informed:
            break
