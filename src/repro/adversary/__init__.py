"""Executable lower bound of Section 3: the adversarial network G_A."""

from .construction import (
    AdversaryError,
    AdversaryResult,
    LowerBoundConstruction,
    build_strongest,
    StageRecord,
    VerificationReport,
    adversary_parameters,
    verify_construction,
)
from .jamming import COLLISION, SILENCE, JamAnswer, JammingState
from .oblivious import (
    ObliviousAdversaryResult,
    ObliviousLayerAdversary,
    verify_oblivious,
)
from .oracle import AbstractHistoryOracle, LiveNode

__all__ = [
    "AbstractHistoryOracle",
    "AdversaryError",
    "AdversaryResult",
    "COLLISION",
    "JamAnswer",
    "JammingState",
    "LiveNode",
    "LowerBoundConstruction",
    "ObliviousAdversaryResult",
    "ObliviousLayerAdversary",
    "build_strongest",
    "SILENCE",
    "StageRecord",
    "VerificationReport",
    "verify_oblivious",
    "adversary_parameters",
    "verify_construction",
]
