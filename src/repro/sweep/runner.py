"""Parallel sweep execution with per-point caching.

The runner shards the points of a :class:`~repro.sweep.spec.SweepSpec`
across worker processes.  Cache lookups happen in the parent *before*
dispatch, so a fully-cached sweep performs zero engine runs and zero
worker spawns; only misses travel to the pool.  Every executed point's
payload is written back through :class:`~repro.sweep.cache.ResultCache`.

Each point itself runs all its Monte-Carlo trials as one batched array
program (:func:`~repro.sim.run.repeat_broadcast` dispatches oblivious
algorithms to :class:`~repro.sim.fast.BatchedFastEngine`), so the
parallelism is two-level: processes over points, arrays over trials.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import Callable, Sequence

from ..analysis import render_table
from ..sim.run import repeat_broadcast
from .cache import CODE_VERSION, ResultCache
from .registry import build_algorithm, build_topology
from .spec import SweepPoint, SweepSpec, canonical_json

__all__ = [
    "PointResult",
    "SweepOutcome",
    "execute_point",
    "run_sweep",
    "engine_run_count",
    "reset_engine_run_counter",
]

#: Broadcast executions performed by this process's sweeps since the last
#: reset.  The cache regression test asserts this stays at zero on a warm
#: re-run; it counts *trials actually executed*, cached points add nothing.
_ENGINE_RUNS = 0


def engine_run_count() -> int:
    """Engine runs performed by ``run_sweep`` since the last reset."""
    return _ENGINE_RUNS


def reset_engine_run_counter() -> None:
    global _ENGINE_RUNS
    _ENGINE_RUNS = 0


def _point_from_canonical(payload: dict) -> SweepPoint:
    return SweepPoint(
        topology=payload["topology"],
        topology_params=tuple(sorted(payload["topology_params"].items())),
        algorithm=payload["algorithm"],
        algorithm_params=tuple(sorted(payload["algorithm_params"].items())),
        trials=payload["trials"],
        base_seed=payload["base_seed"],
        max_steps=payload["max_steps"],
    )


def execute_point(canonical: dict) -> dict:
    """Run one sweep point; top-level so worker processes can unpickle it.

    Args:
        canonical: A :meth:`SweepPoint.canonical` dict.

    Returns:
        JSON-safe payload with per-trial times and summary statistics.
        Deterministic given the point (seeds are derived, never drawn), so
        cached payloads reproduce byte-identically.
    """
    point = _point_from_canonical(canonical)
    network = build_topology(point.topology, dict(point.topology_params))
    algorithm = build_algorithm(point.algorithm, network, dict(point.algorithm_params))
    results = repeat_broadcast(
        network,
        algorithm,
        runs=point.trials,
        base_seed=point.base_seed,
        max_steps=point.max_steps,
        require_completion=False,
    )
    times = [r.time for r in results]
    return {
        "point": canonical,
        "label": point.label(),
        "algorithm_name": getattr(algorithm, "name", point.algorithm),
        "n": network.n,
        "radius": network.radius,
        "runs": len(results),
        "completed": sum(1 for r in results if r.completed),
        "times": times,
        "mean_time": sum(times) / len(times),
        "min_time": min(times),
        "max_time": max(times),
    }


@dataclass(frozen=True)
class PointResult:
    """One sweep cell's outcome plus its provenance."""

    point: SweepPoint
    payload: dict
    cached: bool


@dataclass
class SweepOutcome:
    """Everything one ``run_sweep`` call produced."""

    spec: SweepSpec
    results: list[PointResult]

    @property
    def executed(self) -> int:
        return sum(1 for r in self.results if not r.cached)

    @property
    def from_cache(self) -> int:
        return sum(1 for r in self.results if r.cached)

    def to_dict(self) -> dict:
        """Deterministic JSON form (no cache provenance — content only)."""
        return {
            "spec": self.spec.to_dict(),
            "code_version": CODE_VERSION,
            "points": [r.payload for r in self.results],
        }

    def to_json(self) -> str:
        return canonical_json(self.to_dict())

    def render_table(self) -> str:
        rows = []
        for r in self.results:
            p = r.payload
            rows.append([
                r.point.label(),
                f"{p['completed']}/{p['runs']}",
                f"{p['mean_time']:.0f}",
                f"[{p['min_time']}, {p['max_time']}]",
                "cache" if r.cached else "run",
            ])
        return render_table(
            ["point", "completed", "mean slots", "range", "source"], rows
        )


def run_sweep(
    spec: SweepSpec,
    workers: int = 1,
    cache: ResultCache | None = None,
    on_point: Callable[[SweepPoint, dict, bool], None] | None = None,
) -> SweepOutcome:
    """Execute a sweep, sharding cache misses across worker processes.

    Args:
        spec: The declarative sweep description.
        workers: Process count for cache-missed points; ``1`` executes
            in-process (no pool spin-up — also what deterministic
            run-counter tests use).
        cache: Result cache; ``None`` disables caching entirely.
        on_point: Progress callback ``(point, payload, cached)`` invoked
            in completion order.

    Returns:
        A :class:`SweepOutcome` with one :class:`PointResult` per grid
        cell, in grid order.
    """
    global _ENGINE_RUNS
    points = spec.points()
    payloads: dict[int, dict] = {}
    cached_flags: dict[int, bool] = {}
    pending: list[int] = []
    for i, point in enumerate(points):
        hit = cache.get(point) if cache is not None else None
        if hit is not None:
            payloads[i] = hit
            cached_flags[i] = True
        else:
            pending.append(i)

    if pending:
        canonicals = [points[i].canonical() for i in pending]
        if workers > 1 and len(pending) > 1:
            # fork (where available) avoids re-importing __main__ in the
            # children, so the pool works from scripts, pytest, and REPLs
            # alike; platforms without it fall back to spawn.
            try:
                context = multiprocessing.get_context("fork")
            except ValueError:
                context = multiprocessing.get_context("spawn")
            with context.Pool(min(workers, len(pending))) as pool:
                executed = pool.map(execute_point, canonicals, chunksize=1)
        else:
            executed = [execute_point(c) for c in canonicals]
        for i, payload in zip(pending, executed):
            payloads[i] = payload
            cached_flags[i] = False
            _ENGINE_RUNS += payload["runs"]
            if cache is not None:
                cache.put(points[i], payload)

    results = []
    for i, point in enumerate(points):
        result = PointResult(point=point, payload=payloads[i], cached=cached_flags[i])
        results.append(result)
        if on_point is not None:
            on_point(point, result.payload, result.cached)
    return SweepOutcome(spec=spec, results=results)
