"""The paper's algorithms: optimal randomized broadcasting (Section 2),
Echo/Binary-Selection (Section 4.1), Select-and-Send (Section 4.2) and
Complete-Layered (Section 4.3)."""

from .complete_layered import CompleteLayeredBroadcast
from .echo import (
    EchoOutcome,
    Probe,
    Selected,
    SelectionDriver,
    classify_echo,
    simulate_selection,
)
from .gossip import GossipResult, TokenGossip, run_gossip
from .randomized import (
    KnownRadiusKP,
    OptimalRandomizedBroadcasting,
    StageTimetable,
    next_power_of_two,
)
from .select_and_send import SelectAndSend

__all__ = [
    "CompleteLayeredBroadcast",
    "EchoOutcome",
    "GossipResult",
    "KnownRadiusKP",
    "OptimalRandomizedBroadcasting",
    "Probe",
    "Selected",
    "SelectionDriver",
    "SelectAndSend",
    "StageTimetable",
    "TokenGossip",
    "classify_echo",
    "next_power_of_two",
    "run_gossip",
    "simulate_selection",
]
