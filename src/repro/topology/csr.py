"""CSR-native topology generation for million-node instances.

The classic generators (:mod:`repro.topology.generators`,
:mod:`repro.topology.layered`) build a :class:`~repro.sim.network.
RadioNetwork` — per-node Python tuples, dict neighbour maps — which the
engines then recompile into flat CSR arrays via
:class:`~repro.sim.channel.ChannelKernel`.  At 10^6 nodes that detour
costs minutes and gigabytes before a single slot runs.  This module
samples instances *directly into* the flat CSR form the kernels consume:

* :class:`CSRNetwork` — an identity-labelled (``label == index``) network
  backed by ``(indptr, indices)`` arrays, duck-compatible with the fast
  and macro engines (the :class:`~repro.sim.channel.ChannelKernel`
  recognises :meth:`CSRNetwork.csr_arrays` and adopts the arrays without
  copying).
* :func:`gnp_random_csr` — G(n, p) via geometric-gap skip sampling over
  the n(n-1)/2 pair indices: O(E) draws and memory, never O(n^2).
* :func:`complete_layered_csr` / :func:`uniform_complete_layered_csr` /
  :func:`km_hard_layered_csr` — the layered families of
  :mod:`repro.topology.layered`, built edge-for-edge identically (same
  seeds, same RNG draws, same relabelling) but assembled as arrays.

Small instances from the CSR builders are *equal* to their networkx-path
counterparts (asserted by ``tests/topology/test_csr.py``), so the choice
of builder is purely an execution strategy.
"""

from __future__ import annotations

import math
import random
from typing import Sequence

import numpy as np

from ..sim.errors import ConfigurationError
from ..sim.network import RadioNetwork

__all__ = [
    "CSRNetwork",
    "gnp_random_csr",
    "complete_layered_csr",
    "uniform_complete_layered_csr",
    "km_hard_layered_csr",
]


def _gather_rows(
    indptr: np.ndarray, indices: np.ndarray, rows: np.ndarray
) -> np.ndarray:
    """Concatenate the CSR neighbour lists of ``rows`` (vectorised)."""
    starts = indptr[rows]
    lengths = indptr[rows + 1] - starts
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=indices.dtype)
    cum = np.cumsum(lengths) - lengths  # exclusive prefix sum
    pos = np.arange(total, dtype=np.int64) + np.repeat(starts - cum, lengths)
    return indices[pos]


def _bfs_depths(
    n: int, indptr: np.ndarray, indices: np.ndarray, source: int = 0
) -> np.ndarray:
    """Frontier BFS over CSR arrays; unreachable nodes keep depth -1."""
    depths = np.full(n, -1, dtype=np.int64)
    depths[source] = 0
    frontier = np.array([source], dtype=np.int64)
    depth = 0
    while frontier.size:
        nbrs = _gather_rows(indptr, indices, frontier)
        nbrs = nbrs[depths[nbrs] < 0]
        if nbrs.size == 0:
            break
        frontier = np.unique(nbrs)
        depth += 1
        depths[frontier] = depth
    return depths


class CSRNetwork:
    """An identity-labelled radio network held as flat CSR arrays.

    Node labels are exactly ``0 .. n-1`` (label == array index), the
    source is label 0, and ``indices[indptr[v]:indptr[v + 1]]`` is node
    ``v``'s sorted out-neighbour list — the same convention
    :class:`~repro.sim.channel.ChannelKernel` compiles a
    :class:`~repro.sim.network.RadioNetwork` into, which is what lets the
    kernel adopt these arrays as-is (zero-copy) via :meth:`csr_arrays`.

    The vectorised engines (:class:`~repro.sim.fast.FastEngine`,
    :class:`~repro.sim.fast.BatchedFastEngine`, and the macro-step path)
    run on a ``CSRNetwork`` directly.  The per-node reference engines
    need dict neighbour maps; convert with :meth:`to_radio_network`
    (small instances only).

    Args:
        indptr: ``int64`` array of shape ``(n + 1,)``.
        indices: ``int64`` flat neighbour array (symmetric: ``(u, v)``
            present iff ``(v, u)`` is).
        r: Public label bound; defaults to ``n - 1``.
        depths: Optional precomputed BFS depths from the source (layered
            builders know them by construction); computed on demand
            otherwise.
        validate: Verify reachability of every node from the source
            (raises :class:`~repro.sim.errors.ConfigurationError`).
    """

    def __init__(
        self,
        indptr: np.ndarray,
        indices: np.ndarray,
        r: int | None = None,
        depths: np.ndarray | None = None,
        validate: bool = True,
    ):
        indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        n = len(indptr) - 1
        if n < 1:
            raise ConfigurationError("CSRNetwork needs at least the source node")
        if int(indptr[0]) != 0 or int(indptr[-1]) != len(indices):
            raise ConfigurationError("malformed CSR indptr")
        self.n = n
        self.r = n - 1 if r is None else int(r)
        if self.r < n - 1:
            raise ConfigurationError(
                f"label bound r={self.r} below the largest label {n - 1}"
            )
        self.source = 0
        self.indptr = indptr
        self.indices = indices
        self._depths = depths
        self._layers_cache: tuple[tuple[int, ...], ...] | None = None
        if validate and depths is None:
            self._depths = _bfs_depths(n, indptr, indices)
        if self._depths is not None and int(self._depths.min()) < 0:
            unreached = int((self._depths < 0).sum())
            raise ConfigurationError(
                f"{unreached} of {n} nodes unreachable from the source"
            )

    # -- structural queries (RadioNetwork-compatible surface) ------------

    @property
    def nodes(self) -> range:
        """Labels in increasing order (identity labelling)."""
        return range(self.n)

    def __contains__(self, label: int) -> bool:
        return 0 <= int(label) < self.n

    def degree(self, label: int) -> int:
        return int(self.indptr[int(label) + 1] - self.indptr[int(label)])

    @property
    def num_edges(self) -> int:
        return len(self.indices) // 2

    @property
    def max_in_degree(self) -> int:
        if len(self.indices) == 0:
            return 0
        return int((self.indptr[1:] - self.indptr[:-1]).max())

    def csr_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """The ``(indptr, indices)`` pair, adopted as-is by the kernels."""
        return self.indptr, self.indices

    # -- distances --------------------------------------------------------

    def depths_array(self) -> np.ndarray:
        """BFS depth of every node from the source, as an int64 array."""
        if self._depths is None:
            self._depths = _bfs_depths(self.n, self.indptr, self.indices)
            if int(self._depths.min()) < 0:
                raise ConfigurationError("network is not connected")
        return self._depths

    @property
    def radius(self) -> int:
        return int(self.depths_array().max())

    def distances_from_source(self) -> dict[int, int]:
        return {i: int(d) for i, d in enumerate(self.depths_array())}

    def layers(self) -> tuple[tuple[int, ...], ...]:
        """BFS layers as label tuples (built lazily — O(n) Python objects;
        the array drivers use :meth:`depths_array` instead)."""
        if self._layers_cache is None:
            depths = self.depths_array()
            order = np.argsort(depths, kind="stable")
            bounds = np.searchsorted(
                depths[order], np.arange(int(depths.max()) + 2)
            )
            self._layers_cache = tuple(
                tuple(int(v) for v in order[bounds[j]:bounds[j + 1]])
                for j in range(len(bounds) - 1)
            )
        return self._layers_cache

    # -- conversions ------------------------------------------------------

    def to_radio_network(self) -> RadioNetwork:
        """Materialise as a :class:`~repro.sim.network.RadioNetwork`
        (per-node tuples; intended for small instances / reference runs)."""
        indptr, indices = self.indptr, self.indices
        edges = [
            (u, int(v))
            for u in range(self.n)
            for v in indices[indptr[u]:indptr[u + 1]]
            if u < v
        ]
        return RadioNetwork.undirected(range(self.n), edges, r=self.r)

    def describe(self) -> str:
        return (
            f"CSRNetwork: n={self.n}, edges={self.num_edges}, "
            f"radius={self.radius}, r={self.r}, "
            f"max_in_degree={self.max_in_degree}"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CSRNetwork(n={self.n}, edges={self.num_edges}, r={self.r})"


# ----------------------------------------------------------------------
# Edge-list -> CSR assembly
# ----------------------------------------------------------------------


def _csr_from_edges(n: int, src: np.ndarray, dst: np.ndarray):
    """Symmetrise ``(src, dst)`` pairs into sorted CSR arrays."""
    all_src = np.concatenate([src, dst])
    all_dst = np.concatenate([dst, src])
    order = np.lexsort((all_dst, all_src))
    indices = all_dst[order]
    deg = np.bincount(all_src, minlength=n)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(deg, out=indptr[1:])
    return indptr, indices.astype(np.int64, copy=False)


# ----------------------------------------------------------------------
# G(n, p)
# ----------------------------------------------------------------------


def _sample_pair_positions(num_pairs: int, p: float, rng) -> np.ndarray:
    """Skip-sample positions in ``[0, num_pairs)``, each kept w.p. ``p``.

    Equivalent to ``flatnonzero(uniform(num_pairs) < p)`` but O(E): draw
    geometric gaps (chunked) and cumulative-sum them — never materialises
    an O(n^2) array.
    """
    if num_pairs <= 0:
        return np.empty(0, dtype=np.int64)
    if p >= 1.0:
        return np.arange(num_pairs, dtype=np.int64)
    chunks: list[np.ndarray] = []
    chunk = max(1024, min(1 << 20, int(num_pairs * p) + 16))
    position = np.int64(-1)
    while True:
        gaps = rng.geometric(p, size=chunk).astype(np.int64)
        positions = position + np.cumsum(gaps)
        if positions[-1] < num_pairs:
            chunks.append(positions)
            position = positions[-1]
            continue
        chunks.append(positions[positions < num_pairs])
        break
    return np.concatenate(chunks)


def _decode_pair_positions(pos: np.ndarray, n: int):
    """Map linear pair positions to ``(i, j)`` with ``0 <= i < j < n``.

    Pairs are in lexicographic order: position 0 is ``(0, 1)``, the last
    is ``(n-2, n-1)``.  Row ``i`` starts at ``f(i) = i(2n-1-i)/2``; the
    float64 root is exact to an ulp for any ``n(n-1)/2 < 2^53`` and the
    integer correction passes absorb the rounding.
    """
    b = 2 * n - 1

    def row_start(i: np.ndarray) -> np.ndarray:
        return i * (b - i) // 2

    i = np.floor((b - np.sqrt(b * b - 8.0 * pos.astype(np.float64))) / 2.0)
    i = i.astype(np.int64)
    np.clip(i, 0, n - 2, out=i)
    while True:  # converges in <= 2 passes; sqrt error is < 1 row
        too_big = row_start(i) > pos
        too_small = row_start(i + 1) <= pos
        if not (too_big.any() or too_small.any()):
            break
        i = i - too_big.astype(np.int64) + too_small.astype(np.int64)
    j = pos - row_start(i) + i + 1
    return i, j


def gnp_random_csr(
    n: int,
    p: float,
    seed: int = 0,
    connect: str = "augment",
    max_attempts: int = 200,
    r: int | None = None,
) -> CSRNetwork:
    """Sample G(n, p) straight into CSR arrays — O(E) time and memory.

    In the sparse regime the experiments care about (``p = c/n`` with
    ``c`` below ``ln n``) a G(n, p) draw has isolated vertices with
    constant probability, so a rejection loop such as
    :func:`~repro.topology.generators.gnp_connected` would never
    terminate at 10^6 nodes.  The default ``connect="augment"`` instead
    patches each stray component with one seeded random edge into the
    source component — a vanishing-measure edit (o(n) edges in
    expectation) that preserves the degree structure the asymptotic
    experiments measure.

    Args:
        n: Number of nodes (labels ``0 .. n-1``, source 0).
        p: Edge probability.
        seed: Seed for the edge draws and the augmentation choices.
        connect: ``"augment"`` (default, add one edge per stray
            component) or ``"resample"`` (reject-and-retry with
            ``seed + attempt``, the :func:`gnp_connected` discipline —
            only sensible above the connectivity threshold).
        max_attempts: Retry budget for ``connect="resample"``.
        r: Label bound; defaults to ``n - 1``.
    """
    if n < 1:
        raise ConfigurationError(f"need n >= 1, got {n}")
    if not 0.0 < p <= 1.0:
        raise ConfigurationError(f"p must be in (0, 1], got {p}")
    if connect not in ("augment", "resample"):
        raise ConfigurationError(
            f"unknown connect mode {connect!r}; expected 'augment' or 'resample'"
        )
    num_pairs = n * (n - 1) // 2
    attempts = max_attempts if connect == "resample" else 1
    for attempt in range(attempts):
        rng = np.random.default_rng(seed + attempt)
        pos = _sample_pair_positions(num_pairs, p, rng)
        src, dst = _decode_pair_positions(pos, n) if pos.size else (
            np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        )
        indptr, indices = _csr_from_edges(n, src, dst)
        depths = _bfs_depths(n, indptr, indices)
        if int(depths.min()) >= 0:
            return CSRNetwork(indptr, indices, r=r, depths=depths)
        if connect == "augment":
            src, dst = _augment_to_connected(n, indptr, indices, depths, src, dst, rng)
            indptr, indices = _csr_from_edges(n, src, dst)
            depths = _bfs_depths(n, indptr, indices)
            return CSRNetwork(indptr, indices, r=r, depths=depths)
    raise ConfigurationError(
        f"no connected G({n}, {p}) instance found in {max_attempts} attempts"
    )


def _augment_to_connected(n, indptr, indices, depths, src, dst, rng):
    """One seeded random edge from every stray component into the source
    component; returns the augmented ``(src, dst)`` edge arrays."""
    reached = depths >= 0
    source_comp = np.flatnonzero(reached)
    extra_src: list[int] = []
    extra_dst: list[int] = []
    visited = reached.copy()
    for v in range(n):
        if visited[v]:
            continue
        # Collect v's whole component so later members are skipped.
        comp = [v]
        visited[v] = True
        frontier = np.array([v], dtype=np.int64)
        while frontier.size:
            nbrs = _gather_rows(indptr, indices, frontier)
            nbrs = np.unique(nbrs[~visited[nbrs]])
            visited[nbrs] = True
            comp.extend(int(u) for u in nbrs)
            frontier = nbrs
        extra_src.append(int(comp[int(rng.integers(len(comp)))]))
        extra_dst.append(int(source_comp[int(rng.integers(len(source_comp)))]))
    return (
        np.concatenate([src, np.array(extra_src, dtype=np.int64)]),
        np.concatenate([dst, np.array(extra_dst, dtype=np.int64)]),
    )


# ----------------------------------------------------------------------
# Layered families (edge-for-edge equal to repro.topology.layered)
# ----------------------------------------------------------------------


def complete_layered_csr(
    layer_sizes: Sequence[int], relabel_seed: int | None = None, r: int | None = None
) -> CSRNetwork:
    """CSR counterpart of :func:`~repro.topology.layered.complete_layered`.

    Same layer structure, same ``relabel_seed`` permutation (the exact
    ``random.Random(relabel_seed).shuffle`` draw), so the generated
    network equals the networkx-path builder's node for node.
    """
    if not layer_sizes or layer_sizes[0] != 1:
        raise ConfigurationError("layer_sizes[0] must be 1 (the source layer)")
    if any(size < 1 for size in layer_sizes):
        raise ConfigurationError("every layer must be non-empty")
    n = int(sum(layer_sizes))
    labels = list(range(n))
    if relabel_seed is not None:
        shuffle_rng = random.Random(relabel_seed)
        tail = labels[1:]
        shuffle_rng.shuffle(tail)
        labels = [0, *tail]
    labels_arr = np.array(labels, dtype=np.int64)  # layer position -> label
    bounds = np.zeros(len(layer_sizes) + 1, dtype=np.int64)
    np.cumsum(np.asarray(layer_sizes, dtype=np.int64), out=bounds[1:])
    num_layers = len(layer_sizes)

    depths = np.empty(n, dtype=np.int64)
    deg = np.zeros(n, dtype=np.int64)
    neighbour_rows: list[np.ndarray] = []
    for j in range(num_layers):
        members = labels_arr[bounds[j]:bounds[j + 1]]
        depths[members] = j
        parts = []
        if j > 0:
            parts.append(labels_arr[bounds[j - 1]:bounds[j]])
        if j + 1 < num_layers:
            parts.append(labels_arr[bounds[j + 1]:bounds[j + 2]])
        row = np.sort(np.concatenate(parts)) if parts else np.empty(0, np.int64)
        neighbour_rows.append(row)
        deg[members] = row.size
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(deg, out=indptr[1:])
    indices = np.empty(int(indptr[-1]), dtype=np.int64)
    for j in range(num_layers):
        row = neighbour_rows[j]
        if row.size == 0:
            continue
        members = labels_arr[bounds[j]:bounds[j + 1]]
        starts = indptr[members]
        pos = (
            starts[:, None] + np.arange(row.size, dtype=np.int64)[None, :]
        ).ravel()
        indices[pos] = np.tile(row, members.size)
    return CSRNetwork(indptr, indices, r=r, depths=depths)


def uniform_complete_layered_csr(
    n: int, depth: int, relabel_seed: int | None = None
) -> CSRNetwork:
    """CSR counterpart of
    :func:`~repro.topology.layered.uniform_complete_layered` (same sizes)."""
    if depth < 1 or n < depth + 1:
        raise ConfigurationError(f"need n >= depth + 1, got n={n}, depth={depth}")
    base = (n - 1) // depth
    sizes = [1] + [base] * (depth - 1)
    sizes.append(n - sum(sizes))
    return complete_layered_csr(sizes, relabel_seed=relabel_seed)


def km_hard_layered_csr(n: int, depth: int, seed: int = 0) -> CSRNetwork:
    """CSR counterpart of :func:`~repro.topology.layered.km_hard_layered`.

    Reuses the exact layer-size draw sequence (``random.Random(seed)``)
    and relabel shuffle, so for any ``(n, depth, seed)`` the instance is
    the same hard network — only the representation differs.
    """
    if depth < 1 or n < depth + 1:
        raise ConfigurationError(f"need n >= depth + 1, got n={n}, depth={depth}")
    rng = random.Random(seed)
    max_exp = max(0, int(math.log2(max(1, (n - 1) // depth))))
    sizes = [1]
    remaining = n - 1
    for i in range(depth):
        layers_left = depth - i
        if layers_left == 1:
            size = remaining
        else:
            size = min(1 << rng.randint(0, max_exp), remaining - (layers_left - 1))
            size = max(1, size)
        sizes.append(size)
        remaining -= size
    if remaining > 0:
        sizes[-1] += remaining
    return complete_layered_csr(sizes, relabel_seed=seed)
