"""Differential suite: three execution paths, one semantics.

For every oblivious algorithm in the repo, the per-node reference engine
(:func:`run_broadcast`), the vectorised single-run engine
(:func:`run_broadcast_fast`), and the batched multi-trial engine
(:func:`run_broadcast_batch`, one trial extracted per seed) must produce
*identical* executions — the same per-node wake slots, not merely the
same distribution.  Slot-indexed coins (:mod:`repro.sim.coins`) are what
make this possible; this suite is the lock on that contract.
"""

from __future__ import annotations

import pytest

from repro.baselines import (
    BGIBroadcast,
    CentralizedGreedySchedule,
    RoundRobinBroadcast,
    SelectiveFamilyBroadcast,
)
from repro.core import KnownRadiusKP, OptimalRandomizedBroadcasting
from repro.sim import (
    FaultPlan,
    run_broadcast,
    run_broadcast_batch,
    run_broadcast_fast,
)
from repro.topology import km_hard_layered, path, star, uniform_complete_layered

SEEDS = [0, 1, 5]

# Small stage constants keep the randomized schedules short; every other
# parameter is the library default.
ALGORITHMS = {
    "kp-known-d": lambda net: KnownRadiusKP(
        net.r, max(1, net.radius), stage_constant=4
    ),
    "kp-optimal": lambda net: OptimalRandomizedBroadcasting(net.r, stage_constant=4),
    "bgi": lambda net: BGIBroadcast(net.r),
    "round-robin": lambda net: RoundRobinBroadcast(net.r),
    "selective-family": lambda net: SelectiveFamilyBroadcast(net.r, "random"),
    "centralized": lambda net: CentralizedGreedySchedule(net),
}

TOPOLOGIES = {
    "path": lambda: path(9),
    "star": lambda: star(8),
    "layered": lambda: uniform_complete_layered(30, 3),
    "km-hard": lambda: km_hard_layered(48, 4, seed=5),
}


@pytest.fixture(scope="module")
def networks():
    return {name: build() for name, build in TOPOLOGIES.items()}


@pytest.mark.parametrize("topo", sorted(TOPOLOGIES))
@pytest.mark.parametrize("algo_name", sorted(ALGORITHMS))
def test_three_engines_identical(networks, topo, algo_name):
    net = networks[topo]
    make = ALGORITHMS[algo_name]

    batched = run_broadcast_batch(net, make(net), seeds=SEEDS)
    for seed, from_batch in zip(SEEDS, batched):
        reference = run_broadcast(net, make(net), seed=seed)
        fast = run_broadcast_fast(net, make(net), seed=seed)

        assert reference.completed and fast.completed and from_batch.completed, (
            topo, algo_name, seed,
        )
        assert fast.wake_times == reference.wake_times, (topo, algo_name, seed)
        assert from_batch.wake_times == reference.wake_times, (topo, algo_name, seed)
        assert fast.time == reference.time == from_batch.time
        assert fast.layer_times == reference.layer_times == from_batch.layer_times


def _plan_for(net):
    """A nontrivial fault plan valid on any of the suite's topologies.

    Touches all four fault families without disconnecting the source:
    the highest non-source label crashes mid-run, an early label is
    jammed for the first slots and another gets a wake delay, and every
    delivery runs a 30% loss gauntlet.
    """
    labels = sorted(set(net.nodes) - {net.source})
    return FaultPlan(
        crashes=((labels[-1], 9),),
        jams=tuple((slot, labels[0]) for slot in range(6)),
        loss_probability=0.3,
        wake_delays=((labels[1], 7),),
        seed=23,
    )


@pytest.mark.parametrize("topo", sorted(TOPOLOGIES))
@pytest.mark.parametrize("algo_name", sorted(ALGORITHMS))
def test_three_engines_identical_under_faults(networks, topo, algo_name):
    """Every engine cell again, now under a nontrivial fault plan.

    Faulty runs may legitimately settle incomplete (the crash can strand
    nodes), so the assertion is execution identity — per-node wake slots,
    executed-slot counts, and fault counters — not completion.
    """
    net = networks[topo]
    make = ALGORITHMS[algo_name]
    plan = _plan_for(net)
    budget = 120

    batched = run_broadcast_batch(
        net, make(net), seeds=SEEDS, max_steps=budget, faults=plan
    )
    for seed, from_batch in zip(SEEDS, batched):
        reference = run_broadcast(
            net, make(net), seed=seed, max_steps=budget, faults=plan
        )
        fast = run_broadcast_fast(
            net, make(net), seed=seed, max_steps=budget, faults=plan
        )

        key = (topo, algo_name, seed)
        assert fast.wake_times == reference.wake_times, key
        assert from_batch.wake_times == reference.wake_times, key
        assert fast.completed == reference.completed == from_batch.completed, key
        assert fast.informed == reference.informed == from_batch.informed, key
        assert fast.time == reference.time == from_batch.time, key
        assert (
            fast.fault_counters
            == reference.fault_counters
            == from_batch.fault_counters
        ), key
        assert reference.fault_counters is not None, key


@pytest.mark.parametrize("algo_name", ["kp-known-d", "bgi"])
def test_engines_agree_on_incomplete_runs(algo_name):
    """Under a tight step budget all three paths stall identically."""
    net = km_hard_layered(48, 4, seed=5)
    make = ALGORITHMS[algo_name]
    budget = 3

    reference = run_broadcast(net, make(net), seed=1, max_steps=budget)
    fast = run_broadcast_fast(net, make(net), seed=1, max_steps=budget)
    (from_batch,) = run_broadcast_batch(net, make(net), seeds=[1], max_steps=budget)

    assert not reference.completed
    assert fast.wake_times == reference.wake_times == from_batch.wake_times
    assert fast.informed == reference.informed == from_batch.informed
    assert fast.time == reference.time == from_batch.time == budget
