"""E8 — Section 1.2 corollary: complete layered networks are hardest
for randomized but not for deterministic broadcasting; radius-2 search.

Logic in :mod:`repro.experiments.e8_layered_hardness`.
"""

from __future__ import annotations

from repro.experiments import get_experiment


def test_e8(benchmark, table_reporter):
    report = get_experiment("e8")()
    for table in report.tables:
        table_reporter.record("e8", table)
    table_reporter.record(
        "e8",
        "\n".join(
            f"[{'PASS' if claim.holds else 'FAIL'}] {claim.description}"
            + (f"  ({claim.details})" if claim.details else "")
            for claim in report.claims
        ),
    )
    assert report.ok, report.render()

    from repro.core import KnownRadiusKP
    from repro.sim import run_broadcast_fast
    from repro.topology import km_hard_layered

    net = km_hard_layered(512, 128, seed=31)
    benchmark.pedantic(
        lambda: run_broadcast_fast(net, KnownRadiusKP(net.r, 128), seed=0),
        rounds=3, iterations=1,
    )
