"""The Jamming function of the lower-bound construction (Section 3.1).

During stage ``i + 1`` the adversary maintains a partition of the label
reservoir ``R_(i+1)`` into ``k/2`` blocks ``B_l(p)``.  Each window step it
is shown the set ``Y_l`` of reservoir nodes that would transmit, and it
answers what node ``i`` "hears" — ``⊥`` (collision), ``0`` (silence from
the layer under construction), or a single node ``v`` — while shrinking
the blocks so that *any* future layer choice ``X`` with ``|X & B(p)| = 2``
per block remains consistent with every answer already given.

Case analysis (verbatim from the paper's function ``(i+1)-Jamming_l``):

A.  Some active block ``p0`` has ``|B(p0) & Y| > (2/k) |B(p0)|``: answer
    ``⊥`` and keep only ``B(p0) & Y`` (at least 2 elements survive; if the
    block drops below ``k`` it is truncated to exactly two elements and
    becomes inactive).
B.  Otherwise remove ``Y`` from every active block (truncating to two
    elements when a block falls below ``k``) and answer by the size of
    ``Y`` restricted to the *inactive* blocks: ``0`` / the unique node /
    ``⊥``.

A block is *active* while it holds at least ``k`` elements (the paper's
set ``A_l``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..sim.errors import ConfigurationError

__all__ = ["JamAnswer", "COLLISION", "SILENCE", "JammingState"]


@dataclass(frozen=True, slots=True)
class JamAnswer:
    """One answer of the Jamming function.

    ``kind`` is ``"collision"`` (⊥), ``"silence"`` (0) or ``"single"``
    (a unique node, carried in ``node``).
    """

    kind: str
    node: int | None = None


COLLISION = JamAnswer("collision")
SILENCE = JamAnswer("silence")


class JammingState:
    """Blocks and answers of ``(i+1)-Jamming`` for one stage.

    Args:
        reservoir: The labels of ``R_(i+1)``.
        k: The stage parameter ``k = ceil(n / 4D)`` (even, >= 4).

    Attributes:
        blocks: Current contents of each block, index ``p`` in
            ``0..k/2 - 1``.  Blocks only ever shrink.
        history: ``(Y_l, answer)`` per processed step, in order — the raw
            material for the layer choice and the model check.
    """

    def __init__(self, reservoir: Iterable[int], k: int):
        labels = sorted(set(reservoir))
        if k < 4 or k % 2:
            raise ConfigurationError(f"k must be even and >= 4, got {k}")
        num_blocks = k // 2
        if len(labels) < 2 * num_blocks:
            raise ConfigurationError(
                f"reservoir of {len(labels)} labels cannot fill {num_blocks} "
                f"blocks with two elements each"
            )
        self.k = k
        # Near-equal partition (the paper assumes k | 2m for simplicity).
        self.blocks: list[set[int]] = [set() for _ in range(num_blocks)]
        for index, label in enumerate(labels):
            self.blocks[index % num_blocks].add(label)
        self.initial_block_size = min(len(b) for b in self.blocks)
        self.history: list[tuple[frozenset[int], JamAnswer]] = []

    # ------------------------------------------------------------------

    def active_blocks(self) -> list[int]:
        """Indices of blocks that still hold at least ``k`` elements."""
        return [p for p, block in enumerate(self.blocks) if len(block) >= self.k]

    def step(self, transmitters: Iterable[int]) -> JamAnswer:
        """Process one window step with reservoir transmitter set ``Y_l``."""
        y = frozenset(transmitters)
        active_before = set(self.active_blocks())

        # Case A: an active block is mostly covered by Y.
        for p0 in sorted(active_before):
            block = self.blocks[p0]
            overlap = block & y
            if len(overlap) * self.k > 2 * len(block):
                survivors = set(overlap)
                if len(survivors) < self.k:
                    survivors = set(sorted(survivors)[:2])
                self.blocks[p0] = survivors
                answer = COLLISION
                self.history.append((y, answer))
                return answer

        # Case B: trim Y out of every active block.
        for p in active_before:
            remaining = self.blocks[p] - y
            if len(remaining) < self.k:
                remaining = set(sorted(remaining)[:2])
            self.blocks[p] = remaining
        inactive_union: set[int] = set()
        for p, block in enumerate(self.blocks):
            if len(block) < self.k:
                inactive_union |= block
        visible = y & inactive_union
        if not visible:
            answer = SILENCE
        elif len(visible) == 1:
            answer = JamAnswer("single", next(iter(visible)))
        else:
            answer = COLLISION
        self.history.append((y, answer))
        return answer

    # ------------------------------------------------------------------

    def largest_block(self) -> int:
        """Index of the largest current block (the natural ``p*``)."""
        return max(range(len(self.blocks)), key=lambda p: len(self.blocks[p]))

    def models(self, chosen: set[int]) -> bool:
        """Check the paper's ``X |= Jamming`` property against the history.

        ``chosen`` models the answers iff for every processed step:
        silence -> ``X & Y`` empty; single ``v`` -> ``X & Y == {v}``;
        collision -> ``|X & Y| >= 2``.
        """
        for y, answer in self.history:
            overlap = chosen & y
            if answer.kind == "silence" and overlap:
                return False
            if answer.kind == "single" and overlap != {answer.node}:
                return False
            if answer.kind == "collision" and len(overlap) < 2:
                return False
        return True

    def violation_report(self, chosen: set[int]) -> list[str]:
        """Human-readable description of every modelling failure."""
        problems = []
        for l, (y, answer) in enumerate(self.history, start=1):
            overlap = chosen & y
            if answer.kind == "silence" and overlap:
                problems.append(f"step {l}: expected silence, X&Y={sorted(overlap)}")
            elif answer.kind == "single" and overlap != {answer.node}:
                problems.append(
                    f"step {l}: expected single {answer.node}, X&Y={sorted(overlap)}"
                )
            elif answer.kind == "collision" and len(overlap) < 2:
                problems.append(f"step {l}: expected collision, X&Y={sorted(overlap)}")
        return problems
