"""Simulated collision detection: Echo and Binary-Selection (Section 4.1).

The radio model has no collision detection — a node cannot distinguish two
simultaneous transmitters from silence.  Kowalski & Pelc simulate it with
the two-slot procedure ``Echo(w, A)`` run by a node ``v`` with a
distinguished, already-known neighbour ``w`` not in ``A``:

* slot 1: every node in ``A`` transmits;
* slot 2: every node in ``A`` and also ``w`` transmit.

Three observable outcomes at ``v``:

=========  =========  ======================================
slot 1     slot 2     conclusion
=========  =========  ======================================
message    silence    ``|A| == 1`` (and v learns the label)
silence    message    ``A`` is empty (w was heard alone)
silence    silence    ``|A| >= 2`` (both slots collided)
=========  =========  ======================================

On top of Echo, ``Binary-Selection`` finds one element of an unknown set
``S`` of labels in ``O(log m)`` Echo segments: doubling probes
``S & [1..2^k]`` until non-empty, then binary search inside the last
doubling interval.  This module provides the *decision logic* as a pure
state machine (:class:`SelectionDriver`) shared by Select-and-Send
(Section 4.2) and Complete-Layered (Section 4.3), plus the message payload
types those protocols put on the air.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..sim.errors import ProtocolViolationError
from ..sim.protocol import QUIET_FOREVER

__all__ = [
    "EchoOutcome",
    "Probe",
    "Selected",
    "Empty",
    "SelectionDriver",
    "QuietEchoSchedule",
    "classify_echo",
    # Payloads shared by the deterministic token algorithms.
    "InitOrder",
    "HereIAm",
    "InitStop",
    "TokenAnnounce",
    "EchoProbe",
    "EchoReply",
    "TokenPass",
    "StopAll",
    "startup_boundary",
]


class EchoOutcome(enum.Enum):
    """What ``v`` concludes from one Echo segment."""

    EMPTY = "empty"
    SINGLE = "single"
    MANY = "many"


def classify_echo(first: int | None, second: int | None) -> tuple[EchoOutcome, int | None]:
    """Decode the two observation slots of ``Echo(w, A)``.

    Args:
        first: Label received in slot 1 (None for silence/collision).
        second: Label received in slot 2.

    Returns:
        ``(outcome, label)`` — the label of the unique element when the
        outcome is SINGLE, else ``None``.
    """
    if first is not None:
        return EchoOutcome.SINGLE, first
    if second is not None:
        return EchoOutcome.EMPTY, None
    return EchoOutcome.MANY, None


# ----------------------------------------------------------------------
# Selection state machine
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Probe:
    """Next action: run Echo on ``S & [lo..hi]``."""

    lo: int
    hi: int


@dataclass(frozen=True, slots=True)
class Selected:
    """Selection finished: ``label`` is the unique element found."""

    label: int


@dataclass(frozen=True, slots=True)
class Empty:
    """The whole ground set turned out to be empty (only possible when the
    initial full-set probe was skipped)."""


class SelectionDriver:
    """Pure decision logic of ``Binary-Selection`` with doubling.

    The caller runs the radio side (Echo segments) and feeds outcomes in;
    the driver answers with the next probe range or the selected label.
    Keeping this logic radio-free lets tests exercise it exhaustively
    against arbitrary hidden sets.

    The driver assumes the hidden set ``S`` is a fixed non-empty subset of
    ``{1, ..., r}`` (label 0 — the source — is always visited, hence never
    selectable) and that outcomes are truthful; an impossible outcome
    sequence raises :class:`ProtocolViolationError`.

    Args:
        r: Upper bound on labels.
        known_many: Set True when a prior full-set Echo already proved
            ``|S| >= 2`` (both token algorithms know this before selecting).
    """

    def __init__(self, r: int, known_many: bool = True):
        if r < 1:
            raise ProtocolViolationError(f"label bound must be positive, got {r}")
        self.r = r
        self._phase = "doubling"
        self._k = 1
        self._lo = 1  # binary phase: interval [lo..hi] holding >= 2 elements
        self._hi = r
        self._probe = Probe(1, min(2, r))
        self._done: Selected | None = None
        self._known_many = known_many

    @property
    def current_probe(self) -> Probe:
        """The range the caller should Echo next."""
        if self._done is not None:
            raise ProtocolViolationError("selection already finished")
        return self._probe

    @property
    def finished(self) -> Selected | None:
        return self._done

    def feed(self, outcome: EchoOutcome, label: int | None = None) -> Probe | Selected:
        """Consume one Echo outcome for :attr:`current_probe`.

        Returns:
            The next :class:`Probe` to run, or :class:`Selected` when done.
        """
        if self._done is not None:
            raise ProtocolViolationError("selection already finished")
        if outcome is EchoOutcome.SINGLE:
            if label is None:
                raise ProtocolViolationError("SINGLE outcome must carry the label")
            self._done = Selected(label)
            return self._done

        if self._phase == "doubling":
            if outcome is EchoOutcome.EMPTY:
                if self._probe.hi >= self.r:
                    raise ProtocolViolationError(
                        "S & [1..r] empty although the set was known non-empty"
                    )
                self._k += 1
                self._probe = Probe(1, min(1 << self._k, self.r))
                return self._probe
            # MANY inside [1..2^k].  The previous doubling probe (if any)
            # was empty, so all elements lie in (2^(k-1), 2^k]; binary
            # search that interval, which holds at least two elements.
            self._phase = "binary"
            self._lo = 1 if self._k == 1 else (1 << (self._k - 1)) + 1
            self._hi = self._probe.hi
            return self._next_binary_probe()

        # Binary phase: the probe was the left half [lo..mid] of [lo..hi].
        if outcome is EchoOutcome.MANY:
            self._hi = self._probe.hi
        else:  # EMPTY: everything sits in the right half
            self._lo = self._probe.hi + 1
            if self._lo > self._hi:
                raise ProtocolViolationError(
                    "binary selection interval emptied; Echo outcomes inconsistent"
                )
        return self._next_binary_probe()

    def _next_binary_probe(self) -> Probe:
        """Probe the left half of ``[lo..hi]`` (paper: ``{x..(y+x-1)/2}``).

        The interval always holds >= 2 set elements, so ``lo < hi`` and the
        left half is a strict sub-interval: halving terminates with a
        SINGLE outcome after at most ``log2`` width steps.
        """
        if self._lo >= self._hi:
            raise ProtocolViolationError(
                "binary selection interval degenerate; Echo outcomes inconsistent"
            )
        mid = (self._lo + self._hi - 1) // 2
        self._probe = Probe(self._lo, mid)
        return self._probe

    def segments_used_bound(self) -> int:
        """Upper bound on Echo segments one full selection can take."""
        log_r = max(1, (self.r).bit_length())
        return 2 * (log_r + 2)


def simulate_selection(driver: SelectionDriver, hidden: set[int]) -> Selected:
    """Run a driver against a known hidden set (test/diagnostic helper).

    Emulates perfect Echo outcomes for each probe and returns the selected
    label.  Mirrors exactly what the radio protocols do, minus the radio.
    """
    if not hidden:
        raise ProtocolViolationError("hidden set must be non-empty")
    probe = driver.current_probe
    while True:
        members = [x for x in hidden if probe.lo <= x <= probe.hi]
        if len(members) == 1:
            outcome, label = EchoOutcome.SINGLE, members[0]
        elif not members:
            outcome, label = EchoOutcome.EMPTY, None
        else:
            outcome, label = EchoOutcome.MANY, None
        step = driver.feed(outcome, label)
        if isinstance(step, Selected):
            return step
        probe = step


# ----------------------------------------------------------------------
# Idle hint shared by the Echo-timeline protocols
# ----------------------------------------------------------------------


class QuietEchoSchedule:
    """`quiet_until` implementation for the Echo-timeline token protocols.

    Both deterministic token algorithms (Select-and-Send and
    Complete-Layered) drive the channel through exactly two mechanisms:

    * a slot-keyed ``scheduled`` dict of pending transmissions (orders,
      Echo replies, token passes), popped by ``next_action``; and
    * a holder-side observation window ``_awaiting = (kind, base_slot)``
      open from the order at ``base_slot`` until the outcome is decided
      — the only span where *silence is information* (an Echo outcome).

    Outside those, the protocols are purely reactive: ``observe`` ignores
    silence and collision markers, so the earliest slot needing attention
    is the earliest scheduled transmission — or the first observation
    slot ``base_slot + 1`` while a window is open (the window closes when
    ``_awaiting`` is cleared, after 2 Echo slots, or 1 under native
    collision detection).  A stopped node is terminally quiet.  Message
    deliveries re-activate a node regardless of any promise — the
    event-driven engines (serial :class:`~repro.sim.event.EventDrivenEngine`
    and batched :class:`~repro.sim.batched_event.BatchedEventEngine` alike)
    re-query this hint after every delivery, which is what makes returning
    :data:`~repro.sim.protocol.QUIET_FOREVER` safe (contract:
    ``docs/MODEL.md``).

    The hint is hot in batched runs — every execution class re-polls its
    busy nodes each shared-clock iteration — so the common case (a
    transmission scheduled for the current slot) short-circuits before
    the scheduled-dict scan.
    """

    def quiet_until(self, step: int) -> int:
        if self.stopped:
            return QUIET_FOREVER  # terminal: never transmits again
        if step in self.scheduled:
            return step  # transmitting now: no earlier bound can matter
        awaiting = self._awaiting
        bound = QUIET_FOREVER
        if awaiting is not None:
            first = awaiting[1] + 1  # first Echo observation slot
            if step >= first:
                return step  # inside the window: silence is information
            bound = first
        for slot in self.scheduled:
            if step <= slot < bound:
                bound = slot
        return bound


# ----------------------------------------------------------------------
# Payloads for the token-based deterministic algorithms
# ----------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class InitOrder:
    """Source's startup order: neighbour with label ``i`` replies in slot
    ``base_slot + 2 i``.  ``base_slot`` is 0 for a broadcast starting at
    slot 0 and non-zero when the startup is replayed later (gossip's
    dissemination pass)."""

    base_slot: int = 0


@dataclass(frozen=True, slots=True)
class HereIAm:
    """A source neighbour announcing itself in its reserved slot."""

    label: int


@dataclass(frozen=True, slots=True)
class InitStop:
    """Source ends the reply phase and hands the token to ``token_to``."""

    token_to: int


@dataclass(frozen=True, slots=True)
class TokenAnnounce:
    """Token holder (re)announces itself and opens a full-set Echo.

    Slots ``base_slot + 1`` / ``base_slot + 2`` are the Echo pair over the
    holder's unvisited neighbours with the holder's parent as the
    distinguished node.
    """

    holder: int
    parent: int
    base_slot: int


@dataclass(frozen=True, slots=True)
class EchoProbe:
    """One Binary-Selection segment: Echo over labels in ``[lo..hi]``."""

    holder: int
    parent: int
    lo: int
    hi: int
    base_slot: int


@dataclass(frozen=True, slots=True)
class EchoReply:
    """An Echo responder transmitting its label."""

    label: int


@dataclass(frozen=True, slots=True)
class TokenPass:
    """Hand the token from ``from_label`` to ``to``.

    ``returning`` marks a pass back to the DFS parent (the receiver keeps
    its original parent in that case).
    """

    to: int
    from_label: int
    returning: bool = False


@dataclass(frozen=True, slots=True)
class StopAll:
    """DFS complete: the source observed an empty unvisited set."""


def startup_boundary(trace) -> int | None:
    """First slot of the post-startup phase of a token algorithm's run.

    Both deterministic token algorithms share Part 1: the initiator
    transmits ``InitOrder`` (its first transmission), collects ``HereIAm``
    replies, and ends the round-robin with ``InitStop`` — its *second*
    transmission.  Everything after that slot is traversal (DFS token or
    leader chain).  This reads only the recorded trace, so stage
    attribution is a pure function of the trace and therefore identical
    across engines whenever the traces are.

    Args:
        trace: A :class:`~repro.sim.trace.Trace` at ``TraceLevel.FULL``.

    Returns:
        The first traversal slot, or ``None`` when the trace is not FULL,
        has no initially-informed root, or never left startup.
    """
    from ..sim.trace import TraceLevel

    if trace is None or trace.level is not TraceLevel.FULL:
        return None
    roots = trace.initially_informed()
    if len(roots) != 1:
        return None
    source = roots[0]
    seen = 0
    for record in trace.steps:
        if source in record.transmitters:
            seen += 1
            if seen == 2:
                return record.step + 1
    return None
