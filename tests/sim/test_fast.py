"""Vectorised engine: semantics and cross-engine equivalence."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.round_robin import RoundRobinBroadcast
from repro.baselines.selective_schedule import SelectiveFamilyBroadcast
from repro.sim.errors import ConfigurationError
from repro.sim.fast import ASLEEP, FastEngine, run_broadcast_fast
from repro.sim.network import RadioNetwork
from repro.sim.run import run_broadcast
from repro.topology import gnp_connected, grid, path, star, uniform_complete_layered


class _MaskSchedule:
    """Deterministic vector schedule from per-step label sets."""

    name = "mask-schedule"
    deterministic = True

    def __init__(self, slots: dict[int, set[int]]):
        self.slots = slots

    def transmit_mask(self, step, labels, wake_steps, r, rng):
        wanted = self.slots.get(step, set())
        return np.isin(labels, list(wanted)) if wanted else np.zeros(len(labels), bool)


def test_rejects_non_vectorized_algorithm():
    net = path(3)

    class NotVectorized:
        name = "nope"
        deterministic = True

    with pytest.raises(ConfigurationError):
        FastEngine(net, NotVectorized())


def test_exactly_one_rule_and_wake_progression():
    net = star(4)
    engine = FastEngine(net, _MaskSchedule({0: {0}}))
    engine.run_step()
    assert engine.all_informed
    assert engine.completion_time == 1


def test_collision_blocks_wake():
    # Nodes 1, 2 adjacent to 3; both transmit at step 1 -> 3 not woken.
    net = RadioNetwork.undirected(range(4), [(0, 1), (0, 2), (1, 3), (2, 3)])
    engine = FastEngine(net, _MaskSchedule({0: {0}, 1: {1, 2}}))
    engine.run_step()
    engine.run_step()
    assert not engine.all_informed
    assert engine.informed_count == 3


def test_no_spontaneous_transmission_in_fast_engine():
    # Schedule says node 2 transmits at step 0, but it is asleep.
    net = path(3)
    engine = FastEngine(net, _MaskSchedule({0: {2}}))
    mask = engine.run_step()
    assert not mask.any()


def test_wake_this_step_cannot_transmit_same_step():
    # Node 1 woken at step 0 by the source; schedule wants 1 at step 0 too.
    net = path(3)
    engine = FastEngine(net, _MaskSchedule({0: {0, 1}, 1: {1}}))
    mask0 = engine.run_step()
    assert list(engine.labels[mask0]) == [0]
    mask1 = engine.run_step()
    assert list(engine.labels[mask1]) == [1]
    assert engine.completion_time == 2


def test_asleep_sentinel_and_wake_times():
    net = path(3)
    engine = FastEngine(net, _MaskSchedule({0: {0}}))
    assert engine.wake_steps[2] == ASLEEP
    engine.run_step()
    assert engine.wake_times() == {0: -1, 1: 0}


@pytest.mark.parametrize(
    "make_net",
    [
        lambda: path(17),
        lambda: star(9),
        lambda: grid(4, 5),
        lambda: gnp_connected(25, 0.25, seed=5),
        lambda: uniform_complete_layered(30, 3),
    ],
)
def test_cross_engine_equivalence_round_robin(make_net):
    """Round-robin is deterministic: both engines must agree exactly."""
    net = make_net()
    algo = RoundRobinBroadcast(net.r)
    ref = run_broadcast(net, algo)
    fast = run_broadcast_fast(net, algo)
    assert ref.completed and fast.completed
    assert ref.time == fast.time
    assert ref.wake_times == fast.wake_times


def test_cross_engine_equivalence_selective_family():
    net = gnp_connected(20, 0.3, seed=2)
    algo = SelectiveFamilyBroadcast(net.r, "random", seed=4)
    ref = run_broadcast(net, algo)
    fast = run_broadcast_fast(net, algo)
    assert ref.time == fast.time
    assert ref.wake_times == fast.wake_times


def test_directed_network_fast_engine():
    net = RadioNetwork.directed([0, 1, 2], [(0, 1), (1, 2)])
    engine = FastEngine(net, _MaskSchedule({0: {0}, 1: {1}}))
    engine.run(10)
    assert engine.all_informed
    assert engine.completion_time == 2


def test_run_broadcast_fast_incomplete_result():
    net = path(5)
    result = run_broadcast_fast(net, _MaskSchedule({}), max_steps=3)
    assert not result.completed
    assert result.informed == 1
    assert result.time == 3


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=2, max_value=14), st.integers(min_value=0, max_value=10_000))
def test_cross_engine_property_random_trees(n, seed):
    """Property: engines agree on arbitrary random trees for round-robin."""
    import random as _random

    rng = _random.Random(seed)
    edges = [(i, rng.randrange(i)) for i in range(1, n)]
    net = RadioNetwork.undirected(range(n), edges)
    algo = RoundRobinBroadcast(net.r)
    assert run_broadcast(net, algo).time == run_broadcast_fast(net, algo).time
