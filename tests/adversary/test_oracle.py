"""Action-function extraction: the oracle mirrors the real engine."""

from __future__ import annotations

import pytest

from repro.adversary.oracle import AbstractHistoryOracle, LiveNode
from repro.baselines.round_robin import RoundRobinBroadcast
from repro.core.select_and_send import SelectAndSend
from repro.sim.engine import SynchronousEngine
from repro.sim.errors import ConfigurationError, ProtocolViolationError
from repro.sim.messages import Message
from repro.topology import gnp_connected, path


def test_randomized_algorithm_rejected():
    from repro.baselines.bgi import BGIBroadcast

    with pytest.raises(ConfigurationError, match="deterministic"):
        AbstractHistoryOracle(BGIBroadcast(15), 15)


def test_sleeping_nodes_have_zero_action():
    oracle = AbstractHistoryOracle(RoundRobinBroadcast(9), 9)
    oracle.wake(0, -1, None)
    actions = oracle.query_actions(0)
    # Only the source can act; round-robin label 0 transmits at step 0.
    assert set(actions) == {0}


def test_double_wake_rejected():
    oracle = AbstractHistoryOracle(RoundRobinBroadcast(9), 9)
    oracle.wake(0, -1, None)
    with pytest.raises(ProtocolViolationError):
        oracle.wake(0, 0, None)


def test_deliver_before_query_rejected():
    node = LiveNode(RoundRobinBroadcast(9), 3, 9)
    node.wake(0, Message(0, "x"))
    with pytest.raises(ProtocolViolationError):
        node.deliver(1, None)


def test_query_is_cached_per_step():
    node = LiveNode(RoundRobinBroadcast(9), 0, 9)
    node.wake(-1, None)
    assert node.query(0) == node.query(0)


def _mirror_engine_with_oracle(net, make_algo, steps):
    """Drive oracle and engine with identical channel outcomes; compare."""
    engine = SynchronousEngine(net, make_algo())
    oracle = AbstractHistoryOracle(make_algo(), net.r)
    oracle.wake(0, -1, None)
    for step in range(steps):
        oracle_actions = oracle.query_actions(step)
        engine_tx = engine.run_step()
        assert frozenset(oracle_actions) == frozenset(engine_tx), step
        # Reproduce the engine's channel resolution for the oracle.
        hits: dict[int, int] = {}
        incoming: dict[int, Message] = {}
        for sender, payload in oracle_actions.items():
            for receiver in net.out_neighbors[sender]:
                hits[receiver] = hits.get(receiver, 0) + 1
                incoming[receiver] = Message(sender, payload)
        deliveries = {
            receiver: incoming[receiver]
            for receiver, count in hits.items()
            if count == 1 and receiver not in oracle_actions
        }
        oracle.finish_step(step, deliveries)


def test_oracle_mirrors_engine_round_robin():
    net = gnp_connected(18, 0.3, seed=4)
    _mirror_engine_with_oracle(net, lambda: RoundRobinBroadcast(net.r), steps=80)


def test_oracle_mirrors_engine_select_and_send():
    net = gnp_connected(14, 0.35, seed=1)
    _mirror_engine_with_oracle(net, SelectAndSend, steps=300)


def test_reset_nodes_restores_empty_history():
    net = path(4)
    oracle = AbstractHistoryOracle(RoundRobinBroadcast(net.r), net.r)
    oracle.wake(0, -1, None)
    oracle.query_actions(0)
    oracle.finish_step(0, {1: Message(0, "payload")})
    assert oracle.awake(1)
    oracle.reset_nodes([1])
    assert not oracle.awake(1)
    assert 1 not in oracle.deliveries
    # Node 1 can be woken again from scratch.
    oracle.wake(1, 5, Message(0, "again"))
    assert oracle.awake(1)


def test_first_transmission_recorded():
    net = path(4)
    oracle = AbstractHistoryOracle(RoundRobinBroadcast(net.r), net.r)
    oracle.wake(0, -1, None)
    oracle.query_actions(0)
    assert oracle.first_transmission[0] == 0
