"""E7 — Lemma 1: universal sequences exist with period < 3D and the
U1/U2 recurrence conditions hold in the regime.

Logic in :mod:`repro.experiments.e7_universal_sequence`.
"""

from __future__ import annotations

from repro.experiments import get_experiment


def test_e7(benchmark, table_reporter):
    report = get_experiment("e7")()
    for table in report.tables:
        table_reporter.record("e7", table)
    table_reporter.record(
        "e7",
        "\n".join(
            f"[{'PASS' if claim.holds else 'FAIL'}] {claim.description}"
            + (f"  ({claim.details})" if claim.details else "")
            for claim in report.claims
        ),
    )
    assert report.ok, report.render()

    from repro.combinatorics import build_universal_sequence

    benchmark.pedantic(
        lambda: build_universal_sequence(65536, 16384),
        rounds=3, iterations=1,
    )
