"""Event-driven engine for adaptive protocols (idle-hint slot compression).

The reference :class:`~repro.sim.engine.SynchronousEngine` polls every
awake protocol in every slot and resolves the channel edge by edge, which
makes the paper's adaptive token algorithms (Select-and-Send,
Complete-Layered) cost ``O(n)`` Python calls per slot even though almost
every slot has at most a handful of *active* nodes.  This engine keeps the
reference semantics bit for bit — the differential suite asserts
slot-identical traces, fault counters, and metrics — while exploiting two
structural facts:

1. **Idle hints.**  Protocols may implement
   :meth:`~repro.sim.protocol.Protocol.quiet_until`, promising to neither
   transmit nor react to silence before some future slot.  The engine
   keeps a min-heap of ``(next poll slot, label)`` and touches only the
   nodes whose promise has expired, plus anyone who just received a
   message (delivery voids the promise).  Unhinted protocols default to
   ``quiet_until(step) == step`` and are polled every slot, exactly as on
   the reference engine.

2. **Slot compression.**  When *no* registered node needs polling before
   slot ``s``, the slots in between are provably silent: nobody
   transmits, so nothing is delivered, no coin is flipped, and no state
   changes.  The engine fast-forwards the clock in one jump — capped at
   the next scheduled fault event (crash, jam, wake-delay expiry; see
   :meth:`~repro.sim.faults.FaultPlan.event_slots`) so fault bookkeeping
   lands on exactly the slots it would have — while synthesizing the
   skipped silent slots into the trace, metrics, and ``step_hook`` stream
   so instrumented output stays identical.

Channel resolution uses the precompiled CSR + ``np.bincount`` kernel of
:mod:`repro.sim.channel`, shared with the vectorised oblivious engines in
:mod:`repro.sim.fast`.

Select via ``run_broadcast(..., engine="event")``; the contract protocols
must honour is specified in ``docs/MODEL.md``, and
``docs/PERFORMANCE.md`` discusses when compression actually fires.
"""

from __future__ import annotations

from bisect import bisect_left
from heapq import heappop, heappush
from time import perf_counter
from typing import Callable

import numpy as np

from ..obs.metrics import MetricsRegistry
from ..obs.timings import Timings
from .channel import ChannelKernel
from .engine import SynchronousEngine
from .errors import ConfigurationError
from .faults import FaultPlan, scalar_loss_coin
from .messages import COLLISION_MARKER, Message
from .network import RadioNetwork
from .protocol import BroadcastAlgorithm, Protocol, QUIET_FOREVER
from .trace import TraceLevel

__all__ = ["EventDrivenEngine"]

#: "No upcoming slot" sentinel for heap peeks and fault-event lookups.
_NO_EVENT: int = 1 << 62


class EventDrivenEngine(SynchronousEngine):
    """Drop-in :class:`SynchronousEngine` replacement with event stepping.

    Accepts exactly the reference engine's constructor arguments and
    produces bit-identical executions (traces, wake times, fault
    counters, metrics) for *sound* idle hints; the hint contract and its
    safety condition are documented on
    :meth:`repro.sim.protocol.Protocol.quiet_until`.  Engine-side, per
    slot only the nodes whose quiet window expired are polled, and runs
    of provably silent slots are executed as one jump.

    ``kernel`` lets a caller share one precompiled
    :class:`~repro.sim.channel.ChannelKernel` across several engines on
    the same topology — the batched engine
    (:class:`~repro.sim.batched_event.BatchedEventEngine`) compiles the
    CSR arrays once per batch, not once per trial.  Sharing is safe for
    engines stepped *sequentially* (the kernel keeps per-resolve scratch
    buffers), which is how the batch steps its trials.
    """

    def __init__(
        self,
        network: RadioNetwork,
        algorithm: BroadcastAlgorithm,
        seed: int = 0,
        trace_level: TraceLevel = TraceLevel.NONE,
        step_hook: Callable[[int, tuple[int, ...]], None] | None = None,
        collision_detection: bool = False,
        faults: FaultPlan | None = None,
        metrics: MetricsRegistry | None = None,
        timings: Timings | None = None,
        kernel: ChannelKernel | None = None,
    ) -> None:
        super().__init__(
            network,
            algorithm,
            seed=seed,
            trace_level=trace_level,
            step_hook=step_hook,
            collision_detection=collision_detection,
            faults=faults,
            metrics=metrics,
            timings=timings,
        )
        if kernel is not None and kernel.network is not network:
            raise ConfigurationError(
                "shared channel kernel was compiled for a different network"
            )
        self._kernel = kernel if kernel is not None else ChannelKernel(network)
        self._out_nbrs = network.out_neighbors
        #: Scratch transmit flags for the multi-transmitter metric path.
        self._tx_flag = np.zeros(network.n, dtype=bool)
        self._fault_events: tuple[int, ...] = (
            faults.event_slots() if faults is not None else ()
        )
        #: Min-heap of (poll slot, label) with lazy deletion; an entry is
        #: live iff it matches ``_next_poll[label]``.  Quiet-forever nodes
        #: live only in ``_next_poll`` — a delivery is the sole event that
        #: can reactivate them, and deliveries re-register explicitly.
        self._heap: list[tuple[int, int]] = []
        self._next_poll: dict[int, int] = {}
        # The base constructor woke the source before our bookkeeping
        # existed; register every protocol created so far (just the
        # source) for its first poll.
        for label, protocol in self.protocols.items():
            self._register(label, protocol, 0)

    # ------------------------------------------------------------------

    def _register(self, label: int, protocol: Protocol, next_step: int) -> None:
        """(Re-)schedule a node's next poll from its idle hint."""
        quiet = protocol.quiet_until(next_step)
        if quiet < next_step:
            quiet = next_step  # a hint may not point into the past
        if self._next_poll.get(label) == quiet:
            return  # already scheduled exactly there; avoid duplicate entries
        self._next_poll[label] = quiet
        if quiet < QUIET_FOREVER:
            heappush(self._heap, (quiet, label))

    def _next_poll_slot(self) -> int:
        """Earliest live heap entry (cleaning superseded ones), or never."""
        heap = self._heap
        next_poll = self._next_poll
        while heap:
            slot, label = heap[0]
            if next_poll.get(label) != slot:
                heappop(heap)  # superseded by a later registration
                continue
            return slot
        return _NO_EVENT

    def _next_fault_slot(self, step: int) -> int:
        """First scheduled fault event at or after ``step``, or never."""
        events = self._fault_events
        if not events:
            return _NO_EVENT
        i = bisect_left(events, step)
        return events[i] if i < len(events) else _NO_EVENT

    # ------------------------------------------------------------------

    def run_step(self) -> tuple[int, ...]:
        """Execute one slot, polling only nodes whose quiet window ended.

        Mirrors :meth:`SynchronousEngine.run_step` phase for phase —
        fault accrual, action collection, channel resolution (via the
        CSR/bincount kernel), the crash -> jam -> loss -> wake-delay
        delivery pipeline, observations, metrics, trace — touching
        ``O(active + receivers)`` protocols instead of ``O(awake)``.
        """
        step = self.step
        timings = self.timings
        t_start = perf_counter() if timings is not None else 0.0
        faulty = self.faults is not None
        jam_set: frozenset[int] = frozenset()
        counters = self.fault_counters
        if faulty:
            counters.crashed_nodes += self._crashes_by_slot.get(step, 0)
            jam_set = self._jams_by_slot.get(step, frozenset())
            counters.jammed_slots += len(jam_set)

        heap = self._heap
        next_poll = self._next_poll
        protocols = self.protocols
        #: (label, protocol) pairs whose quiet window ended this slot.
        active: list[tuple[int, Protocol]] = []
        transmissions: dict[int, Message] = {}
        while heap and heap[0][0] <= step:
            slot, label = heappop(heap)
            if next_poll.get(label) != slot:
                continue  # superseded registration
            if faulty and self._dead(label, step):
                del next_poll[label]  # crashed: silent forever, stop polling
                continue
            next_poll[label] = -1  # consumed; re-registered after the slot
            protocol = protocols[label]
            active.append((label, protocol))
            payload = protocol.next_action(step)
            if payload is not None:
                transmissions[label] = Message(sender=label, payload=payload)
        if timings is not None:
            t_actions = perf_counter()
            timings.add("engine.actions", t_actions - t_start)

        deliveries: dict[int, int] = {}
        woken: list[int] = []
        collisions: list[int] = []
        collided_listeners: set[int] = set()
        #: Nodes whose promise is void (polled, or received a message);
        #: re-registered from a fresh hint below.  Ordered and deduped.
        touched: dict[int, Protocol] = dict(active)
        record_full = self.trace.level is TraceLevel.FULL
        n_coll = 0
        if len(transmissions) == 1:
            # Lone-transmitter fast path (the overwhelmingly common slot for
            # token protocols: orders, passes, single replies).  Every
            # neighbour hears exactly one message — no collisions, no
            # numpy needed; n_coll stays 0.
            sender, message = next(iter(transmissions.items()))
            for receiver in self._out_nbrs[sender]:
                if faulty:
                    if self._dead(receiver, step):
                        continue  # crashed nodes receive nothing
                    if receiver in jam_set:
                        continue  # jammed: indistinguishable from silence
                    if (
                        self._loss_probability > 0.0
                        and scalar_loss_coin(self._fault_seed, receiver, step)
                        < self._loss_probability
                    ):
                        counters.lost_messages += 1
                        continue
                protocol = protocols.get(receiver)
                if protocol is None:
                    if faulty and step < self._deaf_until.get(receiver, 0):
                        counters.delayed_wakes += 1
                        continue  # wake-up delayed: the message is ignored
                    deliveries[receiver] = sender
                    self._wake(receiver, step, message)
                    woken.append(receiver)
                    touched[receiver] = protocols[receiver]
                else:
                    # A delivery voids any quiet promise, even for nodes
                    # that were not polled this slot.
                    deliveries[receiver] = sender
                    protocol.observe(step, message)
                    touched[receiver] = protocol
        elif transmissions:
            kernel = self._kernel
            labels_arr = kernel.labels
            index = kernel.index
            tx = np.fromiter(
                (index[s] for s in transmissions),
                dtype=np.int64,
                count=len(transmissions),
            )
            hits, sender_of, cat = kernel.resolve(tx)
            hc = hits[cat]
            for ri in cat[hc == 1]:
                receiver = int(labels_arr[ri])
                if receiver in transmissions:
                    continue  # half-duplex: transmitters hear nothing
                if faulty:
                    if self._dead(receiver, step):
                        continue  # crashed nodes receive nothing
                    if receiver in jam_set:
                        continue  # jammed: indistinguishable from silence
                    if (
                        self._loss_probability > 0.0
                        and scalar_loss_coin(self._fault_seed, receiver, step)
                        < self._loss_probability
                    ):
                        counters.lost_messages += 1
                        continue
                message = transmissions[int(labels_arr[sender_of[ri]])]
                protocol = protocols.get(receiver)
                if protocol is None:
                    if faulty and step < self._deaf_until.get(receiver, 0):
                        counters.delayed_wakes += 1
                        continue  # wake-up delayed: the message is ignored
                    deliveries[receiver] = message.sender
                    self._wake(receiver, step, message)
                    woken.append(receiver)
                    touched[receiver] = protocols[receiver]
                else:
                    deliveries[receiver] = message.sender
                    protocol.observe(step, message)
                    touched[receiver] = protocol
            if (
                self.metrics is not None
                or record_full
                or self.collision_detection
            ):
                coll_idx = np.unique(cat[hc >= 2])
                if coll_idx.size:
                    if self.metrics is not None:
                        # Metric collision definition (same as every
                        # engine): receivers with >= 2 transmitting
                        # in-neighbours that are not themselves
                        # transmitting, dead receivers included.
                        tx_flag = self._tx_flag
                        tx_flag[tx] = True
                        n_coll = int((~tx_flag[coll_idx]).sum())
                        tx_flag[tx] = False
                    if record_full or self.collision_detection:
                        for ri in coll_idx:
                            receiver = int(labels_arr[ri])
                            if receiver in transmissions:
                                continue
                            if faulty and self._dead(receiver, step):
                                continue
                            if record_full:
                                collisions.append(receiver)
                            if self.collision_detection and receiver in protocols:
                                collided_listeners.add(receiver)

        # Silence / CD-marker observations go only to the polled nodes:
        # by the quiet_until contract, a quiet node's behaviour is
        # unchanged by observing either, so skipping it is sound.
        for label, protocol in active:
            if label not in deliveries:
                protocol.observe(
                    step, COLLISION_MARKER if label in collided_listeners else None
                )

        if timings is not None:
            t_channel = perf_counter()
            timings.add("engine.channel", t_channel - t_actions)
            timings.add("engine.step", t_channel - t_start)
        if self.metrics is not None:
            self._slots_counter.inc()
            self._tx_counter.inc(len(transmissions))
            tx_counts = self._tx_counts
            for label in transmissions:
                tx_counts[label] = tx_counts.get(label, 0) + 1
            self._collision_hist.observe(n_coll)

        # Re-register every touched node from a fresh hint (inlined
        # _register: this loop runs for every polled node and receiver).
        next_step = step + 1
        for label, protocol in touched.items():
            quiet = protocol.quiet_until(next_step)
            if quiet < next_step:
                quiet = next_step  # a hint may not point into the past
            if next_poll.get(label) != quiet:
                next_poll[label] = quiet
                if quiet < QUIET_FOREVER:
                    heappush(heap, (quiet, label))

        transmitter_labels = tuple(sorted(transmissions))
        if self.trace.level is not TraceLevel.NONE:
            self.trace.record(
                step=step,
                transmitters=transmitter_labels,
                deliveries=deliveries,
                collisions=tuple(sorted(collisions)),
                woken=tuple(sorted(woken)),
                informed=self.informed_count,
            )
        if self.step_hook is not None:
            self.step_hook(step, transmitter_labels)
        self.step += 1
        return transmitter_labels

    # ------------------------------------------------------------------

    def _skip_silent(self, count: int) -> None:
        """Fast-forward ``count`` provably silent slots in one jump.

        No node transmits in a skipped slot, so nothing is delivered, no
        loss coin is flipped, and no protocol state changes; the only
        observable output is the instrumentation itself, which is
        synthesized here exactly as ``count`` silent ``run_step`` calls
        would have produced it.
        """
        timings = self.timings
        t_start = perf_counter() if timings is not None else 0.0
        if self.metrics is not None:
            self._slots_counter.inc(count)
            self._collision_hist.observe_repeated(0, count)
        step = self.step
        if self.trace.level is not TraceLevel.NONE:
            informed = self.informed_count
            record = self.trace.record
            for t in range(step, step + count):
                record(
                    step=t, transmitters=(), deliveries={}, collisions=(),
                    woken=(), informed=informed,
                )
        if self.step_hook is not None:
            hook = self.step_hook
            for t in range(step, step + count):
                hook(t, ())
        self.step = step + count
        if timings is not None:
            elapsed = perf_counter() - t_start
            timings.add("engine.skip", elapsed)
            timings.add("engine.step", elapsed)

    def run(self, max_steps: int, stop_when_informed: bool = True) -> int:
        """Run with slot compression; same contract as the reference
        :meth:`SynchronousEngine.run` (skipped slots count as executed —
        they *were* simulated, just in one jump)."""
        if max_steps < 0:
            raise ConfigurationError(f"max_steps must be non-negative, got {max_steps}")
        has_fault_events = bool(self._fault_events)
        executed = 0
        while executed < max_steps:
            if stop_when_informed and self.all_settled:
                break
            step = self.step
            target = self._next_poll_slot()
            if target > step:
                # Jump at most to the next poll, the next scheduled fault
                # event, or the step budget, whichever comes first.
                limit = step + (max_steps - executed)
                if target > limit:
                    target = limit
                if has_fault_events:
                    fault_slot = self._next_fault_slot(step)
                    if fault_slot < target:
                        target = fault_slot
                if target > step:
                    self._skip_silent(target - step)
                    executed += target - step
                    continue
            self.run_step()
            executed += 1
        return executed
