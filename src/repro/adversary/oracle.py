"""Action-function extraction for deterministic algorithms (Section 3.1).

The lower-bound construction manipulates *abstract histories*: it assumes
which messages each node received and asks what the algorithm would do
next — the paper's action function ``pi(v, H_(k-1)(v))``.  Because every
protocol in this library is a deterministic state machine over
``(label, r, observations)``, the action function is obtained by keeping
one *live* protocol instance per node and feeding it exactly the abstract
observations the adversary decides on, in engine order: ``next_action``
once per step, then the step's observation.

Sleeping nodes (empty history) are never instantiated: the model's ban on
spontaneous transmissions makes their action identically 0, exactly as
the paper extends ``pi`` to ``pi-hat``.
"""

from __future__ import annotations

import random
from typing import Any

from ..sim.errors import ConfigurationError, ProtocolViolationError
from ..sim.messages import Message
from ..sim.protocol import BroadcastAlgorithm, Protocol

__all__ = ["LiveNode", "AbstractHistoryOracle"]


class LiveNode:
    """One node's protocol instance driven by abstract observations.

    The discipline mirrors the synchronous engine exactly: per step first
    :meth:`query` (the node's action), then exactly one of
    :meth:`deliver` / nothing — a woken node's first message arrives via
    :meth:`wake` instead and it acts from the next step.
    """

    def __init__(self, algorithm: BroadcastAlgorithm, label: int, r: int):
        # Deterministic protocols never touch the RNG; a fixed seed keeps
        # accidental uses reproducible instead of silently diverging.
        self.protocol: Protocol = algorithm.create(label, r, random.Random(0))
        self.label = label
        self._queried_step: int | None = None
        self._pending: Any | None = None

    def wake(self, step: int, message: Message | None) -> None:
        self.protocol.wake_step = step
        self.protocol.on_wake(step, message)

    def query(self, step: int) -> Any | None:
        """The node's action in ``step`` (payload to transmit, or None)."""
        if self._queried_step == step:
            return self._pending
        self._pending = self.protocol.next_action(step)
        self._queried_step = step
        return self._pending

    def deliver(self, step: int, message: Message | None) -> None:
        """Complete the step with the observation the adversary chose."""
        if self._queried_step != step:
            raise ProtocolViolationError(
                f"node {self.label}: observation for step {step} delivered "
                f"before its action was queried"
            )
        self.protocol.observe(step, message)


class AbstractHistoryOracle:
    """All live nodes of one construction run.

    Keeps ``label -> LiveNode`` for informed nodes and records, per node,
    the full abstract delivery history (for the Lemma 9 comparison).

    Args:
        algorithm: The deterministic algorithm under attack.
        r: Label bound announced to every node.
    """

    def __init__(self, algorithm: BroadcastAlgorithm, r: int):
        if not algorithm.deterministic:
            raise ConfigurationError(
                f"the Section 3 lower bound applies to deterministic "
                f"algorithms; {algorithm.name} declares itself randomized"
            )
        self.algorithm = algorithm
        self.r = r
        self.nodes: dict[int, LiveNode] = {}
        #: label -> list of (step, sender) receptions in the abstract run.
        self.deliveries: dict[int, list[tuple[int, int]]] = {}
        #: label -> step of the node's first (abstract) transmission.
        self.first_transmission: dict[int, int] = {}

    # ------------------------------------------------------------------

    def awake(self, label: int) -> bool:
        return label in self.nodes

    def wake(self, label: int, step: int, message: Message | None) -> None:
        if label in self.nodes:
            raise ProtocolViolationError(f"node {label} woken twice")
        node = LiveNode(self.algorithm, label, self.r)
        node.wake(step, message)
        self.nodes[label] = node
        self.deliveries.setdefault(label, [])
        if message is not None:
            self.deliveries[label].append((step, message.sender))

    def query_actions(self, step: int, labels: Any = None) -> dict[int, Any]:
        """Actions of all awake nodes (or a subset) in ``step``.

        Returns:
            Map label -> payload for the nodes that transmit.
        """
        pool = self.nodes if labels is None else {
            lab: self.nodes[lab] for lab in labels if lab in self.nodes
        }
        actions: dict[int, Any] = {}
        for label, node in pool.items():
            payload = node.query(step)
            if payload is not None:
                actions[label] = payload
                self.first_transmission.setdefault(label, step)
        return actions

    def finish_step(self, step: int, deliveries: dict[int, Message]) -> None:
        """Deliver observations for ``step`` to every awake node.

        ``deliveries`` maps receiver label to the message it hears; every
        other awake node (including transmitters) observes silence.  Nodes
        appearing in ``deliveries`` but still asleep are woken instead.
        """
        for label, message in deliveries.items():
            if label not in self.nodes:
                self.wake(label, step, message)
            else:
                self.nodes[label].deliver(step, message)
                self.deliveries[label].append((step, message.sender))
        for label, node in self.nodes.items():
            if label in deliveries:
                continue
            if node._queried_step == step:
                node.deliver(step, None)

    def reset_nodes(self, labels: Any) -> None:
        """Forget the given nodes entirely (the paper's part 6 history reset).

        Their live instances are discarded; they are asleep again with an
        empty history, exactly as if the part-2 virtual messages had never
        been defined for them.
        """
        for label in labels:
            self.nodes.pop(label, None)
            self.deliveries.pop(label, None)
            self.first_transmission.pop(label, None)
