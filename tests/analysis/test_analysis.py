"""Statistics, bound formulas, fitting and table rendering."""

from __future__ import annotations

import math

import pytest

from repro.analysis.bounds import (
    FitResult,
    alon_lower_bound,
    bgi_randomized_bound,
    claimed_cms_undirected_bound,
    compare_bounds,
    complete_layered_bound,
    deterministic_lower_bound,
    fit_constant,
    km_lower_bound,
    kp_randomized_bound,
    round_robin_bound,
    select_and_send_bound,
)
from repro.analysis.stats import summarize
from repro.analysis.tables import format_number, render_table


class TestSummarize:
    def test_basic(self):
        s = summarize([10, 12, 14, 16])
        assert s.count == 4
        assert s.mean == 13
        assert s.minimum == 10 and s.maximum == 16
        assert s.ci_low < s.mean < s.ci_high

    def test_single_sample_collapses_ci(self):
        s = summarize([5.0])
        assert s.ci_low == s.ci_high == 5.0
        assert s.std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_unknown_level_rejected(self):
        with pytest.raises(ValueError):
            summarize([1, 2], level=0.5)

    def test_wider_ci_at_higher_level(self):
        data = [3, 7, 9, 2, 8, 4]
        assert (
            summarize(data, 0.99).ci_high - summarize(data, 0.99).ci_low
            > summarize(data, 0.90).ci_high - summarize(data, 0.90).ci_low
        )


class TestBounds:
    def test_kp_vs_bgi_separation_at_large_d(self):
        n, d = 4096, 512
        assert kp_randomized_bound(n, d) < bgi_randomized_bound(n, d)

    def test_kp_equals_bgi_shape_at_small_d(self):
        n = 4096
        # For D = O(1), log(n/D) ~ log n: the bounds are close.
        ratio = kp_randomized_bound(n, 2) / bgi_randomized_bound(n, 2)
        assert 0.8 < ratio <= 1.0

    def test_km_lower_below_kp_upper(self):
        for n, d in [(1024, 4), (1024, 256), (8192, 1024)]:
            assert km_lower_bound(n, d) <= kp_randomized_bound(n, d)

    def test_alon_is_log_squared(self):
        assert alon_lower_bound(1024, 2) == 100.0

    def test_deterministic_lower_bound_sharpens_for_large_d(self):
        n = 4096
        # For D close to n the bound approaches n log n; for small D it is
        # close to n (matching the Omega(n) special case).
        assert deterministic_lower_bound(n, n // 2) > deterministic_lower_bound(n, 16)

    def test_complete_layered_below_claimed_cms(self):
        # Theorem 4 vs the refuted claim: for D = Theta(n), n + D log n is
        # o(n log D) -- numerically visible already at n = 4096.
        n, d = 4096, 1024
        assert complete_layered_bound(n, d) < claimed_cms_undirected_bound(n, d)

    def test_misc_formulas(self):
        assert round_robin_bound(10, 3) == 30
        assert select_and_send_bound(8, 2) == 8 * 3


class TestFitting:
    def test_perfect_fit(self):
        params = [(256, 4), (512, 8), (1024, 16)]
        times = [3.5 * kp_randomized_bound(n, d) for n, d in params]
        fit = fit_constant(times, params, kp_randomized_bound)
        assert math.isclose(fit.constant, 3.5, rel_tol=1e-9)
        assert fit.rmse < 1e-6
        assert math.isclose(fit.max_ratio_spread, 1.0, rel_tol=1e-9)

    def test_wrong_bound_fits_worse(self):
        params = [(1024, d) for d in (4, 16, 64, 256, 512)]
        times = [2.0 * kp_randomized_bound(n, d) for n, d in params]
        results = compare_bounds(
            times,
            params,
            {"kp": kp_randomized_bound, "bgi": bgi_randomized_bound},
        )
        assert results["kp"].relative_rmse < results["bgi"].relative_rmse

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            fit_constant([1.0], [], kp_randomized_bound)

    def test_fit_result_type(self):
        fit = fit_constant([10.0], [(64, 4)], kp_randomized_bound)
        assert isinstance(fit, FitResult)


class TestTables:
    def test_render_alignment_and_title(self):
        text = render_table(
            ["name", "value"],
            [["alpha", 1], ["beta", 23.456]],
            title="caption",
        )
        lines = text.splitlines()
        assert lines[0] == "caption"
        assert "name" in lines[1] and "value" in lines[1]
        assert "23.46" in text

    def test_format_number_variants(self):
        assert format_number(3) == "3"
        assert format_number(3.14159) == "3.14"
        assert format_number(12345.6) == "12346"
        assert format_number(2.0) == "2"
        assert format_number(float("nan")) == "-"
        assert format_number(True) == "True"
        assert format_number("x") == "x"
