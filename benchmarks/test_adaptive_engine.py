"""Event-driven adaptive-engine benchmark (the ``adaptive_engine`` gate).

The tentpole claim: on e4's largest Select-and-Send workload the
event-driven engine — idle-hint polling plus slot compression plus the
shared CSR/bincount channel kernel — reproduces the polling reference
engine bit for bit while running at least 5x faster.  Bit-identity is
asserted here on wake times and completion; the exhaustive slot-level
differential lives in ``tests/sim/test_event_engine.py``.

The workload comes from the shared benchmark registry
(:func:`repro.obs.suite.adaptive_workload`), so the committed
``BENCH_adaptive_engine.json`` baseline that ``repro bench`` gates on
tracks exactly the run this test measures.
"""

from __future__ import annotations

import time

from repro.analysis import render_table
from repro.obs.suite import adaptive_workload
from repro.sim import run_broadcast

REPEATS = 3  # best-of to shave scheduler noise

#: The tentpole acceptance bar: event-driven Select-and-Send must beat
#: the polling reference engine by at least this factor.
MIN_SPEEDUP = 5.0


def _best_of(thunk, repeats=REPEATS):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = thunk()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_event_engine_speedup_and_identity(table_reporter):
    net, algorithm = adaptive_workload(quick=False)

    reference_s, reference = _best_of(
        lambda: run_broadcast(
            net, algorithm, require_completion=True, engine="reference"
        )
    )
    event_s, event = _best_of(
        lambda: run_broadcast(net, algorithm, require_completion=True, engine="event")
    )

    # The fast path must be a pure execution strategy, never a semantic
    # variant: same completion, same broadcast time, same per-node wakes.
    assert event.completed and reference.completed
    assert event.time == reference.time
    assert event.wake_times == reference.wake_times

    speedup = reference_s / event_s
    table_reporter.record(
        "adaptive-engine",
        render_table(
            ["engine", "wall (s)", "slots/s"],
            [
                ["polling reference", f"{reference_s:.3f}",
                 f"{reference.time / reference_s:.0f}"],
                ["event-driven", f"{event_s:.3f}", f"{event.time / event_s:.0f}"],
                ["speedup", f"{speedup:.1f}x", ""],
            ],
            title=(
                f"Select-and-Send, G({net.n}, 6/n) seed=5, "
                f"{reference.time} slots"
            ),
        ),
    )
    assert speedup >= MIN_SPEEDUP, f"event-engine speedup only {speedup:.1f}x"
