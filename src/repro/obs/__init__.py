"""Observability: metrics, timings, run logs, spans, and live telemetry.

The subsystem is opt-in end to end — engines, drivers, and the sweep
runner accept ``metrics=`` / ``timings=`` / ``runlog=`` / ``spans=`` /
``telemetry=`` handles that default to ``None``, and with them absent no
instrumentation code runs.  Building blocks:

* :mod:`repro.obs.metrics` — counters, gauges, and fixed-bucket
  histograms in a :class:`~repro.obs.metrics.MetricsRegistry`;
* :mod:`repro.obs.timings` — ``perf_counter`` stage accumulation
  (:class:`~repro.obs.timings.Timings`), attached to
  :class:`~repro.sim.run.BroadcastResult` and sweep payloads;
* :mod:`repro.obs.runlog` — JSONL lifecycle event logs
  (:class:`~repro.obs.runlog.RunLogger`) plus the schema validator
  CI runs against them;
* :mod:`repro.obs.spans` — hierarchical ``sweep → point → trial →
  stage`` spans riding on the ``Timings`` taxonomy, with Chrome
  trace-event export (``repro trace export``);
* :mod:`repro.obs.telemetry` — the bounded, non-blocking bus that
  streams span/progress events from sweep workers to the parent
  (:class:`~repro.obs.telemetry.TelemetryHub`), feeding ``repro top``
  (:mod:`repro.obs.top`) and the runlog as events happen.

``repro report <runlog>`` (see :mod:`repro.obs.report`) renders logs
back into tables; metric names and the event schema are documented in
``docs/OBSERVABILITY.md``.
"""

from .forensics import (
    ForensicsReport,
    PropagationDAG,
    SLOT_CLASSES,
    analyze,
    build_dag,
    classify_slot,
    forensic_span_events,
    record_forensics_metrics,
)
from .metrics import (
    COUNT_BUCKETS,
    Counter,
    FRACTION_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    SLOT_BUCKETS,
)
from .runlog import (
    DEFAULT_RUNLOG_DIR,
    RunLogger,
    RunlogError,
    assert_valid_runlog,
    default_runlog_path,
    git_sha,
    new_run_id,
    read_runlog,
    validate_runlog,
)
from .spans import (
    SPAN_KINDS,
    Span,
    SpanRecorder,
    TraceFormatError,
    export_trace_events,
    new_span_id,
    parse_trace_events,
    span_events,
    write_trace,
)
from .telemetry import (
    SpanContext,
    TelemetryBus,
    TelemetryHub,
    TelemetrySender,
    WorkerTelemetry,
)
from .timings import Timings

__all__ = [
    "COUNT_BUCKETS",
    "Counter",
    "DEFAULT_RUNLOG_DIR",
    "FRACTION_BUCKETS",
    "ForensicsReport",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PropagationDAG",
    "RunLogger",
    "RunlogError",
    "SLOT_BUCKETS",
    "SLOT_CLASSES",
    "SPAN_KINDS",
    "Span",
    "SpanContext",
    "SpanRecorder",
    "TelemetryBus",
    "TelemetryHub",
    "TelemetrySender",
    "Timings",
    "TraceFormatError",
    "WorkerTelemetry",
    "analyze",
    "assert_valid_runlog",
    "build_dag",
    "classify_slot",
    "default_runlog_path",
    "export_trace_events",
    "forensic_span_events",
    "git_sha",
    "new_run_id",
    "new_span_id",
    "parse_trace_events",
    "read_runlog",
    "record_forensics_metrics",
    "span_events",
    "validate_runlog",
    "write_trace",
]
