"""Echo classification and Binary-Selection decision logic (Section 4.1)."""

from __future__ import annotations

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.echo import (
    EchoOutcome,
    Probe,
    Selected,
    SelectionDriver,
    classify_echo,
    simulate_selection,
)
from repro.sim.errors import ProtocolViolationError


def test_classify_echo_truth_table():
    assert classify_echo(5, None) == (EchoOutcome.SINGLE, 5)
    assert classify_echo(None, 7) == (EchoOutcome.EMPTY, None)
    assert classify_echo(None, None) == (EchoOutcome.MANY, None)


def test_classify_echo_single_with_both_slots():
    # |A| == 1: the lone member is heard in slot 1; slot 2 collides, so the
    # normal shape is (label, None).  A (label, label) shape cannot occur
    # in a correct run, but classification keys on slot 1 anyway.
    assert classify_echo(3, 9)[0] is EchoOutcome.SINGLE


def _run_driver(driver: SelectionDriver, hidden: set[int]) -> tuple[int, int]:
    """Drive with truthful outcomes; returns (selected, segments used)."""
    probe = driver.current_probe
    segments = 1
    while True:
        members = [x for x in hidden if probe.lo <= x <= probe.hi]
        if len(members) == 1:
            step = driver.feed(EchoOutcome.SINGLE, members[0])
        elif not members:
            step = driver.feed(EchoOutcome.EMPTY)
        else:
            step = driver.feed(EchoOutcome.MANY)
        if isinstance(step, Selected):
            return step.label, segments
        probe = step
        segments += 1


def test_exhaustive_small_hidden_sets():
    for r in [1, 2, 3, 4, 7, 8, 9]:
        for size in range(1, min(r, 5) + 1):
            for combo in itertools.combinations(range(1, r + 1), size):
                selected, _ = _run_driver(SelectionDriver(r), set(combo))
                assert selected in combo, (r, combo)


def test_segment_bound_holds():
    r = 4096
    driver = SelectionDriver(r)
    bound = driver.segments_used_bound()
    rng = random.Random(0)
    for _ in range(50):
        hidden = set(rng.sample(range(1, r + 1), rng.randint(1, 40)))
        _, segments = _run_driver(SelectionDriver(r), hidden)
        assert segments <= bound


def test_doubling_skips_empty_prefixes():
    # Hidden set far to the right: doubling must walk up, then binary in
    # the last doubling interval.
    selected, _ = _run_driver(SelectionDriver(1024), {900, 901})
    assert selected in {900, 901}


def test_single_element_at_r():
    selected, _ = _run_driver(SelectionDriver(100), {100})
    assert selected == 100


def test_driver_errors_on_impossible_empty():
    driver = SelectionDriver(4)
    driver.feed(EchoOutcome.EMPTY)  # [1..2] empty: doubling continues
    with pytest.raises(ProtocolViolationError):
        driver.feed(EchoOutcome.EMPTY)  # [1..4] = whole ground empty: contradiction


def test_driver_errors_after_finish():
    driver = SelectionDriver(8)
    driver.feed(EchoOutcome.SINGLE, 3)
    with pytest.raises(ProtocolViolationError):
        driver.feed(EchoOutcome.EMPTY)
    with pytest.raises(ProtocolViolationError):
        driver.current_probe


def test_single_requires_label():
    driver = SelectionDriver(8)
    with pytest.raises(ProtocolViolationError):
        driver.feed(EchoOutcome.SINGLE, None)


def test_rejects_nonpositive_r():
    with pytest.raises(ProtocolViolationError):
        SelectionDriver(0)


def test_simulate_selection_helper():
    result = simulate_selection(SelectionDriver(64), {17, 40, 41})
    assert result.label in {17, 40, 41}
    with pytest.raises(ProtocolViolationError):
        simulate_selection(SelectionDriver(64), set())


def test_probe_is_dataclass_with_bounds():
    driver = SelectionDriver(16)
    probe = driver.current_probe
    assert isinstance(probe, Probe)
    assert probe == Probe(1, 2)


@settings(max_examples=150, deadline=None)
@given(
    st.integers(min_value=1, max_value=2048),
    st.integers(min_value=0, max_value=10**9),
)
def test_selection_property(r, seed):
    """Property: always selects a member of the hidden set, in O(log r)."""
    rng = random.Random(seed)
    size = rng.randint(1, min(r, 12))
    hidden = set(rng.sample(range(1, r + 1), size))
    selected, segments = _run_driver(SelectionDriver(r), hidden)
    assert selected in hidden
    assert segments <= SelectionDriver(r).segments_used_bound()
