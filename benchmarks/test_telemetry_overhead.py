"""Telemetry (span) overhead benchmark (emits ``BENCH_telemetry_overhead.json``).

The same contract the metrics layer honours, applied to spans: with
``spans=None`` (the default) no span code runs, and with a
:class:`~repro.obs.spans.SpanRecorder` attached the results must stay
bit-identical — spans observe, never perturb.  Span recording rides on
the ``Timings`` accumulator (stage spans are synthesized from deltas,
not re-instrumented), so its cost is essentially the timings cost plus a
handful of dict emissions per trial batch; the acceptance bar is a
measured enabled/disabled ratio ≤ 1.10x on the full batched workload.

The workload and timing protocol come from the shared benchmark
registry: the ``telemetry_overhead`` entry that ``repro bench`` runs
measures exactly what this test measures.

Wall-clock assertions against the committed baseline only run when
``REPRO_BENCH_STRICT=1`` (dedicated benchmark hardware); shared CI
runners are too noisy, so there the baseline is refreshed and uploaded
as an artifact instead.
"""

from __future__ import annotations

import json
import os
import pathlib

from repro.analysis import render_table
from repro.obs.bench import Benchmark, environment_fingerprint, run_benchmark
from repro.obs.suite import batched_workload, telemetry_overhead_workload

# Mirrors BENCH_obs.json vs BENCH_obs_overhead.json: this file is the
# pytest record; the registry's pinned baseline (written by ``repro bench
# --update-baseline``) is BENCH_telemetry_overhead.json.
BENCH_PATH = pathlib.Path(__file__).parent / "results" / "BENCH_telemetry.json"

REPEATS = 3  # best-of to shave scheduler noise

#: Acceptance bar for span recording on the batched workload.
MAX_OVERHEAD = 1.10


def test_telemetry_overhead_and_bench_baseline(table_reporter):
    _, _, trials = batched_workload(quick=False)
    plain, telemetered = telemetry_overhead_workload(quick=False)

    # Span recording must never change what the engine computes.  These
    # two calls double as the warmup for the timed runs below.
    plain_results = plain()
    telemetered_results = telemetered()
    assert [r.time for r in telemetered_results] == [r.time for r in plain_results]
    assert [r.wake_times for r in telemetered_results] == [
        r.wake_times for r in plain_results
    ]

    env = environment_fingerprint()
    off_record = run_benchmark(
        Benchmark("telemetry_overhead_off", lambda quick: plain,
                  repeats=REPEATS, warmup=0),
        env=env,
    )
    on_record = run_benchmark(
        Benchmark("telemetry_overhead_on", lambda quick: telemetered,
                  repeats=REPEATS, warmup=0),
        env=env,
    )
    off_s, on_s = off_record["min_s"], on_record["min_s"]

    slots = sum(r.time for r in plain_results)
    overhead = on_s / off_s
    record = {
        "bench": "telemetry-overhead",
        "git_sha": env["git_sha"],
        "network": "km_hard_layered(128, 32, seed=17)",
        "algorithm": "kp-known-d(stage_constant=32)",
        "trials": trials,
        "trial_slots": slots,
        "spans_off_s": round(off_s, 4),
        "spans_on_s": round(on_s, 4),
        "overhead_ratio": round(overhead, 3),
        "slots_per_s_off": round(slots / off_s),
        "slots_per_s_on": round(slots / on_s),
    }

    baseline = None
    if BENCH_PATH.exists():
        baseline = json.loads(BENCH_PATH.read_text())

    table_reporter.record(
        "telemetry-overhead",
        render_table(
            ["path", "wall (s)", "trial-slots/s"],
            [
                ["spans off", f"{off_s:.3f}", f"{slots / off_s:.0f}"],
                ["spans on", f"{on_s:.3f}", f"{slots / on_s:.0f}"],
                ["overhead", f"{overhead:.2f}x", ""],
            ],
            title=f"BatchedFastEngine, {trials} trials ({slots} trial-slots)",
        ),
    )

    BENCH_PATH.parent.mkdir(exist_ok=True)
    BENCH_PATH.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")

    assert overhead < MAX_OVERHEAD, (
        f"span-recording overhead {overhead:.2f}x exceeds the "
        f"{MAX_OVERHEAD:.2f}x acceptance bar"
    )

    if baseline is not None and os.environ.get("REPRO_BENCH_STRICT") == "1":
        regression = off_s / baseline["spans_off_s"]
        assert regression < 1.03, (
            f"plain path regressed {regression:.3f}x vs baseline "
            f"{baseline['git_sha']}"
        )
