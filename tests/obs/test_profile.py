"""Profiling wrappers: pstats tables, dump merging, callgrind format.

The callgrind tests are the contract with KCachegrind: every file
:func:`write_callgrind` emits must satisfy the grammar that
:func:`parse_callgrind` enforces (events header, position scopes,
integer costs, call arcs followed by a cost line).
"""

from __future__ import annotations

import pstats

import pytest

from repro.obs.profile import (
    format_stats,
    merge_stats_files,
    parse_callgrind,
    profile_call,
    profile_file_name,
    write_callgrind,
)


def _busy_work(n=200):
    return sum(_square(i) for i in range(n))


def _square(i):
    return i * i


class TestProfileCall:
    def test_returns_result_and_stats(self):
        result, stats = profile_call(lambda: _busy_work(100))
        assert result == sum(i * i for i in range(100))
        assert isinstance(stats, pstats.Stats)
        assert stats.total_calls > 0

    def test_profiling_does_not_change_the_result(self):
        plain = _busy_work()
        profiled, _ = profile_call(_busy_work)
        assert profiled == plain

    def test_stats_capture_the_profiled_functions(self):
        _, stats = profile_call(_busy_work)
        names = {name for (_f, _l, name) in stats.stats}
        assert "_square" in names


class TestFormatStats:
    def test_table_contains_headers_and_functions(self):
        _, stats = profile_call(_busy_work)
        table = format_stats(stats, top=10)
        assert "ncalls" in table and "cumtime" in table
        assert "_busy_work" in table or "<lambda>" in table

    def test_sort_keys(self):
        _, stats = profile_call(_busy_work)
        for sort in ("cumulative", "tottime", "calls"):
            assert "Ordered by" in format_stats(stats, top=3, sort=sort)


class TestProfileFileName:
    def test_sanitizes_sweep_point_labels(self):
        name = profile_file_name("km-layered(depth=4, n=24) x kp-known-d")
        assert name.endswith(".pstats")
        assert "(" not in name and " " not in name and "/" not in name

    def test_empty_label_still_names_a_file(self):
        assert profile_file_name("()") == "point.pstats"

    def test_distinct_labels_stay_distinct(self):
        a = profile_file_name("km-layered(n=24) x kp")
        b = profile_file_name("km-layered(n=48) x kp")
        assert a != b


class TestMergeStatsFiles:
    def test_empty_iterable_merges_to_none(self):
        assert merge_stats_files([]) is None

    def test_merged_totals_are_the_sum(self, tmp_path):
        paths = []
        for i in range(2):
            import cProfile

            profiler = cProfile.Profile()
            profiler.enable()
            _busy_work(50)
            profiler.disable()
            path = tmp_path / f"p{i}.pstats"
            profiler.dump_stats(str(path))
            paths.append(path)
        singles = [pstats.Stats(str(p)).total_calls for p in paths]
        merged = merge_stats_files(paths)
        assert merged.total_calls == sum(singles)


class TestCallgrindFormat:
    def test_round_trip_through_the_parser(self, tmp_path):
        _, stats = profile_call(_busy_work)
        path = write_callgrind(stats, tmp_path / "out.callgrind")
        costs = parse_callgrind(path.read_text())
        assert costs  # at least one function with a self cost
        assert any("_square" in name for name in costs)
        assert all(isinstance(cost, int) and cost >= 0 for cost in costs.values())

    def test_header_declares_microsecond_events(self, tmp_path):
        _, stats = profile_call(lambda: None)
        text = write_callgrind(stats, tmp_path / "o.callgrind").read_text()
        head = text.splitlines()[:5]
        assert "# callgrind format" in head
        assert "version: 1" in head
        assert "events: us" in head

    def test_self_costs_approximate_tottime(self, tmp_path):
        _, stats = profile_call(lambda: _busy_work(2000))
        path = write_callgrind(stats, tmp_path / "o.callgrind")
        costs = parse_callgrind(path.read_text())
        tottime_us = {
            name: int(tt * 1e6)
            for (_f, _l, name), (_cc, _nc, tt, _ct, _callers) in stats.stats.items()
        }
        for name, cost in costs.items():
            assert cost == tottime_us[name]

    def test_parser_rejects_missing_events_header(self):
        with pytest.raises(ValueError, match="events"):
            parse_callgrind("fl=a.py\nfn=f\n1 10\n")

    def test_parser_rejects_cost_outside_scope(self):
        with pytest.raises(ValueError, match="scope"):
            parse_callgrind("events: us\n1 10\n")

    def test_parser_rejects_dangling_calls_line(self):
        with pytest.raises(ValueError, match="calls="):
            parse_callgrind("events: us\nfl=a.py\nfn=f\n1 10\ncalls=1 5\n")

    def test_parser_rejects_garbage_lines(self):
        with pytest.raises(ValueError, match="unrecognised"):
            parse_callgrind("events: us\nfl=a.py\nfn=f\nnot a line\n")
