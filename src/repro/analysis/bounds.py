"""The paper's asymptotic bounds as evaluable formulas, plus constant fitting.

Benchmarks do not try to match the paper's constants (there are none to
match — the paper is asymptotic); instead they check *shape*: measured
times are fitted as ``c * bound(n, D)`` by least squares over a sweep, and
EXPERIMENTS.md reports the fitted ``c`` together with the residual
quality.  A reproduction succeeds when the claimed bound explains the
measurements better than the competing bound (e.g. Theorem 1's
``D log(n/D) + log^2 n`` versus BGI's ``D log n + log^2 n``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

__all__ = [
    "kp_randomized_bound",
    "kp_stage_cost_bound",
    "bgi_randomized_bound",
    "bgi_stage_cost_bound",
    "km_lower_bound",
    "alon_lower_bound",
    "deterministic_lower_bound",
    "select_and_send_bound",
    "complete_layered_bound",
    "complete_layered_phase_cost_bound",
    "round_robin_bound",
    "claimed_cms_undirected_bound",
    "FitResult",
    "fit_constant",
    "compare_bounds",
]


def _log2(x: float) -> float:
    return math.log2(max(2.0, x))


def kp_randomized_bound(n: int, d: int) -> float:
    """Theorem 1 upper bound: ``D log(n/D) + log^2 n``."""
    return d * _log2(n / max(1, d)) + _log2(n) ** 2


def bgi_randomized_bound(n: int, d: int) -> float:
    """Bar-Yehuda–Goldreich–Itai expected time: ``D log n + log^2 n``."""
    return d * _log2(n) + _log2(n) ** 2


def kp_stage_cost_bound(n: int, d: int) -> float:
    """Finite-n form of Theorem 1: ``D (log(n/D) + 2)``.

    A KP stage is ``log(r/D) + 2`` slots and the information front crosses
    about one layer per stage, so at realistic n the +2 slots per stage
    dominate whenever ``log(n/D)`` is small.  Asymptotically identical to
    :func:`kp_randomized_bound` (``log(n/D) >= 1`` absorbs the constant);
    E2 fits both to show which regime the measurements sit in.
    """
    return d * (_log2(n / max(1, d)) + 2.0)


def bgi_stage_cost_bound(n: int, d: int) -> float:
    """Finite-n form of BGI: ``D * 2 log n`` (one Decay phase per layer)."""
    return d * 2.0 * _log2(n)


def km_lower_bound(n: int, d: int) -> float:
    """Kushilevitz–Mansour randomized lower bound: ``D log(n/D)``."""
    return d * _log2(n / max(1, d))


def alon_lower_bound(n: int, d: int) -> float:
    """Alon et al. lower bound ``log^2 n`` (radius-2 families)."""
    return _log2(n) ** 2


def deterministic_lower_bound(n: int, d: int) -> float:
    """Theorem 2: ``n log n / log(n/D)`` (deterministic broadcasting)."""
    return n * _log2(n) / _log2(n / max(1, d))


def select_and_send_bound(n: int, d: int) -> float:
    """Theorem 3 upper bound: ``n log n``."""
    return n * _log2(n)


def complete_layered_bound(n: int, d: int) -> float:
    """Theorem 4 upper bound for complete layered networks: ``n + D log n``."""
    return n + d * _log2(n)


def complete_layered_phase_cost_bound(n: int, d: int) -> float:
    """Finite-n form of Theorem 4: ``6 D (log n + 2)``.

    One Complete-Layered phase selects the next leader with up to
    ``2 (log r + 2)`` Echo segments of 3 slots each; the O(n) startup only
    matters for D = O(1).  Asymptotically identical to
    :func:`complete_layered_bound`; E5 fits both.
    """
    return 6.0 * d * (_log2(n) + 2.0)


def round_robin_bound(n: int, d: int) -> float:
    """Round-robin schedule: ``n D``."""
    return float(n * d)


def claimed_cms_undirected_bound(n: int, d: int) -> float:
    """The *incorrect* claimed lower bound ``n log D`` (Section 4.3).

    Theorem 4 refutes this for undirected complete layered networks; E5
    plots measured Complete-Layered times against it to show the
    refutation numerically.
    """
    return n * _log2(max(2, d))


@dataclass(frozen=True)
class FitResult:
    """Least-squares fit of ``time ~ c * bound``.

    Attributes:
        constant: The fitted multiplier ``c``.
        rmse: Root-mean-square error of the fit.
        relative_rmse: ``rmse`` divided by the mean measured time.
        max_ratio_spread: ``max(time/bound) / min(time/bound)`` — a
            scale-free indicator of how constant the ratio is (close to 1
            means the bound captures the shape perfectly).
    """

    constant: float
    rmse: float
    relative_rmse: float
    max_ratio_spread: float


def fit_constant(
    times: Sequence[float],
    params: Sequence[tuple[int, int]],
    bound: Callable[[int, int], float],
) -> FitResult:
    """Fit ``times[i] ~ c * bound(*params[i])`` by least squares.

    Args:
        times: Measured broadcast times.
        params: Matching ``(n, D)`` pairs.
        bound: One of the bound formulas above.
    """
    if len(times) != len(params) or not times:
        raise ValueError("times and params must be equal-length and non-empty")
    measured = np.asarray(times, dtype=float)
    predicted = np.asarray([bound(n, d) for n, d in params], dtype=float)
    constant = float((measured @ predicted) / (predicted @ predicted))
    residuals = measured - constant * predicted
    rmse = float(np.sqrt(np.mean(residuals**2)))
    ratios = measured / predicted
    return FitResult(
        constant=constant,
        rmse=rmse,
        relative_rmse=rmse / float(np.mean(measured)),
        max_ratio_spread=float(ratios.max() / ratios.min()),
    )


def compare_bounds(
    times: Sequence[float],
    params: Sequence[tuple[int, int]],
    bounds: dict[str, Callable[[int, int], float]],
) -> dict[str, FitResult]:
    """Fit several candidate bounds to the same data.

    The bound with the smallest ``relative_rmse`` explains the
    measurements best — the benchmarks use this to decide which asymptotic
    shape the data follows.
    """
    return {name: fit_constant(times, params, bound) for name, bound in bounds.items()}
