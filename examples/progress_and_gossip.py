#!/usr/bin/env python3
"""Scenario: watching broadcasts unfold, and going beyond broadcast.

Two demonstrations on one ad hoc network:

1.  **Progress analytics** — the same network, three algorithms, and the
    shape of their information spread: randomized schemes inform in
    waves, the DFS token crawls but guarantees O(n log n).  Sparklines
    show coverage over time; the milestone table shows slots to 50 / 90 /
    100 % coverage and the front speed (slots per BFS layer).
2.  **Gossip** (library extension) — every node starts with a private
    rumor; two DFS token passes make everyone know everything, at about
    twice the broadcast cost.

Run:  python examples/progress_and_gossip.py
"""

from repro import run_broadcast, topology
from repro.analysis import (
    ascii_sparkline,
    progress_curve,
    progress_table_rows,
    render_table,
)
from repro.baselines import BGIBroadcast, RoundRobinBroadcast
from repro.core import OptimalRandomizedBroadcasting, SelectAndSend, run_gossip


def main() -> None:
    net = topology.random_geometric(150, seed=33)
    print(net.describe())
    print()

    results = {
        "kp-randomized": run_broadcast(
            net, OptimalRandomizedBroadcasting(net.r, stage_constant=8), seed=3
        ),
        "bgi-decay": run_broadcast(net, BGIBroadcast(net.r), seed=3),
        "select-and-send": run_broadcast(net, SelectAndSend()),
        "round-robin": run_broadcast(net, RoundRobinBroadcast(net.r)),
    }

    print("coverage over time (one char per time bucket, blank -> @ = 0 -> n):")
    for name, result in results.items():
        print(f"  {name:16s} |{ascii_sparkline(progress_curve(result))}|")
    print()

    print(
        render_table(
            ["algorithm", "total", "50%", "90%", "100%", "slots/layer"],
            progress_table_rows(results),
            title="milestones (slots)",
        )
    )
    print()

    gossip = run_gossip(net)
    broadcast = results["select-and-send"]
    print(
        f"gossip (all-to-all): every node learned all {gossip.n} rumors in "
        f"{gossip.time} slots — {gossip.time / broadcast.time:.1f}x the "
        f"broadcast time of the same token machinery"
    )


if __name__ == "__main__":
    main()
