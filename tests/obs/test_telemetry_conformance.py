"""Telemetry purity: spans on vs. off is bit-identical, on every engine.

Same contract the metrics layer is held to (`spans` observe, never
perturb), checked across all five registered engines via the
cross-engine conformance matrices, and end-to-end through ``run_sweep``:
payloads and cache bytes must not change when a :class:`TelemetryHub`
is attached.
"""

from __future__ import annotations

import json

import pytest

from repro.core import SelectAndSend
from repro.obs.spans import SpanRecorder
from repro.obs.telemetry import TelemetryHub
from repro.sim import run_broadcast
from repro.sim.fast import run_broadcast_batch, run_broadcast_fast
from repro.sim.macro import run_broadcast_macro
from repro.sweep import ResultCache, SweepSpec, run_sweep
from repro.topology import gnp_connected, km_hard_layered

from ..sim.conformance import (
    ENGINES,
    OBLIVIOUS_ALGORITHMS,
    SEEDS,
    adaptive_engines,
    all_engines,
    assert_results_match,
)

SWEEP_SPEC = dict(
    name="telemetry-purity",
    topology="layered",
    algorithm="kp-known-d",
    topology_grid={"n": [12, 18], "depth": 3},
    algorithm_grid={"stage_constant": 4},
    trials=2,
)


def run_engine(engine, net, make_algo, seeds, recorder=None):
    """Uniform per-engine runner mirroring the conformance registry's,
    with the ``spans`` handle threaded through every driver."""
    if engine in ("reference", "event"):
        return [
            run_broadcast(net, make_algo(net), seed=seed, engine=engine,
                          spans=recorder)
            for seed in seeds
        ]
    if engine == "fast":
        return [
            run_broadcast_fast(net, make_algo(net), seed=seed, spans=recorder)
            for seed in seeds
        ]
    if engine.startswith("macro"):
        backend = "numba" if engine == "macro_numba" else "numpy"
        return [
            run_broadcast_macro(net, make_algo(net), seed=seed,
                                spans=recorder, backend=backend)
            for seed in seeds
        ]
    return run_broadcast_batch(
        net, make_algo(net), seeds=list(seeds), engine=engine, spans=recorder
    )


@pytest.mark.parametrize("engine", all_engines())
def test_spans_do_not_perturb_oblivious_runs(engine):
    net = km_hard_layered(48, 4, seed=5)
    make_algo = OBLIVIOUS_ALGORITHMS["kp-known-d"]
    plain = run_engine(engine, net, make_algo, SEEDS)
    events = []
    recorder = SpanRecorder(sink=events.append)
    telemetered = run_engine(engine, net, make_algo, SEEDS, recorder=recorder)
    for i, (mine, theirs) in enumerate(zip(telemetered, plain)):
        assert_results_match(mine, theirs, (engine, "trial", i))
    assert len(telemetered) == len(plain)
    # The recorder actually observed something: a trial (or batch) span
    # per driver call, each a JSON-safe dict.
    trials = [e for e in events if e["kind"] == "trial"]
    assert trials, engine
    json.dumps(events)


@pytest.mark.parametrize(
    "engine", [e for e in adaptive_engines() if ENGINES[e].adaptive]
)
def test_spans_do_not_perturb_adaptive_runs(engine):
    net = gnp_connected(48, 0.12, seed=7)
    plain = run_engine(engine, net, lambda net: SelectAndSend(), SEEDS)
    recorder = SpanRecorder(sink=lambda event: None)
    telemetered = run_engine(
        engine, net, lambda net: SelectAndSend(), SEEDS, recorder=recorder
    )
    for i, (mine, theirs) in enumerate(zip(telemetered, plain)):
        assert_results_match(mine, theirs, (engine, "trial", i))


class TestSweepPurity:
    def test_telemetry_does_not_change_payloads(self):
        plain = run_sweep(SweepSpec(**SWEEP_SPEC))
        hub = TelemetryHub()
        telemetered = run_sweep(SweepSpec(**SWEEP_SPEC), telemetry=hub)
        hub.close()
        assert [r.payload for r in telemetered.results] == [
            r.payload for r in plain.results
        ]

    def test_telemetry_does_not_change_cache_bytes(self, tmp_path):
        plain_dir, tele_dir = tmp_path / "plain", tmp_path / "tele"
        run_sweep(SweepSpec(**SWEEP_SPEC), cache=ResultCache(plain_dir))
        hub = TelemetryHub()
        run_sweep(SweepSpec(**SWEEP_SPEC), cache=ResultCache(tele_dir),
                  workers=2, telemetry=hub)
        hub.close()
        plain_files = sorted(p.relative_to(plain_dir)
                             for p in plain_dir.rglob("*.json"))
        tele_files = sorted(p.relative_to(tele_dir)
                            for p in tele_dir.rglob("*.json"))
        assert plain_files == tele_files and plain_files
        for rel in plain_files:
            assert (plain_dir / rel).read_bytes() == (tele_dir / rel).read_bytes()

    def test_pooled_telemetry_spans_nest_under_sweep(self):
        events = []
        hub = TelemetryHub()
        hub.subscribe(events.append)
        outcome = run_sweep(SweepSpec(**SWEEP_SPEC), workers=2, telemetry=hub)
        hub.close()
        assert len(outcome.results) == 2
        spans = [e for e in events if e["event"] == "span"]
        by_kind = {}
        for span in spans:
            by_kind.setdefault(span["kind"], []).append(span)
        (sweep,) = by_kind["sweep"]
        assert sweep["parent_id"] is None
        assert {p["parent_id"] for p in by_kind["point"]} == {sweep["span_id"]}
        point_ids = {p["span_id"] for p in by_kind["point"]}
        assert all(t["parent_id"] in point_ids for t in by_kind["trial"])
        assert by_kind["stage"], "stage spans synthesized from Timings"
