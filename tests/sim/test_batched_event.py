"""Batched event engine: property tests and degenerate batch shapes.

The conformance matrix (``test_conformance.py``) pins trial-for-trial
identity with the serial event engine on the curated cases; this module
adds what the matrix cannot express:

* **hint honesty under batching** — across randomly drawn topologies and
  fault plans, no ``quiet_until`` promise may hide an action in *any*
  trial of a batch (every class engine polls through the checking
  wrapper), and the batch still reproduces the serial runs exactly;
* **trial independence** — permuting the trial seeds permutes the
  results and nothing else: a trial's outcome depends only on its seed,
  never on its batch position or companions;
* **degenerate shapes** — one-trial batches, single-node networks,
  batches settled before the first slot, batches settling *on* the
  first slot, and a zero step budget, all in exact parity with the
  serial engine.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import KnownRadiusKP, SelectAndSend
from repro.baselines import RoundRobinBroadcast
from repro.sim import BatchedEventEngine, FaultPlan, run_broadcast
from repro.sim.errors import ConfigurationError, ProtocolViolationError
from repro.sim.fast import run_broadcast_batch
from repro.sim.trace import TraceLevel
from repro.topology import gnp_connected, path, star

from .conformance import (
    HintCheckedAlgorithm,
    adaptive_faulty_networks,
    assert_results_match,
)


def _serial_results(net, algorithm, seeds, **kwargs):
    return [
        run_broadcast(
            net, algorithm, seed=seed, engine="event",
            require_completion=False, **kwargs,
        )
        for seed in seeds
    ]


def _assert_batch_matches_serial(net, algorithm, seeds, **kwargs):
    serial = _serial_results(net, algorithm, seeds, **kwargs)
    batched = run_broadcast_batch(
        net, algorithm, seeds=seeds, engine="batched_event", **kwargs,
    )
    assert len(batched) == len(serial)
    for i, (from_batch, reference) in enumerate(zip(batched, serial)):
        assert_results_match(
            from_batch, reference, key=("trial", i),
            compare_traces=kwargs.get("trace_level") is TraceLevel.FULL,
        )
    return batched


# ---------------------------------------------------------------------------
# Hint honesty under batching


@settings(max_examples=15, deadline=None)
@given(case=adaptive_faulty_networks(), extra_seed=st.integers(0, 1000))
def test_no_quiet_promise_hides_an_action_in_any_trial(case, extra_seed):
    """Every class engine in the batch polls through the hint-checking
    wrapper: if compression ever trusted a promise that hides an action
    in *any* trial, the wrapper's assertions (or the parity check below)
    would fire."""
    net, plan = case
    algorithm = HintCheckedAlgorithm(SelectAndSend())
    seeds = [0, extra_seed, extra_seed + 1]
    try:
        _assert_batch_matches_serial(
            net, algorithm, seeds, faults=plan, max_steps=3000,
        )
    except ProtocolViolationError:
        # Echo is not fault-tolerant; an aborted run is an algorithm
        # property, not a hint violation (identical-failure parity is
        # pinned by the conformance suite).
        pass


# ---------------------------------------------------------------------------
# Trial independence


@settings(max_examples=10, deadline=None)
@given(
    topo_seed=st.integers(0, 500),
    base_seed=st.integers(0, 10_000),
    permutation=st.permutations(list(range(4))),
)
def test_permuting_trial_seeds_permutes_results(topo_seed, base_seed, permutation):
    """A trial's outcome is a function of its seed alone: reordering the
    seed list reorders the results and changes nothing else."""
    net = gnp_connected(20, 0.25, seed=topo_seed)
    algorithm = KnownRadiusKP(net.r, max(1, net.radius), stage_constant=4)
    seeds = [base_seed + i for i in range(4)]

    straight = run_broadcast_batch(
        net, algorithm, seeds=seeds, engine="batched_event", max_steps=4000,
    )
    permuted_seeds = [seeds[i] for i in permutation]
    permuted = run_broadcast_batch(
        net, algorithm, seeds=permuted_seeds, engine="batched_event",
        max_steps=4000,
    )
    by_seed = {result.seed: result for result in straight}
    for result in permuted:
        reference = by_seed[result.seed]
        assert result.wake_times == reference.wake_times, result.seed
        assert result.time == reference.time, result.seed
        assert result.completed == reference.completed, result.seed


# ---------------------------------------------------------------------------
# Degenerate batch shapes, each in exact parity with the serial engine.


def test_single_trial_batch_matches_serial():
    net = gnp_connected(24, 0.2, seed=3)
    _assert_batch_matches_serial(
        net, SelectAndSend(), [7], trace_level=TraceLevel.FULL, max_steps=4000,
    )


def test_single_node_network():
    """n=1: the source is every node — informed at birth, zero slots."""
    net = path(1)
    batched = _assert_batch_matches_serial(
        net, SelectAndSend(), [0, 1, 2], max_steps=100,
    )
    for result in batched:
        assert result.completed
        assert result.time == 0
        assert result.informed == 1
        assert result.wake_times == {net.source: -1}


def test_batch_settled_before_first_slot():
    """Crashing every non-source node at slot 0 settles the batch before
    any slot runs: nothing further can wake, zero slots execute."""
    net = path(5)
    plan = FaultPlan(
        crashes=tuple((label, 0) for label in set(net.nodes) - {net.source}),
    )
    engine = BatchedEventEngine(net, SelectAndSend(), seeds=[0, 1], faults=plan)
    executed = engine.run(100)
    assert executed == 0 or engine.all_settled
    _assert_batch_matches_serial(
        net, SelectAndSend(), [0, 1], faults=plan, max_steps=100,
    )


def test_batch_where_every_trial_settles_on_first_slot():
    """On a star the source informs every leaf in slot 0: each trial
    settles on the very first slot and the batch stops with it."""
    net = star(8)
    algorithm = RoundRobinBroadcast(net.r)
    batched = _assert_batch_matches_serial(
        net, algorithm, [0, 1, 5], max_steps=100,
    )
    for result in batched:
        assert result.completed
        assert result.time == 1
        assert all(slot == 0 for label, slot in result.wake_times.items()
                   if label != net.source)


def test_zero_step_budget():
    net = path(6)
    batched = _assert_batch_matches_serial(
        net, SelectAndSend(), [0, 1], max_steps=0,
    )
    for result in batched:
        assert not result.completed
        assert result.time == 0
        assert result.informed == 1


# ---------------------------------------------------------------------------
# Constructor validation


def test_rejects_empty_seed_list():
    with pytest.raises(ConfigurationError):
        BatchedEventEngine(path(4), SelectAndSend(), seeds=[])


def test_rejects_mismatched_step_hooks():
    with pytest.raises(ConfigurationError):
        BatchedEventEngine(
            path(4), SelectAndSend(), seeds=[0, 1], step_hooks=[None],
        )


def test_rejects_negative_budget():
    engine = BatchedEventEngine(path(4), SelectAndSend(), seeds=[0])
    with pytest.raises(ConfigurationError):
        engine.run(-1)


def test_duplicate_seeds_share_one_execution_class():
    net = gnp_connected(20, 0.25, seed=1)
    algorithm = KnownRadiusKP(net.r, max(1, net.radius), stage_constant=4)
    engine = BatchedEventEngine(net, algorithm, seeds=[3, 9, 3, 9, 3])
    assert engine.execution_classes == 2
    engine.run(4000)
    assert engine.wake_times(0) == engine.wake_times(2) == engine.wake_times(4)
    assert engine.wake_times(1) == engine.wake_times(3)


def test_deterministic_lossless_batch_collapses_to_one_class():
    net = path(10)
    engine = BatchedEventEngine(net, SelectAndSend(), seeds=[0, 1, 2, 3])
    assert engine.execution_classes == 1
    engine.run(4000)
    assert engine.all_informed
    # Per-trial accessors still answer for every trial.
    assert engine.completion_times().count(engine.completion_times()[0]) == 4
