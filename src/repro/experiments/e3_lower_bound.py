"""E3 — Theorem 2: the adversarial lower-bound construction, executed.

Paper claim: for every deterministic algorithm there is an n-node network
of radius Theta(D) on which it needs ``Omega(n log n / log(n/D))`` time.
We run the Fig. 2 construction against three algorithms, verify the
Lemma 9 history equivalence *exactly*, and additionally stretch the
jamming window beyond the provable length while the witness search still
certifies it.
"""

from __future__ import annotations

from ..adversary import LowerBoundConstruction, build_strongest, verify_construction
from ..analysis import deterministic_lower_bound, render_table
from ..baselines import RoundRobinBroadcast, SelectiveFamilyBroadcast
from ..core import SelectAndSend
from .base import ExperimentReport, register

FULL_CASES = [(256, 8), (256, 16), (512, 16), (1024, 16)]
QUICK_CASES = [(256, 8), (256, 16)]


def _algorithms(n: int):
    return {
        "round-robin": lambda: RoundRobinBroadcast(n - 1),
        "select-and-send": lambda: SelectAndSend(),
        "selective-family": lambda: SelectiveFamilyBroadcast(
            n - 1, "random", max_scale=32, seed=3
        ),
    }


@register("e3")
def run(quick: bool = False) -> ExperimentReport:
    """Build and verify G_A per algorithm; then stretch the windows."""
    cases = QUICK_CASES if quick else FULL_CASES
    report = ExperimentReport("e3", "Theorem 2 executed: per-algorithm hard networks")

    rows = []
    all_match, all_silent, all_floors = True, True, True
    for n, d in cases:
        for algo_name, factory in _algorithms(n).items():
            if algo_name == "selective-family" and n > 512:
                continue
            construction = LowerBoundConstruction(factory(), n, d)
            result = construction.build()
            verification = verify_construction(result, factory())
            formula_floor = (d // 2 - 1) * construction.window
            all_match &= verification.histories_match
            all_silent &= verification.silence_respected
            all_floors &= (
                result.silence_floor >= formula_floor
                and verification.real_completion_time > result.silence_floor
            )
            rows.append(
                [n, d, algo_name, construction.k, construction.window,
                 formula_floor, result.silence_floor,
                 verification.real_completion_time,
                 f"{deterministic_lower_bound(n, d):.0f}"]
            )
    report.add_table(
        render_table(
            ["n", "D", "algorithm", "k", "W", "(D/2-1)W", "silence floor",
             "real time on G_A", "n log n/log(n/D)"],
            rows,
        )
    )
    report.check(
        "Lemma 9: real transmitter sets equal the abstract ones on every "
        "constructed step, for every (n, D, algorithm)",
        all_match,
    )
    report.check(
        "the last even-layer node stays silent until the constructed floor "
        "in every real run",
        all_silent,
    )
    report.check(
        "floors are ordered: (D/2-1)W <= silence floor < real broadcast time",
        all_floors,
    )

    # Window stretching.
    rows2 = []
    stretched_ok = True
    stretch_cases = [(256, 8, "round-robin"), (256, 8, "select-and-send")]
    if not quick:
        stretch_cases.append((512, 16, "select-and-send"))
    for n, d, algo_name in stretch_cases:
        factory = _algorithms(n)[algo_name]
        paper = LowerBoundConstruction(factory(), n, d).build()
        stretched = build_strongest(factory, n, d)
        verification = verify_construction(stretched, factory())
        stretched_ok &= (
            verification.histories_match
            and verification.silence_respected
            and stretched.silence_floor >= paper.silence_floor
        )
        rows2.append(
            [n, d, algo_name, paper.window, paper.silence_floor,
             stretched.window, stretched.silence_floor,
             verification.real_completion_time]
        )
    report.add_table(
        render_table(
            ["n", "D", "algorithm", "paper W", "paper floor", "stretched W",
             "stretched floor", "real time"],
            rows2,
        )
    )
    report.check(
        "window stretching certifies jamming far beyond the provable W, "
        "still passing the exact Lemma 9 replay",
        stretched_ok,
    )
    return report
