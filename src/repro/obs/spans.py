"""Hierarchical spans over the ``Timings`` taxonomy + Chrome trace export.

A span is one timed region of a run or sweep with identity and
ancestry: ``span_id`` / ``parent_id`` / ``trace_id``, a ``kind`` from
the fixed hierarchy ``sweep → point → trial → stage``, wall-clock
``start_ts`` / ``end_ts``, the recording process's ``pid``, and free-form
``attrs``.  Spans are pure observability — recording them never changes
what an engine computes, and with no :class:`SpanRecorder` handed in
(the default everywhere) no span code runs at all.

Spans deliberately *ride on* the existing stage-timing taxonomy
(:mod:`repro.obs.timings`) instead of re-instrumenting the engines:
drivers snapshot the ``Timings`` accumulator around a run and synthesize
one child ``stage`` span per ``engine.*`` stage from the delta
(:meth:`SpanRecorder.emit_stage_spans`).  Stage spans are therefore
**synthetic**: they start at their parent's start and last the stage's
accumulated seconds, and they carry ``synthetic: true`` so consumers
never mistake them for measured intervals.  Lifecycle spans (sweep,
point, trial) are measured directly.

Finished spans are emitted through the recorder's ``sink`` as one
``{"event": "span", ...}`` dict — the runlog vocabulary's span event —
so they stream over the telemetry bus (:mod:`repro.obs.telemetry`) and
land in JSONL run logs as they happen.  :func:`write_trace` /
:func:`export_trace_events` turn those events into Chrome trace-event
JSON that Perfetto and ``chrome://tracing`` load, and
:func:`parse_trace_events` is the minimal round-trip checker mirroring
``parse_callgrind``.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
import uuid
from contextlib import contextmanager
from typing import Callable, Iterator, Mapping, Sequence

from .timings import Timings

__all__ = [
    "SPAN_KINDS",
    "Span",
    "SpanRecorder",
    "TraceFormatError",
    "export_trace_events",
    "new_span_id",
    "parse_trace_events",
    "span_events",
    "write_trace",
]

#: The fixed span hierarchy, outermost first.
SPAN_KINDS = ("sweep", "point", "trial", "stage")


def new_span_id() -> str:
    """Fresh 16-hex-digit span id."""
    return uuid.uuid4().hex[:16]


class Span:
    """One open or finished span (mutable while open)."""

    __slots__ = (
        "span_id", "parent_id", "trace_id", "name", "kind",
        "start_ts", "end_ts", "pid", "attrs",
    )

    def __init__(
        self,
        name: str,
        kind: str,
        span_id: str,
        parent_id: str | None,
        trace_id: str,
        start_ts: float,
        pid: int,
        attrs: dict | None = None,
    ) -> None:
        if kind not in SPAN_KINDS:
            raise ValueError(f"unknown span kind {kind!r}; expected one of {SPAN_KINDS}")
        self.name = name
        self.kind = kind
        self.span_id = span_id
        self.parent_id = parent_id
        self.trace_id = trace_id
        self.start_ts = start_ts
        self.end_ts: float | None = None
        self.pid = pid
        self.attrs = dict(attrs or {})

    @property
    def duration(self) -> float:
        """Seconds from start to end (0.0 while still open)."""
        return (self.end_ts - self.start_ts) if self.end_ts is not None else 0.0

    def to_event(self) -> dict:
        """The runlog/bus wire form of a *finished* span."""
        event = {
            "event": "span",
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "trace_id": self.trace_id,
            "name": self.name,
            "kind": self.kind,
            "start_ts": self.start_ts,
            "end_ts": self.end_ts,
            "pid": self.pid,
        }
        if self.attrs:
            event["attrs"] = dict(self.attrs)
        return event

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = f"{self.duration:.4f}s" if self.end_ts is not None else "open"
        return f"Span({self.kind}:{self.name}, {state})"


#: Sentinel distinguishing "nest under the current span" from an explicit
#: ``parent_id=None`` root request.
_CURRENT = object()


class SpanRecorder:
    """Builds a span tree and emits finished spans through a sink.

    Single-threaded by design (one recorder per process): open spans form
    a stack, and a new span nests under the innermost open one unless an
    explicit ``parent_id`` is given — which is how a worker-side point
    span attaches to the parent process's sweep span across the
    multiprocessing boundary (context propagation: the parent ships
    ``trace_id`` + its span id to the worker, the worker passes them
    here).

    Args:
        sink: ``callable(event_dict)`` receiving each finished span's
            :meth:`Span.to_event`; ``None`` keeps spans in memory only.
        clock: Wall-clock source (``time.time``); tests pin it.
        trace_id: Correlates every span of one invocation; generated when
            absent.
        id_factory: Span-id source; tests pin it for deterministic output.
    """

    def __init__(
        self,
        sink: Callable[[dict], object] | None = None,
        clock: Callable[[], float] = time.time,
        trace_id: str | None = None,
        id_factory: Callable[[], str] = new_span_id,
    ) -> None:
        self.sink = sink
        self.clock = clock
        self.trace_id = trace_id or uuid.uuid4().hex[:12]
        self.id_factory = id_factory
        self._stack: list[Span] = []

    @property
    def current(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def start(self, name: str, kind: str, parent_id=_CURRENT, **attrs) -> Span:
        """Open a span (pushed on the nesting stack)."""
        if parent_id is _CURRENT:
            parent_id = self._stack[-1].span_id if self._stack else None
        span = Span(
            name=name,
            kind=kind,
            span_id=self.id_factory(),
            parent_id=parent_id,
            trace_id=self.trace_id,
            start_ts=float(self.clock()),
            pid=os.getpid(),
            attrs=attrs,
        )
        self._stack.append(span)
        return span

    def end(self, span: Span, **attrs) -> Span:
        """Close a span and emit its event; end times clamp monotone."""
        span.end_ts = max(float(self.clock()), span.start_ts)
        span.attrs.update(attrs)
        # Out-of-order ends are tolerated (remove, not pop) so an
        # exception path closing an outer span never corrupts the stack.
        if span in self._stack:
            self._stack.remove(span)
        if self.sink is not None:
            self.sink(span.to_event())
        return span

    @contextmanager
    def span(self, name: str, kind: str, **attrs) -> Iterator[Span]:
        """Context manager: one span around a block."""
        opened = self.start(name, kind, **attrs)
        try:
            yield opened
        finally:
            self.end(opened)

    # ------------------------------------------------------------------
    # Riding on the Timings taxonomy

    @staticmethod
    def stage_snapshot(timings: Timings | None) -> dict[str, tuple[float, int]]:
        """Copy of a ``Timings`` accumulator for later delta-taking."""
        if timings is None:
            return {}
        return {
            stage: (entry[0], entry[1]) for stage, entry in timings.stages.items()
        }

    def emit_stage_spans(
        self,
        parent: Span,
        before: Mapping[str, tuple[float, int]],
        timings: Timings | None,
        prefix: str = "engine.",
    ) -> list[Span]:
        """Synthesize child ``stage`` spans from a ``Timings`` delta.

        One span per ``prefix``-matching stage whose accumulated seconds
        grew while ``parent`` was open: it starts at ``parent.start_ts``,
        lasts the stage's delta seconds, and carries the delta count plus
        ``synthetic: true`` (stages overlap by design — ``engine.coins``
        ⊂ ``engine.step`` — so these are duration lanes, not a timeline).
        """
        if timings is None:
            return []
        spans: list[Span] = []
        for stage, entry in sorted(timings.stages.items()):
            if not stage.startswith(prefix):
                continue
            prior_s, prior_c = before.get(stage, (0.0, 0))
            delta_s = entry[0] - prior_s
            delta_c = entry[1] - prior_c
            if delta_s <= 0.0 and delta_c <= 0:
                continue
            span = Span(
                name=stage,
                kind="stage",
                span_id=self.id_factory(),
                parent_id=parent.span_id,
                trace_id=self.trace_id,
                start_ts=parent.start_ts,
                pid=parent.pid,
                attrs={"count": delta_c, "synthetic": True},
            )
            span.end_ts = parent.start_ts + max(0.0, delta_s)
            spans.append(span)
            if self.sink is not None:
                self.sink(span.to_event())
        return spans

    @contextmanager
    def trial_span(
        self, name: str, timings: Timings | None, **attrs
    ) -> Iterator[Span]:
        """Driver helper: a ``trial`` span whose engine-stage children are
        synthesized from the ``Timings`` delta accumulated inside it."""
        before = self.stage_snapshot(timings)
        span = self.start(name, "trial", **attrs)
        try:
            yield span
        finally:
            self.emit_stage_spans(span, before, timings)
            self.end(span)


# ----------------------------------------------------------------------
# Chrome trace-event export


class TraceFormatError(ValueError):
    """An exported trace failed to parse or violated the event schema."""


def span_events(events: Sequence[Mapping]) -> list[dict]:
    """The ``span`` events of a parsed runlog/bus stream, in file order."""
    return [dict(e) for e in events if e.get("event") == "span"]


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise TraceFormatError(message)


def export_trace_events(events: Sequence[Mapping]) -> dict:
    """Chrome trace-event JSON (dict form) from runlog ``span`` events.

    Layout: one trace *process* per recording OS process — the process
    owning a ``sweep`` span is named ``parent``, every other one
    ``worker-<pid>`` — with the measured lifecycle spans
    (sweep/point/trial) nested on thread 0 (``lifecycle``) and each
    synthetic ``engine.*`` stage on its own thread lane (stages overlap
    by design, so same-lane nesting would be wrong).  Timestamps are
    microseconds relative to the earliest span start, which is what the
    ``X`` (complete) event phase expects.
    """
    spans = span_events(events)
    _require(bool(spans), "no span events to export")
    for i, span in enumerate(spans):
        for key in ("span_id", "name", "kind", "start_ts", "end_ts", "pid"):
            _require(key in span, f"span event #{i} is missing {key!r}")
        _require(
            isinstance(span["start_ts"], (int, float))
            and isinstance(span["end_ts"], (int, float)),
            f"span event #{i} has non-numeric timestamps",
        )
        _require(
            span["end_ts"] >= span["start_ts"],
            f"span event #{i} ({span['name']!r}) ends before it starts",
        )
        _require(
            span["kind"] in SPAN_KINDS,
            f"span event #{i} has unknown kind {span['kind']!r}",
        )

    origin = min(float(s["start_ts"]) for s in spans)
    parent_pids = {s["pid"] for s in spans if s["kind"] == "sweep"}
    stage_tids: dict[str, int] = {}
    for span in spans:
        if span["kind"] == "stage" and span["name"] not in stage_tids:
            stage_tids[span["name"]] = len(stage_tids) + 1

    trace_events: list[dict] = []
    for pid in sorted({s["pid"] for s in spans}):
        name = "parent" if pid in parent_pids else f"worker-{pid}"
        trace_events.append({
            "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
            "args": {"name": name},
        })
        trace_events.append({
            "ph": "M", "name": "thread_name", "pid": pid, "tid": 0,
            "args": {"name": "lifecycle"},
        })
    for stage, tid in sorted(stage_tids.items(), key=lambda kv: kv[1]):
        for pid in sorted({s["pid"] for s in spans if s["name"] == stage}):
            trace_events.append({
                "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                "args": {"name": stage},
            })

    for span in spans:
        tid = stage_tids.get(span["name"], 0) if span["kind"] == "stage" else 0
        args = {
            "span_id": span["span_id"],
            "parent_id": span.get("parent_id"),
            "trace_id": span.get("trace_id"),
        }
        args.update(span.get("attrs") or {})
        trace_events.append({
            "ph": "X",
            "name": span["name"],
            "cat": span["kind"],
            "pid": span["pid"],
            "tid": tid,
            "ts": round((float(span["start_ts"]) - origin) * 1e6, 3),
            "dur": round(
                (float(span["end_ts"]) - float(span["start_ts"])) * 1e6, 3
            ),
            "args": args,
        })
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_trace(events: Sequence[Mapping], path: pathlib.Path | str) -> pathlib.Path:
    """Export span events to a trace file, self-checking the round trip.

    The written JSON is re-parsed through :func:`parse_trace_events`
    before this returns — an export that the checker rejects never lands
    on disk half-written (mirrors the callgrind writer's discipline).
    """
    document = export_trace_events(events)
    text = json.dumps(document, indent=1, sort_keys=True)
    parse_trace_events(text)
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(text + "\n", encoding="utf-8")
    return target


def parse_trace_events(text: str) -> list[dict]:
    """Parse + schema-check Chrome trace JSON; returns the span records.

    The checker the format tests round-trip every export through.  Each
    returned record carries ``name`` / ``kind`` / ``pid`` / ``tid`` /
    ``start_us`` / ``dur_us`` / ``span_id`` / ``parent_id``.  Raises
    :class:`TraceFormatError` on malformed JSON, a missing
    ``traceEvents`` list, an unknown phase, a negative duration, an
    unknown span kind, or a dangling ``parent_id``.
    """
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise TraceFormatError(f"not valid JSON: {exc}") from exc
    _require(isinstance(document, dict), "trace document is not a JSON object")
    _require("traceEvents" in document, "trace document lacks 'traceEvents'")
    entries = document["traceEvents"]
    _require(isinstance(entries, list), "'traceEvents' is not a list")

    records: list[dict] = []
    for i, entry in enumerate(entries):
        _require(isinstance(entry, dict), f"trace event #{i} is not an object")
        phase = entry.get("ph")
        _require(phase in ("M", "X"), f"trace event #{i} has unknown phase {phase!r}")
        if phase == "M":
            _require(
                entry.get("name") in ("process_name", "thread_name"),
                f"metadata event #{i} has unknown name {entry.get('name')!r}",
            )
            _require(
                isinstance(entry.get("args", {}).get("name"), str),
                f"metadata event #{i} lacks args.name",
            )
            continue
        for key in ("name", "cat", "pid", "tid", "ts", "dur", "args"):
            _require(key in entry, f"trace event #{i} is missing {key!r}")
        _require(
            isinstance(entry["ts"], (int, float)) and entry["ts"] >= 0,
            f"trace event #{i} has bad ts {entry['ts']!r}",
        )
        _require(
            isinstance(entry["dur"], (int, float)) and entry["dur"] >= 0,
            f"trace event #{i} has bad dur {entry['dur']!r}",
        )
        _require(
            entry["cat"] in SPAN_KINDS,
            f"trace event #{i} has unknown span kind {entry['cat']!r}",
        )
        _require(
            isinstance(entry["args"].get("span_id"), str),
            f"trace event #{i} lacks args.span_id",
        )
        records.append({
            "name": entry["name"],
            "kind": entry["cat"],
            "pid": entry["pid"],
            "tid": entry["tid"],
            "start_us": float(entry["ts"]),
            "dur_us": float(entry["dur"]),
            "span_id": entry["args"]["span_id"],
            "parent_id": entry["args"].get("parent_id"),
        })

    known = {record["span_id"] for record in records}
    for record in records:
        parent = record["parent_id"]
        _require(
            parent is None or parent in known,
            f"span {record['span_id']} references unknown parent {parent!r}",
        )
    return records
