"""Up-front memory estimates for instrumentation that scales with n·steps.

A ``TraceLevel.FULL`` trace stores per-slot Python records whose size is
proportional to the number of (node, slot) events; dense per-node metric
tallies store one int64 cell per (trial, node).  At sweep scale both are
fine, but at the million-node scale the macro-step path unlocks they OOM
the process long after the run started — the worst possible failure mode.
These checks run in the drivers *before* any engine state is allocated and
raise a :class:`~repro.sim.errors.ConfigurationError` naming the estimated
footprint and the override, instead of dying mid-run.

Overrides: pass ``allow_large=True`` to the driver, or set the environment
variable ``REPRO_ALLOW_LARGE_MEMORY=1`` (useful for CLI runs on big boxes).
"""

from __future__ import annotations

import os

from .errors import ConfigurationError
from .trace import TraceLevel

__all__ = [
    "ALLOW_LARGE_ENV",
    "FULL_TRACE_CELL_LIMIT",
    "DENSE_METRICS_CELL_LIMIT",
    "check_memory_budget",
]

#: Environment override; any non-empty value other than "0" disables the guard.
ALLOW_LARGE_ENV = "REPRO_ALLOW_LARGE_MEMORY"

#: Maximum ``n * max_steps`` cells for a FULL trace before the guard trips.
#: 10^9 potential (node, slot) events estimate to roughly 8 GiB of trace
#: records — beyond what a run should allocate without an explicit opt-in.
FULL_TRACE_CELL_LIMIT = 1_000_000_000

#: Maximum ``trials * n`` cells for dense per-node metric tallies
#: (``transmissions_per_node``); 2^28 int64 cells are 2 GiB.
DENSE_METRICS_CELL_LIMIT = 1 << 28

#: Estimated bytes per FULL-trace (node, slot) cell.  Transmitter /
#: delivery / collision tuples hold boxed ints, so the true footprint is
#: workload-dependent; 8 bytes per potential cell is the deliberate
#: lower-bound estimate the error message reports.
_TRACE_BYTES_PER_CELL = 8

_METRICS_BYTES_PER_CELL = 8  # one int64 tally per (trial, node)


def _override_active() -> bool:
    value = os.environ.get(ALLOW_LARGE_ENV, "")
    return value not in ("", "0")


def check_memory_budget(
    n: int,
    max_steps: int,
    trace_level: TraceLevel = TraceLevel.NONE,
    trials: int = 1,
    dense_metrics: bool = False,
    allow_large: bool = False,
) -> None:
    """Refuse instrumentation whose estimated footprint exceeds the limits.

    Args:
        n: Network size.
        max_steps: The run's step budget (the resolved value, after
            ``default_max_steps``).
        trace_level: Requested trace detail; only ``FULL`` is guarded —
            ``PROGRESS`` stores one int per executed slot and never
            approaches these scales.
        trials: Batch width (1 for single runs).
        dense_metrics: Whether the driver would allocate per-node tallies
            (true exactly when a metrics registry was passed).
        allow_large: Caller override (``allow_large=True`` on the driver).

    Raises:
        ConfigurationError: With the estimated bytes and both overrides
            named, when a limit is exceeded and no override is active.
    """
    if allow_large or _override_active():
        return
    if trace_level is TraceLevel.FULL:
        cells = n * max_steps
        if cells > FULL_TRACE_CELL_LIMIT:
            est = cells * trials * _TRACE_BYTES_PER_CELL
            raise ConfigurationError(
                f"TraceLevel.FULL on n={n} with max_steps={max_steps} "
                f"(x{trials} trials) estimates to >= {est:,} bytes of trace "
                f"records (n * max_steps = {cells:,} cells, limit "
                f"{FULL_TRACE_CELL_LIMIT:,}). Lower max_steps, drop to "
                f"TraceLevel.PROGRESS, or override with allow_large=True "
                f"(or {ALLOW_LARGE_ENV}=1)."
            )
    if dense_metrics:
        cells = trials * n
        if cells > DENSE_METRICS_CELL_LIMIT:
            est = cells * _METRICS_BYTES_PER_CELL
            raise ConfigurationError(
                f"dense per-node metrics on n={n} with trials={trials} "
                f"estimate to {est:,} bytes of tallies (trials * n = "
                f"{cells:,} cells, limit {DENSE_METRICS_CELL_LIMIT:,}). "
                f"Run without a metrics registry, batch fewer trials, or "
                f"override with allow_large=True (or {ALLOW_LARGE_ENV}=1)."
            )
