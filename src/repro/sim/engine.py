"""Synchronous radio-channel engine (reference implementation).

Implements the model of Section 1.3 exactly:

* time proceeds in synchronous slots;
* in each slot a node either transmits or listens;
* a listening node receives a message iff **exactly one** of its
  in-neighbours transmits — two or more transmitters produce the same
  effect as silence (no collision detection);
* a transmitting node hears nothing in that slot (half-duplex);
* nodes that have not received the source message stay silent
  (no spontaneous transmissions) — enforced structurally: the engine does
  not even instantiate a node's protocol until the node is informed.

This engine executes arbitrary (interactive, message-driven) protocols.
For oblivious randomized algorithms a vectorised engine with identical
semantics lives in :mod:`repro.sim.fast`.
"""

from __future__ import annotations

import random
import time
from typing import Callable

from ..obs.metrics import COUNT_BUCKETS, MetricsRegistry
from ..obs.timings import Timings
from .coins import derive_node_rng
from .errors import ConfigurationError
from .faults import FaultCounters, FaultPlan, NEVER, derive_fault_seed, scalar_loss_coin
from .messages import Message
from .network import RadioNetwork
from .protocol import BroadcastAlgorithm, Protocol
from .trace import Trace, TraceLevel

__all__ = ["SynchronousEngine"]


class SynchronousEngine:
    """Steps one broadcast execution over a :class:`RadioNetwork`.

    The engine is restartable only by constructing a new instance; protocol
    objects are stateful and tied to one execution.

    Args:
        network: The topology to run on.
        algorithm: Factory producing each node's protocol.
        seed: Master seed; node ``v`` receives the RNG
            ``random.Random(f"{seed}:{v}")`` so runs are reproducible and
            node randomness is independent of activation order.
        trace_level: How much channel detail to record.
        step_hook: Optional callback ``(step, transmitters)`` invoked after
            each slot; used by tests and the adversary verifier.
        collision_detection: Model *variant* (not the paper's model): when
            True, awake listeners observe
            :data:`~repro.sim.messages.COLLISION_MARKER` on a collision
            instead of ``None``.  Sleeping nodes are unaffected — a
            collision carries no content, so it cannot inform.  Used by
            the Section 4.1 ablation that measures what simulating
            collision detection with Echo costs.
        faults: Optional :class:`~repro.sim.faults.FaultPlan` applied to
            this execution (crashes, jamming, message loss, wake delays).
            Semantics are identical on the vectorised engines — the
            differential suite asserts bit-identical faulty executions.
        metrics: Optional :class:`~repro.obs.metrics.MetricsRegistry`; when
            given the engine counts slots, transmissions, and collisions
            per slot.  Purely observational — the execution is identical
            with or without it.
        timings: Optional :class:`~repro.obs.timings.Timings` accumulating
            wall-clock per stage (``engine.actions``, ``engine.channel``,
            ``engine.step``).
    """

    def __init__(
        self,
        network: RadioNetwork,
        algorithm: BroadcastAlgorithm,
        seed: int = 0,
        trace_level: TraceLevel = TraceLevel.NONE,
        step_hook: Callable[[int, tuple[int, ...]], None] | None = None,
        collision_detection: bool = False,
        faults: FaultPlan | None = None,
        metrics: MetricsRegistry | None = None,
        timings: Timings | None = None,
    ) -> None:
        self.network = network
        self.algorithm = algorithm
        self.seed = seed
        self.trace = Trace(level=trace_level)
        self.trace.mark_initially_informed(network.source)
        self.step_hook = step_hook
        self.collision_detection = collision_detection
        self.step = 0
        self.timings = timings
        self.metrics = metrics
        self._tx_counts: dict[int, int] | None = {} if metrics is not None else None
        if metrics is not None:
            # Instruments are resolved once here, not per slot.
            self._slots_counter = metrics.counter("engine_slots")
            self._tx_counter = metrics.counter("engine_transmissions")
            self._collision_hist = metrics.histogram(
                "collisions_per_slot", COUNT_BUCKETS
            )
        self.faults = faults
        self.fault_counters: FaultCounters | None = None
        self._crash_slots: dict[int, int] = {}
        self._crashes_by_slot: dict[int, int] = {}
        self._deaf_until: dict[int, int] = {}
        self._jams_by_slot: dict[int, frozenset[int]] = {}
        self._loss_probability = 0.0
        self._fault_seed = 0
        if faults is not None:
            faults.validate_for(network)
            self.fault_counters = FaultCounters()
            self.trace.fault_counters = self.fault_counters
            self._crash_slots = dict(faults.crashes)
            for _, slot in faults.crashes:
                self._crashes_by_slot[slot] = self._crashes_by_slot.get(slot, 0) + 1
            self._deaf_until = dict(faults.wake_delays)
            jams: dict[int, set[int]] = {}
            for slot, receiver in faults.jams:
                jams.setdefault(slot, set()).add(receiver)
            self._jams_by_slot = {slot: frozenset(rs) for slot, rs in jams.items()}
            self._loss_probability = faults.loss_probability
            self._fault_seed = derive_fault_seed(faults.seed, seed)
        #: label -> live protocol instance; only informed nodes appear here.
        self.protocols: dict[int, Protocol] = {}
        #: label -> step at which the node was informed (source: -1).
        self.wake_times: dict[int, int] = {}
        self._wake(network.source, step=-1, message=None)

    # ------------------------------------------------------------------

    @property
    def informed_count(self) -> int:
        """How many nodes currently hold the source message."""
        return len(self.protocols)

    @property
    def all_informed(self) -> bool:
        """Whether broadcasting has completed."""
        return len(self.protocols) == self.network.n

    @property
    def all_settled(self) -> bool:
        """Whether no further wake-up is possible.

        Without crashes this is :attr:`all_informed`.  With crashes, a
        node that crashed while still asleep can never be informed, so
        the run is *settled* (and may stop) once every node is either
        informed or dead.
        """
        if not self._crash_slots:
            return self.all_informed
        step = self.step
        for label in self.network.nodes:
            if label in self.protocols:
                continue
            if self._crash_slots.get(label, NEVER) > step:
                return False
        return True

    def _dead(self, label: int, step: int) -> bool:
        return self._crash_slots.get(label, NEVER) <= step

    def _make_rng(self, label: int) -> random.Random:
        # Shared derivation (repro.sim.coins via repro.sim.run): the same
        # helper seeds the fast engines' coin keys, so all execution paths
        # flip identical coins.
        return derive_node_rng(self.seed, label)

    def _wake(self, label: int, step: int, message: Message | None) -> None:
        protocol = self.algorithm.create(label, self.network.r, self._make_rng(label))
        protocol.wake_step = step
        self.protocols[label] = protocol
        self.wake_times[label] = step
        protocol.on_wake(step, message)

    # ------------------------------------------------------------------

    def run_step(self) -> tuple[int, ...]:
        """Execute one slot; returns the labels that transmitted.

        The slot proceeds in three phases: collect actions from awake
        nodes, resolve the channel (hit counting with the exactly-one rule),
        then deliver observations and wake newly informed nodes.  Nodes
        woken in this slot first *act* in the next slot, matching the
        paper's convention that a node informed during stage ``i`` starts
        transmitting in stage ``i + 1`` at the earliest.
        """
        step = self.step
        out_neighbors = self.network.out_neighbors
        timings = self.timings
        t_start = time.perf_counter() if timings is not None else 0.0
        faulty = self.faults is not None
        jam_set: frozenset[int] = frozenset()
        if faulty:
            counters = self.fault_counters
            counters.crashed_nodes += self._crashes_by_slot.get(step, 0)
            jam_set = self._jams_by_slot.get(step, frozenset())
            counters.jammed_slots += len(jam_set)

        transmissions: dict[int, Message] = {}
        for label, protocol in self.protocols.items():
            if faulty and self._dead(label, step):
                continue  # crashed nodes are silent forever
            payload = protocol.next_action(step)
            if payload is not None:
                transmissions[label] = Message(sender=label, payload=payload)

        if timings is not None:
            t_actions = time.perf_counter()
            timings.add("engine.actions", t_actions - t_start)

        # Channel resolution: count transmitting in-neighbours per receiver.
        hits: dict[int, int] = {}
        incoming: dict[int, Message] = {}
        for sender, message in transmissions.items():
            for receiver in out_neighbors[sender]:
                hits[receiver] = hits.get(receiver, 0) + 1
                incoming[receiver] = message

        deliveries: dict[int, int] = {}
        woken: list[int] = []
        collisions: list[int] = []
        collided_listeners: set[int] = set()
        record_full = self.trace.level is TraceLevel.FULL
        for receiver, count in hits.items():
            if receiver in transmissions:
                continue  # half-duplex: transmitters hear nothing
            if faulty and self._dead(receiver, step):
                continue  # crashed nodes receive nothing
            if count == 1:
                # Fault pipeline on a would-be delivery: jam, then loss,
                # then wake-delay; the first suppressing stage wins.
                if receiver in jam_set:
                    continue  # jammed: noise, indistinguishable from silence
                if (
                    self._loss_probability > 0.0
                    and scalar_loss_coin(self._fault_seed, receiver, step)
                    < self._loss_probability
                ):
                    counters.lost_messages += 1
                    continue
                message = incoming[receiver]
                protocol = self.protocols.get(receiver)
                if protocol is None:
                    if faulty and step < self._deaf_until.get(receiver, 0):
                        counters.delayed_wakes += 1
                        continue  # wake-up delayed: the message is ignored
                    deliveries[receiver] = message.sender
                    self._wake(receiver, step, message)
                    woken.append(receiver)
                else:
                    deliveries[receiver] = message.sender
                    protocol.observe(step, message)
            else:
                if record_full:
                    collisions.append(receiver)
                # Model variant: collision detection lets awake listeners
                # see the collision (it still carries no content, so it
                # never wakes a sleeper).
                if self.collision_detection and receiver in self.protocols:
                    collided_listeners.add(receiver)

        # Nodes that were awake and did not successfully receive observe
        # None (or the collision marker under the CD variant).
        from .messages import COLLISION_MARKER

        for label, protocol in list(self.protocols.items()):
            if self.wake_times[label] == step:
                continue  # just woken; on_wake already saw the message
            if faulty and self._dead(label, step):
                continue  # crashed nodes observe nothing
            if label not in deliveries:
                protocol.observe(
                    step, COLLISION_MARKER if label in collided_listeners else None
                )

        if timings is not None:
            t_channel = time.perf_counter()
            timings.add("engine.channel", t_channel - t_actions)
            timings.add("engine.step", t_channel - t_start)
        if self.metrics is not None:
            self._slots_counter.inc()
            self._tx_counter.inc(len(transmissions))
            tx_counts = self._tx_counts
            for label in transmissions:
                tx_counts[label] = tx_counts.get(label, 0) + 1
            # Same collision definition as the fast engines: receivers
            # with >= 2 transmitting in-neighbours that are not
            # themselves transmitting (dead receivers included).
            self._collision_hist.observe(
                sum(
                    1
                    for receiver, count in hits.items()
                    if count >= 2 and receiver not in transmissions
                )
            )

        transmitter_labels = tuple(sorted(transmissions))
        if self.trace.level is not TraceLevel.NONE:
            self.trace.record(
                step=step,
                transmitters=transmitter_labels,
                deliveries=deliveries,
                collisions=tuple(sorted(collisions)),
                woken=tuple(sorted(woken)),
                informed=self.informed_count,
            )
        if self.step_hook is not None:
            self.step_hook(step, transmitter_labels)
        self.step += 1
        return transmitter_labels

    def run(self, max_steps: int, stop_when_informed: bool = True) -> int:
        """Run until completion or the step limit.

        Args:
            max_steps: Hard cap on the number of slots to execute.
            stop_when_informed: Stop as soon as every node is informed —
                or, under a fault plan with crashes, as soon as every
                node is informed *or irrecoverably dead* (the usual
                broadcasting-time measurement).  When False the engine
                always executes exactly ``max_steps`` slots, which some
                fixed-schedule algorithms need.

        Returns:
            The number of slots executed.
        """
        if max_steps < 0:
            raise ConfigurationError(f"max_steps must be non-negative, got {max_steps}")
        executed = 0
        while executed < max_steps:
            if stop_when_informed and self.all_settled:
                break
            self.run_step()
            executed += 1
        return executed

    def transmission_counts(self) -> list[int] | None:
        """Per-node transmission tallies (label order), or ``None``.

        Only tracked when the engine was constructed with ``metrics``;
        uninstrumented runs pay nothing for it.
        """
        if self._tx_counts is None:
            return None
        return [self._tx_counts.get(label, 0) for label in self.network.nodes]

    @property
    def completion_time(self) -> int | None:
        """Broadcasting time: slots needed until the last node was informed.

        A node woken in slot ``t`` (0-based) was informed after ``t + 1``
        slots.  ``None`` while some node is still uninformed.  Zero for the
        degenerate single-node network.
        """
        if not self.all_informed:
            return None
        latest = max(self.wake_times.values())
        return latest + 1  # source has wake time -1 -> contributes 0
