"""E11 (extension) — oblivious-schedule lower bounds via the pair-layer
adversary: round-robin pays Theta(r) per layer, selective families ~log n.

Logic in :mod:`repro.experiments.e11_oblivious_adversary`.
"""

from __future__ import annotations

from repro.experiments import get_experiment


def test_e11(benchmark, table_reporter):
    report = get_experiment("e11")()
    for table in report.tables:
        table_reporter.record("e11", table)
    table_reporter.record(
        "e11",
        "\n".join(
            f"[{'PASS' if claim.holds else 'FAIL'}] {claim.description}"
            + (f"  ({claim.details})" if claim.details else "")
            for claim in report.claims
        ),
    )
    assert report.ok, report.render()

    from repro.adversary.oblivious import ObliviousLayerAdversary
    from repro.baselines import RoundRobinBroadcast

    benchmark.pedantic(
        lambda: ObliviousLayerAdversary(RoundRobinBroadcast(255), 256, 8).build(),
        rounds=3, iterations=1,
    )
