"""Experiment runners: one module per paper claim (see DESIGN.md, Section 4).

Each experiment exposes ``run(quick=False) -> ExperimentReport``; the
registry powers both the benchmark suite (``benchmarks/``, which asserts
``report.ok``) and the CLI (``repro experiment e1 [--quick]``).
"""

from . import (  # noqa: F401, I001  (registration side effects; natural order)
    e1_randomized_vs_bgi,
    e2_scaling_fit,
    e3_lower_bound,
    e4_select_and_send,
    e5_complete_layered,
    e6_interleaving,
    e7_universal_sequence,
    e8_layered_hardness,
    e9_ablation,
    e10_echo,
    e11_oblivious_adversary,
    e12_fault_tolerance,
)
from .base import Claim, ExperimentReport, all_experiments, get_experiment

__all__ = [
    "Claim",
    "ExperimentReport",
    "all_experiments",
    "get_experiment",
]
