"""Multi-slot macro-step execution for oblivious algorithms.

The per-slot cost of :class:`~repro.sim.fast.FastEngine` has two parts
that stop mattering being cheap at 10^5-10^6 nodes: a dense O(n) coin /
mask evaluation per slot, and an O(E) sparse matrix-vector product per
slot — paid even in slots where three nodes transmit.  This module
removes both:

* **Macro plans.**  An oblivious schedule's slot decisions depend only on
  ``(step, label, wake slot, coins)``.  For the schedules in this repo
  the dependence is even simpler — each slot is a *probability* plus a
  *wake-eligibility threshold* (KP stages: "informed before the stage
  began"), or a single deterministic label (round-robin, the source
  slot).  :class:`MacroPlan` encodes ``K`` slots of that structure at
  once; algorithms expose it via an optional ``macro_plan(start, count,
  r)`` hook (see :class:`~repro.core.randomized.KnownRadiusKP`,
  :class:`~repro.baselines.round_robin.RoundRobinBroadcast`).  Algorithms
  without the hook fall back to per-slot ``transmit_mask`` — same
  results, just without the batch decode.

* **Sparse channel resolution.**  Instead of a dense mask and an O(E)
  product, the engine keeps the awake set as a wake-ordered index list:
  the eligible set of a slot is a binary-searched *prefix*, coins are
  flipped only for eligible nodes
  (:meth:`~repro.sim.coins.CoinSource.uniform_at` — bit-identical to the
  dense flips), and the channel is resolved by gathering only the
  transmitters' CSR neighbour lists: O(sum deg(tx)) instead of O(E).

Two interchangeable backends execute a block: the pure-numpy
implementation (always available) and an optional numba ``@njit`` kernel
(:mod:`repro.sim._kernels`) that fuses the whole block into one compiled
call.  ``backend="auto"`` picks numba when importable; both are held to
bit-identity by the conformance suite.

Instrumented runs (fault plans, metrics, traces, timings) execute on
:class:`~repro.sim.fast.FastEngine` with the macro plan *adapted back*
into dense per-slot masks — one code path owns the fault/trace
semantics, and the conformance matrix exercises the plan decode against
the reference engine under every plan/trace combination.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from ..obs.metrics import MetricsRegistry
from ..obs.spans import SpanRecorder
from ..obs.timings import Timings
from .channel import ChannelKernel
from .coins import CoinSource, _step_salt
from .errors import ConfigurationError
from .fast import ASLEEP, VectorizedAlgorithm, _check_vectorized, run_broadcast_fast
from .faults import FaultPlan
from .guard import check_memory_budget
from .run import BroadcastResult, _layer_times_for, default_max_steps
from .trace import Trace, TraceLevel

__all__ = [
    "ELIGIBLE_ANY_AWAKE",
    "MacroPlan",
    "MacroStepEngine",
    "run_broadcast_macro",
    "resolve_macro_backend",
]

#: Eligibility sentinel: every *awake* node qualifies.  Sleepers carry
#: ``wake == ASLEEP`` and ``ASLEEP < ASLEEP`` is false, so the plan rule
#: ``wake < elig`` degenerates to plain awakeness at this value.
ELIGIBLE_ANY_AWAKE: int = ASLEEP

#: Environment override for the default backend selection ("numpy" or
#: "numba"); the CI numba leg forces the JIT path with it.
BACKEND_ENV = "REPRO_MACRO_BACKEND"


@dataclass(frozen=True)
class MacroPlan:
    """``count`` precomputed slots of an oblivious schedule.

    Slot ``j`` (global step ``start + j``) is one of three shapes,
    checked in order:

    * ``single[j] >= 0`` — only the node with that *label* transmits,
      and only if its wake slot is below ``elig[j]`` (deterministic solo
      slots: round-robin, the KP source slot).
    * ``probs[j] < 0`` — silence.
    * otherwise — every node with ``wake < elig[j]`` transmits when its
      slot coin is below ``probs[j]`` (``probs[j] >= 1``: always).

    ``elig[j]`` is the only wake-dependent part of a slot's decision,
    which is what makes precomputing ``K`` slots sound: probabilities and
    labels never depend on the state evolving inside the block, and the
    engine applies the threshold per slot against the live wake array.
    Use :data:`ELIGIBLE_ANY_AWAKE` when any awake node qualifies.
    """

    start: int
    probs: np.ndarray
    elig: np.ndarray
    single: np.ndarray

    def __len__(self) -> int:
        return len(self.probs)


def resolve_macro_backend(backend: str = "auto") -> str:
    """Resolve ``"auto"`` to a concrete backend name.

    ``"auto"`` honours :data:`BACKEND_ENV` when set, else picks
    ``"numba"`` exactly when numba is importable.  Requesting
    ``"numba"`` without numba installed is a configuration error, never a
    silent fallback.
    """
    from . import _kernels

    if backend == "auto":
        backend = os.environ.get(BACKEND_ENV, "") or "auto"
    if backend == "auto":
        return "numba" if _kernels.HAVE_NUMBA else "numpy"
    if backend not in ("numpy", "numba"):
        raise ConfigurationError(
            f"unknown macro backend {backend!r}; expected 'auto', 'numpy' or 'numba'"
        )
    if backend == "numba" and not _kernels.HAVE_NUMBA:
        raise ConfigurationError(
            "macro backend 'numba' requested but numba is not importable; "
            "install numba or use backend='numpy'"
        )
    return backend


class _PlanAdaptedAlgorithm:
    """Serve a macro plan back as dense per-slot ``transmit_mask`` calls.

    Instrumented macro runs execute on :class:`~repro.sim.fast.FastEngine`
    with the algorithm wrapped in this adapter, so the *plan decode* —
    not the original ``transmit_mask`` — is what the conformance matrix
    holds to reference identity under faults and FULL traces.  The dense
    masks it produces equal the original ``transmit_mask`` masks after
    the engine's ``& awake`` (eligibility implies awakeness; solo labels
    are masked identically).
    """

    def __init__(self, inner: VectorizedAlgorithm, block_size: int):
        self._inner = inner
        self._block = block_size
        self._plan: MacroPlan | None = None
        self.name = inner.name
        self.deterministic = inner.deterministic

    def max_steps_hint(self, n: int, r: int) -> int | None:
        hint = getattr(self._inner, "max_steps_hint", None)
        return hint(n, r) if hint is not None else None

    def reset_run(self, n: int) -> None:
        self._plan = None
        reset = getattr(self._inner, "reset_run", None)
        if reset is not None:
            reset(n)

    def transmit_mask(self, step, labels, wake_steps, r, coins):
        plan = self._plan
        if plan is None or not plan.start <= step < plan.start + len(plan):
            plan = self._inner.macro_plan(step, self._block, r)
            self._plan = plan
        if plan is None:  # the hook declined this block
            return self._inner.transmit_mask(step, labels, wake_steps, r, coins)
        j = step - plan.start
        s = plan.single[j]
        if s >= 0:
            return (labels == s) & (wake_steps < plan.elig[j])
        p = plan.probs[j]
        if p < 0.0:
            return np.zeros(wake_steps.shape, dtype=bool)
        eligible = wake_steps < plan.elig[j]
        if p >= 1.0:
            return eligible
        return eligible & (coins.uniform(step) < p)


class MacroStepEngine:
    """Sparse macro-step engine for plain (uninstrumented) runs.

    Executes ``block_size`` slots per macro step with no per-slot Python
    dispatch into the algorithm (when it provides ``macro_plan``),
    settle-checks inside the block, and resolves the channel by
    transmitter gather.  Produces exactly the wake slots of
    ``FastEngine(network, algorithm, seed)`` — asserted by the
    conformance suite and the large-n spot checks.

    Args:
        network: Topology — a :class:`~repro.sim.network.RadioNetwork`
            or a CSR-native :class:`~repro.topology.csr.CSRNetwork`.
        algorithm: An oblivious :class:`~repro.sim.fast.VectorizedAlgorithm`.
        seed: Master seed (same coin streams as every other engine).
        block_size: Macro-step width ``K``.  Results never depend on it
            (hypothesis-tested); it only trades plan-decode batching
            against wasted decode past the settle slot.
        backend: ``"numpy"`` or ``"numba"`` (resolved; see
            :func:`resolve_macro_backend`).
    """

    def __init__(
        self,
        network,
        algorithm: VectorizedAlgorithm,
        seed: int = 0,
        block_size: int = 64,
        backend: str = "numpy",
    ):
        _check_vectorized(algorithm)
        if block_size < 1:
            raise ConfigurationError(f"block_size must be positive, got {block_size}")
        self.network = network
        self.algorithm = algorithm
        self.seed = seed
        self.block_size = block_size
        self.backend = backend
        kernel = ChannelKernel(network)
        self.kernel = kernel
        self.labels = kernel.labels
        self._index = kernel.index
        self.coins = CoinSource.for_run(seed, self.labels)
        n = network.n
        self.n = n
        self.wake_steps = np.full(n, ASLEEP, dtype=np.int64)
        source_idx = kernel.index[network.source]
        self.wake_steps[source_idx] = -1
        # The awake set as a wake-ordered index list: entries are appended
        # in wake order, so wake values are non-decreasing and the
        # eligible set of any threshold is a binary-searched prefix.
        self._awake_idx = np.empty(n, dtype=np.int64)
        self._awake_wakes = np.empty(n, dtype=np.int64)
        self._awake_idx[0] = source_idx
        self._awake_wakes[0] = -1
        self._awake_count = 1
        # Receiver-side resolution state (see _resolve_receiver_side):
        # the sorted sleeper list plus its flattened neighbour gather,
        # refreshed lazily whenever nodes have woken since the last sync.
        self._asleep_idx = np.delete(np.arange(n, dtype=np.int64), source_idx)
        self._sleeper_sync = -1
        self._avg_deg = kernel.indices.size / max(1, n)
        # Receiver-side counting reads a sleeper's *out*-neighbour row as
        # its in-neighbour list, which is only sound on symmetric
        # adjacency — i.e. CSR-native topologies (undirected by
        # construction).  Possibly-directed RadioNetworks stay on the
        # transmitter-side path.
        self._rx_ok = getattr(network, "csr_arrays", None) is not None
        self.step = 0
        self._plan_hook = getattr(algorithm, "macro_plan", None)
        if backend == "numba":
            # JIT scratch: hit counts (kept all-zero between blocks) and
            # the touched-node compaction buffer.
            self._counts = np.zeros(n, dtype=np.int64)
            self._touched = np.empty(n, dtype=np.int64)
        reset = getattr(algorithm, "reset_run", None)
        if reset is not None:
            reset(n)
        self.trace = Trace(level=TraceLevel.NONE)
        self.trace.mark_initially_informed(network.source)

    # -- result surface (FastEngine-compatible) ---------------------------

    @property
    def all_informed(self) -> bool:
        return self._awake_count == self.n

    @property
    def informed_count(self) -> int:
        return self._awake_count

    @property
    def completion_time(self) -> int | None:
        if not self.all_informed:
            return None
        return int(self._awake_wakes[self._awake_count - 1]) + 1

    def wake_times(self) -> dict[int, int]:
        # tolist() first: zipping Python ints is several times faster than
        # iterating numpy scalars, and at macro scale this dict is the
        # single most expensive piece of result assembly.
        steps = self.wake_steps.tolist()
        labels = self.labels.tolist()
        if self._awake_count == self.n:
            return dict(zip(labels, steps))
        asleep = int(ASLEEP)
        return {
            label: ws for label, ws in zip(labels, steps) if ws != asleep
        }

    def transmission_counts(self) -> None:
        return None  # plain runs are never instrumented

    # -- execution ---------------------------------------------------------

    def run(self, max_steps: int) -> int:
        """Run until every node is informed or the limit; returns slots
        executed (identical to ``FastEngine.run`` with settle-stop)."""
        executed = 0
        while executed < max_steps and self._awake_count < self.n:
            count = min(self.block_size, max_steps - executed)
            plan = (
                self._plan_hook(self.step, count, self.network.r)
                if self._plan_hook is not None
                else None
            )
            if plan is not None:
                ran = self._run_plan_block(plan, count)
            else:
                ran = self._run_fallback_block(count)
            executed += ran
        return executed

    def _run_plan_block(self, plan: MacroPlan, count: int) -> int:
        if self.backend == "numba":
            return self._run_plan_block_numba(plan, count)
        wake = self.wake_steps
        probs, elig, single = plan.probs, plan.elig, plan.single
        executed = 0
        # Eligible-prefix cache: within a KP stage the threshold — and
        # hence the prefix — is constant (nodes woken mid-stage carry
        # wake >= the threshold), so the keys gather amortises across the
        # stage's slots.
        cached_k = -1
        cached_cand = None
        cached_keys = None
        for j in range(count):
            if self._awake_count == self.n:
                break
            step = self.step
            self.step += 1
            executed += 1
            tx = None
            s = single[j]
            if s >= 0:
                idx = self._index.get(int(s))
                if idx is not None and wake[idx] < elig[j]:
                    tx = np.array([idx], dtype=np.int64)
            elif probs[j] >= 0.0:
                p = probs[j]
                k = int(
                    np.searchsorted(
                        self._awake_wakes[: self._awake_count], elig[j], side="left"
                    )
                )
                if k == 0:
                    continue
                # Pick the cheaper side of the channel: transmitter-side
                # work scales with the eligible set and its edges (coins
                # for k nodes, a gather of ~p * k * avg_deg edges, a full-n
                # bincount); receiver-side work scales with the sleepers'
                # edges only — and only sleepers can wake.  Early in the
                # run the eligible set is tiny, late in the run the
                # sleeper set is.
                est_tx = k + p * k * self._avg_deg + 0.5 * self.n
                est_rx = 3.0 * (self.n - self._awake_count) * self._avg_deg
                if self._rx_ok and est_rx < est_tx:
                    self._resolve_receiver_side(p, int(elig[j]), step)
                    continue
                if k != cached_k:
                    cached_k = k
                    cached_cand = self._awake_idx[:k]
                    cached_keys = self.coins._keys[cached_cand]
                if p >= 1.0:
                    tx = cached_cand
                else:
                    flips = self.coins.uniform_keys(step, cached_keys)
                    tx = cached_cand[flips < p]
            if tx is not None and tx.size:
                self._resolve_and_wake(tx, step)
        return executed

    def _run_plan_block_numba(self, plan: MacroPlan, count: int) -> int:
        from ._kernels import run_plan_block

        # Solo slots carry labels; the kernel wants indices (-1: silent,
        # including labels no node holds).
        single_idx = np.full(count, -1, dtype=np.int64)
        for j in range(count):
            s = plan.single[j]
            if s >= 0:
                idx = self._index.get(int(s))
                if idx is not None:
                    single_idx[j] = idx
        salts = np.array(
            [_step_salt(self.step + j) for j in range(count)], dtype=np.uint64
        )
        executed, awake_count = run_plan_block(
            self.kernel.indptr,
            self.kernel.indices,
            self.wake_steps,
            self._awake_idx,
            self._awake_wakes,
            self._awake_count,
            self.coins._keys,
            self.step,
            salts,
            np.ascontiguousarray(plan.probs, dtype=np.float64),
            np.ascontiguousarray(plan.elig, dtype=np.int64),
            single_idx,
            self._counts,
            self._touched,
        )
        self.step += int(executed)
        self._awake_count = int(awake_count)
        return int(executed)

    def _run_fallback_block(self, count: int) -> int:
        """Per-slot fallback for algorithms without ``macro_plan`` —
        dense decisions, sparse channel."""
        executed = 0
        for _ in range(count):
            if self._awake_count == self.n:
                break
            step = self.step
            self.step += 1
            executed += 1
            mask = self.algorithm.transmit_mask(
                step, self.labels, self.wake_steps, self.network.r, self.coins
            )
            mask = np.asarray(mask, dtype=bool) & (self.wake_steps != ASLEEP)
            tx = np.flatnonzero(mask)
            if tx.size:
                self._resolve_and_wake(tx, step)
        return executed

    def _resolve_and_wake(self, tx: np.ndarray, step: int) -> None:
        """Exactly-one resolution over the transmitters' neighbour lists."""
        indptr, indices = self.kernel.indptr, self.kernel.indices
        if tx.size == 1:
            t = int(tx[0])
            cat = indices[indptr[t]:indptr[t + 1]]
        else:
            starts = indptr[tx]
            lengths = indptr[tx + 1] - starts
            total = int(lengths.sum())
            if total == 0:
                return
            cum = np.cumsum(lengths) - lengths
            pos = np.arange(total, dtype=np.int64) + np.repeat(starts - cum, lengths)
            cat = indices[pos]
        if cat.size == 0:
            return
        wake = self.wake_steps
        if cat.size >= self.n // 8:
            hits = np.bincount(cat, minlength=self.n)
            # Unique hearers first, then filter by sleep state: once most
            # of the network is awake the unique-hit set is small, so the
            # wake filter touches far fewer than n entries.
            once = np.flatnonzero(hits == 1)
            newly = once[wake[once] == ASLEEP]
        else:
            uniq, cnt = np.unique(cat, return_counts=True)
            once = uniq[cnt == 1]
            newly = once[wake[once] == ASLEEP]
        if newly.size:
            self._append_newly(newly, step)

    # -- receiver-side resolution ------------------------------------------

    def _sync_sleepers(self) -> None:
        """Refresh the sleeper list and its cached neighbour gather.

        The gather (``cat``: the concatenation of every sleeper's
        neighbour list, with ``cum`` segment offsets and the matching coin
        keys) is immutable between wake events, so consecutive
        receiver-side slots reuse it and pay only the per-slot transmit
        test.
        """
        if self._sleeper_sync == self._awake_count:
            return
        indptr, indices = self.kernel.indptr, self.kernel.indices
        s = self._asleep_idx
        s = s[self.wake_steps[s] == ASLEEP]
        self._asleep_idx = s
        starts = indptr[s]
        lengths = indptr[s + 1] - starts
        total = int(lengths.sum())
        cum = np.cumsum(lengths) - lengths
        pos = np.arange(total, dtype=np.int64) + np.repeat(starts - cum, lengths)
        self._sleeper_cum = cum
        self._sleeper_cat = indices[pos]
        self._sleeper_keys = self.coins._keys[self._sleeper_cat]
        self._sleeper_elig_cache = (None, None)
        self._sleeper_sync = self._awake_count

    def _resolve_receiver_side(self, p: float, elig: int, step: int) -> None:
        """One slot resolved from the sleepers' side of the channel.

        For each sleeper, count transmitting in-neighbours directly:
        a neighbour transmits iff it woke before ``elig`` and its slot
        coin passes.  Exactly the same transmit predicate as the
        transmitter-side path (coins are pure per-(node, slot)
        functions), evaluated only where a wake event is possible.
        """
        self._sync_sleepers()
        s = self._asleep_idx
        if s.size == 0:
            return
        cached_elig, cached_mask = self._sleeper_elig_cache
        if cached_elig != elig:
            cached_mask = self.wake_steps[self._sleeper_cat] < elig
            self._sleeper_elig_cache = (elig, cached_mask)
        if p >= 1.0:
            vt = cached_mask
        else:
            vt = cached_mask & (
                self.coins.uniform_keys(step, self._sleeper_keys) < p
            )
        counts = np.add.reduceat(vt.astype(np.int64), self._sleeper_cum)
        newly = s[counts == 1]
        if newly.size:
            self._append_newly(newly, step)

    def _append_newly(self, newly: np.ndarray, step: int) -> None:
        self.wake_steps[newly] = step
        count = self._awake_count
        self._awake_idx[count:count + newly.size] = newly
        self._awake_wakes[count:count + newly.size] = step
        self._awake_count = count + newly.size


def run_broadcast_macro(
    network,
    algorithm: VectorizedAlgorithm,
    seed: int = 0,
    max_steps: int | None = None,
    faults: FaultPlan | None = None,
    metrics: MetricsRegistry | None = None,
    timings: Timings | None = None,
    spans: SpanRecorder | None = None,
    trace_level: TraceLevel = TraceLevel.NONE,
    block_size: int = 64,
    backend: str = "auto",
    allow_large: bool = False,
) -> BroadcastResult:
    """Macro-step counterpart of :func:`~repro.sim.fast.run_broadcast_fast`.

    Bit-identical results (asserted by the conformance suite); the
    execution strategy depends on the requested instrumentation:

    * **Plain runs** (no faults, metrics, traces, timings or spans)
      execute on :class:`MacroStepEngine` — the compiled path this module
      exists for, on the numpy or numba backend per ``backend``.
    * **Instrumented runs** execute on
      :class:`~repro.sim.fast.FastEngine` with the macro plan adapted
      back into dense masks, so fault/trace/metric semantics live in
      exactly one engine and the plan decode itself is conformance-tested
      under every fault and trace combination.

    Args:
        network: Topology — :class:`~repro.sim.network.RadioNetwork` or
            :class:`~repro.topology.csr.CSRNetwork`.
        algorithm: Oblivious :class:`~repro.sim.fast.VectorizedAlgorithm`;
            the optional ``macro_plan`` hook unlocks the batch decode,
            anything else runs on the per-slot fallback.
        seed / max_steps / faults / metrics / timings / spans /
            trace_level: As in :func:`~repro.sim.fast.run_broadcast_fast`.
        block_size: Macro-step width ``K`` (results never depend on it).
        backend: ``"auto"`` (default; numba when importable, overridable
            via ``REPRO_MACRO_BACKEND``), ``"numpy"`` or ``"numba"``.
        allow_large: Skip the
            :func:`~repro.sim.guard.check_memory_budget` estimate guard.
    """
    _check_vectorized(algorithm)
    if max_steps is None:
        max_steps = default_max_steps(network, algorithm)
    check_memory_budget(
        network.n, max_steps, trace_level,
        dense_metrics=metrics is not None, allow_large=allow_large,
    )
    backend = resolve_macro_backend(backend)
    instrumented = (
        faults is not None
        or metrics is not None
        or timings is not None
        or spans is not None
        or trace_level is not TraceLevel.NONE
    )
    if instrumented:
        algo = (
            _PlanAdaptedAlgorithm(algorithm, block_size)
            if getattr(algorithm, "macro_plan", None) is not None
            else algorithm
        )
        return run_broadcast_fast(
            network, algo, seed=seed, max_steps=max_steps, faults=faults,
            metrics=metrics, timings=timings, spans=spans,
            trace_level=trace_level, allow_large=True,  # guarded above
        )
    engine = MacroStepEngine(
        network, algorithm, seed=seed, block_size=block_size, backend=backend
    )
    engine.run(max_steps)
    completed = engine.all_informed
    time = engine.completion_time if completed else engine.step
    wake_times = engine.wake_times()
    return BroadcastResult(
        completed=completed,
        time=time,
        informed=engine.informed_count,
        n=network.n,
        radius=network.radius,
        algorithm=algorithm.name,
        seed=seed,
        wake_times=wake_times,
        layer_times=_layer_times_for(network, wake_times, engine.wake_steps),
        trace=engine.trace,
        fault_counters=None,
        timings=None,
    )
