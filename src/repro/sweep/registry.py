"""Factories resolving sweep-spec names to topologies and algorithms.

Sweep points travel between processes as plain dicts; workers rebuild the
actual :class:`~repro.sim.network.RadioNetwork` and algorithm objects
through these registries.  Keeping construction here (rather than pickling
live objects) makes points cacheable by content and cheap to ship to a
worker pool.
"""

from __future__ import annotations

from typing import Any, Callable, Mapping

from .. import topology
from ..baselines import (
    BGIBroadcast,
    CentralizedGreedySchedule,
    RoundRobinBroadcast,
    SelectiveFamilyBroadcast,
)
from ..core import KnownRadiusKP, OptimalRandomizedBroadcasting
from ..sim.errors import ConfigurationError
from ..sim.network import RadioNetwork

__all__ = ["TOPOLOGIES", "ALGORITHMS", "build_topology", "build_algorithm"]

#: Topology family name -> factory over keyword parameters.
TOPOLOGIES: dict[str, Callable[..., RadioNetwork]] = {
    "path": lambda n: topology.path(n),
    "star": lambda n: topology.star(n),
    "grid": lambda rows, cols: topology.grid(rows, cols),
    "tree": lambda n, seed=0: topology.random_tree(n, seed=seed),
    "gnp": lambda n, p, seed=0: topology.gnp_connected(n, p, seed=seed),
    "geometric": lambda n, seed=0: topology.random_geometric(n, seed=seed),
    "layered": lambda n, depth: topology.uniform_complete_layered(n, depth),
    "km-layered": lambda n, depth, seed=0: topology.km_hard_layered(n, depth, seed=seed),
}

#: Algorithm name -> factory taking the network plus keyword parameters.
#: All entries are oblivious (vectorisable), so sweep points run on the
#: batched engine; `repeat_broadcast` falls back to the reference engine
#: automatically if a non-vectorised factory is ever registered.
ALGORITHMS: dict[str, Callable[..., Any]] = {
    "kp-known-d": lambda net, d=None, stage_constant=4660, extra_step="universal": KnownRadiusKP(
        net.r,
        d if d is not None else max(1, net.radius),
        stage_constant=stage_constant,
        extra_step=extra_step,
    ),
    "kp-optimal": lambda net, stage_constant=8, max_d=None: OptimalRandomizedBroadcasting(
        net.r, stage_constant=stage_constant, max_d=max_d
    ),
    "bgi": lambda net, phase_len=None: BGIBroadcast(net.r, phase_len=phase_len),
    "round-robin": lambda net: RoundRobinBroadcast(net.r),
    "selective-family": lambda net, family_kind="random", seed=0: SelectiveFamilyBroadcast(
        net.r, family_kind, seed=seed
    ),
    "centralized": lambda net: CentralizedGreedySchedule(net),
}


def build_topology(name: str, params: Mapping[str, Any]) -> RadioNetwork:
    """Instantiate a topology family with concrete parameters."""
    try:
        factory = TOPOLOGIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown topology family {name!r}; available: {sorted(TOPOLOGIES)}"
        ) from None
    try:
        return factory(**dict(params))
    except TypeError as exc:
        raise ConfigurationError(f"bad parameters for topology {name!r}: {exc}") from exc


def build_algorithm(name: str, network: RadioNetwork, params: Mapping[str, Any]):
    """Instantiate an algorithm for ``network`` with concrete parameters."""
    try:
        factory = ALGORITHMS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown algorithm {name!r}; available: {sorted(ALGORITHMS)}"
        ) from None
    try:
        return factory(network, **dict(params))
    except TypeError as exc:
        raise ConfigurationError(f"bad parameters for algorithm {name!r}: {exc}") from exc
