"""E6 — Section 4.2 remark: round-robin vs Select-and-Send crossover, and
interleaving at O(n min(D, log n))."""

from __future__ import annotations

import math

from ..analysis import render_table
from ..baselines import InterleavedBroadcast, RoundRobinBroadcast
from ..core import SelectAndSend
from ..sim import run_broadcast
from ..topology import uniform_complete_layered
from .base import ExperimentReport, register

N = 256
FULL_DEPTHS = [1, 2, 4, 8, 16, 32, 64, 128]
QUICK_DEPTHS = [1, 4, 16, 64]


@register("e6")
def run(quick: bool = False) -> ExperimentReport:
    """Sweep D at fixed n; find the crossover; bound the interleaving cost."""
    depths = QUICK_DEPTHS if quick else FULL_DEPTHS
    report = ExperimentReport(
        "e6", f"round-robin / Select-and-Send crossover and interleaving (n={N})"
    )
    rows = []
    crossover = None
    interleave_ok = True
    for depth in depths:
        net = uniform_complete_layered(N, depth, relabel_seed=9)
        rr = run_broadcast(net, RoundRobinBroadcast(net.r), require_completion=True)
        ss = run_broadcast(net, SelectAndSend(), require_completion=True)
        both = run_broadcast(
            net,
            InterleavedBroadcast(RoundRobinBroadcast(net.r), SelectAndSend()),
            require_completion=True,
        )
        winner = "round-robin" if rr.time <= ss.time else "select-and-send"
        if winner == "select-and-send" and crossover is None:
            crossover = depth
        interleave_ok &= both.time <= 2 * min(rr.time, ss.time) + 2
        rows.append([depth, rr.time, ss.time, both.time, winner])
    report.add_table(
        render_table(
            ["D", "round-robin", "select&send", "interleaved", "winner"],
            rows,
        )
    )
    report.check(
        "round-robin (O(nD)) wins for very small D; Select-and-Send "
        "(O(n log n)) takes over near D ~ log n",
        rows[0][4] == "round-robin"
        and crossover is not None
        and crossover <= 8 * math.log2(N),
        f"crossover at D = {crossover}",
    )
    report.check(
        "interleaving costs at most twice the faster component "
        "(O(n min(D, log n)))",
        interleave_ok,
    )
    return report
