"""Native-CD variant of Complete-Layered (Section 4.1 ablation)."""

from __future__ import annotations

import pytest

from repro.core import CompleteLayeredBroadcast
from repro.sim import run_broadcast
from repro.topology import complete_layered, km_hard_layered, uniform_complete_layered


@pytest.mark.parametrize(
    "net_factory",
    [
        lambda: uniform_complete_layered(80, 8),
        lambda: km_hard_layered(150, 10, seed=1),
        lambda: complete_layered([1, 5, 9, 2, 7], relabel_seed=11),
        lambda: complete_layered([1] * 25),
    ],
)
def test_cd_variant_completes(net_factory):
    net = net_factory()
    result = run_broadcast(
        net,
        CompleteLayeredBroadcast(native_cd=True),
        collision_detection=True,
        require_completion=True,
    )
    assert result.completed


def test_cd_variant_faster_on_selection_heavy_networks():
    net = uniform_complete_layered(200, 20)
    plain = run_broadcast(net, CompleteLayeredBroadcast(), require_completion=True)
    cd = run_broadcast(
        net,
        CompleteLayeredBroadcast(native_cd=True),
        collision_detection=True,
        require_completion=True,
    )
    assert cd.time < plain.time


def test_cd_variant_name():
    assert CompleteLayeredBroadcast(native_cd=True).name == "complete-layered+cd"
    assert CompleteLayeredBroadcast().name == "complete-layered"


def test_cd_variant_one_leader_per_layer():
    from repro.sim.engine import SynchronousEngine

    net = uniform_complete_layered(60, 5)
    engine = SynchronousEngine(
        net, CompleteLayeredBroadcast(native_cd=True), collision_detection=True
    )
    engine.run(6000, stop_when_informed=False)
    layer_of = net.distances_from_source()
    leaders = [l for l, p in engine.protocols.items() if p.was_leader]
    per_layer = {}
    for leader in leaders:
        per_layer.setdefault(layer_of[leader], []).append(leader)
    for j in range(net.radius + 1):
        assert len(per_layer.get(j, [])) == 1
