"""Macro-step engine: block-size invariance, backend parity, the memory
guard, and large-n spot checks against FastEngine.

The full cross-engine matrix (including faults, traces and metrics for
the instrumented macro path) lives in ``test_conformance.py``; this
module covers the knobs that matrix holds fixed — the macro-step width
``K``, the numpy/numba backend split, CSR-native topologies at sizes the
matrix never visits — plus the :mod:`repro.sim.guard` estimates.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.sim.guard as guard
from repro.baselines.round_robin import RoundRobinBroadcast
from repro.core.randomized import KnownRadiusKP, OptimalRandomizedBroadcasting
from repro.sim import ConfigurationError, TraceLevel, check_memory_budget
from repro.sim._kernels import HAVE_NUMBA
from repro.sim.fast import run_broadcast_fast
from repro.sim.macro import (
    MacroStepEngine,
    resolve_macro_backend,
    run_broadcast_macro,
)
from repro.topology import (
    gnp_random_csr,
    km_hard_layered,
    km_hard_layered_csr,
)


def _summary(result):
    return (result.completed, result.time, result.informed,
            result.wake_times, result.layer_times)


class TestBlockSizeInvariance:
    @settings(max_examples=25, deadline=None)
    @given(
        block_size=st.integers(min_value=1, max_value=200),
        seed=st.integers(min_value=0, max_value=31),
    )
    def test_results_never_depend_on_k(self, block_size, seed):
        net = km_hard_layered_csr(60, 4, seed=3)
        baseline = run_broadcast_fast(
            net, KnownRadiusKP(net.r, net.radius), seed=seed
        )
        result = run_broadcast_macro(
            net, KnownRadiusKP(net.r, net.radius), seed=seed,
            block_size=block_size, backend="numpy",
        )
        assert _summary(result) == _summary(baseline)

    def test_partial_runs_report_executed_slots(self):
        net = gnp_random_csr(200, 10 / 200, seed=1)
        for budget in (1, 2, 5, 17):
            fast = run_broadcast_fast(
                net, KnownRadiusKP(net.r, net.radius), seed=3, max_steps=budget
            )
            macro = run_broadcast_macro(
                net, KnownRadiusKP(net.r, net.radius), seed=3,
                max_steps=budget, block_size=64,
            )
            assert _summary(macro) == _summary(fast)

    def test_rejects_nonpositive_block(self):
        net = gnp_random_csr(50, 0.2, seed=0)
        with pytest.raises(ConfigurationError):
            MacroStepEngine(net, RoundRobinBroadcast(net.r), block_size=0)


class TestBackends:
    def test_resolve_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            resolve_macro_backend("cuda")

    def test_env_override_wins_over_auto(self, monkeypatch):
        monkeypatch.setenv("REPRO_MACRO_BACKEND", "numpy")
        assert resolve_macro_backend("auto") == "numpy"

    @pytest.mark.skipif(HAVE_NUMBA, reason="numba present: request succeeds")
    def test_numba_request_without_numba_is_an_error(self):
        with pytest.raises(ConfigurationError):
            resolve_macro_backend("numba")

    @pytest.mark.skipif(not HAVE_NUMBA, reason="numba not installed")
    @pytest.mark.parametrize("seed", [0, 1, 5])
    def test_numba_backend_bit_identical(self, seed):
        for net in (gnp_random_csr(400, 10 / 400, seed=2),
                    km_hard_layered_csr(150, 6, seed=1)):
            for make in (lambda: KnownRadiusKP(net.r, net.radius),
                         lambda: OptimalRandomizedBroadcasting(net.r),
                         lambda: RoundRobinBroadcast(net.r)):
                a = run_broadcast_macro(net, make(), seed=seed,
                                        backend="numpy", block_size=37)
                b = run_broadcast_macro(net, make(), seed=seed,
                                        backend="numba", block_size=37)
                assert _summary(a) == _summary(b)


class TestMemoryGuard:
    def test_full_trace_over_limit_raises_with_estimate(self):
        with pytest.raises(ConfigurationError) as excinfo:
            check_memory_budget(10**6, 10**5, TraceLevel.FULL)
        message = str(excinfo.value)
        assert "bytes" in message
        assert "allow_large=True" in message
        assert "REPRO_ALLOW_LARGE_MEMORY" in message

    def test_none_and_progress_traces_never_trip(self):
        check_memory_budget(10**7, 10**7, TraceLevel.NONE)
        check_memory_budget(10**7, 10**7, TraceLevel.PROGRESS)

    def test_allow_large_and_env_override(self, monkeypatch):
        check_memory_budget(10**6, 10**5, TraceLevel.FULL, allow_large=True)
        monkeypatch.setenv(guard.ALLOW_LARGE_ENV, "1")
        check_memory_budget(10**6, 10**5, TraceLevel.FULL)
        monkeypatch.setenv(guard.ALLOW_LARGE_ENV, "0")
        with pytest.raises(ConfigurationError):
            check_memory_budget(10**6, 10**5, TraceLevel.FULL)

    def test_dense_metrics_budget(self):
        with pytest.raises(ConfigurationError):
            check_memory_budget(10**6, 100, trials=10**3, dense_metrics=True)
        check_memory_budget(10**6, 100, trials=10, dense_metrics=True)

    def test_guard_reached_through_drivers(self, monkeypatch):
        monkeypatch.setattr(guard, "FULL_TRACE_CELL_LIMIT", 10)
        net = gnp_random_csr(50, 0.2, seed=0)
        algo = KnownRadiusKP(net.r, net.radius)
        with pytest.raises(ConfigurationError):
            run_broadcast_fast(net, algo, trace_level=TraceLevel.FULL)
        with pytest.raises(ConfigurationError):
            run_broadcast_macro(net, algo, trace_level=TraceLevel.FULL)
        # the documented escape hatch actually runs
        result = run_broadcast_macro(
            net, algo, trace_level=TraceLevel.FULL, allow_large=True
        )
        assert result.completed


class TestLargeNSpotChecks:
    """Slot-for-slot identity at sizes the conformance matrix never
    visits.  ``max_steps`` is capped so the FastEngine side stays cheap;
    partial-run identity is the same property, checked on a prefix."""

    def test_gnp_50k_identity(self):
        n = 50_000
        net = gnp_random_csr(n, 8 / n, seed=13)
        algo = KnownRadiusKP(net.r, net.radius)
        budget = 120
        fast = run_broadcast_fast(net, KnownRadiusKP(net.r, net.radius),
                                  seed=7, max_steps=budget)
        macro = run_broadcast_macro(net, algo, seed=7, max_steps=budget,
                                    block_size=64)
        assert _summary(macro) == _summary(fast)

    def test_layered_50k_identity(self):
        net = km_hard_layered_csr(50_000, 12, seed=5)
        budget = 200
        fast = run_broadcast_fast(net, KnownRadiusKP(net.r, net.radius),
                                  seed=2, max_steps=budget)
        macro = run_broadcast_macro(net, KnownRadiusKP(net.r, net.radius),
                                    seed=2, max_steps=budget, block_size=128)
        assert _summary(macro) == _summary(fast)

    def test_legacy_network_also_supported(self):
        # The macro engine is not CSR-only: dict-of-sets topologies run
        # through the same ChannelKernel compilation.
        net = km_hard_layered(2_000, 8, seed=9)
        fast = run_broadcast_fast(net, KnownRadiusKP(net.r, 8), seed=1)
        macro = run_broadcast_macro(net, KnownRadiusKP(net.r, 8), seed=1)
        assert _summary(macro) == _summary(fast)
