"""Stage-timer accumulator units."""

from __future__ import annotations

import json

from repro.obs.timings import Timings


def test_add_accumulates_seconds_and_counts():
    timings = Timings()
    timings.add("engine.step", 0.25)
    timings.add("engine.step", 0.75, count=3)
    assert timings.seconds("engine.step") == 1.0
    assert timings.count("engine.step") == 4
    assert timings.seconds("never") == 0.0
    assert timings.count("never") == 0


def test_time_context_manager_records_even_on_error():
    timings = Timings()
    try:
        with timings.time("point.build"):
            raise RuntimeError("boom")
    except RuntimeError:
        pass
    assert timings.count("point.build") == 1
    assert timings.seconds("point.build") >= 0.0


def test_bool_is_emptiness():
    timings = Timings()
    assert not timings
    timings.add("s", 0.0)
    assert timings


def test_merge_timings_and_dict_forms():
    a = Timings()
    a.add("engine.step", 1.0, count=2)
    b = Timings()
    b.add("engine.step", 0.5)
    b.add("pool.execute", 2.0)
    a.merge(b)
    a.merge({"pool.execute": {"seconds": 1.0, "count": 3}})
    assert a.seconds("engine.step") == 1.5
    assert a.count("engine.step") == 3
    assert a.seconds("pool.execute") == 3.0
    assert a.count("pool.execute") == 4


def test_dict_round_trip_is_json_safe():
    timings = Timings()
    timings.add("engine.coins", 0.125, count=10)
    timings.add("engine.channel", 0.5, count=10)
    snapshot = json.loads(json.dumps(timings.to_dict()))
    clone = Timings.from_dict(snapshot)
    assert clone.to_dict() == timings.to_dict()


def test_render_rows_slowest_first():
    timings = Timings()
    timings.add("fast", 0.1, count=2)
    timings.add("slow", 5.0, count=1)
    rows = timings.render_rows()
    assert [row[0] for row in rows] == ["slow", "fast"]
    assert rows[0][2] == 1  # count column
