"""Universal probability sequences (Lemma 1).

The extra step appended to every stage of the Kowalski–Pelc randomized
algorithm transmits with probability ``p_i`` drawn from a *universal
sequence*: an infinite sequence of reals ``1/2^j`` arranged so that every
probability scale recurs often enough — scale ``1/2^j`` appears in every
window of length ``3 D 2^j / r`` (condition U1, moderate scales) or
``3 D 2^j / (r 2^(floor(log log r) + 1))`` (condition U2, fine scales).
These recurrences are what inform nodes with many informed in-neighbours
within ``O(r/x)`` (or ``O(r log r / x)``) stages (Lemmas 3 and 4).

The construction follows the paper's proof: attach the real ``1/2^j`` to
every node of a chosen level of the complete binary tree of depth
``log D``, rebalance all reals down to the leaves (leftmost-least-loaded),
concatenate the leaves left to right, and repeat the resulting finite
period forever.  We store exponents ``j`` instead of floats so every value
is exact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..sim.errors import ConfigurationError

__all__ = [
    "UniversalSequence",
    "UniversalityReport",
    "build_universal_sequence",
    "check_universality",
    "universal_ranges",
]


def _ilog2(x: int) -> int:
    """Exact log2 of a power of two."""
    if x <= 0 or x & (x - 1):
        raise ConfigurationError(f"{x} is not a positive power of two")
    return x.bit_length() - 1


def universal_ranges(r: int, d_radius: int) -> tuple[range, range, int]:
    """The two exponent ranges of Lemma 1 and the U2 damping exponent.

    Args:
        r: Label bound, a power of two.
        d_radius: The radius parameter D, a power of two with D <= r.

    Returns:
        ``(range_u1, range_u2, log_log_shift)`` where ``range_u1`` iterates
        the exponents ``j`` governed by condition U1
        (``log(r/D)+1 .. floor(log(r / (4 log r)))``), ``range_u2`` those
        governed by U2 (``.. log r``), and ``log_log_shift`` is
        ``floor(log log r) + 1`` from the paper's U2 formula.
    """
    log_r = _ilog2(r)
    log_d = _ilog2(d_radius)
    if d_radius > r:
        raise ConfigurationError(f"need D <= r, got D={d_radius}, r={r}")
    if log_r < 2:
        raise ConfigurationError(f"r must be at least 4, got {r}")
    # floor(log(r / (4 log r))): computed with exact integer arithmetic.
    j_mid = int(math.floor(math.log2(r / (4.0 * log_r))))
    j_lo = (log_r - log_d) + 1
    range_u1 = range(j_lo, j_mid + 1)
    range_u2 = range(max(j_mid + 1, j_lo), log_r + 1)
    log_log_shift = int(math.floor(math.log2(log_r))) + 1
    return range_u1, range_u2, log_log_shift


@dataclass(frozen=True)
class UniversalSequence:
    """A periodic universal sequence.

    Attributes:
        r: Label bound (power of two) this sequence was built for.
        d_radius: Radius parameter D (power of two).
        exponents: One period, as exponents ``j`` (the value is ``2**-j``).
        strict: Whether the paper's parameter regime was enforced.
    """

    r: int
    d_radius: int
    exponents: tuple[int, ...]
    strict: bool

    def __len__(self) -> int:
        return len(self.exponents)

    def exponent(self, i: int) -> int:
        """Exponent of ``p_i`` using the paper's 1-based indexing."""
        if i < 1:
            raise IndexError(f"universal sequences are 1-indexed, got i={i}")
        return self.exponents[(i - 1) % len(self.exponents)]

    def probability(self, i: int) -> float:
        """The probability ``p_i`` (1-based, periodic)."""
        return 2.0 ** (-self.exponent(i))


@dataclass(frozen=True)
class UniversalityReport:
    """Result of checking conditions U1 and U2 over one period.

    Attributes:
        ok: True when both conditions hold for all exponents in range.
        violations: Human-readable descriptions of failures.
        max_gaps: For each exponent ``j``, the worst cyclic gap between
            consecutive occurrences and the window the condition allows.
    """

    ok: bool
    violations: tuple[str, ...]
    max_gaps: dict[int, tuple[int, int]]


def build_universal_sequence(
    r: int, d_radius: int, strict: bool = False
) -> UniversalSequence:
    """Construct a universal sequence for parameters ``(r, D)``.

    Args:
        r: Label bound; must be a power of two (the algorithm rounds r up).
        d_radius: The radius parameter D; power of two, ``D <= r``.
        strict: Enforce the paper's regime ``32 r^(2/3) < D`` (Lemma 1) and
            fail otherwise.  In the default practical mode, exponent scales
            whose prescribed tree level exceeds the leaf level are clamped
            to the leaves — the sequence then recurs those scales as often
            as a period of length ``Theta(D)`` possibly can, and
            :func:`check_universality` reports exactly what was achieved.

    Returns:
        The periodic sequence; its period is at most ``3 D`` in the strict
        regime (the paper's bound on the number of distributed reals).

    Raises:
        ConfigurationError: Bad powers of two, or regime violation when
            ``strict`` is set.
    """
    log_r = _ilog2(r)
    log_d = _ilog2(d_radius)
    if strict and not d_radius > 32 * r ** (2.0 / 3.0):
        raise ConfigurationError(
            f"strict mode requires D > 32 r^(2/3): D={d_radius}, r={r}"
        )
    range_u1, range_u2, log_log_shift = universal_ranges(r, d_radius)

    num_leaves = d_radius  # tree of depth log D
    # Each exponent j is attached to every node of one tree level.  When the
    # prescribed level is deeper than the leaves (possible only outside the
    # strict regime), the paper's intended density is preserved by placing
    # 2^(level - log D) copies per leaf instead.
    placements: list[tuple[int, int, int]] = []  # (level, exponent, copies)
    for j in range_u1:
        level = log_r + 1 - j  # log(2r / 2^j)
        clamped, copies = _clamp_level(level, log_d, strict, j)
        placements.append((clamped, j, copies))
    for j in range_u2:
        level = log_r + 1 + log_log_shift - j  # log(2r 2^(loglog+1) / 2^j)
        clamped, copies = _clamp_level(level, log_d, strict, j)
        placements.append((clamped, j, copies))

    # Rebalance: process levels bottom-up; each node's reals go to the
    # leftmost least-loaded leaf of its subtree (paper's moving rule).
    leaf_sequences: list[list[int]] = [[] for _ in range(num_leaves)]
    # Group exponents by level, deepest level first; within a node that
    # holds two reals the smaller real (larger exponent) moves first.
    by_level: dict[int, list[tuple[int, int]]] = {}
    for level, j, copies in placements:
        by_level.setdefault(level, []).append((j, copies))
    for level in sorted(by_level, reverse=True):
        width = num_leaves >> level  # leaves per subtree of a level-`level` node
        for j, copies in sorted(by_level[level], reverse=True):
            for node_index in range(1 << level):
                base = node_index * width
                for _ in range(copies):
                    target = _leftmost_least_loaded(leaf_sequences, base, width)
                    leaf_sequences[target].append(j)

    period = tuple(j for leaf in leaf_sequences for j in leaf)
    if not period:
        raise ConfigurationError(
            f"empty universal sequence for r={r}, D={d_radius}: all exponent "
            f"ranges are empty (D too small relative to r)"
        )
    return UniversalSequence(r=r, d_radius=d_radius, exponents=period, strict=strict)


def _clamp_level(level: int, log_d: int, strict: bool, exponent: int) -> tuple[int, int]:
    """Fit a prescribed tree level into ``[0, log D]``.

    Returns:
        ``(level, copies)``.  A level deeper than the leaves becomes the
        leaf level with ``2^(level - log D)`` copies per leaf, preserving
        the paper's total density of that exponent.
    """
    if level < 0:
        level = 0
    if level <= log_d:
        return level, 1
    if strict:
        raise ConfigurationError(
            f"exponent {exponent} prescribes tree level {level} outside the "
            f"depth-{log_d} tree; parameters violate Lemma 1's regime"
        )
    # Outside the regime U2 is unsatisfiable for this exponent no matter how
    # many copies are placed (its window is below the achievable gap), while
    # extra copies inflate every other exponent's gap and can break the
    # otherwise-always-satisfiable U1.  One copy per leaf is the best
    # overall compromise; check_universality reports the achieved gaps.
    return log_d, 1


def _leftmost_least_loaded(leaf_sequences: list[list[int]], base: int, width: int) -> int:
    """Paper's leaf-choice rule within one subtree.

    Pick the leftmost leaf holding fewer reals than the leaves to its left
    (loads are non-increasing left to right within a processed subtree), or
    the leftmost leaf when all loads are equal.
    """
    first_load = len(leaf_sequences[base])
    for offset in range(1, width):
        if len(leaf_sequences[base + offset]) < first_load:
            return base + offset
    return base


def check_universality(sequence: UniversalSequence) -> UniversalityReport:
    """Verify conditions U1 and U2 for one period (cyclically).

    A condition "every window of length w contains the value 1/2^j" is
    equivalent to "the largest cyclic gap between consecutive occurrences
    of j is at most w".  The report records both numbers per exponent.
    """
    r, d_radius = sequence.r, sequence.d_radius
    range_u1, range_u2, log_log_shift = universal_ranges(r, d_radius)
    period = sequence.exponents
    length = len(period)
    positions: dict[int, list[int]] = {}
    for idx, j in enumerate(period):
        positions.setdefault(j, []).append(idx)

    violations: list[str] = []
    max_gaps: dict[int, tuple[int, int]] = {}

    def check(j: int, window: int, condition: str) -> None:
        occurrences = positions.get(j)
        if not occurrences:
            violations.append(f"{condition}: exponent {j} never occurs")
            max_gaps[j] = (length + 1, window)
            return
        worst = 0
        for a, b in zip(occurrences, occurrences[1:]):
            worst = max(worst, b - a)
        worst = max(worst, occurrences[0] + length - occurrences[-1])
        max_gaps[j] = (worst, window)
        if worst > window:
            violations.append(
                f"{condition}: exponent {j} has cyclic gap {worst} > window {window}"
            )

    for j in range_u1:
        window = (3 * d_radius * (1 << j)) // r
        check(j, window, "U1")
    for j in range_u2:
        window = (3 * d_radius * (1 << j)) // (r << log_log_shift)
        check(j, max(window, 0), "U2")

    return UniversalityReport(
        ok=not violations, violations=tuple(violations), max_gaps=max_gaps
    )
