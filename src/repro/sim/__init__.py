"""Radio-network simulation substrate.

Implements the synchronous radio model of Kowalski & Pelc (Section 1.3):
collision-as-silence, half-duplex nodes, no collision detection, no
spontaneous transmissions, labels in ``{0..r}`` with only the own label and
``r`` known a priori.
"""

from .batched_event import BatchedEventEngine
from .channel import ChannelKernel
from .coins import CoinSource, NodeRandom, coin_uniform
from .engine import SynchronousEngine
from .event import EventDrivenEngine
from .errors import (
    BroadcastIncompleteError,
    ConfigurationError,
    NetworkError,
    ProtocolViolationError,
    SimulationError,
)
from .fast import (
    ASLEEP,
    BatchedFastEngine,
    FastEngine,
    VectorizedAlgorithm,
    run_broadcast_batch,
    run_broadcast_fast,
)
from .faults import FaultCounters, FaultPlan, derive_fault_seed
from .guard import check_memory_budget
from .macro import (
    MacroPlan,
    MacroStepEngine,
    resolve_macro_backend,
    run_broadcast_macro,
)
from .messages import Message, SOURCE_PAYLOAD, source_message
from .network import RadioNetwork
from .protocol import BroadcastAlgorithm, ObliviousTransmitter, Protocol, QUIET_FOREVER
from .run import (
    BroadcastResult,
    default_max_steps,
    derive_node_rng,
    derive_trial_seeds,
    repeat_broadcast,
    run_broadcast,
)
from .serialization import (
    load_network,
    load_result,
    save_network,
    save_result,
)
from .trace import StepRecord, Trace, TraceLevel

__all__ = [
    "ASLEEP",
    "BatchedEventEngine",
    "BatchedFastEngine",
    "BroadcastAlgorithm",
    "BroadcastIncompleteError",
    "BroadcastResult",
    "ChannelKernel",
    "CoinSource",
    "ConfigurationError",
    "EventDrivenEngine",
    "FastEngine",
    "FaultCounters",
    "FaultPlan",
    "MacroPlan",
    "MacroStepEngine",
    "NodeRandom",
    "Message",
    "NetworkError",
    "ObliviousTransmitter",
    "Protocol",
    "ProtocolViolationError",
    "QUIET_FOREVER",
    "RadioNetwork",
    "SOURCE_PAYLOAD",
    "SimulationError",
    "StepRecord",
    "SynchronousEngine",
    "Trace",
    "load_network",
    "load_result",
    "save_network",
    "save_result",
    "TraceLevel",
    "VectorizedAlgorithm",
    "check_memory_budget",
    "coin_uniform",
    "default_max_steps",
    "derive_fault_seed",
    "derive_node_rng",
    "derive_trial_seeds",
    "repeat_broadcast",
    "resolve_macro_backend",
    "run_broadcast",
    "run_broadcast_batch",
    "run_broadcast_fast",
    "run_broadcast_macro",
    "source_message",
]
