"""Protocol and algorithm abstractions.

A *protocol* is the per-node program.  The paper's model is uniform: every
node runs the same program, parameterised only by its own label and the
label bound ``r`` (Section 1.3).  An *algorithm* is the factory that
instantiates the protocol at every node.

Lifecycle enforced by the engine
--------------------------------

1.  A node starts *asleep*.  Asleep nodes never transmit (the model forbids
    spontaneous transmissions) and observe nothing — in the paper's terms
    their history is the empty history, and the action function is 0 on the
    empty history.
2.  When the node first receives a message (or, for the source, at step 0
    before the first slot) the engine calls :meth:`Protocol.on_wake`.
3.  In every subsequent slot the engine calls :meth:`Protocol.next_action`;
    returning a payload means *transmit*, returning ``None`` means *listen*.
4.  After the slot resolves, the engine calls :meth:`Protocol.observe` with
    the received message, or ``None`` for silence **or** collision (the two
    are indistinguishable) **or** if the node itself transmitted
    (half-duplex: a transmitter hears nothing).

Because a protocol's behaviour is a pure function of
``(label, r, wake observation, subsequent observations)`` for deterministic
algorithms, the lower-bound adversary of Section 3 can extract the paper's
action function pi(v, H) simply by feeding abstract histories through a
protocol instance (see :mod:`repro.adversary.histories`).
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Any

from .messages import Message

__all__ = ["Protocol", "BroadcastAlgorithm", "ObliviousTransmitter", "QUIET_FOREVER"]

#: Sentinel return value for :meth:`Protocol.quiet_until`: the node will
#: stay quiet until some future message re-activates it.  Far above any
#: reachable slot number yet small enough that ``slot + QUIET_FOREVER``
#: arithmetic cannot overflow 64-bit integers.
QUIET_FOREVER: int = 1 << 62


class Protocol(ABC):
    """Per-node program.  Subclasses implement the node's behaviour.

    Attributes:
        label: This node's label (the only identity it knows).
        r: The public upper bound on labels; ``r`` is linear in ``n``.
        rng: Private randomness source, deterministic per (run seed, label).
            Deterministic protocols must not touch it.
        wake_step: Step at which the node woke, or ``None`` while asleep.
            Set by the engine; ``-1`` for the source (awake before step 0).
    """

    def __init__(self, label: int, r: int, rng: random.Random) -> None:
        self.label = label
        self.r = r
        self.rng = rng
        self.wake_step: int | None = None

    @abstractmethod
    def on_wake(self, step: int, message: Message | None) -> None:
        """Called once, when the node becomes informed.

        Args:
            step: The slot in which the first message arrived; ``-1`` for
                the source, which is informed before the execution starts.
            message: The waking message, or ``None`` for the source.
        """

    @abstractmethod
    def next_action(self, step: int) -> Any | None:
        """Decide this slot's action.

        Returns:
            The payload to transmit, or ``None`` to listen.  The engine
            wraps payloads into :class:`~repro.sim.messages.Message` tagged
            with this node's label.
        """

    def observe(self, step: int, message: Message | None) -> None:
        """Receive the outcome of slot ``step``.

        ``message`` is ``None`` when the node transmitted itself, when no
        in-neighbour transmitted, or when two or more did (collision) — the
        model makes these cases indistinguishable.  Protocols that only act
        on their own clock may ignore this hook.
        """

    def quiet_until(self, step: int) -> int:
        """Idle hint: the first slot at or after ``step`` needing attention.

        Returning ``s > step`` is a *promise* covering every slot ``t`` in
        ``[step, s)``: the node would return ``None`` from
        :meth:`next_action` at ``t``, and observing silence (or the
        collision marker) at ``t`` would not change its behaviour.  The
        promise says nothing about slots ``>= s`` and is void as soon as a
        message is delivered to the node — the event-driven engine
        re-queries the hint after every delivery.  Returning ``step``
        itself (the default) makes no promise at all: the node is polled
        every slot, exactly as on the reference engine.

        Returning :data:`QUIET_FOREVER` means "quiet until spoken to".
        The hint is consulted only by
        :class:`~repro.sim.event.EventDrivenEngine`; the reference
        engine ignores it, which is what the differential suite uses to
        prove hints sound.  The full contract is specified in
        ``docs/MODEL.md``.
        """
        return step

    # ------------------------------------------------------------------

    def coin(self, step: int) -> float:
        """Slot-indexed transmission coin in ``[0, 1)`` for slot ``step``.

        Randomized *transmission decisions* must draw through this hook
        rather than ``self.rng.random()``: the coin of ``(seed, label,
        step)`` is a pure hash (see :mod:`repro.sim.coins`), so the
        vectorised engines can evaluate the very same flips as arrays and
        batched execution stays bit-identical to the reference engine.
        ``self.rng`` remains available for free-form randomness that has no
        vectorised counterpart.
        """
        coin = getattr(self.rng, "coin", None)
        if coin is not None:
            return coin(step)
        # Plain random.Random (protocol constructed outside an engine):
        # fall back to the sequential stream — same distribution, no
        # cross-engine equality guarantee.
        return self.rng.random()

    @property
    def awake(self) -> bool:
        """Whether the node has been informed yet."""
        return self.wake_step is not None


class BroadcastAlgorithm(ABC):
    """Factory for per-node protocols; represents one broadcasting algorithm.

    Attributes:
        name: Short human-readable identifier used in results and tables.
        deterministic: True when the protocol never consults its RNG.  The
            lower-bound adversary (Section 3) only applies to deterministic
            algorithms.
    """

    name: str = "abstract"
    deterministic: bool = False

    @abstractmethod
    def create(self, label: int, r: int, rng: random.Random) -> Protocol:
        """Instantiate the protocol for the node with the given label."""

    def max_steps_hint(self, n: int, r: int) -> int | None:
        """Optional cap on how long a run of this algorithm can be useful.

        Drivers use this to choose a default step limit; ``None`` means the
        caller must supply one.
        """
        return None

    def stage_hint(self, step: int, trace=None) -> str | None:
        """Name the schedule stage that slot ``step`` belongs to, if any.

        Purely *post-hoc*: the forensics layer
        (:mod:`repro.obs.forensics`) calls this to charge each slot of a
        recorded run to the stage that spent it (Decay phases, KP stage
        sweeps, token-traversal phases).  Engines never call it, so the
        hook costs nothing at execution time, and because it is a pure
        function of ``(algorithm configuration, step, trace)`` — never of
        engine internals — stage attribution is identical across engines
        whenever the traces are.

        Args:
            step: Global slot number (0-based).
            trace: The run's :class:`~repro.sim.trace.Trace` at
                ``TraceLevel.FULL``, for algorithms whose stage boundaries
                depend on the execution (the token algorithms).  Oblivious
                schedules ignore it.

        Returns:
            A short stage label, or ``None`` when the algorithm has no
            stage structure (the default) or cannot attribute the slot.
        """
        return None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


class ObliviousTransmitter(Protocol):
    """Base class for *oblivious* protocols.

    An oblivious protocol's transmission decisions depend only on the global
    step number, its label, and its wake step — never on message contents or
    on what it heard after waking.  Both randomized algorithms in the paper
    (Kowalski–Pelc stages and BGI Decay) and the round-robin baseline are
    oblivious, which lets the vectorised engine (:mod:`repro.sim.fast`)
    execute them over numpy arrays.

    Subclasses implement :meth:`wants_to_transmit`; the source message is
    the only payload ever sent.
    """

    def on_wake(self, step: int, message: Message | None) -> None:
        """Oblivious protocols keep no message state; nothing to record."""

    @abstractmethod
    def wants_to_transmit(self, step: int) -> bool:
        """Whether to transmit the source message in slot ``step``."""

    def next_action(self, step: int) -> Any | None:
        from .messages import SOURCE_PAYLOAD

        return SOURCE_PAYLOAD if self.wants_to_transmit(step) else None
