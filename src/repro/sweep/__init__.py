"""Declarative parameter sweeps over topologies × algorithms × seeds.

A sweep is described by a :class:`SweepSpec` (topology family, parameter
grids, algorithm, trial count), expanded into self-contained
:class:`SweepPoint` cells, and executed by :func:`run_sweep` — cache
misses are sharded across worker processes while each point's trials run
as one batched array program on the fast engine.  Results persist in a
content-addressed JSON cache under ``benchmarks/results/sweep-cache``.
"""

from .cache import CODE_VERSION, DEFAULT_CACHE_DIR, ResultCache
from .registry import ALGORITHMS, TOPOLOGIES, build_algorithm, build_topology
from .runner import (
    PointResult,
    SweepExecutionError,
    SweepOutcome,
    engine_run_count,
    execute_point,
    reset_engine_run_counter,
    run_sweep,
)
from .spec import SweepPoint, SweepSpec, canonical_json

__all__ = [
    "ALGORITHMS",
    "CODE_VERSION",
    "DEFAULT_CACHE_DIR",
    "PointResult",
    "ResultCache",
    "SweepExecutionError",
    "SweepOutcome",
    "SweepPoint",
    "SweepSpec",
    "TOPOLOGIES",
    "build_algorithm",
    "build_topology",
    "canonical_json",
    "engine_run_count",
    "execute_point",
    "reset_engine_run_counter",
    "run_sweep",
]
