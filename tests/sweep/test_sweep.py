"""Sweep subsystem: spec expansion, caching, and the parallel runner.

The cache regression tests are the teeth of the subsystem: a second
unchanged invocation must perform *zero* engine runs (observed through
the runner's run counter) and return byte-identical results, while a
changed parameter invalidates exactly the points it touches.
"""

from __future__ import annotations

import json

import pytest

from repro.sim.errors import ConfigurationError
from repro.sweep import (
    ResultCache,
    SweepPoint,
    SweepSpec,
    build_algorithm,
    build_topology,
    canonical_json,
    engine_run_count,
    execute_point,
    reset_engine_run_counter,
    run_sweep,
)

SMALL_SPEC = dict(
    name="unit",
    topology="layered",
    algorithm="kp-known-d",
    topology_grid={"n": [12, 18], "depth": 3},
    algorithm_grid={"stage_constant": 4},
    trials=2,
)


@pytest.fixture(autouse=True)
def _fresh_counter():
    reset_engine_run_counter()
    yield
    reset_engine_run_counter()


class TestSpec:
    def test_grid_expansion(self):
        spec = SweepSpec(**SMALL_SPEC)
        points = spec.points()
        assert len(points) == 2
        assert [dict(p.topology_params)["n"] for p in points] == [12, 18]
        for p in points:
            assert p.trials == 2
            assert dict(p.algorithm_params) == {"stage_constant": 4}

    def test_scalar_values_become_single_choices(self):
        spec = SweepSpec(name="s", topology="path", algorithm="round-robin",
                         topology_grid={"n": 8})
        assert len(spec.points()) == 1

    def test_roundtrip_through_dict(self):
        spec = SweepSpec(**SMALL_SPEC)
        clone = SweepSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert clone.points() == spec.points()

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ConfigurationError):
            SweepSpec.from_dict({**SMALL_SPEC, "typo_field": 1})

    def test_from_dict_requires_name_topology_algorithm(self):
        with pytest.raises(ConfigurationError):
            SweepSpec.from_dict({"name": "x", "topology": "path"})

    def test_hash_ignores_sweep_name(self):
        a = SweepSpec(**SMALL_SPEC).points()[0]
        b = SweepSpec(**{**SMALL_SPEC, "name": "renamed"}).points()[0]
        assert a.content_hash("v1") == b.content_hash("v1")

    def test_hash_depends_on_params_and_code_version(self):
        a = SweepSpec(**SMALL_SPEC).points()[0]
        changed = SweepSpec(**{**SMALL_SPEC, "trials": 3}).points()[0]
        assert a.content_hash("v1") != changed.content_hash("v1")
        assert a.content_hash("v1") != a.content_hash("v2")


class TestRegistry:
    def test_build_topology(self):
        net = build_topology("path", {"n": 7})
        assert net.n == 7

    def test_build_algorithm(self):
        net = build_topology("path", {"n": 7})
        algo = build_algorithm("round-robin", net, {})
        assert algo.deterministic

    def test_unknown_names_raise(self):
        net = build_topology("star", {"n": 5})
        with pytest.raises(ConfigurationError):
            build_topology("moebius", {})
        with pytest.raises(ConfigurationError):
            build_algorithm("gossip-3000", net, {})

    def test_bad_parameters_raise(self):
        with pytest.raises(ConfigurationError):
            build_topology("path", {"n": 7, "curvature": 2})


class TestRunnerAndCache:
    def test_warm_rerun_hits_cache_with_zero_engine_runs(self, tmp_path):
        spec = SweepSpec(**SMALL_SPEC)
        cache = ResultCache(tmp_path)

        first = run_sweep(spec, cache=cache)
        assert first.executed == 2 and first.from_cache == 0
        assert engine_run_count() == 2 * spec.trials

        reset_engine_run_counter()
        second = run_sweep(spec, cache=cache)
        assert second.executed == 0 and second.from_cache == 2
        assert engine_run_count() == 0
        assert second.to_json() == first.to_json()

    def test_changed_parameter_invalidates_only_affected_points(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_sweep(SweepSpec(**SMALL_SPEC), cache=cache)

        reset_engine_run_counter()
        changed = SweepSpec(**{**SMALL_SPEC,
                               "topology_grid": {"n": [12, 24], "depth": 3}})
        outcome = run_sweep(changed, cache=cache)
        # n=12 is untouched and comes from the cache; n=24 is new.
        assert [r.cached for r in outcome.results] == [True, False]
        assert engine_run_count() == changed.trials

    def test_no_cache_runs_everything(self, tmp_path):
        spec = SweepSpec(**SMALL_SPEC)
        run_sweep(spec, cache=ResultCache(tmp_path))
        reset_engine_run_counter()
        outcome = run_sweep(spec, cache=None)
        assert outcome.executed == 2
        assert engine_run_count() == 2 * spec.trials

    def test_corrupt_cache_entry_is_a_miss(self, tmp_path):
        spec = SweepSpec(**SMALL_SPEC)
        cache = ResultCache(tmp_path)
        first = run_sweep(spec, cache=cache)
        cache.path_for(spec.points()[0]).write_text("{not json", encoding="utf-8")
        second = run_sweep(spec, cache=cache)
        assert [r.cached for r in second.results] == [False, True]
        assert second.to_json() == first.to_json()

    def test_workers_produce_identical_results(self, tmp_path):
        spec = SweepSpec(**SMALL_SPEC)
        serial = run_sweep(spec, workers=1, cache=None)
        pooled = run_sweep(spec, workers=2, cache=None)
        assert pooled.to_json() == serial.to_json()

    def test_execute_point_is_deterministic(self):
        point = SweepSpec(**SMALL_SPEC).points()[0]
        a = execute_point(point.canonical())
        b = execute_point(point.canonical())
        assert canonical_json(a) == canonical_json(b)
        assert a["runs"] == point.trials
        assert len(a["times"]) == point.trials

    def test_deterministic_algorithm_collapses_to_one_run(self, tmp_path):
        spec = SweepSpec(name="det", topology="path", algorithm="round-robin",
                         topology_grid={"n": 9}, trials=6)
        outcome = run_sweep(spec, cache=None)
        # repeat_broadcast runs deterministic algorithms once.
        assert outcome.results[0].payload["runs"] == 1
        assert engine_run_count() == 1

    def test_run_counter_matches_trials(self):
        spec = SweepSpec(**SMALL_SPEC)
        run_sweep(spec, cache=None)
        assert engine_run_count() == len(spec.points()) * spec.trials


class TestPointValidation:
    """trials >= 1 is enforced at parse time, on every construction path.

    Regression: a zero-trial point used to survive until deep inside
    ``execute_point``, where the summary statistics divided by an empty
    trial list (ZeroDivisionError) instead of reporting the bad config.
    """

    def test_spec_rejects_zero_trials(self):
        with pytest.raises(ConfigurationError):
            SweepSpec(**{**SMALL_SPEC, "trials": 0})

    def test_from_dict_rejects_zero_trials(self):
        with pytest.raises(ConfigurationError):
            SweepSpec.from_dict({**SMALL_SPEC, "trials": 0})

    def test_point_rejects_zero_trials(self):
        with pytest.raises(ConfigurationError):
            SweepPoint(
                topology="path", topology_params=(("n", 5),),
                algorithm="round-robin", algorithm_params=(),
                trials=0, base_seed=0, max_steps=None,
            )

    def test_execute_point_rejects_zero_trials_cleanly(self):
        canonical = SweepSpec(**SMALL_SPEC).points()[0].canonical()
        canonical["trials"] = 0
        with pytest.raises(ConfigurationError):
            execute_point(canonical)


class TestFaultyPoints:
    PLAN = {"crashes": [[2, 1]], "loss_probability": 0.2, "seed": 9}

    def test_spec_faults_reach_every_point(self):
        from repro.sim import FaultPlan

        spec = SweepSpec(**SMALL_SPEC, faults=self.PLAN)
        for point in spec.points():
            assert point.faults == FaultPlan.from_dict(self.PLAN)
            assert point.label().endswith("+faults")
        clone = SweepSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert clone.points() == spec.points()

    def test_faultless_hash_is_unchanged_by_the_fault_field(self):
        # Fault-free points must hash exactly as before the field existed,
        # keeping existing on-disk caches valid.
        point = SweepSpec(**SMALL_SPEC).points()[0]
        assert "faults" not in point.canonical()
        faulty = SweepSpec(**SMALL_SPEC, faults=self.PLAN).points()[0]
        assert faulty.content_hash("v1") != point.content_hash("v1")

    def test_execute_point_reports_fault_totals(self):
        spec = SweepSpec(**SMALL_SPEC, faults=self.PLAN)
        payload = execute_point(spec.points()[0].canonical())
        assert payload["faults"] == spec.points()[0].faults.to_dict()
        totals = payload["fault_totals"]
        assert set(totals) == {
            "crashed_nodes", "jammed_slots", "lost_messages", "delayed_wakes"
        }
        assert totals["crashed_nodes"] >= 1

    def test_faulty_sweep_round_trips_cache(self, tmp_path):
        spec = SweepSpec(**SMALL_SPEC, faults=self.PLAN)
        cache = ResultCache(tmp_path)
        first = run_sweep(spec, cache=cache)
        reset_engine_run_counter()
        second = run_sweep(spec, cache=cache)
        assert second.from_cache == len(spec.points())
        assert engine_run_count() == 0
        assert second.to_json() == first.to_json()


class TestStreaming:
    def test_on_point_fires_in_completion_order(self, tmp_path, monkeypatch):
        """Each executed point's callback fires before later points run."""
        import repro.sweep.runner as runner

        events = []
        real = runner.execute_point

        def tracked(canonical):
            events.append(("exec", canonical["topology_params"]["n"]))
            return real(canonical)

        monkeypatch.setattr(runner, "execute_point", tracked)
        spec = SweepSpec(**SMALL_SPEC)
        run_sweep(
            spec,
            cache=None,
            on_point=lambda p, payload, cached: events.append(
                ("done", dict(p.topology_params)["n"])
            ),
        )
        assert events == [("exec", 12), ("done", 12), ("exec", 18), ("done", 18)]

    def test_cache_hits_stream_before_executions(self, tmp_path, monkeypatch):
        import repro.sweep.runner as runner

        spec = SweepSpec(**SMALL_SPEC)
        cache = ResultCache(tmp_path)
        # Warm only the second point.
        warm = SweepSpec(**{**SMALL_SPEC, "topology_grid": {"n": [18], "depth": 3}})
        run_sweep(warm, cache=cache)

        events = []
        real = runner.execute_point

        def tracked(canonical):
            events.append(("exec", canonical["topology_params"]["n"]))
            return real(canonical)

        monkeypatch.setattr(runner, "execute_point", tracked)
        run_sweep(
            spec, cache=cache,
            on_point=lambda p, payload, cached: events.append(
                ("done", dict(p.topology_params)["n"], cached)
            ),
        )
        assert events == [("done", 18, True), ("exec", 12), ("done", 12, False)]

    def test_per_completion_cache_write_back(self, tmp_path, monkeypatch):
        """The cache entry for a point exists the moment its callback runs."""
        cache = ResultCache(tmp_path)
        spec = SweepSpec(**SMALL_SPEC)
        points = spec.points()
        seen = []

        def probe(point, payload, cached):
            seen.append(cache.get(point) is not None)

        run_sweep(spec, cache=cache, on_point=probe)
        assert seen == [True, True]
        assert len(seen) == len(points)


class TestCrashSafety:
    def _spec(self):
        return SweepSpec(**SMALL_SPEC)

    def test_sigkilled_worker_is_retried_to_completion(self, tmp_path, monkeypatch):
        import os
        import signal

        import repro.sweep.runner as runner

        real = runner.execute_point
        marker_dir = tmp_path / "markers"
        marker_dir.mkdir()

        def kill_once(canonical):
            n = canonical["topology_params"]["n"]
            marker = marker_dir / f"seen-{n}"
            if n == 12 and not marker.exists():
                marker.write_text("x")
                os.kill(os.getpid(), signal.SIGKILL)
            return real(canonical)

        monkeypatch.setattr(runner, "execute_point", kill_once)
        cache = ResultCache(tmp_path / "cache")
        outcome = run_sweep(self._spec(), workers=2, cache=cache, retries=2)
        assert len(outcome.results) == 2
        assert not any(r.cached for r in outcome.results)
        # Zero lost cache entries despite the mid-run kill.
        assert all(cache.get(p) is not None for p in self._spec().points())

    def test_hung_point_is_killed_and_retried(self, tmp_path, monkeypatch):
        import time as time_module

        import repro.sweep.runner as runner

        real = runner.execute_point
        marker = tmp_path / "hung-once"

        def hang_once(canonical):
            if canonical["topology_params"]["n"] == 12 and not marker.exists():
                marker.write_text("x")
                time_module.sleep(60)
            return real(canonical)

        monkeypatch.setattr(runner, "execute_point", hang_once)
        outcome = run_sweep(self._spec(), workers=2, timeout=2, retries=1)
        assert len(outcome.results) == 2

    def test_exhausted_retries_raise_with_survivors_cached(self, tmp_path, monkeypatch):
        from repro.sweep import SweepExecutionError
        import repro.sweep.runner as runner

        real = runner.execute_point

        def fail_one(canonical):
            if canonical["topology_params"]["n"] == 12:
                raise RuntimeError("synthetic failure")
            return real(canonical)

        monkeypatch.setattr(runner, "execute_point", fail_one)
        cache = ResultCache(tmp_path)
        spec = self._spec()
        with pytest.raises(SweepExecutionError) as err:
            run_sweep(spec, workers=2, timeout=60, cache=cache, retries=1)
        assert len(err.value.failures) == 1
        assert "synthetic failure" in next(iter(err.value.failures.values()))
        # The healthy sibling finished and was cached before the raise.
        healthy = [p for p in spec.points()
                   if dict(p.topology_params)["n"] == 18]
        assert cache.get(healthy[0]) is not None

    def test_configuration_errors_are_not_retried(self, tmp_path, monkeypatch):
        from repro.sweep import SweepExecutionError
        import repro.sweep.runner as runner

        attempts_dir = tmp_path / "attempts"
        attempts_dir.mkdir()

        def always_misconfigured(canonical):
            count = len(list(attempts_dir.iterdir()))
            (attempts_dir / str(count)).write_text("x")
            raise ConfigurationError("deterministically wrong")

        monkeypatch.setattr(runner, "execute_point", always_misconfigured)
        spec = SweepSpec(**{**SMALL_SPEC,
                            "topology_grid": {"n": [12], "depth": 3}})
        with pytest.raises(SweepExecutionError):
            run_sweep(spec, workers=2, timeout=60, retries=5)
        # One attempt, not six: configuration errors never retry.
        assert len(list(attempts_dir.iterdir())) == 1

    def test_serial_path_retries_flaky_failures(self, tmp_path, monkeypatch):
        import repro.sweep.runner as runner

        real = runner.execute_point
        marker = tmp_path / "flaked"

        def flaky(canonical):
            if not marker.exists():
                marker.write_text("x")
                raise RuntimeError("transient")
            return real(canonical)

        monkeypatch.setattr(runner, "execute_point", flaky)
        spec = SweepSpec(**{**SMALL_SPEC,
                            "topology_grid": {"n": [12], "depth": 3}})
        outcome = run_sweep(spec, workers=1, retries=1, backoff=0.01)
        assert len(outcome.results) == 1

    def test_invalid_runner_arguments_raise(self):
        with pytest.raises(ConfigurationError):
            run_sweep(self._spec(), retries=-1)
        with pytest.raises(ConfigurationError):
            run_sweep(self._spec(), timeout=0)
