#!/usr/bin/env python3
"""Walkthrough: watch Select-and-Send coordinate without collision detection.

Runs the Section 4.2 algorithm on a small network with a full channel
trace and prints every slot: who transmitted, who received, where
collisions happened — making the Echo trick visible.  Collisions are not
failures here; they are *measurements* (a collision in Echo slot 1 plus a
collision in Echo slot 2 tells the token holder "two or more unvisited
neighbours").

Run:  python examples/token_walkthrough.py
"""

from repro.core import SelectAndSend
from repro.sim import SynchronousEngine, TraceLevel
from repro.sim.network import RadioNetwork


def main() -> None:
    # A small bowtie: the source with two wings of unvisited neighbours.
    #        1 - 3
    #      / |
    #    0   |
    #      \ |
    #        2 - 4
    net = RadioNetwork.undirected(
        range(5), [(0, 1), (0, 2), (1, 2), (1, 3), (2, 4)]
    )
    print(net.describe())
    print()

    engine = SynchronousEngine(net, SelectAndSend(), trace_level=TraceLevel.FULL)
    engine.run(300, stop_when_informed=False)

    print(engine.trace.format_timeline(max_steps=80))
    print()
    print(f"all informed after {engine.completion_time} slots; "
          f"DFS token visited every node: "
          f"{all(p.visited for p in engine.protocols.values())}")
    print(f"total transmissions: {engine.trace.total_transmissions()}, "
          f"collision events used as Echo measurements: "
          f"{engine.trace.total_collisions()}")


if __name__ == "__main__":
    main()
