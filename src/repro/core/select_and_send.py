"""``Select-and-Send``: deterministic broadcasting in O(n log n) (Section 4.2).

A token performs a DFS of the network.  Whenever the token sits at a node
``v``, the node (1) transmits the source message — waking all neighbours —
and (2) finds one *unvisited* neighbour to hand the token to, using the
Echo/Binary-Selection machinery of Section 4.1 with its DFS parent as the
distinguished node.  If no unvisited neighbour remains, the token returns
to the parent.  The algorithm is globally sequential: in every slot either
the token holder transmits an order, or the holder's neighbours execute
the Echo slots that order opened — so the channel is always coordinated
despite having no collision detection.

Timeline conventions (all slots relative to the order that opens them):

* order at slot ``b`` (``TokenAnnounce`` or ``EchoProbe``);
* Echo slot 1 at ``b + 1`` — the probed set ``A`` transmits;
* Echo slot 2 at ``b + 2`` — ``A`` plus the distinguished parent transmit;
* the holder's next order at ``b + 3``.

Startup (the paper's part 1): the source transmits an order at slot 0;
its neighbour with label ``i`` replies in slot ``2 i``; on the first reply
(necessarily the lowest-labelled neighbour ``j``) the source broadcasts a
stop-and-take-token order in the next slot.

Deviations from the paper's prose: none in behaviour.  Each time the token
*returns* to a node the full routine (announce + Echo) is re-run, exactly
as "If the token is at node v" prescribes.
"""

from __future__ import annotations

import random
from typing import Any

from ..sim.errors import ProtocolViolationError
from ..sim.messages import Message
from ..sim.protocol import BroadcastAlgorithm, Protocol
from .echo import (
    EchoOutcome,
    EchoProbe,
    EchoReply,
    HereIAm,
    InitOrder,
    InitStop,
    Probe,
    QuietEchoSchedule,
    Selected,
    SelectionDriver,
    StopAll,
    TokenAnnounce,
    TokenPass,
    classify_echo,
    startup_boundary,
)

__all__ = ["SelectAndSend"]


class _SelectAndSendProtocol(QuietEchoSchedule, Protocol):
    """Per-node state machine for Select-and-Send.

    Slots where this node acts are fully determined by ``scheduled`` and
    the holder's Echo window, so :class:`QuietEchoSchedule` provides the
    exact idle hint the event-driven engine compresses on.
    """

    def __init__(self, label: int, r: int, rng: random.Random):
        super().__init__(label, r, rng)
        self.scheduled: dict[int, Any] = {}
        self.visited = False  # has this node ever held the token?
        self.parent: int | None = None
        self.holding = False
        self.stopped = False
        # Holder-side Echo bookkeeping: (kind, base_slot) while waiting for
        # the two Echo observation slots of the last order.
        self._awaiting: tuple[str, int] | None = None
        self._echo_first: int | None = None
        self._driver: SelectionDriver | None = None
        # Source-side init bookkeeping.  start_slot lets a wrapper replay
        # the whole startup later in time (gossip's dissemination pass).
        self.start_slot = 0
        self._init_waiting = False
        self._init_reply_slot: int | None = None

    # -- engine hooks ------------------------------------------------------

    def on_wake(self, step: int, message: Message | None) -> None:
        if message is None:  # the source, woken before its start slot
            self.visited = True
            self._init_waiting = True
            self.scheduled[self.start_slot] = InitOrder(base_slot=self.start_slot)
        else:
            self._handle(step, message)

    def next_action(self, step: int) -> Any | None:
        if self.stopped:
            return None
        return self.scheduled.pop(step, None)

    def observe(self, step: int, message: Message | None) -> None:
        if self.holding and self._awaiting is not None:
            kind, base = self._awaiting
            if step == base + 1:
                self._echo_first = _reply_label(message)
                return
            if step == base + 2:
                second = _reply_label(message)
                self._decide(kind, base, self._echo_first, second)
                return
        if message is not None:
            self._handle(step, message)

    # -- message dispatch ----------------------------------------------------

    def _handle(self, step: int, message: Message) -> None:
        payload = message.payload
        if isinstance(payload, InitOrder):
            # Reserve the slot base + 2 * label for the self-announcement.
            self._init_reply_slot = payload.base_slot + 2 * self.label
            self.scheduled[self._init_reply_slot] = HereIAm(self.label)
        elif isinstance(payload, HereIAm):
            if self.label == 0 and self._init_waiting:
                self._init_waiting = False
                self.parent = payload.label  # the source's distinguished node
                self.scheduled[step + 1] = InitStop(token_to=payload.label)
        elif isinstance(payload, InitStop):
            if self._init_reply_slot is not None:
                self.scheduled.pop(self._init_reply_slot, None)
                self._init_reply_slot = None
            if self.label == payload.token_to:
                self.visited = True
                self.parent = 0
                self._announce(step + 1)
        elif isinstance(payload, TokenAnnounce):
            self._respond_to_echo(payload.base_slot, payload.parent, 1, self.r)
        elif isinstance(payload, EchoProbe):
            self._respond_to_echo(payload.base_slot, payload.parent, payload.lo, payload.hi)
        elif isinstance(payload, TokenPass):
            if self.label == payload.to:
                if not self.visited:
                    self.visited = True
                    self.parent = payload.from_label
                self._announce(step + 1)
        elif isinstance(payload, StopAll):
            self.stopped = True
            self.scheduled.clear()
        elif isinstance(payload, EchoReply):
            pass  # informational for non-holders (it carries the source message)
        else:
            raise ProtocolViolationError(
                f"node {self.label}: unexpected payload {payload!r}"
            )

    def _respond_to_echo(self, base: int, parent: int, lo: int, hi: int) -> None:
        """Schedule this node's part in the Echo pair opened at ``base``."""
        if not self.visited and lo <= self.label <= hi:
            self.scheduled[base + 1] = EchoReply(self.label)
            self.scheduled[base + 2] = EchoReply(self.label)
        elif self.label == parent:
            self.scheduled[base + 2] = EchoReply(self.label)

    # -- holder side ---------------------------------------------------------

    def _announce(self, slot: int) -> None:
        """Take the token: announce (wakes neighbours) and open a full Echo."""
        self.holding = True
        assert self.parent is not None
        self.scheduled[slot] = TokenAnnounce(
            holder=self.label, parent=self.parent, base_slot=slot
        )
        self._awaiting = ("announce", slot)
        self._echo_first = None

    def _decide(self, kind: str, base: int, first: int | None, second: int | None) -> None:
        """Consume one Echo outcome and emit the next order at ``base + 3``."""
        outcome, label = classify_echo(first, second)
        self._awaiting = None
        self._echo_first = None
        if kind == "announce":
            if outcome is EchoOutcome.SINGLE:
                self._pass_token(base + 3, label, returning=False)
            elif outcome is EchoOutcome.EMPTY:
                if self.label == 0:
                    self.scheduled[base + 3] = StopAll()
                    self.holding = False
                    self.stopped = False  # transmit StopAll first, then rest
                else:
                    self._pass_token(base + 3, self.parent, returning=True)
            else:  # MANY: start doubling + binary selection
                self._driver = SelectionDriver(self.r)
                self._emit_probe(base + 3, self._driver.current_probe)
        else:  # probe segment
            assert self._driver is not None
            step = self._driver.feed(outcome, label)
            if isinstance(step, Selected):
                self._driver = None
                self._pass_token(base + 3, step.label, returning=False)
            else:
                self._emit_probe(base + 3, step)

    def _emit_probe(self, slot: int, probe: Probe) -> None:
        assert self.parent is not None
        self.scheduled[slot] = EchoProbe(
            holder=self.label,
            parent=self.parent,
            lo=probe.lo,
            hi=probe.hi,
            base_slot=slot,
        )
        self._awaiting = ("probe", slot)

    def _pass_token(self, slot: int, to: int, returning: bool) -> None:
        self.scheduled[slot] = TokenPass(to=to, from_label=self.label, returning=returning)
        self.holding = False
        self._driver = None


def _reply_label(message: Message | None) -> int | None:
    """Extract the responder label from an Echo observation slot."""
    if message is None:
        return None
    payload = message.payload
    if isinstance(payload, EchoReply):
        return payload.label
    raise ProtocolViolationError(
        f"non-EchoReply payload {payload!r} observed in an Echo slot"
    )


class SelectAndSend(BroadcastAlgorithm):
    """Deterministic O(n log n) broadcast by DFS token + Binary-Selection.

    Theorem 3: completes broadcasting on any n-node network in
    ``O(n log n)`` slots.  Part 1 costs ``O(r)``; each of the ``O(n)``
    token moves costs ``O(log n)`` Echo segments of 3 slots each.
    """

    deterministic = True

    def __init__(self) -> None:
        self.name = "select-and-send"
        self._stage_cache_key: tuple[int, int] | None = None
        self._stage_boundary: int | None = None

    def create(self, label: int, r: int, rng: random.Random) -> Protocol:
        return _SelectAndSendProtocol(label, r, rng)

    def max_steps_hint(self, n: int, r: int) -> int | None:
        log_r = max(1, (r + 1).bit_length())
        return 2 * r + 8 + 2 * n * (6 * log_r + 30)

    def stage_hint(self, step: int, trace=None) -> str | None:
        """Split a recorded run at the source's ``InitStop`` (its second
        transmission): Part 1 round-robin vs the DFS token traversal."""
        from ..sim.trace import TraceLevel

        if trace is None or trace.level is not TraceLevel.FULL:
            return None
        key = (id(trace), len(trace.steps))
        if self._stage_cache_key != key:
            self._stage_cache_key = key
            self._stage_boundary = startup_boundary(trace)
        boundary = self._stage_boundary
        if boundary is None or step < boundary:
            return "startup"
        return "dfs-traversal"
