"""Oblivious-schedule layer adversary (Bruschi–Del Pinto style)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adversary.oblivious import ObliviousLayerAdversary, verify_oblivious
from repro.baselines import BGIBroadcast, RoundRobinBroadcast, SelectiveFamilyBroadcast
from repro.sim.errors import ConfigurationError, SimulationError


def test_rejects_randomized():
    with pytest.raises(ConfigurationError, match="deterministic"):
        ObliviousLayerAdversary(BGIBroadcast(63), 64, 4)


def test_rejects_interactive_protocols():
    from repro.core import SelectAndSend

    with pytest.raises(ConfigurationError, match="vectorised"):
        ObliviousLayerAdversary(SelectAndSend(), 64, 4)


def test_rejects_too_small_n():
    with pytest.raises(ConfigurationError, match="n >= 2"):
        ObliviousLayerAdversary(RoundRobinBroadcast(7), 8, 4)


def test_structure_pair_layers():
    result = ObliviousLayerAdversary(RoundRobinBroadcast(63), 64, 5).build()
    net = result.network
    assert net.is_complete_layered()
    assert net.radius == 6  # 5 pair layers + the absorbing final layer
    layers = net.layers()
    assert layers[0] == (0,)
    for j in range(1, 6):
        assert len(layers[j]) == 2
    assert len(result.layer_delays) == 6  # source hop + 5 pair layers


def test_floor_is_tight_for_round_robin():
    result = ObliviousLayerAdversary(RoundRobinBroadcast(127), 128, 6).build()
    ok, completion = verify_oblivious(result, RoundRobinBroadcast(127))
    assert ok
    # Last pair layer informed exactly at the predicted floor; the
    # absorbing layer needs at least one more lone transmission.
    assert completion >= result.predicted_floor


def test_floor_is_tight_for_selective_schedule():
    algo = SelectiveFamilyBroadcast(127, "random", max_scale=8, seed=4)
    result = ObliviousLayerAdversary(algo, 128, 6).build()
    ok, completion = verify_oblivious(
        result, SelectiveFamilyBroadcast(127, "random", max_scale=8, seed=4)
    )
    assert ok and completion >= result.predicted_floor


def test_round_robin_pays_theta_r_per_layer():
    """RR is an (n, 2)-selective family of size r+1: delays ~ r, not log n."""
    result = ObliviousLayerAdversary(RoundRobinBroadcast(255), 256, 6).build()
    pair_delays = result.layer_delays[1:]
    assert min(pair_delays) > 256 // 2


def test_selective_schedule_much_cheaper_per_layer():
    algo = SelectiveFamilyBroadcast(255, "random", max_scale=16, seed=1)
    result = ObliviousLayerAdversary(algo, 256, 6).build()
    rr = ObliviousLayerAdversary(RoundRobinBroadcast(255), 256, 6).build()
    assert result.predicted_floor < rr.predicted_floor


def test_never_separating_schedule_detected():
    class AllwaysAll:
        """Pathological schedule: everyone transmits every slot."""

        name = "always-all"
        deterministic = True

        def transmit_mask(self, step, labels, wake_steps, r, rng):
            return np.ones(labels.shape, dtype=bool)

        def create(self, label, r, rng):  # pragma: no cover - not used
            raise NotImplementedError

        def max_steps_hint(self, n, r):
            return 10

    adversary = ObliviousLayerAdversary(AllwaysAll(), 64, 3, horizon=100)
    with pytest.raises(SimulationError, match="never separated"):
        adversary.build()


def test_pairs_are_disjoint_across_layers():
    result = ObliviousLayerAdversary(RoundRobinBroadcast(63), 64, 5).build()
    seen: set[int] = set()
    for layer in result.layers:
        assert not (set(layer) & seen)
        seen |= set(layer)
    assert seen == set(range(64))
