"""JSON serialization for networks and results.

Reproducible experiments need durable artifacts: a hard instance found by
search, the adversarial network built against an algorithm, or a batch of
results worth re-analysing later.  This module round-trips
:class:`~repro.sim.network.RadioNetwork` and
:class:`~repro.sim.run.BroadcastResult` through plain JSON documents with
a format marker and version, so files stay readable across releases.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any

from ..obs.timings import Timings
from .errors import ConfigurationError
from .faults import FaultCounters
from .network import RadioNetwork
from .run import BroadcastResult

__all__ = [
    "network_to_dict",
    "network_from_dict",
    "result_to_dict",
    "result_from_dict",
    "save_network",
    "load_network",
    "save_result",
    "load_result",
]

_FORMAT_NETWORK = "repro.radio-network"
_FORMAT_RESULT = "repro.broadcast-result"
_VERSION = 1


def network_to_dict(network: RadioNetwork) -> dict[str, Any]:
    """Plain-dict form of a network (JSON-safe)."""
    if network.is_directed:
        edges = sorted(
            (u, v) for u, nbrs in network.out_neighbors.items() for v in nbrs
        )
    else:
        edges = sorted(
            (u, v)
            for u, nbrs in network.out_neighbors.items()
            for v in nbrs
            if u < v
        )
    return {
        "format": _FORMAT_NETWORK,
        "version": _VERSION,
        "directed": network.is_directed,
        "r": network.r,
        "nodes": list(network.nodes),
        "edges": [list(edge) for edge in edges],
    }


def network_from_dict(data: dict[str, Any]) -> RadioNetwork:
    """Rebuild a network from :func:`network_to_dict` output."""
    if data.get("format") != _FORMAT_NETWORK:
        raise ConfigurationError(
            f"not a radio-network document (format={data.get('format')!r})"
        )
    edges = [tuple(edge) for edge in data["edges"]]
    if data["directed"]:
        return RadioNetwork.directed(data["nodes"], edges, r=data["r"])
    return RadioNetwork.undirected(data["nodes"], edges, r=data["r"])


def result_to_dict(result: BroadcastResult) -> dict[str, Any]:
    """Plain-dict form of a result (the trace is intentionally dropped:
    traces are debugging artifacts, not measurements)."""
    data = {
        "format": _FORMAT_RESULT,
        "version": _VERSION,
        "completed": result.completed,
        "time": result.time,
        "informed": result.informed,
        "n": result.n,
        "radius": result.radius,
        "algorithm": result.algorithm,
        "seed": result.seed,
        "wake_times": {str(label): step for label, step in result.wake_times.items()},
        "layer_times": list(result.layer_times),
    }
    # Only faulty runs carry the key, so pristine documents are unchanged.
    if result.fault_counters is not None:
        data["fault_counters"] = result.fault_counters.to_dict()
    # Likewise only instrumented runs carry stage timings.
    if result.timings is not None and result.timings:
        data["timings"] = result.timings.to_dict()
    return data


def result_from_dict(data: dict[str, Any]) -> BroadcastResult:
    """Rebuild a result from :func:`result_to_dict` output."""
    if data.get("format") != _FORMAT_RESULT:
        raise ConfigurationError(
            f"not a broadcast-result document (format={data.get('format')!r})"
        )
    return BroadcastResult(
        completed=data["completed"],
        time=data["time"],
        informed=data["informed"],
        n=data["n"],
        radius=data["radius"],
        algorithm=data["algorithm"],
        seed=data["seed"],
        wake_times={int(label): step for label, step in data["wake_times"].items()},
        layer_times=tuple(
            step if step is not None else None for step in data["layer_times"]
        ),
        fault_counters=(
            FaultCounters.from_dict(data["fault_counters"])
            if "fault_counters" in data
            else None
        ),
        timings=(
            Timings.from_dict(data["timings"]) if "timings" in data else None
        ),
    )


def save_network(network: RadioNetwork, path: str | pathlib.Path) -> None:
    """Write a network to a JSON file."""
    pathlib.Path(path).write_text(json.dumps(network_to_dict(network), indent=1))


def load_network(path: str | pathlib.Path) -> RadioNetwork:
    """Read a network from a JSON file (validates on construction)."""
    return network_from_dict(json.loads(pathlib.Path(path).read_text()))


def save_result(result: BroadcastResult, path: str | pathlib.Path) -> None:
    """Write a result to a JSON file."""
    pathlib.Path(path).write_text(json.dumps(result_to_dict(result), indent=1))


def load_result(path: str | pathlib.Path) -> BroadcastResult:
    """Read a result from a JSON file."""
    return result_from_dict(json.loads(pathlib.Path(path).read_text()))
