"""Reference-engine semantics: the radio model rules, one by one."""

from __future__ import annotations

import random

import pytest

from repro.sim.engine import SynchronousEngine
from repro.sim.errors import ConfigurationError
from repro.sim.messages import Message
from repro.sim.network import RadioNetwork
from repro.sim.protocol import BroadcastAlgorithm, Protocol
from repro.sim.trace import TraceLevel


class _Scripted(Protocol):
    """Transmits the payload ``("tick", label)`` at the scripted steps."""

    def __init__(self, label, r, rng, steps):
        super().__init__(label, r, rng)
        self.steps = steps
        self.received: list[tuple[int, int | None]] = []  # (step, sender|None)
        self.wake_message: Message | None = None

    def on_wake(self, step, message):
        self.wake_message = message

    def next_action(self, step):
        return ("tick", self.label) if step in self.steps else None

    def observe(self, step, message):
        self.received.append((step, message.sender if message else None))


class ScriptedAlgorithm(BroadcastAlgorithm):
    """Per-label transmission scripts, for exact channel tests."""

    deterministic = True

    def __init__(self, scripts: dict[int, set[int]]):
        self.name = "scripted"
        self.scripts = scripts

    def create(self, label, r, rng):
        return _Scripted(label, r, rng, self.scripts.get(label, set()))


def star4():
    # 0 at the centre of a star with leaves 1, 2, 3.
    return RadioNetwork.undirected(range(4), [(0, 1), (0, 2), (0, 3)])


def test_single_transmitter_delivers():
    net = star4()
    engine = SynchronousEngine(net, ScriptedAlgorithm({0: {0}}))
    engine.run_step()
    assert engine.informed_count == 4
    assert engine.wake_times == {0: -1, 1: 0, 2: 0, 3: 0}


def test_collision_is_silence():
    # Leaves 1 and 2 both transmit at step 1: centre hears nothing.
    net = star4()
    engine = SynchronousEngine(net, ScriptedAlgorithm({0: {0}, 1: {1}, 2: {1}}))
    engine.run_step()
    engine.run_step()
    centre = engine.protocols[0]
    # Step 0: the centre itself transmitted (hears nothing); step 1: the
    # two simultaneous leaves collide — indistinguishable from silence.
    assert centre.received == [(0, None), (1, None)]


def test_exactly_one_neighbor_delivers_to_listener():
    net = star4()
    engine = SynchronousEngine(net, ScriptedAlgorithm({0: {0}, 1: {1}}))
    engine.run_step()
    engine.run_step()
    centre = engine.protocols[0]
    assert centre.received == [(0, None), (1, 1)]


def test_half_duplex_transmitter_hears_nothing():
    # Centre and leaf 1 transmit simultaneously at step 1; the centre is
    # transmitting so it cannot receive leaf 1's message.
    net = star4()
    engine = SynchronousEngine(net, ScriptedAlgorithm({0: {0, 1}, 1: {1}}))
    engine.run_step()
    engine.run_step()
    centre = engine.protocols[0]
    assert centre.received == [(0, None), (1, None)]
    # Leaf 2 neighbours only the centre, so it hears the centre's step-1
    # message cleanly (exactly one of ITS neighbours transmitted).
    leaf2 = engine.protocols[2]
    assert leaf2.received == [(1, 0)]


def test_sleeping_nodes_never_act():
    # Node 3's script says transmit at step 0, but it is uninformed: the
    # engine never instantiates it, so nothing is sent.
    net = RadioNetwork.undirected(range(4), [(0, 1), (1, 2), (2, 3)])
    engine = SynchronousEngine(net, ScriptedAlgorithm({3: {0}}))
    transmitters = engine.run_step()
    assert transmitters == ()
    assert 3 not in engine.protocols


def test_wake_step_and_delayed_action():
    # Node 1 woken at step 0; its script transmits at step 1 (not step 0).
    net = RadioNetwork.undirected(range(3), [(0, 1), (1, 2)])
    engine = SynchronousEngine(net, ScriptedAlgorithm({0: {0}, 1: {1}}))
    assert engine.run_step() == (0,)
    assert engine.run_step() == (1,)
    assert engine.wake_times == {0: -1, 1: 0, 2: 1}
    assert engine.completion_time == 2


def test_wake_message_content():
    net = RadioNetwork.undirected(range(2), [(0, 1)])
    engine = SynchronousEngine(net, ScriptedAlgorithm({0: {0}}))
    engine.run_step()
    woken = engine.protocols[1]
    assert woken.wake_message == Message(sender=0, payload=("tick", 0))


def test_directed_edge_is_one_way():
    net = RadioNetwork.directed([0, 1], [(0, 1)])
    engine = SynchronousEngine(net, ScriptedAlgorithm({0: {0}, 1: {1}}))
    engine.run_step()
    assert engine.informed_count == 2
    engine.run_step()  # node 1 transmits; node 0 must NOT hear (no 1->0 arc)
    source = engine.protocols[0]
    assert source.received == [(0, None), (1, None)]


def test_completion_time_none_while_running():
    net = RadioNetwork.undirected(range(3), [(0, 1), (1, 2)])
    engine = SynchronousEngine(net, ScriptedAlgorithm({0: {5}}))
    engine.run_step()
    assert engine.completion_time is None


def test_single_node_network_completes_immediately():
    net = RadioNetwork.undirected([0], [])
    engine = SynchronousEngine(net, ScriptedAlgorithm({}))
    assert engine.all_informed
    assert engine.completion_time == 0


def test_run_respects_stop_when_informed():
    net = RadioNetwork.undirected(range(2), [(0, 1)])
    engine = SynchronousEngine(net, ScriptedAlgorithm({0: {0, 5}}))
    executed = engine.run(100)
    assert executed == 1  # informed after the first slot
    engine2 = SynchronousEngine(net, ScriptedAlgorithm({0: {0, 5}}))
    assert engine2.run(10, stop_when_informed=False) == 10


def test_run_negative_max_steps_rejected():
    net = RadioNetwork.undirected(range(2), [(0, 1)])
    engine = SynchronousEngine(net, ScriptedAlgorithm({0: {0}}))
    with pytest.raises(ConfigurationError):
        engine.run(-1)


def test_trace_full_records_channel_events():
    net = star4()
    engine = SynchronousEngine(
        net, ScriptedAlgorithm({0: {0}, 1: {1}, 2: {1}}), trace_level=TraceLevel.FULL
    )
    engine.run_step()
    engine.run_step()
    records = engine.trace.steps
    assert records[0].transmitters == (0,)
    assert records[0].woken == (1, 2, 3)
    assert records[1].transmitters == (1, 2)
    assert records[1].collisions == (0,)
    assert engine.trace.total_transmissions() == 3
    assert engine.trace.total_collisions() == 1
    assert "step" in engine.trace.format_timeline()


def test_trace_progress_level_skips_step_records():
    net = star4()
    engine = SynchronousEngine(
        net, ScriptedAlgorithm({0: {0}}), trace_level=TraceLevel.PROGRESS
    )
    engine.run_step()
    assert engine.trace.steps == []
    assert engine.trace.informed_counts == [4]
    with pytest.raises(ValueError):
        engine.trace.total_transmissions()


def test_step_hook_sees_transmitters():
    seen = []
    net = star4()
    engine = SynchronousEngine(
        net,
        ScriptedAlgorithm({0: {0}, 1: {1}}),
        step_hook=lambda step, tx: seen.append((step, tx)),
    )
    engine.run_step()
    engine.run_step()
    assert seen == [(0, (0,)), (1, (1,))]


def test_rng_is_seed_and_label_deterministic():
    net = star4()
    a = SynchronousEngine(net, ScriptedAlgorithm({}), seed=9)
    b = SynchronousEngine(net, ScriptedAlgorithm({}), seed=9)
    assert a._make_rng(3).random() == b._make_rng(3).random()
    assert a._make_rng(2).random() != a._make_rng(3).random()
