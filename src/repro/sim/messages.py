"""Messages exchanged on the radio channel.

A transmission in the model is an arbitrary payload tagged with the sender's
label.  The model places no bound on message size — algorithms in the paper
piggyback their entire control state (token orders, Echo requests, ranges)
on top of the source message, and the receiver deduces what it needs because
"programs of all nodes are the same" (Section 3.1).

Every message implicitly carries the source message: in this simulator a
node counts as *informed* as soon as it receives any message, which matches
the paper's convention that all transmitted messages contain the broadcast
payload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["Message", "SOURCE_PAYLOAD", "source_message", "CollisionMarker", "COLLISION_MARKER"]


#: Marker object used as the payload of the original source message.
SOURCE_PAYLOAD: str = "<source-message>"


@dataclass(frozen=True, slots=True)
class Message:
    """One transmission on the radio channel.

    Attributes:
        sender: Label of the transmitting node.  The engine verifies that
            this matches the node that actually produced the message.
        payload: Arbitrary, algorithm-specific content.  Must be treated as
            immutable; protocols share message objects across nodes.
    """

    sender: int
    payload: Any = SOURCE_PAYLOAD

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Message(sender={self.sender}, payload={self.payload!r})"


def source_message() -> Message:
    """Return the message the source (label 0) injects into the network."""
    return Message(sender=0, payload=SOURCE_PAYLOAD)


@dataclass(frozen=True, slots=True)
class CollisionMarker:
    """Observation delivered under the *collision detection* model variant.

    The paper's model cannot distinguish collision from silence — that is
    why Section 4.1 simulates collision detection with Echo.  For the
    ablation that quantifies the cost of the simulation, the engine can be
    run with ``collision_detection=True``: awake listeners with two or
    more transmitting in-neighbours then observe this marker instead of
    ``None``.  Collisions still carry no content, so they never *wake* a
    sleeping node.
    """


#: Singleton instance protocols compare against.
COLLISION_MARKER = CollisionMarker()
