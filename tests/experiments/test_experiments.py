"""Experiment framework and quick-mode experiment runs."""

from __future__ import annotations

import pytest

from repro.experiments import all_experiments, get_experiment
from repro.experiments.base import Claim, ExperimentReport


def test_registry_contains_all_twelve():
    assert list(all_experiments()) == [
        "e1", "e10", "e11", "e12", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9"
    ]


def test_unknown_experiment_raises():
    with pytest.raises(KeyError, match="unknown experiment"):
        get_experiment("e99")


class TestExperimentReport:
    def test_check_and_ok(self):
        report = ExperimentReport("ex", "title")
        report.check("a claim", True, "details")
        assert report.ok
        report.check("bad claim", False)
        assert not report.ok
        assert report.claims == [
            Claim("a claim", True, "details"),
            Claim("bad claim", False),
        ]

    def test_render_contains_tables_and_verdicts(self):
        report = ExperimentReport("ex", "title")
        report.add_table("a | b")
        report.check("good", True)
        report.check("bad", False, "numbers")
        text = report.render()
        assert "EX: title" in text
        assert "a | b" in text
        assert "[PASS] good" in text
        assert "[FAIL] bad  (numbers)" in text


@pytest.mark.parametrize("name", ["e7", "e10"])
def test_fast_experiments_quick_mode(name):
    report = get_experiment(name)(quick=True)
    assert report.ok, report.render()
    assert report.tables
    assert report.claims


def test_e6_quick_mode():
    report = get_experiment("e6")(quick=True)
    assert report.ok, report.render()


def test_e9_quick_mode():
    report = get_experiment("e9")(quick=True)
    assert report.ok, report.render()


def test_report_to_dict_round_trips_through_json():
    import json

    report = ExperimentReport("ex", "title")
    report.add_table("t")
    report.check("claim", True, "numbers")
    document = json.loads(json.dumps(report.to_dict()))
    assert document["experiment"] == "ex"
    assert document["ok"] is True
    assert document["claims"][0]["details"] == "numbers"
