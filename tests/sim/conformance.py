"""Cross-engine conformance harness: one semantics, five execution strategies.

Every engine in the repo — the per-node reference
:class:`~repro.sim.engine.SynchronousEngine`, the vectorised
:class:`~repro.sim.fast.FastEngine` and multi-trial
:class:`~repro.sim.fast.BatchedFastEngine`, the adaptive serial
:class:`~repro.sim.event.EventDrivenEngine`, and the adaptive batched
:class:`~repro.sim.batched_event.BatchedEventEngine` — is a pure
execution strategy over the same synchronous radio semantics.  This
module is the shared substrate the differential tests are built from:

* the canonical **matrices** (oblivious algorithms, adaptive protocol
  cases, topologies, fault plans, trial seeds) that used to be
  copy-pasted across ``test_differential.py``, ``test_event_engine.py``
  and ``test_faults.py``;
* an **engine registry** (:data:`ENGINES`): each engine registers a
  uniform runner plus capability flags, and ``test_conformance.py``
  drives every registered engine through the full matrix — adding an
  engine to the repo means adding one :func:`register_engine` call here;
* **comparison helpers** asserting slot-for-slot execution identity
  (results, traces, fault counters, aggregated metrics) against the
  reference engine, including identical *failures*;
* the **hint-honesty wrappers** (:class:`HintCheckedAlgorithm`) and the
  reusable hypothesis strategy for faulty cases.

The module name has no ``test_`` prefix on purpose: pytest does not
collect it, test modules import from it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from hypothesis import strategies as st

from repro.baselines import (
    BGIBroadcast,
    CentralizedGreedySchedule,
    RoundRobinBroadcast,
    SelectiveFamilyBroadcast,
)
from repro.core import (
    CompleteLayeredBroadcast,
    KnownRadiusKP,
    OptimalRandomizedBroadcasting,
    SelectAndSend,
    TokenGossip,
)
from repro.obs.metrics import MetricsRegistry
from repro.sim import FaultPlan, run_broadcast
from repro.sim.errors import ProtocolViolationError
from repro.sim._kernels import HAVE_NUMBA
from repro.sim.fast import run_broadcast_batch, run_broadcast_fast
from repro.sim.macro import run_broadcast_macro
from repro.sim.messages import CollisionMarker
from repro.sim.protocol import BroadcastAlgorithm, Protocol
from repro.sim.trace import TraceLevel
from repro.topology import (
    gnp_connected,
    km_hard_layered,
    path,
    random_tree,
    star,
    uniform_complete_layered,
)

# ----------------------------------------------------------------------
# Canonical matrices
# ----------------------------------------------------------------------

#: Per-trial master seeds; a duplicate would still be legal (identical
#: executions) but distinct values exercise genuinely independent trials.
SEEDS = [0, 1, 5]

#: Oblivious algorithms (dual interface: BroadcastAlgorithm and
#: VectorizedAlgorithm) — every engine can run these.  Small stage
#: constants keep the randomized schedules short; every other parameter
#: is the library default.
OBLIVIOUS_ALGORITHMS = {
    "kp-known-d": lambda net: KnownRadiusKP(
        net.r, max(1, net.radius), stage_constant=4
    ),
    "kp-optimal": lambda net: OptimalRandomizedBroadcasting(net.r, stage_constant=4),
    "bgi": lambda net: BGIBroadcast(net.r),
    "round-robin": lambda net: RoundRobinBroadcast(net.r),
    "selective-family": lambda net: SelectiveFamilyBroadcast(net.r, "random"),
    "centralized": lambda net: CentralizedGreedySchedule(net),
}

#: Topologies for the oblivious matrix.
OBLIVIOUS_TOPOLOGIES = {
    "path": lambda: path(9),
    "star": lambda: star(8),
    "layered": lambda: uniform_complete_layered(30, 3),
    "km-hard": lambda: km_hard_layered(48, 4, seed=5),
}

#: Adaptive protocol cases: name -> (network builder, algorithm builder,
#: collision_detection).  Select-and-Send runs on arbitrary topologies;
#: Complete-Layered only on the complete layered class it is correct
#: for.  TokenGossip wraps S&S without implementing ``quiet_until`` — it
#: exercises the unhinted default (polled every slot) on the event
#: engines.
ADAPTIVE_CASES = {
    "ss-path": (lambda: path(24, relabel="shuffled", seed=5), SelectAndSend, False),
    "ss-tree": (lambda: random_tree(32, seed=3), SelectAndSend, False),
    "ss-gnp": (lambda: gnp_connected(48, 0.12, seed=7), SelectAndSend, False),
    "cl-uniform": (
        lambda: uniform_complete_layered(48, 5, relabel_seed=2),
        CompleteLayeredBroadcast,
        False,
    ),
    "cl-km": (lambda: km_hard_layered(48, 6, seed=4), CompleteLayeredBroadcast, False),
    "cl-native-cd": (
        lambda: uniform_complete_layered(48, 5, relabel_seed=2),
        lambda: CompleteLayeredBroadcast(native_cd=True),
        True,
    ),
    "gossip-unhinted": (lambda: path(10), TokenGossip, False),
}


def crash_jam_delay_plan(net) -> FaultPlan:
    """All fault families except loss (the adaptive token algorithms are
    not loss-tolerant; the loss case is tested as identical *failure*)."""
    labels = sorted(set(net.nodes) - {net.source})
    return FaultPlan(
        crashes=((labels[-1], 9),),
        jams=tuple((slot, labels[0]) for slot in range(6)),
        wake_delays=((labels[1], 7),),
        seed=23,
    )


def full_fault_plan(net) -> FaultPlan:
    """A nontrivial plan touching all four fault families (loss 0.3)
    without disconnecting the source — for loss-tolerant algorithms."""
    labels = sorted(set(net.nodes) - {net.source})
    return FaultPlan(
        crashes=((labels[-1], 9),),
        jams=tuple((slot, labels[0]) for slot in range(6)),
        loss_probability=0.3,
        wake_delays=((labels[1], 7),),
        seed=23,
    )


#: Fault-plan axes.  The oblivious algorithms tolerate loss, the token
#: protocols do not (their loss behaviour is pinned as identical failure).
OBLIVIOUS_PLANS = {"none": lambda net: None, "faulty": full_fault_plan}
ADAPTIVE_PLANS = {"none": lambda net: None, "crash-jam-delay": crash_jam_delay_plan}


# ----------------------------------------------------------------------
# Engine registry
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class Outcome:
    """What one engine produced for a seed list: per-trial results in
    seed order, the aggregated metrics snapshot (``None`` when the run
    was uninstrumented), and the stringified first protocol violation
    (``None`` on clean runs; results are unspecified when set)."""

    results: tuple = ()
    metrics: dict | None = None
    error: str | None = None


@dataclass(frozen=True)
class EngineSpec:
    """A registered engine: a uniform runner plus capability flags.

    ``runner(net, algorithm_factory, seeds, faults, max_steps,
    trace_level, collision_detection, with_metrics)`` must execute one
    independent run per seed and return an :class:`Outcome`.  Serial
    engines loop (one shared metrics registry, mirroring the batch
    aggregate); batch engines run all seeds at once.

    Capability flags gate matrix cells, they never weaken assertions:
    an engine that *claims* a capability is held to bit-identity on it.
    """

    name: str
    runner: Callable[..., Outcome]
    #: Runs arbitrary BroadcastAlgorithm protocols (vs. oblivious only).
    adaptive: bool = True
    #: Records channel traces / supports the CD variant / records metrics
    #: comparably to the reference engine.
    traces: bool = True
    collision_detection: bool = True
    metrics: bool = True


ENGINES: dict[str, EngineSpec] = {}


def register_engine(spec: EngineSpec) -> EngineSpec:
    if spec.name in ENGINES:
        raise ValueError(f"engine {spec.name!r} already registered")
    ENGINES[spec.name] = spec
    return spec


def _serial_runner(engine: str):
    def run(net, make_algo, seeds, faults=None, max_steps=4000,
            trace_level=TraceLevel.NONE, collision_detection=False,
            with_metrics=False) -> Outcome:
        metrics = MetricsRegistry() if with_metrics else None
        results = []
        for seed in seeds:
            try:
                results.append(run_broadcast(
                    net, make_algo(net), seed=seed, engine=engine,
                    faults=faults, max_steps=max_steps,
                    trace_level=trace_level,
                    collision_detection=collision_detection,
                    metrics=metrics, require_completion=False,
                ))
            except ProtocolViolationError as exc:
                return Outcome(tuple(results), None, str(exc))
        return Outcome(
            tuple(results), metrics.to_dict() if metrics else None, None
        )

    return run


def _fast_runner(net, make_algo, seeds, faults=None, max_steps=4000,
                 trace_level=TraceLevel.NONE, collision_detection=False,
                 with_metrics=False) -> Outcome:
    metrics = MetricsRegistry() if with_metrics else None
    results = [
        run_broadcast_fast(
            net, make_algo(net), seed=seed, faults=faults,
            max_steps=max_steps, metrics=metrics, trace_level=trace_level,
        )
        for seed in seeds
    ]
    return Outcome(tuple(results), metrics.to_dict() if metrics else None, None)


def _macro_runner(backend: str):
    def run(net, make_algo, seeds, faults=None, max_steps=4000,
            trace_level=TraceLevel.NONE, collision_detection=False,
            with_metrics=False) -> Outcome:
        metrics = MetricsRegistry() if with_metrics else None
        results = [
            run_broadcast_macro(
                net, make_algo(net), seed=seed, faults=faults,
                max_steps=max_steps, metrics=metrics,
                trace_level=trace_level, backend=backend, block_size=37,
            )
            for seed in seeds
        ]
        return Outcome(
            tuple(results), metrics.to_dict() if metrics else None, None
        )

    return run


def _batch_runner(engine: str):
    def run(net, make_algo, seeds, faults=None, max_steps=4000,
            trace_level=TraceLevel.NONE, collision_detection=False,
            with_metrics=False) -> Outcome:
        metrics = MetricsRegistry() if with_metrics else None
        kwargs = {"trace_level": trace_level}
        if engine == "batched_event":
            kwargs["collision_detection"] = collision_detection
        try:
            results = run_broadcast_batch(
                net, make_algo(net), seeds=list(seeds), engine=engine,
                faults=faults, max_steps=max_steps, metrics=metrics,
                **kwargs,
            )
        except ProtocolViolationError as exc:
            return Outcome((), None, str(exc))
        return Outcome(
            tuple(results), metrics.to_dict() if metrics else None, None
        )

    return run


register_engine(EngineSpec("reference", _serial_runner("reference")))
register_engine(EngineSpec("event", _serial_runner("event")))
register_engine(EngineSpec(
    "fast", _fast_runner,
    adaptive=False, collision_detection=False, metrics=False,
))
register_engine(EngineSpec(
    "batched_fast", _batch_runner("batched_fast"),
    adaptive=False, collision_detection=False, metrics=False,
))
register_engine(EngineSpec("batched_event", _batch_runner("batched_event")))
register_engine(EngineSpec(
    "macro", _macro_runner("numpy"),
    adaptive=False, collision_detection=False, metrics=False,
))
if HAVE_NUMBA:  # the JIT backend registers only where numba is importable
    register_engine(EngineSpec(
        "macro_numba", _macro_runner("numba"),
        adaptive=False, collision_detection=False, metrics=False,
    ))


def adaptive_engines() -> list[str]:
    """Engines able to run arbitrary protocols (reference first)."""
    names = sorted(ENGINES, key=lambda n: (n != "reference", n))
    return [n for n in names if ENGINES[n].adaptive]


def all_engines() -> list[str]:
    """Every registered engine, reference first."""
    return sorted(ENGINES, key=lambda n: (n != "reference", n))


# ----------------------------------------------------------------------
# Comparison helpers
# ----------------------------------------------------------------------


def comparable_metrics(snapshot: dict | None) -> dict | None:
    """Strip batch-only bookkeeping from a metrics snapshot.

    ``batch_active_trials`` is recorded only by the batch engines (there
    is no serial counterpart); everything else must match the aggregate
    of the serial runs exactly.
    """
    if snapshot is None:
        return None
    pruned = dict(snapshot)
    pruned["gauges"] = {
        name: value
        for name, value in snapshot.get("gauges", {}).items()
        if name != "batch_active_trials"
    }
    return pruned


def assert_results_match(candidate, reference, key, compare_traces=False):
    """Execution identity of one trial: the candidate engine's result
    must equal the reference engine's, field for field."""
    assert candidate.completed == reference.completed, key
    assert candidate.time == reference.time, key
    assert candidate.informed == reference.informed, key
    assert candidate.seed == reference.seed, key
    assert candidate.wake_times == reference.wake_times, key
    assert candidate.layer_times == reference.layer_times, key
    assert candidate.fault_counters == reference.fault_counters, key
    if compare_traces:
        # Slot-for-slot: every synthesized (compressed) slot must appear
        # in the trace exactly as the reference engine's executed slot.
        assert candidate.trace.steps == reference.trace.steps, key
        assert (
            candidate.trace.informed_counts == reference.trace.informed_counts
        ), key
        assert candidate.trace.wake_times == reference.trace.wake_times, key
        if (
            candidate.trace.level is TraceLevel.FULL
            and len(candidate.trace.initially_informed()) == 1
        ):
            # Forensic identity rides on trace identity, but assert it
            # end to end anyway: the derived DAG, slot taxonomy, and
            # summary scalars must be bit-equal across engines.
            from repro.obs.forensics import analyze

            assert (
                analyze(candidate).to_dict() == analyze(reference).to_dict()
            ), key


def assert_outcomes_match(candidate: Outcome, reference: Outcome, key,
                          compare_traces=False, compare_metrics=False):
    """Full conformance of one matrix cell against the reference engine.

    Clean runs must agree trial by trial (plus aggregated metrics when
    requested); failing runs must fail with the *same* error — the one a
    serial seed-order loop surfaces first.
    """
    assert candidate.error == reference.error, key
    if reference.error is not None:
        return
    assert len(candidate.results) == len(reference.results), key
    for i, (mine, theirs) in enumerate(zip(candidate.results, reference.results)):
        assert_results_match(mine, theirs, (*key, "trial", i), compare_traces)
    if compare_metrics:
        assert comparable_metrics(candidate.metrics) == comparable_metrics(
            reference.metrics
        ), key


# ----------------------------------------------------------------------
# Hint honesty: quiet promises can never hide an action.
# ----------------------------------------------------------------------


class HintCheckedProtocol(Protocol):
    """Wrapper asserting the inner protocol honours its quiet promises.

    Runs on any engine that polls every slot (the reference engine does;
    the event engines delegate polled slots to the same code path).
    Whenever the inner hint promises quiet through ``s``, every polled
    slot before ``s`` must yield ``next_action(...) is None`` — the
    actionable half of the ``quiet_until`` contract.  A message delivery
    voids the promise, exactly as the event engines treat it.
    """

    def __init__(self, inner: Protocol):
        super().__init__(inner.label, inner.r, inner.rng)
        self._inner = inner
        self._promised_until = -1
        self._promised_at = -1

    def on_wake(self, step, message):
        self._inner.on_wake(step, message)

    def quiet_until(self, step):
        return self._inner.quiet_until(step)

    def next_action(self, step):
        quiet = self._inner.quiet_until(step)
        assert quiet >= step, (
            f"node {self.label}: quiet_until({step}) = {quiet} points backwards"
        )
        action = self._inner.next_action(step)
        if step < self._promised_until:
            assert action is None, (
                f"node {self.label} acted in slot {step} despite promising "
                f"(at slot {self._promised_at}) quiet until "
                f"{self._promised_until}"
            )
        if quiet > step:
            assert action is None, (
                f"node {self.label} acted in slot {step} while hinting "
                f"quiet until {quiet}"
            )
            if quiet > self._promised_until:
                self._promised_until = quiet
                self._promised_at = step
        return action

    def observe(self, step, message):
        if message is not None and not isinstance(message, CollisionMarker):
            # A real delivery voids the promise (the event engines re-poll
            # receivers).  Silence and CD markers do NOT: keeping the
            # recorded promise across them is what catches a protocol
            # whose quiet window is secretly marker-sensitive.
            self._promised_until = -1
        self._inner.observe(step, message)


class HintCheckedAlgorithm(BroadcastAlgorithm):
    """Wraps an algorithm so every node checks its own hint honesty."""

    def __init__(self, inner: BroadcastAlgorithm):
        self._inner = inner
        self.name = f"hint-checked({inner.name})"
        self.deterministic = inner.deterministic

    def create(self, label: int, r: int, rng: random.Random) -> Protocol:
        return HintCheckedProtocol(self._inner.create(label, r, rng))

    def max_steps_hint(self, n: int, r: int) -> int | None:
        return self._inner.max_steps_hint(n, r)


# ----------------------------------------------------------------------
# Reusable hypothesis strategies
# ----------------------------------------------------------------------


@st.composite
def faulty_cases(draw):
    """A small network plus a crash (and maybe loss) plan; yields
    ``(net, plan, crashed_label, crash_slot)``."""
    kind = draw(st.sampled_from(["path", "star", "gnp"]))
    n = draw(st.integers(min_value=4, max_value=14))
    if kind == "path":
        net = path(n)
    elif kind == "star":
        net = star(n)
    else:
        net = gnp_connected(n, 0.4, seed=draw(st.integers(0, 5)))
    labels = sorted(set(net.nodes) - {net.source})
    crashed = draw(st.sampled_from(labels))
    crash_slot = draw(st.integers(min_value=0, max_value=20))
    plan = FaultPlan(
        crashes=((crashed, crash_slot),),
        loss_probability=draw(st.sampled_from([0.0, 0.4])),
        seed=draw(st.integers(0, 3)),
    )
    return net, plan, crashed, crash_slot


@st.composite
def adaptive_faulty_networks(draw):
    """A random topology plus a lossless fault plan — the shapes the
    hint-honesty and batched-event property tests draw from."""
    n = draw(st.integers(min_value=6, max_value=40))
    topo_seed = draw(st.integers(min_value=0, max_value=10_000))
    family = draw(st.sampled_from(["path", "tree", "gnp"]))
    if family == "path":
        net = path(n, relabel="shuffled", seed=topo_seed)
    elif family == "tree":
        net = random_tree(n, seed=topo_seed)
    else:
        net = gnp_connected(n, min(0.9, 4.0 / n), seed=topo_seed)
    labels = sorted(set(net.nodes) - {net.source})
    plan = FaultPlan(
        crashes=((labels[-1], draw(st.integers(0, 60))),),
        jams=tuple(
            (slot, labels[0]) for slot in range(draw(st.integers(0, 8)))
        ),
        wake_delays=(
            (labels[min(1, len(labels) - 1)], draw(st.integers(0, 40))),
        ),
        seed=topo_seed,
    )
    return net, plan
