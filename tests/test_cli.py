"""Command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


def test_run_subcommand(capsys):
    code = main(["run", "--topology", "gnp", "--n", "40", "--algorithm",
                 "select-and-send"])
    out = capsys.readouterr().out
    assert code == 0
    assert "completed: True" in out


def test_run_with_trace(capsys):
    code = main(["run", "--topology", "path", "--n", "6", "--algorithm",
                 "round-robin", "--trace", "--trace-steps", "10"])
    out = capsys.readouterr().out
    assert code == 0
    assert "step" in out


def test_compare_subcommand(capsys):
    code = main([
        "compare", "--topology", "layered", "--n", "60", "--depth", "4",
        "--algorithms", "bgi", "round-robin", "--runs", "3",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "bgi-decay" in out and "round-robin" in out


def test_adversary_subcommand(capsys):
    code = main(["adversary", "--algorithm", "round-robin", "--n", "256",
                 "--depth", "8"])
    out = capsys.readouterr().out
    assert code == 0
    assert "Lemma 9 histories match: True" in out


def test_adversary_rejects_randomized():
    with pytest.raises(SystemExit):
        main(["adversary", "--algorithm", "bgi", "--n", "256", "--depth", "8"])


def test_universal_subcommand(capsys):
    code = main(["universal", "--r", "1024", "--d", "1024"])
    out = capsys.readouterr().out
    assert code == 0
    assert "U1/U2 satisfied: True" in out


def test_universal_reports_degradation(capsys):
    code = main(["universal", "--r", "4096", "--d", "4"])
    out = capsys.readouterr().out
    assert code == 1
    assert "U2" in out


def test_unknown_topology_rejected():
    with pytest.raises(SystemExit):
        main(["run", "--topology", "torus", "--n", "10"])


def test_unknown_algorithm_rejected():
    with pytest.raises(SystemExit):
        main(["run", "--topology", "path", "--n", "10", "--algorithm", "magic"])


def test_gossip_subcommand(capsys):
    code = main(["gossip", "--topology", "tree", "--n", "25"])
    out = capsys.readouterr().out
    assert code == 0
    assert "gossip completed: True" in out


def test_run_save_and_load_round_trip(tmp_path, capsys):
    net_file = tmp_path / "net.json"
    result_file = tmp_path / "res.json"
    code = main([
        "run", "--topology", "grid", "--n", "16", "--algorithm", "round-robin",
        "--save-network", str(net_file), "--save-result", str(result_file),
    ])
    assert code == 0
    assert net_file.exists() and result_file.exists()
    capsys.readouterr()
    # Re-run on the saved network; deterministic algorithm -> same time.
    code = main([
        "run", "--load-network", str(net_file), "--algorithm", "round-robin",
    ])
    out = capsys.readouterr().out
    assert code == 0
    from repro.sim import load_result

    saved = load_result(result_file)
    assert f"time: {saved.time} slots" in out


def test_sweep_quick(tmp_path, capsys):
    code = main(["sweep", "--quick", "--cache-dir", str(tmp_path)])
    out = capsys.readouterr().out
    assert code == 0
    assert "2 points (2 executed, 0 from cache)" in out
    assert list(tmp_path.glob("*.json"))
    # Warm re-run: everything from cache.
    code = main(["sweep", "--quick", "--cache-dir", str(tmp_path)])
    out = capsys.readouterr().out
    assert code == 0
    assert "(0 executed, 2 from cache)" in out


def test_sweep_spec_file_and_json_output(tmp_path, capsys):
    import json

    spec_file = tmp_path / "spec.json"
    spec_file.write_text(json.dumps({
        "name": "cli-test",
        "topology": "path",
        "algorithm": "round-robin",
        "topology_grid": {"n": [6, 8]},
        "trials": 2,
    }))
    code = main(["sweep", "--spec", str(spec_file), "--no-cache", "--json"])
    out = capsys.readouterr().out
    assert code == 0
    document = json.loads(out)
    assert document["spec"]["name"] == "cli-test"
    assert len(document["points"]) == 2
    assert all(p["completed"] == p["runs"] for p in document["points"])


def test_sweep_requires_spec_or_quick():
    with pytest.raises(SystemExit):
        main(["sweep"])


def test_experiment_json_output(capsys):
    code = main(["experiment", "e10", "--quick", "--json"])
    out = capsys.readouterr().out
    assert code == 0
    import json

    document = json.loads(out)
    assert document["experiment"] == "e10"
    assert document["ok"] is True
    assert document["claims"]


def test_run_with_faults(tmp_path, capsys):
    import json

    plan_file = tmp_path / "plan.json"
    plan_file.write_text(json.dumps({"loss_probability": 1.0, "seed": 3}))
    # Certain loss strands every non-source node -> incomplete -> exit 1.
    code = main(["run", "--topology", "path", "--n", "5", "--algorithm",
                 "round-robin", "--faults", str(plan_file)])
    out = capsys.readouterr().out
    assert code == 1
    assert "completed: False" in out
    assert "faults:" in out and "lost" in out


def test_run_rejects_bad_fault_plan(tmp_path):
    plan_file = tmp_path / "plan.json"
    plan_file.write_text('{"loss_probability": 7}')
    with pytest.raises(SystemExit):
        main(["run", "--topology", "path", "--n", "5", "--algorithm",
              "round-robin", "--faults", str(plan_file)])
    with pytest.raises(SystemExit):
        main(["run", "--topology", "path", "--n", "5", "--algorithm",
              "round-robin", "--faults", str(tmp_path / "missing.json")])


def test_sweep_with_faults_and_timeout(tmp_path, capsys):
    import json

    plan_file = tmp_path / "plan.json"
    plan_file.write_text(json.dumps({"crashes": [[3, 0]], "seed": 1}))
    spec_file = tmp_path / "spec.json"
    spec_file.write_text(json.dumps({
        "name": "cli-faulty",
        "topology": "path",
        "algorithm": "round-robin",
        "topology_grid": {"n": [6]},
        "trials": 2,
    }))
    code = main([
        "sweep", "--spec", str(spec_file), "--no-cache", "--json",
        "--faults", str(plan_file), "--timeout", "60", "--retries", "1",
    ])
    out = capsys.readouterr().out
    assert code == 0
    document = json.loads(out)
    (point,) = document["points"]
    assert point["faults"]["crashes"] == [[3, 0]]
    assert point["faults"]["seed"] == 1
    # Deterministic algorithm + loss-free plan collapses to one run,
    # which counts the crash exactly once.
    assert point["fault_totals"]["crashed_nodes"] == point["runs"] == 1
    assert point["completed"] == 0  # the crash partitions the path


def test_run_with_metrics_and_runlog(tmp_path, capsys):
    log = tmp_path / "run.jsonl"
    code = main(["run", "--topology", "path", "--n", "8", "--algorithm",
                 "round-robin", "--metrics", "--log-jsonl", str(log)])
    out = capsys.readouterr().out
    assert code == 0
    assert "stage timings" in out
    assert "engine_slots" in out
    from repro.obs.runlog import assert_valid_runlog

    events = assert_valid_runlog(log)
    assert [e["event"] for e in events] == ["run_started", "run_completed"]
    assert events[1]["metrics"]["counters"]["runs_total"] == 1


def test_sweep_with_metrics_and_report(tmp_path, capsys):
    log = tmp_path / "sweep.jsonl"
    code = main(["sweep", "--quick", "--cache-dir", str(tmp_path / "cache"),
                 "--metrics", "--log-jsonl", str(log)])
    out = capsys.readouterr().out
    assert code == 0
    assert "stage timings" in out and "run log written" in out
    from repro.obs.runlog import assert_valid_runlog

    kinds = [e["event"] for e in assert_valid_runlog(log)]
    assert kinds[0] == "sweep_started" and kinds[-1] == "sweep_completed"

    code = main(["report", str(log)])
    out = capsys.readouterr().out
    assert code == 0
    assert "lifecycle events" in out
    assert "sweep points" in out


def test_report_rejects_missing_or_invalid_file(tmp_path):
    with pytest.raises(SystemExit):
        main(["report", str(tmp_path / "nope.jsonl")])
    bad = tmp_path / "bad.jsonl"
    bad.write_text("not json\n")
    with pytest.raises(SystemExit):
        main(["report", str(bad)])
