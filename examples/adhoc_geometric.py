#!/usr/bin/env python3
"""Scenario: flooding an alert through an ad hoc sensor field.

The paper's motivating setting: transmitter-receiver devices scattered in
the field, no base station, no topology knowledge, no collision detection.
A corner node (the source) must flood an alert to every sensor.

This example compares all broadcasting strategies the library implements
on the same unit-disk network, from the weakest knowledge model (ad hoc)
to the strongest (full topology), and reports both latency (slots) and —
for the randomized schemes — the spread over random coin flips.

Run:  python examples/adhoc_geometric.py
"""

from repro import repeat_broadcast, run_broadcast, topology
from repro.analysis import render_table, summarize
from repro.baselines import (
    BGIBroadcast,
    CentralizedGreedySchedule,
    InterleavedBroadcast,
    KnownNeighborsDFS,
    RoundRobinBroadcast,
)
from repro.core import OptimalRandomizedBroadcasting, SelectAndSend


def main() -> None:
    net = topology.random_geometric(200, seed=11)
    print(net.describe())
    print()

    rows = []

    # Randomized, ad hoc (no topology knowledge at all).
    for algo in [
        OptimalRandomizedBroadcasting(net.r, stage_constant=8),
        BGIBroadcast(net.r),
    ]:
        stats = summarize([r.time for r in repeat_broadcast(net, algo, runs=15)])
        rows.append([algo.name, "ad hoc", f"{stats.mean:.0f}",
                     f"[{stats.minimum:.0f}, {stats.maximum:.0f}]"])

    # Deterministic, ad hoc.
    for algo in [
        SelectAndSend(),
        RoundRobinBroadcast(net.r),
        InterleavedBroadcast(RoundRobinBroadcast(net.r), SelectAndSend()),
    ]:
        result = run_broadcast(net, algo, require_completion=True)
        rows.append([algo.name, "ad hoc", result.time, "-"])

    # Stronger knowledge models, for calibration.
    result = run_broadcast(net, KnownNeighborsDFS(net), require_completion=True)
    rows.append([result.algorithm, "knows neighbours", result.time, "-"])
    result = run_broadcast(net, CentralizedGreedySchedule(net), require_completion=True)
    rows.append([result.algorithm, "full topology", result.time, "-"])

    print(
        render_table(
            ["algorithm", "knowledge", "slots (mean)", "range"],
            rows,
            title=f"Alert flooding over {net.n} sensors, radius D={net.radius}",
        )
    )
    print()
    print(
        "Reading the table: the paper's randomized algorithm approaches the\n"
        "full-topology schedule despite knowing nothing about the network;\n"
        "deterministic ad hoc algorithms pay the Section 3 lower bound."
    )


if __name__ == "__main__":
    main()
