"""Drive every registered engine through the shared conformance matrices.

The harness (``tests/sim/conformance.py``) owns the matrices, the engine
registry, and the assertion helpers; this module is just the loop.  Each
matrix cell computes the reference engine's outcome once and holds every
other registered engine to execution identity against it — including
identical failures, slot-for-slot traces, and aggregated metrics for the
engines that claim those capabilities.
"""

from __future__ import annotations

import pytest

from repro.sim.trace import TraceLevel

from .conformance import (
    ADAPTIVE_CASES,
    ADAPTIVE_PLANS,
    ENGINES,
    OBLIVIOUS_ALGORITHMS,
    OBLIVIOUS_PLANS,
    OBLIVIOUS_TOPOLOGIES,
    SEEDS,
    adaptive_engines,
    all_engines,
    assert_outcomes_match,
    full_fault_plan,
)


@pytest.fixture(scope="module")
def networks():
    return {name: build() for name, build in OBLIVIOUS_TOPOLOGIES.items()}


@pytest.mark.parametrize("plan_name", sorted(OBLIVIOUS_PLANS))
@pytest.mark.parametrize("topo", sorted(OBLIVIOUS_TOPOLOGIES))
@pytest.mark.parametrize("algo_name", sorted(OBLIVIOUS_ALGORITHMS))
def test_all_engines_conform_oblivious(networks, algo_name, topo, plan_name):
    """Every registered engine, every oblivious algorithm, every topology,
    with and without a four-family fault plan.

    Faulty runs may legitimately settle incomplete (the crash can strand
    nodes) under the tight budget, so the assertion is execution identity
    — wake slots, executed-slot counts, fault counters — not completion.
    """
    net = networks[topo]
    make = OBLIVIOUS_ALGORITHMS[algo_name]
    plan = OBLIVIOUS_PLANS[plan_name](net)
    budget = 120 if plan is not None else 4000

    reference = ENGINES["reference"].runner(
        net, make, SEEDS, faults=plan, max_steps=budget,
    )
    if plan is None:
        for result in reference.results:
            assert result.completed, (algo_name, topo)
    for name in all_engines():
        if name == "reference":
            continue
        candidate = ENGINES[name].runner(
            net, make, SEEDS, faults=plan, max_steps=budget,
        )
        assert_outcomes_match(
            candidate, reference, key=(name, algo_name, topo, plan_name),
        )


@pytest.mark.parametrize("plan_name", sorted(OBLIVIOUS_PLANS))
@pytest.mark.parametrize("topo", sorted(OBLIVIOUS_TOPOLOGIES))
@pytest.mark.parametrize("algo_name", sorted(OBLIVIOUS_ALGORITHMS))
def test_all_engines_record_identical_full_traces(
    networks, algo_name, topo, plan_name
):
    """The oblivious matrix again, at ``TraceLevel.FULL``: all five
    engines must record bit-identical channel traces, and the forensic
    reports derived from them — propagation DAG, slot taxonomy, summary
    scalars — must be bit-equal too (``assert_results_match`` derives
    and compares them whenever it sees a FULL trace)."""
    net = networks[topo]
    make = OBLIVIOUS_ALGORITHMS[algo_name]
    plan = OBLIVIOUS_PLANS[plan_name](net)
    budget = 120 if plan is not None else 4000

    reference = ENGINES["reference"].runner(
        net, make, SEEDS, faults=plan, max_steps=budget,
        trace_level=TraceLevel.FULL,
    )
    for name in all_engines():
        if name == "reference":
            continue
        spec = ENGINES[name]
        assert spec.traces, f"{name} no longer claims trace support"
        candidate = spec.runner(
            net, make, SEEDS, faults=plan, max_steps=budget,
            trace_level=TraceLevel.FULL,
        )
        assert_outcomes_match(
            candidate, reference, key=(name, algo_name, topo, plan_name),
            compare_traces=True,
        )


@pytest.mark.parametrize("plan_name", sorted(ADAPTIVE_PLANS))
@pytest.mark.parametrize("case", sorted(ADAPTIVE_CASES))
def test_adaptive_engines_conform_slot_for_slot(case, plan_name):
    """The adaptive matrix with full instrumentation: protocol cases x
    fault plans, asserting slot-for-slot traces and aggregated metrics on
    every engine that can run arbitrary protocols."""
    build, make_algo, cd = ADAPTIVE_CASES[case]
    net = build()
    plan = ADAPTIVE_PLANS[plan_name](net)
    make = lambda _net: make_algo()  # noqa: E731 - adapt to runner signature

    outcomes = {}
    for name in adaptive_engines():
        spec = ENGINES[name]
        if cd and not spec.collision_detection:
            continue
        outcomes[name] = spec.runner(
            net, make, SEEDS, faults=plan, max_steps=4000,
            trace_level=TraceLevel.FULL, collision_detection=cd,
            with_metrics=True,
        )
    reference = outcomes.pop("reference")
    assert reference.error is None, (case, plan_name)
    for name, candidate in outcomes.items():
        spec = ENGINES[name]
        assert_outcomes_match(
            candidate, reference, key=(name, case, plan_name),
            compare_traces=spec.traces, compare_metrics=spec.metrics,
        )


def test_adaptive_engines_fail_identically_under_loss():
    """S&S Echo is not loss-tolerant: under 30% loss the reference run
    aborts with a protocol violation, and every adaptive engine must
    abort with exactly the same error (not silently diverge)."""
    from repro.core import SelectAndSend
    from repro.topology import gnp_connected

    net = gnp_connected(48, 0.12, seed=7)
    plan = full_fault_plan(net)
    make = lambda _net: SelectAndSend()  # noqa: E731

    reference = ENGINES["reference"].runner(
        net, make, SEEDS, faults=plan, max_steps=4000,
    )
    assert reference.error is not None  # the plan does break this run
    for name in adaptive_engines():
        if name == "reference":
            continue
        candidate = ENGINES[name].runner(
            net, make, SEEDS, faults=plan, max_steps=4000,
        )
        assert candidate.error == reference.error, name


@pytest.mark.parametrize("algo_name", ["kp-known-d", "bgi"])
def test_engines_agree_on_incomplete_runs(algo_name):
    """Under a tight step budget every engine stalls identically."""
    from repro.topology import km_hard_layered

    net = km_hard_layered(48, 4, seed=5)
    make = OBLIVIOUS_ALGORITHMS[algo_name]
    budget = 3

    reference = ENGINES["reference"].runner(net, make, [1], max_steps=budget)
    (ref_result,) = reference.results
    assert not ref_result.completed
    assert ref_result.time == budget
    for name in all_engines():
        if name == "reference":
            continue
        candidate = ENGINES[name].runner(net, make, [1], max_steps=budget)
        assert_outcomes_match(candidate, reference, key=(name, algo_name))
