"""Universal sequences (Lemma 1): construction and the U1/U2 conditions."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.combinatorics.universal import (
    build_universal_sequence,
    check_universality,
    universal_ranges,
)
from repro.sim.errors import ConfigurationError

POWERS = [2**i for i in range(2, 17)]


def test_rejects_non_powers_of_two():
    with pytest.raises(ConfigurationError):
        build_universal_sequence(100, 32)
    with pytest.raises(ConfigurationError):
        build_universal_sequence(128, 33)


def test_rejects_d_above_r():
    with pytest.raises(ConfigurationError):
        build_universal_sequence(64, 128)


def test_rejects_tiny_r():
    with pytest.raises(ConfigurationError):
        build_universal_sequence(2, 2)


def test_indexing_is_one_based_and_periodic():
    seq = build_universal_sequence(256, 64)
    with pytest.raises(IndexError):
        seq.exponent(0)
    period = len(seq)
    assert seq.exponent(1) == seq.exponent(1 + period)
    assert seq.probability(3) == 2.0 ** (-seq.exponent(3))


def test_values_are_negative_powers_of_two_in_range():
    seq = build_universal_sequence(1024, 256)
    r1, r2, _ = universal_ranges(1024, 256)
    allowed = set(r1) | set(r2)
    assert set(seq.exponents) <= allowed


def test_u1_holds_for_all_parameters():
    """U1 needs no level clamping, so it must hold for every (r, D)."""
    for r in [16, 64, 256, 1024, 4096]:
        for d in [4, 16, r // 4, r]:
            if d < 2 or d > r:
                continue
            report = check_universality(build_universal_sequence(r, d))
            u1 = [v for v in report.violations if v.startswith("U1")]
            assert not u1, (r, d, u1)


def test_full_universality_in_regime():
    """With D large relative to r, both conditions hold (Lemma 1 regime)."""
    for r, d in [(1024, 1024), (4096, 2048), (65536, 16384)]:
        report = check_universality(build_universal_sequence(r, d))
        assert report.ok, (r, d, report.violations)


def test_period_length_bound_in_regime():
    """The paper distributes fewer than 3D reals (Lemma 1's count)."""
    for r, d in [(4096, 2048), (65536, 16384), (65536, 65536)]:
        seq = build_universal_sequence(r, d)
        assert len(seq) <= 3 * d, (r, d, len(seq))


def test_strict_mode_rejects_out_of_regime():
    with pytest.raises(ConfigurationError, match="strict mode requires"):
        build_universal_sequence(4096, 64, strict=True)


def test_strict_mode_accepts_in_regime():
    # 32 * (2^18)^(2/3) = 32 * 2^12 = 2^17 < D = 2^18 = r.
    seq = build_universal_sequence(2**18, 2**18, strict=True)
    assert seq.strict
    assert check_universality(seq).ok


def test_report_records_gaps_for_every_exponent():
    seq = build_universal_sequence(256, 64)
    report = check_universality(seq)
    r1, r2, _ = universal_ranges(256, 64)
    for j in list(r1) + list(r2):
        assert j in report.max_gaps


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=4, max_value=14),
    st.integers(min_value=1, max_value=14),
)
def test_u1_property_random_powers(log_r, log_d):
    """Property: U1 holds for arbitrary power-of-two (r, D) with D <= r."""
    if log_d > log_r:
        log_d = log_r
    r, d = 1 << log_r, 1 << log_d
    try:
        seq = build_universal_sequence(r, d)
    except ConfigurationError:
        return  # empty exponent range: acceptable degenerate parameters
    report = check_universality(seq)
    u1 = [v for v in report.violations if v.startswith("U1")]
    assert not u1


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=5, max_value=13))
def test_window_coverage_matches_definition(log_r):
    """Cross-check the gap computation against a brute-force window scan."""
    r = 1 << log_r
    d = 1 << (log_r - 1)
    seq = build_universal_sequence(r, d)
    r1, _, _ = universal_ranges(r, d)
    period = seq.exponents
    length = len(period)
    for j in list(r1)[:2]:
        window = (3 * d * (1 << j)) // r
        # Brute force: every cyclic window of `window` slots has j.
        doubled = period + period
        ok = all(
            j in doubled[start : start + window] for start in range(length)
        )
        report = check_universality(seq)
        gap, win = report.max_gaps[j]
        assert (gap <= win) == ok
