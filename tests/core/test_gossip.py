"""Token gossip: all-to-all rumor exchange (extension)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SelectAndSend
from repro.core.gossip import TokenGossip, run_gossip
from repro.sim import run_broadcast
from repro.sim.engine import SynchronousEngine
from repro.sim.errors import BroadcastIncompleteError
from repro.topology import gnp_connected, grid, path, random_tree, star


def test_gossip_completes_on_zoo(topology_zoo):
    for name, net in topology_zoo.items():
        result = run_gossip(net)
        assert result.completed, name


def test_everyone_learns_everything():
    net = gnp_connected(25, 0.2, seed=5)
    engine = SynchronousEngine(net, TokenGossip())
    limit = TokenGossip().max_steps_hint(net.n, net.r)
    for _ in range(limit):
        engine.run_step()
        if len(engine.protocols) == net.n and all(
            p.knows(net.n) for p in engine.protocols.values()
        ):
            break
    for label, protocol in engine.protocols.items():
        assert protocol.rumors == set(net.nodes), label


def test_gossip_time_about_twice_broadcast_on_paths():
    net = path(40)
    gossip = run_gossip(net)
    broadcast = run_broadcast(net, SelectAndSend())
    assert gossip.completed
    assert gossip.time <= 4 * broadcast.time + 40


def test_two_node_gossip():
    result = run_gossip(path(2))
    assert result.completed


def test_gossip_result_reports_broadcast_subgoal():
    net = grid(4, 4)
    result = run_gossip(net)
    assert result.completed
    assert result.broadcast_time is not None
    assert result.broadcast_time <= result.time


def test_require_completion_raises_on_budget():
    net = path(30)
    with pytest.raises(BroadcastIncompleteError):
        run_gossip(net, max_steps=10, require_completion=True)


def test_gossip_deterministic():
    net = random_tree(20, seed=4)
    assert run_gossip(net).time == run_gossip(net).time


def test_star_gossip_collects_all_leaves():
    result = run_gossip(star(10))
    assert result.completed


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=2, max_value=20), st.integers(min_value=0, max_value=200))
def test_gossip_property_random_trees(n, seed):
    net = random_tree(n, seed=seed)
    assert run_gossip(net).completed
