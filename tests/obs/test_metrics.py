"""Metrics registry units: counters, gauges, fixed-bucket histograms."""

from __future__ import annotations

import json

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs.metrics import (
    COUNT_BUCKETS,
    Histogram,
    MetricsRegistry,
    SLOT_BUCKETS,
)


class TestBucketLayouts:
    def test_slot_buckets_are_powers_of_two(self):
        assert SLOT_BUCKETS[0] == 1
        assert SLOT_BUCKETS[-1] == 131072
        assert all(b == 2 * a for a, b in zip(SLOT_BUCKETS, SLOT_BUCKETS[1:]))

    def test_count_buckets_start_at_zero(self):
        assert COUNT_BUCKETS[0] == 0
        assert list(COUNT_BUCKETS) == sorted(set(COUNT_BUCKETS))


class TestCounterGauge:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("runs_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        # Lazily created instruments are cached by name.
        assert registry.counter("runs_total") is counter

    def test_gauge_keeps_last_value(self):
        gauge = MetricsRegistry().gauge("queue_depth")
        gauge.set(3)
        gauge.set(1.5)
        assert gauge.value == 1.5


class TestHistogram:
    def test_edges_must_ascend(self):
        with pytest.raises(ValueError):
            Histogram("bad", (2, 1))
        with pytest.raises(ValueError):
            Histogram("bad", ())

    def test_observe_assigns_buckets_inclusively(self):
        # Bucket i holds edges[i-1] < x <= edges[i]; overflow past the end.
        hist = Histogram("h", (0, 1, 2, 4))
        for value in (0, 1, 2, 3, 4, 5):
            hist.observe(value)
        assert hist.counts == [1, 1, 1, 2, 1]
        assert hist.total == 6
        assert hist.sum == 15
        assert (hist.minimum, hist.maximum) == (0, 5)
        assert hist.mean == pytest.approx(2.5)

    def test_observe_many_matches_observe(self):
        values = [0, 0, 1, 3, 7, 7, 9, 1000, 2000]
        serial = Histogram("a", COUNT_BUCKETS)
        for value in values:
            serial.observe(value)
        batched = Histogram("b", COUNT_BUCKETS)
        batched.observe_many(np.asarray(values))
        assert batched.counts == serial.counts
        assert batched.total == serial.total
        assert batched.sum == serial.sum
        assert (batched.minimum, batched.maximum) == (serial.minimum, serial.maximum)

    def test_observe_many_empty_is_noop(self):
        hist = Histogram("h", (1, 2))
        hist.observe_many([])
        assert hist.total == 0 and hist.minimum is None

    def test_merge_requires_identical_edges(self):
        a = Histogram("h", (1, 2))
        b = Histogram("h", (1, 3))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merge_adds_everything(self):
        a = Histogram("h", (1, 2, 4))
        b = Histogram("h", (1, 2, 4))
        a.observe(1)
        b.observe(3)
        b.observe(100)
        a.merge(b)
        assert a.total == 3
        assert a.sum == 104
        assert (a.minimum, a.maximum) == (1, 100)
        assert sum(a.counts) == 3


class TestRegistry:
    def test_histogram_edge_conflict_is_an_error(self):
        registry = MetricsRegistry()
        registry.histogram("h", (1, 2))
        with pytest.raises(ValueError):
            registry.histogram("h", (1, 3))
        # Same edges is fine and returns the cached instrument.
        assert registry.histogram("h", (1, 2)) is registry.histograms["h"]

    def test_merge_folds_instruments(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("runs_total").inc(2)
        b.counter("runs_total").inc(3)
        b.counter("only_in_b").inc()
        b.gauge("g").set(7)
        b.histogram("h", (1, 2)).observe(1)
        a.merge(b)
        assert a.counters["runs_total"].value == 5
        assert a.counters["only_in_b"].value == 1
        assert a.gauges["g"].value == 7
        assert a.histograms["h"].total == 1

    def test_dict_round_trip_is_json_safe(self):
        registry = MetricsRegistry()
        registry.counter("runs_total").inc(9)
        registry.gauge("g").set(0.5)
        hist = registry.histogram("slots", SLOT_BUCKETS)
        hist.observe_many([1, 17, 40000])
        snapshot = json.loads(json.dumps(registry.to_dict()))
        clone = MetricsRegistry.from_dict(snapshot)
        assert clone.to_dict() == registry.to_dict()

    def test_empty_round_trip(self):
        assert MetricsRegistry.from_dict({}).to_dict() == MetricsRegistry().to_dict()


class TestMergeIsUnionOfStreams:
    """Property: merging per-shard registries == observing the union stream.

    This is the invariant the sweep pool relies on — each worker tallies
    its own registry and the parent folds them, so the fold must be
    indistinguishable from one process having observed everything.
    Integer observations keep float sums exact, so equality is literal.
    """

    @staticmethod
    def _observe(registry, stream):
        for value in stream:
            registry.counter("events").inc()
            registry.histogram("values", COUNT_BUCKETS).observe(value)
            registry.counter("total_value").inc(value)

    @given(
        values=st.lists(st.integers(min_value=0, max_value=2048), max_size=80),
        cut=st.integers(min_value=0, max_value=80),
    )
    def test_two_way_split(self, values, cut):
        cut = min(cut, len(values))
        whole = MetricsRegistry()
        self._observe(whole, values)
        left, right = MetricsRegistry(), MetricsRegistry()
        self._observe(left, values[:cut])
        self._observe(right, values[cut:])
        merged = MetricsRegistry().merge(left).merge(right)
        assert merged.to_dict() == whole.to_dict()

    @given(
        shards=st.lists(
            st.lists(st.integers(min_value=0, max_value=2048), max_size=20),
            max_size=6,
        )
    )
    def test_many_way_split_in_any_order(self, shards):
        whole = MetricsRegistry()
        for shard in shards:
            self._observe(whole, shard)
        merged = MetricsRegistry()
        for shard in reversed(shards):
            part = MetricsRegistry()
            self._observe(part, shard)
            merged.merge(part)
        assert merged.to_dict() == whole.to_dict()

    @given(
        value=st.integers(min_value=0, max_value=2048),
        count=st.integers(min_value=0, max_value=500),
    )
    def test_observe_repeated_equals_count_observes(self, value, count):
        looped = Histogram("h", COUNT_BUCKETS)
        for _ in range(count):
            looped.observe(value)
        batched = Histogram("h", COUNT_BUCKETS)
        batched.observe_repeated(value, count)
        assert batched.to_dict() == looped.to_dict()

    @given(
        values=st.lists(st.integers(min_value=0, max_value=2048), max_size=60),
    )
    def test_observe_many_equals_observe_loop(self, values):
        looped = Histogram("h", COUNT_BUCKETS)
        for value in values:
            looped.observe(value)
        batched = Histogram("h", COUNT_BUCKETS)
        batched.observe_many(np.asarray(values, dtype=np.int64))
        assert batched.to_dict() == looped.to_dict()
