"""Post-hoc broadcast forensics: who informed whom, and what each slot bought.

A :class:`~repro.sim.trace.Trace` recorded at ``TraceLevel.FULL`` contains
the complete channel history of a run; this module condenses it into three
views that make an execution *arguable about*:

* the **propagation DAG** — every node's first-delivery parent, its depth,
  and the critical path from the source to the last-informed node.  This
  is the witness tree behind every completion time the repo reports: the
  broadcast took exactly as long as its deepest first-delivery chain.
* a **slot-attribution taxonomy** — each slot is charged to exactly one
  class (``productive`` / ``collision-wasted`` / ``redundant`` /
  ``silent``), with per-node transmission energy and per-slot collision
  hotspots.  The paper's progress arguments are exactly claims about the
  density of productive slots, so the taxonomy turns "why is Decay slower
  than the stage algorithm here?" into a table.
* **stage attribution** — slots grouped by the algorithm's own schedule
  structure (Decay probability scales, Kowalski–Pelc stage sweeps,
  Select-and-Send's startup vs token traversal) via
  :meth:`~repro.sim.protocol.BroadcastAlgorithm.stage_hint`.

Everything here is a pure function of the recorded trace (plus the
algorithm object for stage naming): no engine involvement, no randomness,
no timestamps.  Traces from any of the five engines are bit-identical
(the conformance suite asserts it), so forensic output is too.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.tables import render_table
from ..sim.trace import Trace, TraceLevel
from .metrics import FRACTION_BUCKETS, MetricsRegistry, SLOT_BUCKETS

__all__ = [
    "SLOT_CLASSES",
    "PropagationDAG",
    "ForensicsReport",
    "build_dag",
    "classify_slot",
    "analyze",
    "record_forensics_metrics",
    "forensic_span_events",
]

#: The four mutually exclusive slot classes, in precedence order: a slot
#: with no transmitters is ``silent``; one that woke somebody is
#: ``productive``; one that only collided somewhere is
#: ``collision-wasted``; a transmission nobody new heard is ``redundant``.
SLOT_CLASSES: tuple[str, ...] = (
    "productive",
    "collision-wasted",
    "redundant",
    "silent",
)


def classify_slot(record) -> str:
    """Charge one :class:`~repro.sim.trace.StepRecord` to its slot class."""
    if not record.transmitters:
        return "silent"
    if record.woken:
        return "productive"
    if record.collisions:
        return "collision-wasted"
    return "redundant"


@dataclass(frozen=True)
class PropagationDAG:
    """First-delivery tree of one run (a DAG with in-degree <= 1: a tree).

    Attributes:
        root: The initially informed node (wake time ``-1``).
        parents: ``child -> parent`` over every node woken during the run;
            the parent is the unique transmitter whose message woke the
            child (collisions cannot wake, so the parent is well defined).
        wake_slots: ``node -> wake slot``; ``-1`` for the root.
        depths: ``node -> hop distance`` from the root along parent edges.
        children: ``parent -> sorted children`` (inverse of ``parents``).
        critical_path: Root-to-leaf chain ending at the last-woken node
            (ties broken toward the lowest label) — the first-delivery
            chain whose length *is* the broadcast's depth cost.
    """

    root: int
    parents: dict[int, int]
    wake_slots: dict[int, int]
    depths: dict[int, int]
    children: dict[int, tuple[int, ...]]
    critical_path: tuple[int, ...]

    @property
    def depth(self) -> int:
        """Maximum hop depth (0 on a single-node network)."""
        return max(self.depths.values())

    @property
    def max_branching(self) -> int:
        """Largest number of children any node woke (0 when no wakes)."""
        return max((len(c) for c in self.children.values()), default=0)

    def to_dict(self) -> dict:
        return {
            "root": self.root,
            "parents": {int(k): int(v) for k, v in sorted(self.parents.items())},
            "wake_slots": {
                int(k): int(v) for k, v in sorted(self.wake_slots.items())
            },
            "depths": {int(k): int(v) for k, v in sorted(self.depths.items())},
            "depth": self.depth,
            "max_branching": self.max_branching,
            "critical_path": list(self.critical_path),
        }


def build_dag(trace: Trace) -> PropagationDAG:
    """Derive the propagation DAG from a ``FULL`` trace.

    Raises:
        ValueError: If the trace is not ``FULL``, has no initially
            informed root, or has several (forensics assumes single-source
            broadcast).
    """
    trace._require_full("propagation DAG construction")
    roots = trace.initially_informed()
    if len(roots) != 1:
        raise ValueError(
            f"propagation DAG needs exactly one initially informed node, "
            f"found {len(roots)} ({list(roots)}); traces recorded before "
            f"the source marker existed cannot be analyzed"
        )
    root = roots[0]
    parents: dict[int, int] = {}
    for record in trace.steps:
        for child in record.woken:
            sender = record.deliveries.get(child)
            if sender is None:
                raise ValueError(
                    f"malformed trace: node {child} woke in slot "
                    f"{record.step} without a recorded delivery"
                )
            parents[child] = sender
    wake_slots = {root: -1}
    wake_slots.update(
        (v, t) for v, t in trace.wake_times.items() if t >= 0 and v in parents
    )
    depths = {root: 0}
    for node in parents:
        chain = []
        cursor = node
        while cursor not in depths:
            chain.append(cursor)
            cursor = parents[cursor]
        base = depths[cursor]
        for offset, link in enumerate(reversed(chain), start=1):
            depths[link] = base + offset
    children: dict[int, list[int]] = {}
    for child, parent in parents.items():
        children.setdefault(parent, []).append(child)
    last = root
    if parents:
        last_slot = max(wake_slots[v] for v in parents)
        last = min(v for v in parents if wake_slots[v] == last_slot)
    path = [last]
    while path[-1] != root:
        path.append(parents[path[-1]])
    return PropagationDAG(
        root=root,
        parents=parents,
        wake_slots=wake_slots,
        depths=depths,
        children={k: tuple(sorted(v)) for k, v in sorted(children.items())},
        critical_path=tuple(reversed(path)),
    )


@dataclass
class ForensicsReport:
    """Everything :func:`analyze` derived from one run's trace."""

    algorithm: str | None
    slots: int
    informed: int
    dag: PropagationDAG
    #: Per-slot class labels, index = slot (length :attr:`slots`).
    slot_labels: tuple[str, ...]
    #: Class -> slot count, every class present (possibly 0).
    slot_classes: dict[str, int]
    #: Node -> total transmissions (energy); only nodes that transmitted.
    energy: dict[int, int]
    #: ``(slot, colliding receivers)`` pairs, heaviest first (max 5).
    hotspots: tuple[tuple[int, int], ...]
    #: Stage name -> {slots, transmissions, collisions, wakes}, in first-
    #: occurrence order; empty when the algorithm names no stages.
    stages: dict[str, dict[str, int]] = field(default_factory=dict)
    #: Per-slot stage names (``None`` where the algorithm named none);
    #: length :attr:`slots` when stages exist, else empty.
    stage_labels: tuple[str | None, ...] = ()

    # -- summary scalars ---------------------------------------------------

    @property
    def total_transmissions(self) -> int:
        return sum(self.energy.values())

    @property
    def wasted_slot_fraction(self) -> float:
        """Fraction of slots that were not productive (1.0 when 0 slots)."""
        if not self.slots:
            return 0.0
        return 1.0 - self.slot_classes["productive"] / self.slots

    @property
    def critical_path_depth(self) -> int:
        return self.dag.depth

    @property
    def redundancy_ratio(self) -> float:
        """Transmissions spent per node actually woken (energy efficiency)."""
        return self.total_transmissions / max(1, len(self.dag.parents))

    def scalars(self) -> dict:
        """The pinned summary scalars (golden-tested in E1/E4/E5)."""
        return {
            "slots": self.slots,
            "informed": self.informed,
            "total_transmissions": self.total_transmissions,
            "wasted_slot_fraction": round(self.wasted_slot_fraction, 6),
            "critical_path_depth": self.critical_path_depth,
            "redundancy_ratio": round(self.redundancy_ratio, 6),
        }

    def to_dict(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "scalars": self.scalars(),
            "slot_classes": dict(self.slot_classes),
            "dag": self.dag.to_dict(),
            "energy": {int(k): int(v) for k, v in sorted(self.energy.items())},
            "hotspots": [list(pair) for pair in self.hotspots],
            "stages": {k: dict(v) for k, v in self.stages.items()},
        }

    def render(self) -> str:
        """Aligned-table walkthrough (what ``repro explain`` prints)."""
        scalars = self.scalars()
        header = (
            f"forensics: {self.algorithm or '<unknown algorithm>'} — "
            f"{self.slots} slots, {self.informed} informed"
        )
        blocks = [header]
        blocks.append(render_table(
            ["class", "slots", "fraction"],
            [
                [name, count, count / self.slots if self.slots else 0.0]
                for name, count in self.slot_classes.items()
            ],
            title="slot attribution",
        ))
        path = self.dag.critical_path
        shown = " -> ".join(str(v) for v in path) if len(path) <= 12 else (
            " -> ".join(str(v) for v in path[:6])
            + f" -> ... -> {path[-1]} ({len(path)} nodes)"
        )
        blocks.append(render_table(
            ["metric", "value"],
            [
                ["critical_path_depth", scalars["critical_path_depth"]],
                ["max_branching", self.dag.max_branching],
                ["wasted_slot_fraction", scalars["wasted_slot_fraction"]],
                ["redundancy_ratio", scalars["redundancy_ratio"]],
                ["total_transmissions", scalars["total_transmissions"]],
            ],
            title="propagation",
        ) + f"\ncritical path: {shown}")
        if self.stages:
            blocks.append(render_table(
                ["stage", "slots", "tx", "collisions", "wakes"],
                [
                    [name, s["slots"], s["transmissions"], s["collisions"], s["wakes"]]
                    for name, s in self.stages.items()
                ],
                title="stage attribution",
            ))
        if self.hotspots:
            blocks.append(render_table(
                ["slot", "colliding receivers"],
                [list(pair) for pair in self.hotspots],
                title="collision hotspots",
            ))
        top = sorted(self.energy.items(), key=lambda kv: (-kv[1], kv[0]))[:8]
        if top:
            blocks.append(render_table(
                ["node", "transmissions"],
                [[node, count] for node, count in top],
                title="energy (top transmitters)",
            ))
        return "\n\n".join(blocks)


def analyze(run, algorithm=None) -> ForensicsReport:
    """Build a :class:`ForensicsReport` from a run or a bare trace.

    Args:
        run: A :class:`~repro.sim.run.BroadcastResult` (its ``.trace`` is
            used) or a :class:`~repro.sim.trace.Trace`; must be recorded
            at ``TraceLevel.FULL``.
        algorithm: Optional algorithm *object*; when given (or when the
            result carries one), its
            :meth:`~repro.sim.protocol.BroadcastAlgorithm.stage_hint`
            names the stage each slot is charged to.
    """
    trace = getattr(run, "trace", run)
    if not isinstance(trace, Trace):
        raise TypeError(f"expected a BroadcastResult or Trace, got {run!r}")
    trace._require_full("forensic analysis")
    name = getattr(algorithm, "name", None) or getattr(run, "algorithm", None)
    dag = build_dag(trace)
    slot_labels = tuple(classify_slot(record) for record in trace.steps)
    slot_classes = {cls: 0 for cls in SLOT_CLASSES}
    for label in slot_labels:
        slot_classes[label] += 1
    energy: dict[int, int] = {}
    collision_counts: list[tuple[int, int]] = []
    for record in trace.steps:
        for v in record.transmitters:
            energy[v] = energy.get(v, 0) + 1
        if record.collisions:
            collision_counts.append((record.step, len(record.collisions)))
    collision_counts.sort(key=lambda pair: (-pair[1], pair[0]))
    stages: dict[str, dict[str, int]] = {}
    stage_labels: list[str | None] = []
    hint = getattr(algorithm, "stage_hint", None)
    if hint is not None:
        for record in trace.steps:
            stage = hint(record.step, trace)
            stage_labels.append(stage)
            if stage is None:
                continue
            bucket = stages.setdefault(
                stage,
                {"slots": 0, "transmissions": 0, "collisions": 0, "wakes": 0},
            )
            bucket["slots"] += 1
            bucket["transmissions"] += len(record.transmitters)
            bucket["collisions"] += len(record.collisions)
            bucket["wakes"] += len(record.woken)
    return ForensicsReport(
        algorithm=name,
        slots=len(trace.steps),
        informed=len(trace.wake_times),
        dag=dag,
        slot_labels=slot_labels,
        slot_classes=slot_classes,
        energy=dict(sorted(energy.items())),
        hotspots=tuple(collision_counts[:5]),
        stages=stages,
        stage_labels=tuple(stage_labels) if stages else (),
    )


def record_forensics_metrics(registry: MetricsRegistry, report: ForensicsReport) -> None:
    """Fold one report's summary scalars into a metrics registry.

    One observation per run: sweeps calling this per trial get mergeable
    distributions of the forensic scalars alongside the engine metrics.
    """
    registry.histogram(
        "forensics_wasted_slot_fraction", FRACTION_BUCKETS
    ).observe(report.wasted_slot_fraction)
    registry.histogram(
        "forensics_critical_path_depth", SLOT_BUCKETS
    ).observe(report.critical_path_depth)
    registry.histogram(
        "forensics_redundancy_ratio", FRACTION_BUCKETS + (2.0, 5.0, 10.0, 100.0)
    ).observe(report.redundancy_ratio)
    for name, count in report.slot_classes.items():
        registry.counter(f"forensics_slots_{name.replace('-', '_')}").inc(count)


def forensic_span_events(report: ForensicsReport) -> list[dict]:
    """Synthesize runlog-style span events from a report.

    The result feeds :func:`repro.obs.spans.write_trace` /
    :func:`~repro.obs.spans.export_trace_events` unchanged: one ``trial``
    span for the whole run on the lifecycle lane, plus ``stage`` spans —
    which the exporter gives one lane per distinct name — for contiguous
    slot-class runs (``slots.<class>``), DAG depth waves
    (``dag.depth[k]``), and algorithm stages (``stage.<name>``).
    Timestamps are in *slot* units; span ids are deterministic, so the
    export is byte-stable across engines and runs.
    """
    counter = 0

    def next_id() -> str:
        nonlocal counter
        counter += 1
        return f"fx{counter:06d}"

    root_id = next_id()
    events: list[dict] = [{
        "event": "span",
        "span_id": root_id,
        "parent_id": None,
        "trace_id": root_id,
        "name": f"run[{report.algorithm or 'unknown'}]",
        "kind": "trial",
        "start_ts": 0.0,
        "end_ts": float(max(1, report.slots)),
        "pid": 0,
        "attrs": dict(report.scalars()),
    }]

    def add(name: str, start: int, end: int, **attrs) -> None:
        events.append({
            "event": "span",
            "span_id": next_id(),
            "parent_id": root_id,
            "trace_id": root_id,
            "name": name,
            "kind": "stage",
            "start_ts": float(start),
            "end_ts": float(end),
            "pid": 0,
            "attrs": attrs,
        })

    def add_runs(labels, prefix: str) -> None:
        start = 0
        current = None  # unnamed (None) runs produce no span
        for slot, label in enumerate(labels):
            if label != current:
                if current is not None:
                    add(f"{prefix}{current}", start, slot)
                start, current = slot, label
        if current is not None:
            add(f"{prefix}{current}", start, len(labels))

    add_runs(report.slot_labels, "slots.")
    by_depth: dict[int, list[int]] = {}
    for node, depth in report.dag.depths.items():
        if depth > 0:
            by_depth.setdefault(depth, []).append(report.dag.wake_slots[node])
    for depth in sorted(by_depth):
        slots = by_depth[depth]
        add(
            f"dag.depth[{depth}]", min(slots), max(slots) + 1,
            nodes=len(slots),
        )
    add_runs(report.stage_labels, "stage.")
    return events
