"""E8 — Section 1.2 corollary: complete layered networks are the hardest
case for randomized broadcasting but not for deterministic broadcasting;
plus the radius-2 (Alon et al.) hardness search."""

from __future__ import annotations

from ..analysis import km_lower_bound, render_table, summarize
from ..core import CompleteLayeredBroadcast, KnownRadiusKP, SelectAndSend
from ..sim import run_broadcast, run_broadcast_batch
from ..topology import km_hard_layered, search_radius2_hard_instance
from .base import ExperimentReport, register

FULL_RANDOM_CASES = [(512, 32), (512, 128), (2048, 64), (2048, 512)]
QUICK_RANDOM_CASES = [(512, 32), (512, 128)]
FULL_DET_CASES = [(512, 16), (1024, 16), (1024, 64)]
QUICK_DET_CASES = [(512, 16)]
FULL_R2_SIZES = [64, 128, 256]
QUICK_R2_SIZES = [64, 128]


@register("e8")
def run(quick: bool = False) -> ExperimentReport:
    """Randomized tightness + deterministic ease + radius-2 search."""
    seeds = 4 if quick else 8
    report = ExperimentReport(
        "e8", "layered hardness: tight for randomized, easy for deterministic"
    )

    rows = []
    for n, d in (QUICK_RANDOM_CASES if quick else FULL_RANDOM_CASES):
        net = km_hard_layered(n, d, seed=31)
        stats = summarize(
            [r.time for r in
             run_broadcast_batch(net, KnownRadiusKP(net.r, d), trials=seeds)]
        )
        rows.append([n, d, f"{stats.mean:.0f}", stats.mean / km_lower_bound(n, d)])
    report.add_table(
        render_table(["n", "D", "KP randomized", "rand / KM lower bound"], rows)
    )
    ratios = [row[3] for row in rows]
    report.check(
        "randomized time on KM-hard layered nets stays within a constant "
        "band of the D log(n/D) lower bound (tightness of Theorem 1)",
        max(ratios) / min(ratios) < 6.0,
        f"band [{min(ratios):.2f}, {max(ratios):.2f}]",
    )

    rows2 = []
    speedups_ok = True
    for n, d in (QUICK_DET_CASES if quick else FULL_DET_CASES):
        net = km_hard_layered(n, d, seed=31)
        layered = run_broadcast(net, CompleteLayeredBroadcast(), require_completion=True)
        general = run_broadcast(net, SelectAndSend(), require_completion=True)
        speedups_ok &= layered.time < general.time
        rows2.append([n, d, layered.time, general.time, general.time / layered.time])
    report.add_table(
        render_table(
            ["n", "D", "Complete-Layered", "Select-and-Send", "speedup"],
            rows2,
        )
    )
    report.check(
        "deterministically, layered structure admits times far below "
        "Theta(n log n): layered networks are NOT the deterministic worst case",
        speedups_ok,
    )

    rows3 = []
    for n in (QUICK_R2_SIZES if quick else FULL_R2_SIZES):
        algo = KnownRadiusKP(n - 1, 2)
        found = search_radius2_hard_instance(
            n, algo, trials=4 if quick else 8, runs_per_trial=3 if quick else 4,
            seed=2,
        )
        log2n = max(1.0, (n - 1).bit_length())
        rows3.append([n, f"{found.score:.1f}", found.score / 2.0,
                      found.score / (log2n * log2n)])
    report.add_table(
        render_table(
            ["n", "hardest radius-2 time", "slowdown vs D=2", "time / log^2 n"],
            rows3,
        )
    )
    report.check(
        "radius-2 hardness grows with n (the Omega(log^2 n) effect of Alon "
        "et al., reproduced by instance search)",
        rows3[-1][2] > rows3[0][2] * 0.9 and rows3[-1][2] > 3.0,
        f"slowdowns: {' -> '.join(str(row[2]) for row in rows3)}",
    )
    return report
