"""E10 — Section 4.1: Echo simulates collision detection and
Binary-Selection selects in O(log m) Echo segments.

Logic in :mod:`repro.experiments.e10_echo`.
"""

from __future__ import annotations

from repro.experiments import get_experiment


def test_e10(benchmark, table_reporter):
    report = get_experiment("e10")()
    for table in report.tables:
        table_reporter.record("e10", table)
    table_reporter.record(
        "e10",
        "\n".join(
            f"[{'PASS' if claim.holds else 'FAIL'}] {claim.description}"
            + (f"  ({claim.details})" if claim.details else "")
            for claim in report.claims
        ),
    )
    assert report.ok, report.render()

    from repro.core import SelectionDriver, simulate_selection

    benchmark.pedantic(
        lambda: simulate_selection(SelectionDriver(4096), {100, 2000, 4000}),
        rounds=5, iterations=10,
    )
