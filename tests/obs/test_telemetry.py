"""Telemetry bus: senders, drop counting, hub fan-out, context propagation."""

from __future__ import annotations

import multiprocessing

import pytest

from repro.obs.runlog import RunLogger, read_runlog, validate_runlog
from repro.obs.telemetry import (
    DEFAULT_CAPACITY,
    LocalSender,
    SpanContext,
    TelemetryBus,
    TelemetryHub,
    WorkerTelemetry,
)


@pytest.fixture
def bus():
    bus = TelemetryBus(multiprocessing.get_context("fork"), capacity=4)
    yield bus
    bus.close()


class TestBus:
    def test_events_flow_through(self, bus):
        sender = bus.sender()
        assert sender.emit({"event": "point_running", "index": 0})
        assert sender.emit({"event": "point_running", "index": 1})
        drained = bus.drain(timeout=2.0)
        assert [e["index"] for e in drained] == [0, 1]
        # Sender stamps its pid so the parent can attribute events.
        assert all("pid" in e for e in drained)
        assert bus.dropped == 0

    def test_saturated_bus_counts_drops(self):
        bus = TelemetryBus(multiprocessing.get_context("fork"), capacity=2)
        try:
            sender = bus.sender()
            sent = sum(sender.emit({"event": "x", "i": i}) for i in range(10))
            assert sent == 2  # capacity; the other 8 were shed, not blocked
            assert sender.dropped == 8
            # The cumulative count piggybacks on the next successful emit.
            bus.drain(timeout=2.0)
            assert bus.dropped == 0  # no successful emit has reported yet
            assert sender.emit({"event": "y"})
            drained = bus.drain(timeout=2.0)
            # drain() folds the piggybacked count into the tally and
            # strips it from the delivered record.
            assert "dropped" not in drained[-1]
            assert bus.dropped == 8
        finally:
            bus.close()

    def test_drop_count_is_cumulative_per_sender(self):
        bus = TelemetryBus(multiprocessing.get_context("fork"), capacity=1)
        try:
            sender = bus.sender()
            for round_ in range(3):
                sender.emit({"event": "fill"})   # occupies the slot
                sender.emit({"event": "shed"})   # dropped
                bus.drain(timeout=2.0)
            assert sender.dropped == 3
            sender.emit({"event": "final"})
            bus.drain(timeout=2.0)
            # Parent keeps the latest cumulative value, not a sum of reports.
            assert bus.dropped == 3
        finally:
            bus.close()

    def test_default_capacity_is_bounded(self):
        bus = TelemetryBus(multiprocessing.get_context("fork"))
        try:
            sender = bus.sender()
            for i in range(DEFAULT_CAPACITY + 50):
                sender.emit({"event": "x", "i": i})
            assert sender.dropped > 0
        finally:
            bus.close()

    def test_emit_does_not_mutate_caller_dict(self, bus):
        record = {"event": "point_running", "index": 3}
        bus.sender().emit(record)
        assert record == {"event": "point_running", "index": 3}


class TestLocalSender:
    def test_direct_delivery(self):
        seen = []
        sender = LocalSender(seen.append)
        assert sender.emit({"event": "a"})
        assert seen[0]["event"] == "a" and "pid" in seen[0]
        assert sender.dropped == 0


class TestWorkerTelemetry:
    def test_recorder_nests_under_context(self):
        seen = []
        telemetry = WorkerTelemetry(
            sender=LocalSender(seen.append),
            context=SpanContext(trace_id="t0", parent_id="sweep-span"),
        )
        recorder = telemetry.recorder()
        span = recorder.start("p0", "point", parent_id=telemetry.context.parent_id)
        recorder.end(span)
        assert span.trace_id == "t0"
        assert seen[0]["parent_id"] == "sweep-span"

    def test_context_is_picklable(self):
        import pickle

        context = SpanContext(trace_id="t0", parent_id="sweep-span")
        assert pickle.loads(pickle.dumps(context)) == context


class TestHub:
    def test_ingest_writes_runlog_and_notifies(self, tmp_path):
        path = tmp_path / "run.jsonl"
        seen = []
        with RunLogger(path) as runlog:
            hub = TelemetryHub(runlog=runlog)
            hub.subscribe(seen.append)
            with hub.recorder.span("quick", "sweep"):
                pass
            hub.notify({"event": "sweep_completed", "points": 0})
            hub.close()
        events = read_runlog(path)
        # The span landed in the runlog via ingest; notify() alone doesn't write.
        assert [e["event"] for e in events] == ["span"]
        assert [e["event"] for e in seen] == ["span", "sweep_completed"]
        assert validate_runlog(events) == []

    def test_worker_telemetry_requires_open_bus(self):
        hub = TelemetryHub()
        sweep = hub.recorder.start("s", "sweep")
        with pytest.raises(RuntimeError, match="open_bus"):
            hub.worker_telemetry(sweep)

    def test_bus_round_trip_through_hub(self):
        hub = TelemetryHub()
        seen = []
        hub.subscribe(seen.append)
        sweep = hub.recorder.start("s", "sweep")
        hub.open_bus(multiprocessing.get_context("fork"))
        worker = hub.worker_telemetry(sweep)
        assert worker.context.parent_id == sweep.span_id
        worker.sender.emit({"event": "point_running", "index": 0})
        recorder = worker.recorder()
        with recorder.span("p0", "point", parent_id=worker.context.parent_id):
            pass
        hub.drain(timeout=2.0)
        hub.close()
        kinds = [e["event"] for e in seen]
        assert kinds == ["point_running", "span"]
        assert seen[1]["parent_id"] == sweep.span_id

    def test_dropped_aggregates_from_bus(self):
        hub = TelemetryHub(capacity=1)
        sweep = hub.recorder.start("s", "sweep")
        hub.open_bus(multiprocessing.get_context("fork"))
        sender = hub.worker_telemetry(sweep).sender
        for i in range(5):
            sender.emit({"event": "x", "i": i})
        hub.drain(timeout=2.0)
        sender.emit({"event": "tail"})
        hub.drain(timeout=2.0)
        assert hub.dropped == sender.dropped > 0
        hub.close()

    def test_local_telemetry_skips_the_queue(self):
        hub = TelemetryHub()
        seen = []
        hub.subscribe(seen.append)
        sweep = hub.recorder.start("s", "sweep")
        local = hub.local_telemetry(sweep)
        local.sender.emit({"event": "point_running", "index": 0})
        # No drain needed — delivery is synchronous.
        assert seen[0]["event"] == "point_running"
        hub.close()
