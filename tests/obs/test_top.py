"""The ``repro top`` state machine and terminal renderer."""

from __future__ import annotations

import io
import itertools

from repro.obs.top import LiveRenderer, TopView, replay_events


def sweep_events():
    """A small pooled sweep as (ts-carrying) runlog events."""
    return [
        {"ts": 10.0, "event": "sweep_started", "name": "quick", "points": 4,
         "workers": 2},
        {"ts": 10.1, "event": "point_cache_hit", "index": 0},
        {"ts": 10.2, "event": "point_spawned", "index": 1},
        {"ts": 10.3, "event": "point_running", "index": 1, "pid": 71,
         "label": "layered/kp n=12"},
        {"ts": 10.4, "event": "point_running", "index": 2, "pid": 72,
         "label": "layered/kp n=18"},
        {"ts": 11.0, "event": "span", "kind": "trial", "span_id": "t0"},
        {"ts": 12.0, "event": "point_completed", "index": 1},
        {"ts": 12.5, "event": "point_failed", "index": 2, "error": "boom"},
        {"ts": 13.0, "event": "point_running", "index": 3, "pid": 71,
         "label": "layered/kp n=24"},
    ]


class TestTopView:
    def test_counts_and_worker_state(self):
        view = replay_events(sweep_events(), clock=lambda: 0.0)
        assert view.name == "quick" and view.total == 4
        assert view.cache_hits == 1 and view.executed == 1 and view.failures == 1
        assert view.done == 3
        assert view.spans == 1
        # Workers 71/72 finished their points; 71 picked up point 3.
        assert set(view.worker_state) == {71}
        assert view.worker_state[71]["index"] == 3

    def test_elapsed_uses_event_clock_on_replay(self):
        view = replay_events(sweep_events(), clock=lambda: 0.0)
        assert view.elapsed == 3.0  # 13.0 - 10.0
        assert view.throughput == 1 / 3.0
        assert view.eta is not None and view.eta == 3.0  # 1 remaining point

    def test_elapsed_freezes_at_sweep_completed(self):
        ticks = itertools.count()
        view = TopView(clock=lambda: float(next(ticks)))
        view.feed({"event": "sweep_started", "points": 0})
        view.feed({"event": "sweep_completed", "executed": 0})
        frozen = view.elapsed
        assert view.elapsed == frozen  # later clock reads don't move it

    def test_dropped_keeps_maximum_cumulative_count(self):
        view = TopView(clock=lambda: 0.0)
        view.feed({"event": "telemetry_dropped", "count": 5})
        view.feed({"event": "telemetry_dropped", "count": 3})
        assert view.dropped == 5

    def test_unknown_events_ignored(self):
        view = TopView(clock=lambda: 0.0)
        view.feed({"event": "a_future_event_kind", "ts": 1.0})
        view.feed({"no_event_key": True})
        assert view.render()  # still renders something sane

    def test_render_snapshot(self):
        view = replay_events(sweep_events(), clock=lambda: 0.0)
        text = view.render()
        lines = text.splitlines()
        assert lines[0].startswith("sweep quick  [")
        assert "3/4 (75%)" in lines[0]
        assert "cache 1/4 (25%)" in lines[1]
        assert "failed 1" in lines[1] and "spans 1" in lines[1]
        assert any("worker 71: running layered/kp n=24" in ln for ln in lines)
        assert "\x1b" not in text  # pure text; ANSI belongs to the renderer

    def test_render_after_completion_shows_summary(self):
        events = sweep_events() + [
            {"ts": 14.0, "event": "point_completed", "index": 3},
            {"ts": 14.1, "event": "sweep_completed", "executed": 2,
             "from_cache": 1, "failed": 1},
        ]
        text = replay_events(events, clock=lambda: 0.0).render()
        assert "done in" in text
        assert "executed 2, from cache 1, failed 1" in text
        assert "worker" not in text  # all workers idle by then

    def test_render_empty_view(self):
        assert TopView(clock=lambda: 0.0).render().startswith("sweep")


class TestLiveRenderer:
    def test_non_tty_stays_silent_until_finish(self):
        stream = io.StringIO()
        renderer = LiveRenderer(stream, interval=0.0, clock=lambda: 0.0,
                                force_tty=False)
        for event in sweep_events():
            renderer(event)
        assert stream.getvalue() == ""  # no control chars into a pipe
        renderer.finish()
        assert "sweep quick" in stream.getvalue()
        assert "\x1b" not in stream.getvalue()

    def test_tty_redraws_in_place(self):
        ticks = itertools.count()
        stream = io.StringIO()
        renderer = LiveRenderer(stream, interval=0.0,
                                clock=lambda: float(next(ticks)),
                                force_tty=True)
        events = sweep_events()
        renderer(events[0])
        first = stream.getvalue()
        assert "\x1b[" not in first  # nothing to erase on the first frame
        for event in events[1:]:
            renderer(event)
        assert "\x1b[" in stream.getvalue()  # later frames cursor-up + clear

    def test_interval_throttles_redraws(self):
        stream = io.StringIO()
        renderer = LiveRenderer(stream, interval=100.0, clock=lambda: 0.0,
                                force_tty=True)
        renderer({"event": "sweep_started", "points": 1})
        burst = stream.getvalue()
        renderer({"event": "point_completed", "index": 0})
        assert stream.getvalue() == burst  # within the interval: no redraw
