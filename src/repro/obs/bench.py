"""Declarative benchmark registry with a pinned timing protocol.

A :class:`Benchmark` couples a name to a *builder thunk*: ``build(quick)``
performs all setup (topology generation, engine construction inputs) and
returns the zero-argument callable that gets timed.  The registry is what
``repro bench`` and the pytest benchmarks share, so a workload is defined
exactly once.

The timing protocol is pinned so that trajectory records stay comparable
across PRs: ``warmup`` untimed calls, then ``repeats`` timed calls, with
the **minimum** as the headline statistic (least scheduler noise) and the
median alongside it.  Every record carries an environment fingerprint
(git SHA, python/numpy/scipy versions, platform, CPU count) so a
regression can be told apart from a machine change.

Records append to ``benchmarks/results/BENCH_trajectory.jsonl`` (one
JSON object per line) and compare against committed per-bench baselines
``benchmarks/results/BENCH_<name>.json``.  Comparison is noise-tolerant:
a bench regresses only when ``min_s`` exceeds ``tolerance`` times the
baseline.  Regressions warn by default and hard-fail only under
``REPRO_BENCH_STRICT=1`` (dedicated benchmark hardware).

Kept import-light like the rest of ``repro.obs`` — the default suite
(:mod:`repro.obs.suite`) is the module that imports the simulation stack.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import statistics
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

from .runlog import git_sha

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "Benchmark",
    "BenchmarkRegistry",
    "BenchComparison",
    "DEFAULT_RESULTS_DIR",
    "DEFAULT_REGISTRY",
    "STRICT_ENV_VAR",
    "append_trajectory",
    "baseline_path",
    "compare_record",
    "environment_fingerprint",
    "load_baseline",
    "read_trajectory",
    "register",
    "run_benchmark",
    "strict_mode",
    "trajectory_path",
    "validate_record",
    "write_baseline",
]

#: Bumped when the record layout changes incompatibly.
BENCH_SCHEMA_VERSION = 1

#: Where ``repro bench`` reads/writes baselines and the trajectory.
DEFAULT_RESULTS_DIR = pathlib.Path("benchmarks") / "results"

#: Environment variable turning regression warnings into hard failures.
STRICT_ENV_VAR = "REPRO_BENCH_STRICT"


def strict_mode() -> bool:
    """Whether regressions must fail (``REPRO_BENCH_STRICT=1``)."""
    return os.environ.get(STRICT_ENV_VAR) == "1"


@dataclass(frozen=True)
class Benchmark:
    """One registered benchmark.

    Args:
        name: Unique registry key; also names the baseline file
            ``BENCH_<name>.json``.
        build: ``build(quick)`` does all setup outside the timed region
            and returns the zero-argument callable to time.  ``quick``
            selects a smaller workload for CI smoke runs.
        tags: Free-form workload labels (``"engine"``, ``"sweep"``, ...)
            usable with ``repro bench --filter``.
        tolerance: Allowed slowdown ratio against the committed baseline
            before the bench counts as regressed (1.3 = +30%).
        repeats: Timed calls per record (full mode).
        warmup: Untimed calls before measurement starts.
        quick_repeats: Timed calls under ``--quick``.
        description: One line for ``repro bench --list``.
    """

    name: str
    build: Callable[[bool], Callable[[], object]]
    tags: tuple[str, ...] = ()
    tolerance: float = 1.3
    repeats: int = 5
    warmup: int = 1
    quick_repeats: int = 3
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("benchmark name must be non-empty")
        if self.tolerance <= 1.0:
            raise ValueError(
                f"tolerance must exceed 1.0 (a ratio), got {self.tolerance}"
            )
        if self.repeats < 1 or self.quick_repeats < 1:
            raise ValueError("repeats must be positive")
        if self.warmup < 0:
            raise ValueError("warmup must be non-negative")


class BenchmarkRegistry:
    """Ordered name -> :class:`Benchmark` mapping."""

    def __init__(self) -> None:
        self._benchmarks: dict[str, Benchmark] = {}

    def add(self, benchmark: Benchmark) -> Benchmark:
        if benchmark.name in self._benchmarks:
            raise ValueError(f"benchmark {benchmark.name!r} already registered")
        self._benchmarks[benchmark.name] = benchmark
        return benchmark

    def get(self, name: str) -> Benchmark:
        try:
            return self._benchmarks[name]
        except KeyError:
            raise KeyError(
                f"unknown benchmark {name!r}; registered: {sorted(self._benchmarks)}"
            ) from None

    def select(self, pattern: str | None = None) -> list[Benchmark]:
        """Benchmarks whose name or tags contain ``pattern`` (all if None)."""
        out = []
        for bench in self._benchmarks.values():
            if (
                pattern is None
                or pattern in bench.name
                or any(pattern in tag for tag in bench.tags)
            ):
                out.append(bench)
        return out

    def __contains__(self, name: str) -> bool:
        return name in self._benchmarks

    def __len__(self) -> int:
        return len(self._benchmarks)

    def __iter__(self):
        return iter(self._benchmarks.values())


#: The registry ``repro bench`` and the pytest benchmarks share.
DEFAULT_REGISTRY = BenchmarkRegistry()


def register(
    name: str,
    *,
    tags: Sequence[str] = (),
    tolerance: float = 1.3,
    repeats: int = 5,
    warmup: int = 1,
    quick_repeats: int = 3,
    description: str = "",
    registry: BenchmarkRegistry | None = None,
) -> Callable[[Callable[[bool], Callable[[], object]]], Callable]:
    """Decorator registering a builder thunk as a :class:`Benchmark`."""

    def decorate(build: Callable[[bool], Callable[[], object]]):
        (registry if registry is not None else DEFAULT_REGISTRY).add(
            Benchmark(
                name=name,
                build=build,
                tags=tuple(tags),
                tolerance=tolerance,
                repeats=repeats,
                warmup=warmup,
                quick_repeats=quick_repeats,
                description=description or (build.__doc__ or "").strip().split("\n")[0],
            )
        )
        return build

    return decorate


# ----------------------------------------------------------------------
# Environment fingerprint


def environment_fingerprint() -> dict:
    """Machine/toolchain identity stamped onto every bench record."""
    import numpy

    try:
        import scipy

        scipy_version = scipy.__version__
    except ImportError:  # pragma: no cover - scipy is a dev dependency
        scipy_version = None
    return {
        "git_sha": git_sha(),
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "scipy": scipy_version,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


# ----------------------------------------------------------------------
# Timing protocol


def run_benchmark(
    benchmark: Benchmark,
    quick: bool = False,
    env: Mapping | None = None,
) -> dict:
    """Execute one benchmark under the pinned protocol; returns the record.

    Setup (``build(quick)``) runs outside the timed region.  The thunk is
    then called ``warmup`` times untimed and ``repeats`` times timed with
    ``perf_counter``; ``min_s`` is the headline statistic.
    """
    thunk = benchmark.build(quick)
    repeats = benchmark.quick_repeats if quick else benchmark.repeats
    for _ in range(benchmark.warmup):
        thunk()
    times: list[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        thunk()
        times.append(time.perf_counter() - start)
    return {
        "schema": BENCH_SCHEMA_VERSION,
        "bench": benchmark.name,
        "tags": list(benchmark.tags),
        "quick": quick,
        "warmup": benchmark.warmup,
        "repeats": repeats,
        "times_s": [round(t, 6) for t in times],
        "min_s": round(min(times), 6),
        "median_s": round(statistics.median(times), 6),
        "mean_s": round(statistics.fmean(times), 6),
        "tolerance": benchmark.tolerance,
        "ts": time.time(),
        "env": dict(env) if env is not None else environment_fingerprint(),
    }


_REQUIRED_FIELDS = {
    "schema": int,
    "bench": str,
    "quick": bool,
    "repeats": int,
    "times_s": list,
    "min_s": (int, float),
    "median_s": (int, float),
    "mean_s": (int, float),
    "tolerance": (int, float),
    "ts": (int, float),
    "env": dict,
}

_REQUIRED_ENV_FIELDS = ("git_sha", "python", "numpy", "platform", "cpu_count")


def validate_record(record: Mapping) -> list[str]:
    """Schema-check one bench record; returns violations (empty = valid)."""
    errors: list[str] = []
    for key, kind in _REQUIRED_FIELDS.items():
        if key not in record:
            errors.append(f"missing field {key!r}")
        elif not isinstance(record[key], kind):
            errors.append(
                f"field {key!r} has type {type(record[key]).__name__}, "
                f"expected {kind}"
            )
    if isinstance(record.get("env"), Mapping):
        for key in _REQUIRED_ENV_FIELDS:
            if key not in record["env"]:
                errors.append(f"env fingerprint missing {key!r}")
    if isinstance(record.get("times_s"), list):
        if not record["times_s"]:
            errors.append("times_s is empty")
        elif record.get("min_s") is not None and isinstance(
            record["min_s"], (int, float)
        ):
            if abs(min(record["times_s"]) - record["min_s"]) > 1e-9:
                errors.append("min_s does not match min(times_s)")
    if isinstance(record.get("schema"), int) and record["schema"] > BENCH_SCHEMA_VERSION:
        errors.append(
            f"record schema {record['schema']} is newer than supported "
            f"{BENCH_SCHEMA_VERSION}"
        )
    return errors


# ----------------------------------------------------------------------
# Baselines and the trajectory file


def trajectory_path(results_dir: pathlib.Path | str | None = None) -> pathlib.Path:
    root = pathlib.Path(results_dir) if results_dir is not None else DEFAULT_RESULTS_DIR
    return root / "BENCH_trajectory.jsonl"


def baseline_path(
    name: str, results_dir: pathlib.Path | str | None = None
) -> pathlib.Path:
    root = pathlib.Path(results_dir) if results_dir is not None else DEFAULT_RESULTS_DIR
    return root / f"BENCH_{name}.json"


def append_trajectory(
    record: Mapping, results_dir: pathlib.Path | str | None = None
) -> pathlib.Path:
    """Append one record to ``BENCH_trajectory.jsonl``; returns the path."""
    path = trajectory_path(results_dir)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("a", encoding="utf-8") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
    return path


def read_trajectory(path: pathlib.Path | str) -> list[dict]:
    """Parse a trajectory JSONL file into record dicts (skips blank lines)."""
    records: list[dict] = []
    with pathlib.Path(path).open("r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{number}: not valid JSON: {exc}") from exc
            if not isinstance(record, dict):
                raise ValueError(f"{path}:{number}: record is not a JSON object")
            records.append(record)
    return records


def write_baseline(
    record: Mapping, results_dir: pathlib.Path | str | None = None
) -> pathlib.Path:
    """Commit one record as the bench's baseline ``BENCH_<name>.json``."""
    path = baseline_path(record["bench"], results_dir)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path


def load_baseline(
    name: str, results_dir: pathlib.Path | str | None = None
) -> dict | None:
    """The committed baseline record for ``name``, or ``None`` if absent."""
    path = baseline_path(name, results_dir)
    if not path.exists():
        return None
    return json.loads(path.read_text())


@dataclass(frozen=True)
class BenchComparison:
    """Outcome of one record-vs-baseline check.

    ``status`` is one of ``"ok"`` (within tolerance), ``"improved"``
    (faster than the baseline by more than the tolerance margin —
    worth committing a new baseline), ``"regression"`` (slower than
    ``tolerance`` allows), ``"mode-mismatch"`` (quick record vs full
    baseline or vice versa — never comparable), or ``"no-baseline"``.
    """

    bench: str
    status: str
    ratio: float | None
    record: Mapping = field(repr=False)
    baseline: Mapping | None = field(repr=False, default=None)

    @property
    def regressed(self) -> bool:
        return self.status == "regression"

    def describe(self) -> str:
        if self.status == "no-baseline":
            return f"{self.bench}: no committed baseline (min {self.record['min_s']:.4f}s)"
        if self.status == "mode-mismatch":
            record_mode = "quick" if self.record.get("quick") else "full"
            base_mode = "quick" if self.baseline.get("quick") else "full"
            return (
                f"{self.bench}: {record_mode}-mode record vs {base_mode}-mode "
                f"baseline — not comparable"
            )
        return (
            f"{self.bench}: {self.status} — min {self.record['min_s']:.4f}s vs "
            f"baseline {self.baseline['min_s']:.4f}s "
            f"({self.ratio:.3f}x, tolerance {self.record['tolerance']:.2f}x)"
        )


def compare_record(record: Mapping, baseline: Mapping | None) -> BenchComparison:
    """Noise-tolerant ratio comparison of one record against its baseline.

    The ratio is ``record.min_s / baseline.min_s``; min-of-N is the
    statistic least sensitive to scheduler noise, and the tolerance
    (stored on the record, i.e. the *registered* tolerance at measurement
    time) absorbs the rest.  A quick-mode record is only comparable to a
    quick-mode baseline (the workloads differ); a mode mismatch reports
    ``"mode-mismatch"`` and never counts as a regression.
    """
    if baseline is None:
        return BenchComparison(
            bench=record["bench"], status="no-baseline", ratio=None, record=record
        )
    if bool(record.get("quick")) != bool(baseline.get("quick")):
        return BenchComparison(
            bench=record["bench"], status="mode-mismatch", ratio=None,
            record=record, baseline=baseline,
        )
    base = float(baseline["min_s"])
    ratio = float(record["min_s"]) / base if base > 0 else float("inf")
    tolerance = float(record.get("tolerance", 1.3))
    if ratio > tolerance:
        status = "regression"
    elif ratio < 1.0 / tolerance:
        status = "improved"
    else:
        status = "ok"
    return BenchComparison(
        bench=record["bench"], status=status, ratio=ratio,
        record=record, baseline=baseline,
    )


def compare_all(
    records: Iterable[Mapping],
    results_dir: pathlib.Path | str | None = None,
) -> list[BenchComparison]:
    """Compare each record against its committed baseline."""
    return [
        compare_record(record, load_baseline(record["bench"], results_dir))
        for record in records
    ]
