"""E1 — Theorem 1 vs BGI: the headline randomized separation.

Paper claim: the Kowalski–Pelc algorithm runs in expected time
``O(D log(n/D) + log^2 n)``, improving BGI's ``O(D log n + log^2 n)``;
the advantage factor grows like ``log n / log(n/D)``, i.e. with D.
"""

from __future__ import annotations

from ..analysis import render_table, summarize
from ..baselines import BGIBroadcast
from ..core import KnownRadiusKP
from ..sim import run_broadcast_batch
from ..topology import directed_complete_layered, km_hard_layered
from .base import ExperimentReport, register
from .forensic_golden import add_forensic_golden


def _batch_times(net, algorithm, runs: int) -> list[int]:
    """Trial times for seeds 0..runs-1, all trials in one batched run.

    ``engine="auto"`` dispatches per algorithm: the oblivious KP/BGI
    schedules here take the ``(trials, n)`` array engine, any adaptive
    algorithm would take the batched event engine — same results either
    way (the conformance suite pins trial-for-trial identity).
    """
    return [
        r.time
        for r in run_broadcast_batch(net, algorithm, trials=runs, engine="auto")
    ]

FULL_CASES = [
    (256, 4), (256, 16), (256, 64),
    (1024, 4), (1024, 32), (1024, 256),
    (4096, 8), (4096, 64), (4096, 512),
]
QUICK_CASES = [(256, 4), (256, 64), (1024, 256)]


@register("e1")
def run(quick: bool = False, seeds: int | None = None) -> ExperimentReport:
    """Measure KP vs BGI mean broadcast times on KM-hard layered networks.

    Args:
        quick: Use the reduced sweep and fewer seeds.
        seeds: Override the number of Monte-Carlo repetitions.
    """
    cases = QUICK_CASES if quick else FULL_CASES
    runs = seeds if seeds is not None else (5 if quick else 12)
    report = ExperimentReport(
        "e1", "KP optimal randomized vs BGI Decay on KM-hard layered networks"
    )
    rows = []
    ratios: dict[tuple[int, int], float] = {}
    for n, d in cases:
        net = km_hard_layered(n, d, seed=17)
        kp = summarize(_batch_times(net, KnownRadiusKP(net.r, d), runs))
        bgi = summarize(_batch_times(net, BGIBroadcast(net.r), runs))
        ratios[(n, d)] = bgi.mean / kp.mean
        rows.append(
            [n, d,
             f"{kp.mean:.0f} ± {kp.ci_high - kp.mean:.0f}",
             f"{bgi.mean:.0f} ± {bgi.ci_high - bgi.mean:.0f}",
             bgi.mean / kp.mean]
        )
    report.add_table(
        render_table(["n", "D", "KP (rounds)", "BGI (rounds)", "BGI/KP"], rows)
    )

    largest_d = max(cases, key=lambda case: case[1])
    report.check(
        "KP beats BGI clearly in the large-D regime (Theorem 1 improvement)",
        ratios[largest_d] > 1.3,
        f"BGI/KP at (n, D)={largest_d}: {ratios[largest_d]:.2f}",
    )
    report.check(
        "KP never loses badly anywhere in the sweep",
        all(ratio > 0.8 for ratio in ratios.values()),
        f"min ratio {min(ratios.values()):.2f}",
    )
    per_n: dict[int, list[tuple[int, float]]] = {}
    for (n, d), ratio in ratios.items():
        per_n.setdefault(n, []).append((d, ratio))
    monotone = all(
        [r for _, r in sorted(pairs)] == sorted(r for _, r in pairs)
        for pairs in per_n.values()
        if len(pairs) >= 3
    )
    report.check(
        "the advantage grows with D at fixed n (log n / log(n/D) shape)",
        monotone,
        "; ".join(
            f"n={n}: " + " -> ".join(f"{r:.2f}" for _, r in sorted(pairs))
            for n, pairs in sorted(per_n.items())
        ),
    )

    # Theorem 1 is stated (and proved) for directed radio networks as
    # well; spot-check on a directed complete layered network where every
    # arc points away from the source.
    undirected_sizes = [1] + [8] * 63
    directed_net = directed_complete_layered(undirected_sizes)
    directed_kp = summarize(
        _batch_times(directed_net, KnownRadiusKP(directed_net.r, 63), runs)
    )
    directed_bgi = summarize(
        _batch_times(directed_net, BGIBroadcast(directed_net.r), runs)
    )
    report.add_table(
        render_table(
            ["setting", "n", "D", "KP", "BGI", "BGI/KP"],
            [["directed layered", directed_net.n, directed_net.radius,
              f"{directed_kp.mean:.0f}", f"{directed_bgi.mean:.0f}",
              directed_bgi.mean / directed_kp.mean]],
        )
    )
    report.check(
        "the result holds in the directed setting too (Section 2 analyses "
        "directed graphs)",
        directed_bgi.mean / directed_kp.mean > 1.3,
        f"directed BGI/KP = {directed_bgi.mean / directed_kp.mean:.2f}",
    )

    golden_net = km_hard_layered(256, 16, seed=17)
    add_forensic_golden(
        report, golden_net, lambda: KnownRadiusKP(golden_net.r, 16),
        seed=3, engines=("reference", "event", "fast"),
        expected={
            "slots": 106,
            "informed": 256,
            "total_transmissions": 1118,
            "wasted_slot_fraction": 0.849057,
            "critical_path_depth": 16,
            "redundancy_ratio": 4.384314,
        },
        label="KP on km_hard_layered(256, 16, seed=17) @ seed 3",
    )
    return report
