"""Exception hierarchy for the radio-network simulator.

All simulator errors derive from :class:`SimulationError` so callers can
catch the whole family with one clause while still being able to react to
specific failure modes (model violations vs. configuration mistakes).
"""

from __future__ import annotations

__all__ = [
    "SimulationError",
    "NetworkError",
    "ProtocolViolationError",
    "BroadcastIncompleteError",
    "ConfigurationError",
]


class SimulationError(Exception):
    """Base class for every error raised by :mod:`repro.sim`."""


class NetworkError(SimulationError):
    """The network definition is malformed.

    Raised for duplicate labels, labels outside ``{0, ..., r}``, a missing
    source (label ``0``), self-loops, or a graph in which some node is
    unreachable from the source (broadcasting could never complete there).
    """


class ProtocolViolationError(SimulationError):
    """A protocol broke a rule of the radio model.

    The model of Kowalski & Pelc forbids *spontaneous transmissions*: a node
    that has not yet received the source message must stay silent.  The
    engine enforces this structurally (sleeping nodes are never asked to
    act), but a protocol can still misbehave by, e.g., returning a message
    with a forged sender label; those cases raise this error.
    """


class BroadcastIncompleteError(SimulationError):
    """A run hit its step limit before informing every node.

    Carries the partial result so callers can inspect how far the broadcast
    progressed.  Only raised when the caller asked for strict completion;
    the default driver returns a result with ``completed=False`` instead.
    """

    def __init__(self, message: str, result: object | None = None) -> None:
        super().__init__(message)
        self.result = result


class ConfigurationError(SimulationError):
    """An algorithm or engine was configured with inconsistent parameters."""
