"""Batched event-engine benchmark (the ``batched_adaptive_engine`` gate).

The tentpole claim: a Monte-Carlo batch of Select-and-Send trials on
e4's G(512, 6/n) workload runs at least 5x faster through the
:class:`~repro.sim.batched_event.BatchedEventEngine` than as serial
event-engine runs, while every trial stays bit-identical to its serial
counterpart.  The win comes from execution-class collapse: the
deterministic, lossless batch is one representative run serving all
trials.  Trial-level identity is asserted here on wake times and
completion; the exhaustive slot-level differential lives in
``tests/sim/test_conformance.py`` and ``tests/sim/test_batched_event.py``.

The workload comes from the shared benchmark registry
(:func:`repro.obs.suite.batched_adaptive_workload`), so the committed
``BENCH_batched_adaptive_engine.json`` baseline that ``repro bench``
gates on tracks exactly the run this test measures.
"""

from __future__ import annotations

import time

from repro.analysis import render_table
from repro.obs.suite import batched_adaptive_workload
from repro.sim import derive_trial_seeds, run_broadcast
from repro.sim.fast import run_broadcast_batch

REPEATS = 3  # best-of to shave scheduler noise

#: The acceptance bar: the batched event engine must beat serial
#: event-engine trials by at least this factor on the same batch.
MIN_SPEEDUP = 5.0


def _best_of(thunk, repeats=REPEATS):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = thunk()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_batched_event_engine_speedup_and_identity(table_reporter):
    net, algorithm, trials = batched_adaptive_workload(quick=False)
    seeds = derive_trial_seeds(0, trials)

    serial_s, serial = _best_of(
        lambda: [
            run_broadcast(
                net, algorithm, seed=seed, require_completion=True,
                engine="event",
            )
            for seed in seeds
        ]
    )
    batched_s, batched = _best_of(
        lambda: run_broadcast_batch(
            net, algorithm, seeds=seeds, engine="batched_event"
        )
    )

    # Batching must be a pure execution strategy, never a semantic
    # variant: trial i of the batch equals serial run i exactly.
    assert len(batched) == len(serial) == trials
    for from_batch, reference in zip(batched, serial):
        assert from_batch.completed and reference.completed
        assert from_batch.time == reference.time
        assert from_batch.wake_times == reference.wake_times

    speedup = serial_s / batched_s
    table_reporter.record(
        "batched-adaptive-engine",
        render_table(
            ["path", "wall (s)", "trials/s"],
            [
                ["serial event-engine", f"{serial_s:.3f}",
                 f"{trials / serial_s:.1f}"],
                ["batched event-engine", f"{batched_s:.3f}",
                 f"{trials / batched_s:.1f}"],
                ["speedup", f"{speedup:.1f}x", ""],
            ],
            title=(
                f"Select-and-Send x{trials} trials, G({net.n}, 6/n) seed=5"
            ),
        ),
    )
    assert speedup >= MIN_SPEEDUP, (
        f"batched event-engine speedup only {speedup:.1f}x"
    )
