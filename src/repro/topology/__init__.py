"""Topology generators for radio networks."""

from .csr import (
    CSRNetwork,
    complete_layered_csr,
    gnp_random_csr,
    km_hard_layered_csr,
    uniform_complete_layered_csr,
)
from .generators import (
    binary_tree,
    caterpillar,
    complete_graph,
    cycle,
    gnp_connected,
    grid,
    hypercube,
    path,
    random_geometric,
    random_tree,
    relabel_network,
    star,
)
from .hard_instances import (
    HardInstanceReport,
    random_radius2,
    search_radius2_hard_instance,
)
from .layered import (
    complete_layered,
    directed_complete_layered,
    km_hard_layered,
    layer_sizes_for,
    random_layered,
    uniform_complete_layered,
)

__all__ = [
    "CSRNetwork",
    "HardInstanceReport",
    "binary_tree",
    "caterpillar",
    "complete_graph",
    "complete_layered",
    "complete_layered_csr",
    "directed_complete_layered",
    "cycle",
    "gnp_connected",
    "gnp_random_csr",
    "grid",
    "hypercube",
    "km_hard_layered",
    "km_hard_layered_csr",
    "layer_sizes_for",
    "path",
    "random_geometric",
    "random_layered",
    "random_radius2",
    "random_tree",
    "relabel_network",
    "search_radius2_hard_instance",
    "star",
    "uniform_complete_layered",
    "uniform_complete_layered_csr",
]
