"""Monte-Carlo statistics for broadcast-time estimation.

Corollary 1 speaks about *expected* broadcasting time; experiments
estimate it by repeated runs with independent seeds.  This module provides
the summary type used across benchmarks: mean, spread, and a normal-
approximation confidence interval (the estimator is a mean of bounded,
i.i.d. samples, so the CLT applies long before the 20-50 runs used here).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = ["Summary", "summarize"]

#: Two-sided z-values for the confidence levels the benchmarks use.
_Z = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


@dataclass(frozen=True)
class Summary:
    """Summary statistics of a sample of broadcast times.

    Attributes:
        count: Sample size.
        mean: Sample mean.
        std: Sample standard deviation (Bessel-corrected).
        minimum / maximum: Sample extremes.
        ci_low / ci_high: Normal-approximation confidence interval for the
            mean at the requested level.
        level: The confidence level the interval was built for.
    """

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    ci_low: float
    ci_high: float
    level: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.mean:.1f} ± {self.ci_high - self.mean:.1f} "
            f"(n={self.count}, range [{self.minimum:.0f}, {self.maximum:.0f}])"
        )


def summarize(samples: Iterable[float], level: float = 0.95) -> Summary:
    """Summarise a sample; the CI collapses to the mean for single samples."""
    data: Sequence[float] = list(samples)
    if not data:
        raise ValueError("cannot summarise an empty sample")
    if level not in _Z:
        raise ValueError(f"unsupported confidence level {level}; use one of {sorted(_Z)}")
    n = len(data)
    mean = sum(data) / n
    if n > 1:
        variance = sum((x - mean) ** 2 for x in data) / (n - 1)
        std = math.sqrt(variance)
        half = _Z[level] * std / math.sqrt(n)
    else:
        std = 0.0
        half = 0.0
    return Summary(
        count=n,
        mean=mean,
        std=std,
        minimum=min(data),
        maximum=max(data),
        ci_low=mean - half,
        ci_high=mean + half,
        level=level,
    )
