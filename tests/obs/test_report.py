"""Report rendering from run logs and metric snapshots."""

from __future__ import annotations

from repro.obs.metrics import MetricsRegistry, SLOT_BUCKETS
from repro.obs.report import (
    render_metrics,
    render_report,
    render_timings,
    report_from_file,
)
from repro.obs.runlog import RunLogger
from repro.obs.timings import Timings


def test_render_timings_empty_and_filled():
    assert "(empty)" in render_timings(Timings())
    timings = Timings()
    timings.add("engine.step", 1.5, count=3)
    output = render_timings(timings)
    assert "engine.step" in output and "seconds" in output


def test_render_metrics_tables_and_sparklines():
    metrics = MetricsRegistry()
    metrics.counter("runs_total").inc(5)
    metrics.gauge("depth").set(2)
    metrics.histogram("slots_to_completion", SLOT_BUCKETS).observe_many(
        [3, 9, 17, 100]
    )
    output = render_metrics(metrics)
    assert "runs_total" in output
    assert "counter" in output and "gauge" in output
    assert "slots_to_completion" in output
    assert "histograms" in output


def test_render_report_empty():
    assert "empty" in render_report([])


def test_report_from_file_covers_all_sections(tmp_path):
    metrics = MetricsRegistry()
    metrics.counter("engine_slots").inc(12)
    timings = Timings()
    timings.add("pool.queue_wait", 0.01)
    timings.add("pool.execute", 0.2)
    path = tmp_path / "log.jsonl"
    with RunLogger(path, run_id="feed") as log:
        log.event("sweep_started", name="demo", points=2)
        log.event("point_cache_hit", index=0, label="cached-point")
        log.event("point_spawned", index=1, label="run-point", attempt=1)
        log.event(
            "point_completed",
            index=1,
            label="run-point",
            attempt=1,
            mean_time=33.5,
            timings=timings.to_dict(),
            metrics=metrics.to_dict(),
        )
        log.event("run_completed", algorithm="bgi", engine="reference",
                  seed=4, n=30, time=41, completed=True)
        log.event("sweep_completed", name="demo", executed=1, from_cache=1)
    output = report_from_file(path)
    assert "lifecycle events" in output
    assert "sweep points" in output
    assert "cached-point" in output and "run-point" in output
    assert "runs" in output and "bgi" in output
    assert "stage timings (aggregated)" in output
    assert "metrics (aggregated)" in output
    assert "engine_slots" in output


def test_report_marks_failed_points(tmp_path):
    path = tmp_path / "log.jsonl"
    with RunLogger(path, run_id="deed") as log:
        log.event("point_spawned", index=0, label="doomed", attempt=1)
        log.event("point_failed", index=0, label="doomed", attempts=2)
    output = report_from_file(path)
    assert "FAILED" in output and "doomed" in output
