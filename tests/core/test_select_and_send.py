"""Select-and-Send (Section 4.2): correctness, invariants, complexity."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.echo import EchoProbe, EchoReply, StopAll, TokenAnnounce, TokenPass
from repro.core.select_and_send import SelectAndSend
from repro.sim import run_broadcast
from repro.sim.engine import SynchronousEngine
from repro.sim.trace import TraceLevel
from repro.topology import (
    caterpillar,
    complete_graph,
    gnp_connected,
    grid,
    path,
    random_tree,
    star,
    uniform_complete_layered,
)


def test_completes_on_zoo(topology_zoo):
    for name, net in topology_zoo.items():
        result = run_broadcast(net, SelectAndSend(), require_completion=True)
        assert result.completed, name


def test_two_node_network():
    net = path(2)
    result = run_broadcast(net, SelectAndSend())
    assert result.completed and result.time == 1


def test_star_completes_in_one_slot():
    # The source's very first transmission informs everyone.
    result = run_broadcast(star(20), SelectAndSend())
    assert result.time == 1


def test_shuffled_labels_still_work():
    net = path(30, relabel="shuffled", seed=3)
    result = run_broadcast(net, SelectAndSend(), require_completion=True)
    assert result.completed


def test_dfs_visits_every_node():
    net = gnp_connected(35, 0.15, seed=9)
    engine = SynchronousEngine(net, SelectAndSend())
    visited: set[int] = set()
    for _ in range(engine.network.n * 400):
        engine.run_step()
        visited |= {
            label for label, proto in engine.protocols.items() if proto.visited
        }
        if len(visited) == net.n:
            break
    assert len(visited) == net.n


def test_at_most_one_token_holder():
    """Invariant: the token is never duplicated."""
    net = random_tree(25, seed=8)
    engine = SynchronousEngine(net, SelectAndSend())
    for _ in range(4000):
        engine.run_step()
        holders = [l for l, p in engine.protocols.items() if p.holding]
        assert len(holders) <= 1
        if engine.all_informed and not holders:
            break


def test_quiesces_after_stop_all():
    """After the source's StopAll nothing is scheduled anywhere."""
    net = grid(4, 4)
    engine = SynchronousEngine(net, SelectAndSend(), trace_level=TraceLevel.FULL)
    for _ in range(20000):
        engine.run_step()
        if engine.all_informed and all(
            not p.scheduled and not p.holding for p in engine.protocols.values()
        ):
            break
    else:
        pytest.fail("protocol never quiesced")
    # The run ends with a source transmission (the StopAll order).
    last_tx = [rec for rec in engine.trace.steps if rec.transmitters]
    assert last_tx[-1].transmitters == (0,)


def test_time_bound_n_log_n():
    """Theorem 3 empirically: time <= c * n log n with modest c."""
    for net in [
        path(64),
        random_tree(64, seed=1),
        grid(8, 8),
        gnp_connected(64, 0.1, seed=4),
        caterpillar(16, 3),
    ]:
        result = run_broadcast(net, SelectAndSend(), require_completion=True)
        bound = 6 * net.n * math.log2(net.n)
        assert result.time <= bound, (net.describe(), result.time, bound)


class _RecordingSelectAndSend(SelectAndSend):
    """Wraps every protocol to log (step, label, payload) transmissions."""

    def __init__(self, log):
        super().__init__()
        self._log = log

    def create(self, label, r, rng):
        protocol = super().create(label, r, rng)
        original = protocol.next_action
        log = self._log

        def recording_next_action(step):
            payload = original(step)
            if payload is not None:
                log.append((step, label, payload))
            return payload

        protocol.next_action = recording_next_action
        return protocol


def test_orders_are_always_transmitted_alone():
    """Global sequencing: only Echo-reply slots may have >= 2 transmitters.

    Every order (announce / probe / pass / stop) must be the sole
    transmission of its slot — otherwise neighbours could miss orders and
    the DFS would desynchronise.
    """
    log: list[tuple[int, int, object]] = []
    net = gnp_connected(20, 0.25, seed=3)
    engine = SynchronousEngine(net, _RecordingSelectAndSend(log))
    engine.run(5000, stop_when_informed=False)
    assert engine.all_informed
    by_step: dict[int, list[object]] = {}
    for step, label, payload in log:
        by_step.setdefault(step, []).append(payload)
    order_types = (TokenAnnounce, EchoProbe, TokenPass, StopAll)
    for step, payloads in by_step.items():
        if len(payloads) > 1:
            assert all(isinstance(p, EchoReply) for p in payloads), (step, payloads)
        if any(isinstance(p, order_types) for p in payloads):
            assert len(payloads) == 1, (step, payloads)


def test_deterministic_same_run_every_time():
    net = gnp_connected(22, 0.3, seed=6)
    a = run_broadcast(net, SelectAndSend())
    b = run_broadcast(net, SelectAndSend(), seed=123)  # seed must not matter
    assert a.time == b.time
    assert a.wake_times == b.wake_times


def test_max_steps_hint_is_sufficient(topology_zoo):
    algo = SelectAndSend()
    for name, net in topology_zoo.items():
        hint = algo.max_steps_hint(net.n, net.r)
        result = run_broadcast(net, algo, max_steps=hint)
        assert result.completed, name


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=2, max_value=30), st.integers(min_value=0, max_value=500))
def test_property_completes_on_random_trees(n, seed):
    net = random_tree(n, seed=seed)
    result = run_broadcast(net, SelectAndSend(), require_completion=True)
    assert result.completed


def test_complete_graph_fast():
    result = run_broadcast(complete_graph(16), SelectAndSend())
    assert result.completed and result.time == 1
