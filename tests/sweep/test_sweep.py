"""Sweep subsystem: spec expansion, caching, and the parallel runner.

The cache regression tests are the teeth of the subsystem: a second
unchanged invocation must perform *zero* engine runs (observed through
the runner's run counter) and return byte-identical results, while a
changed parameter invalidates exactly the points it touches.
"""

from __future__ import annotations

import json

import pytest

from repro.sim.errors import ConfigurationError
from repro.sweep import (
    ResultCache,
    SweepPoint,
    SweepSpec,
    build_algorithm,
    build_topology,
    canonical_json,
    engine_run_count,
    execute_point,
    reset_engine_run_counter,
    run_sweep,
)

SMALL_SPEC = dict(
    name="unit",
    topology="layered",
    algorithm="kp-known-d",
    topology_grid={"n": [12, 18], "depth": 3},
    algorithm_grid={"stage_constant": 4},
    trials=2,
)


@pytest.fixture(autouse=True)
def _fresh_counter():
    reset_engine_run_counter()
    yield
    reset_engine_run_counter()


class TestSpec:
    def test_grid_expansion(self):
        spec = SweepSpec(**SMALL_SPEC)
        points = spec.points()
        assert len(points) == 2
        assert [dict(p.topology_params)["n"] for p in points] == [12, 18]
        for p in points:
            assert p.trials == 2
            assert dict(p.algorithm_params) == {"stage_constant": 4}

    def test_scalar_values_become_single_choices(self):
        spec = SweepSpec(name="s", topology="path", algorithm="round-robin",
                         topology_grid={"n": 8})
        assert len(spec.points()) == 1

    def test_roundtrip_through_dict(self):
        spec = SweepSpec(**SMALL_SPEC)
        clone = SweepSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert clone.points() == spec.points()

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ConfigurationError):
            SweepSpec.from_dict({**SMALL_SPEC, "typo_field": 1})

    def test_from_dict_requires_name_topology_algorithm(self):
        with pytest.raises(ConfigurationError):
            SweepSpec.from_dict({"name": "x", "topology": "path"})

    def test_hash_ignores_sweep_name(self):
        a = SweepSpec(**SMALL_SPEC).points()[0]
        b = SweepSpec(**{**SMALL_SPEC, "name": "renamed"}).points()[0]
        assert a.content_hash("v1") == b.content_hash("v1")

    def test_hash_depends_on_params_and_code_version(self):
        a = SweepSpec(**SMALL_SPEC).points()[0]
        changed = SweepSpec(**{**SMALL_SPEC, "trials": 3}).points()[0]
        assert a.content_hash("v1") != changed.content_hash("v1")
        assert a.content_hash("v1") != a.content_hash("v2")


class TestRegistry:
    def test_build_topology(self):
        net = build_topology("path", {"n": 7})
        assert net.n == 7

    def test_build_algorithm(self):
        net = build_topology("path", {"n": 7})
        algo = build_algorithm("round-robin", net, {})
        assert algo.deterministic

    def test_unknown_names_raise(self):
        net = build_topology("star", {"n": 5})
        with pytest.raises(ConfigurationError):
            build_topology("moebius", {})
        with pytest.raises(ConfigurationError):
            build_algorithm("gossip-3000", net, {})

    def test_bad_parameters_raise(self):
        with pytest.raises(ConfigurationError):
            build_topology("path", {"n": 7, "curvature": 2})


class TestRunnerAndCache:
    def test_warm_rerun_hits_cache_with_zero_engine_runs(self, tmp_path):
        spec = SweepSpec(**SMALL_SPEC)
        cache = ResultCache(tmp_path)

        first = run_sweep(spec, cache=cache)
        assert first.executed == 2 and first.from_cache == 0
        assert engine_run_count() == 2 * spec.trials

        reset_engine_run_counter()
        second = run_sweep(spec, cache=cache)
        assert second.executed == 0 and second.from_cache == 2
        assert engine_run_count() == 0
        assert second.to_json() == first.to_json()

    def test_changed_parameter_invalidates_only_affected_points(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_sweep(SweepSpec(**SMALL_SPEC), cache=cache)

        reset_engine_run_counter()
        changed = SweepSpec(**{**SMALL_SPEC,
                               "topology_grid": {"n": [12, 24], "depth": 3}})
        outcome = run_sweep(changed, cache=cache)
        # n=12 is untouched and comes from the cache; n=24 is new.
        assert [r.cached for r in outcome.results] == [True, False]
        assert engine_run_count() == changed.trials

    def test_no_cache_runs_everything(self, tmp_path):
        spec = SweepSpec(**SMALL_SPEC)
        run_sweep(spec, cache=ResultCache(tmp_path))
        reset_engine_run_counter()
        outcome = run_sweep(spec, cache=None)
        assert outcome.executed == 2
        assert engine_run_count() == 2 * spec.trials

    def test_corrupt_cache_entry_is_a_miss(self, tmp_path):
        spec = SweepSpec(**SMALL_SPEC)
        cache = ResultCache(tmp_path)
        first = run_sweep(spec, cache=cache)
        cache.path_for(spec.points()[0]).write_text("{not json", encoding="utf-8")
        second = run_sweep(spec, cache=cache)
        assert [r.cached for r in second.results] == [False, True]
        assert second.to_json() == first.to_json()

    def test_workers_produce_identical_results(self, tmp_path):
        spec = SweepSpec(**SMALL_SPEC)
        serial = run_sweep(spec, workers=1, cache=None)
        pooled = run_sweep(spec, workers=2, cache=None)
        assert pooled.to_json() == serial.to_json()

    def test_execute_point_is_deterministic(self):
        point = SweepSpec(**SMALL_SPEC).points()[0]
        a = execute_point(point.canonical())
        b = execute_point(point.canonical())
        assert canonical_json(a) == canonical_json(b)
        assert a["runs"] == point.trials
        assert len(a["times"]) == point.trials

    def test_deterministic_algorithm_collapses_to_one_run(self, tmp_path):
        spec = SweepSpec(name="det", topology="path", algorithm="round-robin",
                         topology_grid={"n": 9}, trials=6)
        outcome = run_sweep(spec, cache=None)
        # repeat_broadcast runs deterministic algorithms once.
        assert outcome.results[0].payload["runs"] == 1
        assert engine_run_count() == 1

    def test_run_counter_matches_trials(self):
        spec = SweepSpec(**SMALL_SPEC)
        run_sweep(spec, cache=None)
        assert engine_run_count() == len(spec.points()) * spec.trials
