"""Shared randomness derivation for every execution path.

All three engines — the per-node reference engine
(:class:`~repro.sim.engine.SynchronousEngine`), the vectorised
:class:`~repro.sim.fast.FastEngine`, and the batched multi-trial
:class:`~repro.sim.fast.BatchedFastEngine` — must produce *identical*
executions for the same ``(network, algorithm, seed)``.  Two pieces make
that possible:

* **Per-node RNG derivation.**  Node ``v`` of a run with master seed ``s``
  owns the stream ``random.Random(f"{s}:{v}")`` (the scheme the reference
  engine has always used).  :func:`derive_node_rng` is the single place
  this string is built; engines must not re-derive it themselves.

* **Slot-indexed coin flips.**  A sequential stream cannot be shared
  between a per-node protocol and a vectorised array program: the two
  would consume it in different orders.  Transmission coins are therefore
  *counter-based*: the coin of node ``v`` in slot ``t`` is a pure function
  ``uniform(s, v, t)`` of the master seed, the label, and the slot — a
  splitmix64-style hash, bit-identical between the scalar implementation
  (:meth:`NodeRandom.coin`, used by protocols) and the vectorised one
  (:meth:`CoinSource.uniform`, used by the fast engines).  Batching over
  trials is then just a second key axis.

Trial seeds for Monte-Carlo repetition are derived by
:func:`derive_trial_seeds` (``base_seed + i``, the historical
``repeat_broadcast`` convention) so serial and batched estimates use the
same per-trial executions.
"""

from __future__ import annotations

import random
from typing import Sequence

import numpy as np

__all__ = [
    "NODE_STREAM_TEMPLATE",
    "NodeRandom",
    "CoinSource",
    "derive_node_rng",
    "derive_trial_seeds",
    "node_key",
    "coin_uniform",
]

#: The canonical per-node stream id.  ``random.Random`` seeded with this
#: string is the node's private sequential RNG; changing the template forks
#: every recorded result, so it is pinned by tests.
NODE_STREAM_TEMPLATE = "{seed}:{label}"

_MASK64 = (1 << 64) - 1
_PHI = 0x9E3779B97F4A7C15  # splitmix64 golden-ratio increment
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB
_STEP_SALT = 0xD6E8FEB86659FD93


def _mix64(z: int) -> int:
    """Scalar splitmix64 finalizer (Python ints, mod 2^64)."""
    z &= _MASK64
    z = ((z ^ (z >> 30)) * _MIX1) & _MASK64
    z = ((z ^ (z >> 27)) * _MIX2) & _MASK64
    return z ^ (z >> 31)


def _mix64_inplace(z: np.ndarray) -> np.ndarray:
    """Vectorised splitmix64 finalizer.  Mutates and returns ``z`` (uint64)."""
    z ^= z >> np.uint64(30)
    z *= np.uint64(_MIX1)
    z ^= z >> np.uint64(27)
    z *= np.uint64(_MIX2)
    z ^= z >> np.uint64(31)
    return z


def node_key(seed: int, label: int) -> int:
    """64-bit coin key of node ``label`` under master seed ``seed``.

    Defined as ``mix64(mix64(seed + PHI) ^ (label * PHI mod 2^64))``; the
    vectorised paths compute exactly this per element.  (The ``+ PHI``
    keeps the all-zero input away from splitmix64's fixed point at 0, so
    the common ``seed=0, label=0, step=0`` cell is not degenerate.)
    """
    # int() lifts numpy integers to Python ints before the mod-2^64 math.
    return _mix64(_mix64(int(seed) + _PHI) ^ ((int(label) & _MASK64) * _PHI & _MASK64))


def _node_keys(seed: int, labels: np.ndarray) -> np.ndarray:
    """Vectorised :func:`node_key` over a label array -> uint64 keys."""
    z = labels.astype(np.uint64) * np.uint64(_PHI)
    z ^= np.uint64(_mix64(seed + _PHI))
    return _mix64_inplace(z)


def _step_salt(step: int) -> int:
    return (int(step) & _MASK64) * _STEP_SALT & _MASK64


def coin_uniform(seed: int, label: int, step: int) -> float:
    """The transmission coin of ``(seed, label, step)`` as a float in [0, 1)."""
    z = _mix64(node_key(seed, label) ^ _step_salt(step))
    return (z >> 11) * 2.0**-53


class NodeRandom(random.Random):
    """The per-node RNG handed to protocols by the reference engine.

    Behaves exactly like ``random.Random(f"{seed}:{label}")`` for the
    sequential API (so protocols that draw free-form randomness keep their
    historical streams) and additionally exposes the slot-indexed
    :meth:`coin` that transmission decisions must use.
    """

    def __init__(self, seed: int, label: int) -> None:
        super().__init__(NODE_STREAM_TEMPLATE.format(seed=seed, label=label))
        self.run_seed = seed
        self.label = label
        self._coin_key = node_key(seed, label)

    def coin(self, step: int) -> float:
        """Slot-indexed transmission coin; equals :func:`coin_uniform`."""
        z = _mix64(self._coin_key ^ _step_salt(step))
        return (z >> 11) * 2.0**-53


def derive_node_rng(seed: int, label: int) -> NodeRandom:
    """Derive node ``label``'s private RNG for a run with master ``seed``.

    The single derivation point shared by every engine (the reference
    engine constructs protocols with it; the fast engines build their
    :class:`CoinSource` keys from the same ``(seed, label)`` pairs).
    """
    return NodeRandom(seed, label)


def derive_trial_seeds(base_seed: int, trials: int) -> list[int]:
    """Per-trial master seeds for ``trials`` Monte-Carlo repetitions.

    ``base_seed + i`` — the convention :func:`~repro.sim.run.repeat_broadcast`
    has always used; the batched path derives its trials identically.
    """
    return [base_seed + i for i in range(trials)]


class CoinSource:
    """Vectorised access to the slot-indexed coins of one run or one batch.

    Wraps a uint64 key array of shape ``(n,)`` (single run) or
    ``(trials, n)`` (batched run); :meth:`uniform` yields the coins of one
    slot for every (trial,) node at once, bit-identical to
    :func:`coin_uniform` / :meth:`NodeRandom.coin` element by element.
    """

    def __init__(self, keys: np.ndarray) -> None:
        self._keys = keys

    @property
    def shape(self) -> tuple[int, ...]:
        return self._keys.shape

    @classmethod
    def for_run(cls, seed: int, labels: np.ndarray) -> "CoinSource":
        """Keys of shape ``(n,)`` for a single run."""
        return cls(_node_keys(seed, labels))

    @classmethod
    def for_batch(cls, seeds: Sequence[int], labels: np.ndarray) -> "CoinSource":
        """Keys of shape ``(trials, n)``; row ``t`` equals ``for_run(seeds[t])``."""
        keys = np.empty((len(seeds), labels.shape[0]), dtype=np.uint64)
        for row, seed in enumerate(seeds):
            keys[row] = _node_keys(seed, labels)
        return cls(keys)

    def uniform(self, step: int) -> np.ndarray:
        """Coins of slot ``step`` as float64 in [0, 1), shaped like the keys."""
        z = self._keys ^ np.uint64(_step_salt(step))
        _mix64_inplace(z)
        return (z >> np.uint64(11)).astype(np.float64) * 2.0**-53

    def uniform_at(self, step: int, idx: np.ndarray) -> np.ndarray:
        """Coins of slot ``step`` for the node indices ``idx`` only.

        ``uniform_at(step, idx)`` equals ``uniform(step)[idx]`` element by
        element (each coin is a pure function of its own key) but costs
        ``O(len(idx))`` rather than ``O(n)`` — the macro-step engine uses
        it to flip coins only for the currently eligible nodes.  Only
        defined for single-run ``(n,)`` key arrays.
        """
        z = self._keys[idx] ^ np.uint64(_step_salt(step))  # fancy index copies
        _mix64_inplace(z)
        return (z >> np.uint64(11)).astype(np.float64) * 2.0**-53

    def uniform_keys(self, step: int, keys_sub: np.ndarray) -> np.ndarray:
        """Coins of slot ``step`` for a pre-gathered key subset.

        ``uniform_keys(step, keys[idx])`` equals ``uniform_at(step, idx)``;
        callers that flip coins for the same node subset over many
        consecutive slots (the macro-step engine, whose eligible set is
        constant within a KP stage) gather the keys once and amortise the
        fancy-index copy across the run of slots.
        """
        z = keys_sub ^ np.uint64(_step_salt(step))
        _mix64_inplace(z)
        return (z >> np.uint64(11)).astype(np.float64) * 2.0**-53
