"""Plain-text table rendering for benchmark output.

Every experiment prints its results as an aligned ASCII table so that the
``pytest benchmarks/ --benchmark-only`` transcript doubles as the
EXPERIMENTS.md data source.  No external dependency; right-aligned
numerics, left-aligned text.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["render_table", "format_number"]


def format_number(value: object, digits: int = 2) -> str:
    """Compact numeric formatting: ints plain, floats to ``digits``."""
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000 or value == int(value):
            return f"{value:.0f}"
        return f"{value:.{digits}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render rows as an aligned ASCII table.

    Args:
        headers: Column names.
        rows: Row values; formatted with :func:`format_number`.
        title: Optional caption printed above the table.
    """
    formatted = [[format_number(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in formatted:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in formatted)
    return "\n".join(lines)
