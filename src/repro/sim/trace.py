"""Execution traces.

Traces serve three audiences: tests (asserting exact channel behaviour),
the lower-bound adversary verifier (comparing real histories against
abstract ones, Lemma 9), and humans (step-by-step walkthroughs in the
examples).  Because full traces are memory-heavy, recording is opt-in and
levelled.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

__all__ = ["TraceLevel", "StepRecord", "Trace"]


class TraceLevel(enum.Enum):
    """How much detail to record per step."""

    #: Record nothing (fastest; the default for benchmarks).
    NONE = 0
    #: Record per-step informed counts and newly woken nodes.
    PROGRESS = 1
    #: Record transmitters, deliveries and collisions for every step.
    FULL = 2


@dataclass(frozen=True, slots=True)
class StepRecord:
    """Everything that happened on the channel in one slot.

    Attributes:
        step: Slot index (0-based).
        transmitters: Labels that transmitted, sorted.
        deliveries: Map receiver -> sender for every successful reception
            (exactly one transmitting in-neighbour).
        collisions: Receivers that had two or more transmitting
            in-neighbours this slot.  The nodes themselves cannot tell; this
            is the omniscient view used by tests and analyses.
        woken: Nodes informed for the first time in this slot.
    """

    step: int
    transmitters: tuple[int, ...]
    deliveries: dict[int, int]
    collisions: tuple[int, ...]
    woken: tuple[int, ...]


@dataclass
class Trace:
    """Accumulated trace of one run."""

    level: TraceLevel = TraceLevel.NONE
    steps: list[StepRecord] = field(default_factory=list)
    informed_counts: list[int] = field(default_factory=list)
    wake_times: dict[int, int] = field(default_factory=dict)
    #: Live fault tally (:class:`repro.sim.faults.FaultCounters`) when the
    #: engine runs under a fault plan; ``None`` on pristine executions.
    #: Set by the engine — the same object it increments, so it is always
    #: current, regardless of the trace level.
    fault_counters: "object | None" = None

    def mark_initially_informed(self, label: int) -> None:
        """Record a node that holds the message before the execution starts.

        Engines call this for the source: its wake time is ``-1``, one
        slot before slot 0, matching the convention of
        ``SynchronousEngine.wake_times``.  With the marker in place every
        propagation DAG has a root — including the degenerate single-node
        network, whose trace otherwise records no wakes at all.
        """
        if self.level is TraceLevel.NONE:
            return
        self.wake_times[label] = -1

    def initially_informed(self) -> tuple[int, ...]:
        """Labels informed before slot 0 (wake time ``< 0``), sorted."""
        return tuple(sorted(v for v, t in self.wake_times.items() if t < 0))

    def record(
        self,
        step: int,
        transmitters: tuple[int, ...],
        deliveries: dict[int, int],
        collisions: tuple[int, ...],
        woken: tuple[int, ...],
        informed: int,
    ) -> None:
        """Store one step at the configured level of detail."""
        if self.level is TraceLevel.NONE:
            return
        for v in woken:
            self.wake_times[v] = step
        self.informed_counts.append(informed)
        if self.level is TraceLevel.FULL:
            self.steps.append(
                StepRecord(
                    step=step,
                    transmitters=transmitters,
                    deliveries=dict(deliveries),
                    collisions=collisions,
                    woken=woken,
                )
            )

    def _require_full(self, what: str) -> None:
        if self.level is not TraceLevel.FULL:
            raise ValueError(
                f"{what} requires TraceLevel.FULL; this trace was recorded "
                f"at TraceLevel.{self.level.name} — rerun with "
                f"trace_level=TraceLevel.FULL"
            )

    def total_transmissions(self) -> int:
        """Total number of (node, slot) transmissions — an energy proxy."""
        self._require_full("transmission counting")
        return sum(len(record.transmitters) for record in self.steps)

    def total_collisions(self) -> int:
        """Total number of (receiver, slot) collision events."""
        self._require_full("collision counting")
        return sum(len(record.collisions) for record in self.steps)

    def summary(self) -> dict:
        """Informed-curve statistics available from ``PROGRESS`` level up.

        Unlike the ``total_*`` / :meth:`format_timeline` views this never
        needs per-slot channel detail: it reads only ``informed_counts``
        and ``wake_times``, which ``PROGRESS`` already records.
        """
        if self.level is TraceLevel.NONE:
            raise ValueError(
                "trace summaries require at least TraceLevel.PROGRESS; "
                "this trace was recorded at TraceLevel.NONE"
            )
        counts = self.informed_counts
        wakes = [t for t in self.wake_times.values() if t >= 0]
        return {
            "level": self.level.name,
            "slots": len(counts),
            "informed_final": counts[-1] if counts else len(self.wake_times),
            "first_wake_slot": min(wakes) if wakes else None,
            "last_wake_slot": max(wakes) if wakes else None,
            "initially_informed": self.initially_informed(),
        }

    def format_timeline(self, max_steps: int | None = None) -> str:
        """Human-readable per-step timeline (used by examples)."""
        self._require_full("timeline formatting")
        lines = []
        for record in self.steps[:max_steps]:
            parts = [f"step {record.step:>5}: tx={list(record.transmitters)}"]
            if record.deliveries:
                got = ", ".join(f"{r}<-{s}" for r, s in sorted(record.deliveries.items()))
                parts.append(f"delivered [{got}]")
            if record.collisions:
                parts.append(f"collisions at {list(record.collisions)}")
            if record.woken:
                parts.append(f"woken {list(record.woken)}")
            lines.append("  ".join(parts))
        return "\n".join(lines)
