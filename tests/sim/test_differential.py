"""Differential spot checks on top of the conformance harness.

The full engine x algorithm x topology x fault-plan identity matrix now
lives in ``test_conformance.py``, driven by the shared harness in
``conformance.py`` (which owns the matrices this module used to define).
What remains here are the oblivious-path checks that do not fit the
uniform runner shape: single-run engine equality via the public
entry points, exercised exactly the way library users call them.
"""

from __future__ import annotations

import pytest

from repro.sim import run_broadcast, run_broadcast_batch, run_broadcast_fast

from .conformance import OBLIVIOUS_ALGORITHMS, OBLIVIOUS_TOPOLOGIES, SEEDS


@pytest.fixture(scope="module")
def networks():
    return {name: build() for name, build in OBLIVIOUS_TOPOLOGIES.items()}


@pytest.mark.parametrize("topo", sorted(OBLIVIOUS_TOPOLOGIES))
@pytest.mark.parametrize("algo_name", ["kp-known-d", "round-robin"])
def test_public_entry_points_agree(networks, topo, algo_name):
    """The user-facing drivers — one run each way — produce identical
    executions.  (The exhaustive matrix, incl. faults and the batched
    engines, is ``test_conformance.py``; this pins the public API shape:
    default arguments, one seed at a time.)"""
    net = networks[topo]
    make = OBLIVIOUS_ALGORITHMS[algo_name]

    batched = run_broadcast_batch(net, make(net), seeds=SEEDS)
    for seed, from_batch in zip(SEEDS, batched):
        reference = run_broadcast(net, make(net), seed=seed)
        fast = run_broadcast_fast(net, make(net), seed=seed)

        assert reference.completed and fast.completed and from_batch.completed, (
            topo, algo_name, seed,
        )
        assert fast.wake_times == reference.wake_times, (topo, algo_name, seed)
        assert from_batch.wake_times == reference.wake_times, (topo, algo_name, seed)
        assert fast.time == reference.time == from_batch.time
        assert fast.layer_times == reference.layer_times == from_batch.layer_times
