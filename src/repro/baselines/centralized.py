"""Centralized broadcast scheduling with full topology knowledge.

The centralized setting (Chlamtac–Weinstein; Gaber–Mansour) is the paper's
reference point for what knowledge is worth: with the whole graph known,
``O(D log^2 n)`` is achievable, while the ad hoc lower bounds of Sections
1.1 and 3 show distributed algorithms cannot get close on all graphs.

This module computes a collision-aware schedule offline with a greedy
set-cover heuristic and replays it as an oblivious transmission schedule:
in each slot, a set of informed transmitters is chosen to maximise the
number of uninformed nodes hearing *exactly one* transmitter.  The greedy
guarantees at least one new node per slot (pick a single transmitter
covering a frontier node), so it always completes within ``n`` slots, and
on most graphs it approaches BFS-depth-times-log behaviour — an empirical
near-lower-envelope for the benchmarks.
"""

from __future__ import annotations

import random

import numpy as np

from ..sim.errors import ConfigurationError
from ..sim.network import RadioNetwork
from ..sim.protocol import BroadcastAlgorithm, ObliviousTransmitter, Protocol

__all__ = ["CentralizedGreedySchedule", "greedy_broadcast_schedule"]


def greedy_broadcast_schedule(network: RadioNetwork) -> list[frozenset[int]]:
    """Compute a complete broadcast schedule for ``network``.

    Returns:
        A list of transmitter sets, one per slot; replaying them under the
        exactly-one collision rule informs every node.
    """
    out = network.out_neighbors
    informed: set[int] = {network.source}
    schedule: list[frozenset[int]] = []
    total = network.n
    while len(informed) < total:
        transmitters = _greedy_slot(out, informed)
        newly = _resolve(out, informed, transmitters)
        if not newly:
            raise ConfigurationError(
                "greedy scheduler stalled; network may be disconnected"
            )
        schedule.append(frozenset(transmitters))
        informed |= newly
    return schedule


def _greedy_slot(out, informed: set[int]) -> set[int]:
    """Pick transmitters for one slot, maximising exactly-one coverage."""
    # Candidate transmitters: informed nodes with uninformed out-neighbours.
    frontier_hits: dict[int, set[int]] = {}
    for v in informed:
        targets = {w for w in out[v] if w not in informed}
        if targets:
            frontier_hits[v] = targets
    if not frontier_hits:
        raise ConfigurationError("no transmitter can reach an uninformed node")
    chosen: set[int] = set()
    # hit_count[w]: transmitting in-neighbours of w among `chosen`.
    hit_count: dict[int, int] = {}

    def gain(candidate: int) -> int:
        delta = 0
        for w in frontier_hits[candidate]:
            count = hit_count.get(w, 0)
            if count == 0:
                delta += 1
            elif count == 1:
                delta -= 1  # would turn a delivery into a collision
        return delta

    candidates = sorted(frontier_hits, key=lambda v: -len(frontier_hits[v]))
    improved = True
    while improved:
        improved = False
        best, best_gain = None, 0
        for v in candidates:
            if v in chosen:
                continue
            g = gain(v)
            if g > best_gain:
                best, best_gain = v, g
        if best is not None:
            chosen.add(best)
            for w in frontier_hits[best]:
                hit_count[w] = hit_count.get(w, 0) + 1
            improved = True
    if not chosen:  # fall back to a single transmitter (always gains >= 1)
        chosen.add(candidates[0])
    return chosen


def _resolve(out, informed: set[int], transmitters: set[int]) -> set[int]:
    """Nodes newly informed by the slot under the exactly-one rule."""
    hits: dict[int, int] = {}
    for v in transmitters:
        for w in out[v]:
            if w not in informed:
                hits[w] = hits.get(w, 0) + 1
    return {w for w, count in hits.items() if count == 1}


class _CentralizedProtocol(ObliviousTransmitter):
    def __init__(self, label: int, r: int, rng: random.Random, slots: list[bool]):
        super().__init__(label, r, rng)
        self._slots = slots

    def wants_to_transmit(self, step: int) -> bool:
        return step < len(self._slots) and self._slots[step]


class CentralizedGreedySchedule(BroadcastAlgorithm):
    """Replays an offline greedy schedule (full-knowledge reference).

    Args:
        network: Topology; the schedule is computed at construction.
    """

    deterministic = True

    def __init__(self, network: RadioNetwork):
        self._schedule = greedy_broadcast_schedule(network)
        self.schedule_length = len(self._schedule)
        self.name = f"centralized-greedy(T={self.schedule_length})"
        self._labels_cache: np.ndarray | None = None
        self._matrix: np.ndarray | None = None

    def create(self, label: int, r: int, rng: random.Random) -> Protocol:
        slots = [label in s for s in self._schedule]
        return _CentralizedProtocol(label, r, rng, slots)

    def transmit_mask(
        self,
        step: int,
        labels: np.ndarray,
        wake_steps: np.ndarray,
        r: int,
        coins=None,
    ) -> np.ndarray:
        if step >= self.schedule_length:
            return np.zeros(labels.shape, dtype=bool)
        # Cache keyed on the exact label array; length alone would let two
        # different label sets share stale rows.
        if self._labels_cache is None or not np.array_equal(self._labels_cache, labels):
            self._labels_cache = labels.copy()
            self._matrix = None
        if self._matrix is None:
            matrix = np.zeros((labels.shape[0], self.schedule_length), dtype=bool)
            index_of = {int(lab): i for i, lab in enumerate(labels)}
            for slot, member in enumerate(self._schedule):
                for lab in member:
                    matrix[index_of[lab], slot] = True
            self._matrix = matrix
        return self._matrix[:, step].copy()

    def max_steps_hint(self, n: int, r: int) -> int | None:
        return self.schedule_length + 1
