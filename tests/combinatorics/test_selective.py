"""Selective families: checks, constructions, witness search."""

from __future__ import annotations

import itertools
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.combinatorics.selective import (
    cms_size_lower_bound,
    find_nonselective_witness,
    greedy_selective_family,
    is_selective,
    kautz_singleton_family,
    selects,
)
from repro.sim.errors import ConfigurationError


def F(*sets):
    return [frozenset(s) for s in sets]


def test_selects_basics():
    family = F({1, 2}, {3})
    assert selects(family, frozenset({3}))
    assert selects(family, frozenset({1}))  # |{1,2} & {1}| == 1
    assert not selects(family, frozenset({1, 2}))


def test_is_selective_positive():
    # Singletons select everything up to k = ground size.
    family = F({0}, {1}, {2})
    assert is_selective(family, range(3), 3)


def test_is_selective_negative():
    family = F({0, 1})
    assert not is_selective(family, range(3), 2)  # {2} never selected


def test_witness_uncovered_singleton():
    family = F({0, 1}, {1, 2})
    w = find_nonselective_witness(family, range(5), 3)
    assert w is not None and len(w) == 1
    assert not selects(family, w)


def test_witness_twin_pair():
    # 3 and 4 have identical traces; every ground element is covered.
    family = F({0, 3, 4}, {1, 3, 4}, {2})
    w = find_nonselective_witness(family, range(5), 2)
    assert w is not None
    assert not selects(family, w)


def test_witness_none_when_family_selective():
    family = F({0}, {1}, {2}, {3})
    assert find_nonselective_witness(family, range(4), 4) is None


def test_witness_requires_positive_k():
    with pytest.raises(ConfigurationError):
        find_nonselective_witness(F({0}), range(2), 0)


def test_witness_empty_ground():
    assert find_nonselective_witness(F({0}), [], 2) is None


def test_witness_needs_three_elements():
    # Ground {0,1,2}; family selects all singletons and all pairs but not
    # the full triple: F = {0},... wait — craft: sets {0,1},{1,2},{0,2}.
    # Singletons: {0}&{0,1}=1 ok. Pairs: {0,1}&{1,2}={1} ok. Triple:
    # every set meets it in exactly 2 -> witness of size 3.
    family = F({0, 1}, {1, 2}, {0, 2})
    w = find_nonselective_witness(family, range(3), 3)
    assert w == frozenset({0, 1, 2})
    assert not selects(family, w)


def test_witness_search_respects_k_bound():
    family = F({0, 1}, {1, 2}, {0, 2})
    # With k = 2 the only witness (the triple) is out of reach.
    assert find_nonselective_witness(family, range(3), 2) is None


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_witness_is_always_valid_when_found(seed):
    """Property: any witness returned is genuinely unselected and small."""
    rng = random.Random(seed)
    ground = range(12)
    family = [
        frozenset(x for x in ground if rng.random() < 0.4)
        for _ in range(rng.randint(1, 5))
    ]
    k = rng.randint(1, 6)
    w = find_nonselective_witness(family, ground, k)
    if w is not None:
        assert 1 <= len(w) <= k
        assert not selects(family, w)
    else:
        # Exhaustive cross-check on this small ground: no witness exists.
        for size in range(1, k + 1):
            for combo in itertools.combinations(ground, size):
                assert selects(family, frozenset(combo))


def test_greedy_family_is_selective_small():
    rng = random.Random(1)
    family = greedy_selective_family(10, 3, rng)
    assert is_selective(family, range(10), 3)


def test_greedy_family_rejects_bad_params():
    with pytest.raises(ConfigurationError):
        greedy_selective_family(0, 2, random.Random(0))


def test_kautz_singleton_strongly_selective():
    """KS family: every element of every small set gets isolated."""
    n, k = 20, 3
    family = kautz_singleton_family(n, k)
    for combo in itertools.combinations(range(n), k):
        for x in combo:
            assert any(
                x in member and not (member & set(combo) - {x})
                for member in family
            ), (combo, x)


def test_kautz_singleton_selective_via_checker():
    family = kautz_singleton_family(15, 2)
    assert is_selective(family, range(15), 2)


def test_kautz_singleton_trivial_cases():
    assert kautz_singleton_family(1, 1) == [frozenset([0])]
    with pytest.raises(ConfigurationError):
        kautz_singleton_family(0, 1)


def test_kautz_singleton_covers_all_labels():
    family = kautz_singleton_family(30, 4)
    covered = set()
    for member in family:
        covered |= member
    assert covered == set(range(30))


def test_cms_bound_monotone_in_m():
    assert cms_size_lower_bound(1 << 16, 8) > cms_size_lower_bound(1 << 8, 8)
    assert cms_size_lower_bound(1, 1) == 1.0
