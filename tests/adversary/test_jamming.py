"""The Jamming function (Section 3.1): case analysis and model property."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adversary.jamming import COLLISION, JammingState, SILENCE
from repro.sim.errors import ConfigurationError


def make_state(m=40, k=4):
    return JammingState(range(100, 100 + m), k)


def test_partition_covers_reservoir():
    state = make_state(m=40, k=8)
    union = set().union(*state.blocks)
    assert union == set(range(100, 140))
    assert len(state.blocks) == 4
    sizes = [len(b) for b in state.blocks]
    assert max(sizes) - min(sizes) <= 1


def test_k_validation():
    with pytest.raises(ConfigurationError):
        JammingState(range(20), 3)  # odd
    with pytest.raises(ConfigurationError):
        JammingState(range(20), 2)  # < 4
    with pytest.raises(ConfigurationError):
        JammingState(range(3), 4)  # reservoir too small


def test_case_b_silence_when_no_inactive_hit():
    state = make_state()
    answer = state.step(set())
    assert answer is SILENCE


def test_case_a_large_overlap_collides_and_shrinks_block():
    state = make_state(m=40, k=4)  # blocks of 20, active threshold 4
    block0 = sorted(state.blocks[0])
    y = set(block0[:15])  # |B & Y| = 15 > (2/4)*20 = 10
    answer = state.step(y)
    assert answer is COLLISION
    assert state.blocks[0] <= y
    assert len(state.blocks[0]) == 15


def test_case_a_truncates_below_k_to_two():
    state = make_state(m=40, k=8)  # blocks of 10, threshold 8
    block0 = sorted(state.blocks[0])
    y = set(block0[:4])  # 4 > (2/8)*10 = 2.5 -> case A; 4 < k=8 -> truncate
    answer = state.step(y)
    assert answer is COLLISION
    assert len(state.blocks[0]) == 2
    assert state.blocks[0] <= y


def test_case_b_removes_y_from_active_blocks():
    state = make_state(m=40, k=4)
    victims = {sorted(block)[0] for block in state.blocks}
    # One element per block: |B & Y| = 1 <= (2/4)*20 -> case B.
    answer = state.step(victims)
    assert answer is SILENCE
    for block, victim in zip(state.blocks, sorted(victims)):
        assert victim not in block


def test_case_b_single_from_inactive_block():
    state = make_state(m=40, k=8)
    # First make block 0 inactive via case A truncation.
    block0 = sorted(state.blocks[0])
    state.step(set(block0[:4]))
    survivor = sorted(state.blocks[0])[0]
    answer = state.step({survivor})
    assert answer.kind == "single" and answer.node == survivor


def test_case_b_two_inactive_hits_collide():
    state = make_state(m=40, k=8)
    state.step(set(sorted(state.blocks[0])[:4]))  # block 0 -> {a, b}
    pair = set(state.blocks[0])
    assert state.step(pair) is COLLISION


def test_blocks_only_shrink():
    state = make_state(m=60, k=6)
    rng = random.Random(0)
    previous = [set(b) for b in state.blocks]
    universe = sorted(set().union(*previous))
    for _ in range(30):
        y = {x for x in universe if rng.random() < 0.3}
        state.step(y)
        for before, after in zip(previous, state.blocks):
            assert after <= before
        previous = [set(b) for b in state.blocks]


def test_models_checks_all_answer_kinds():
    state = make_state(m=40, k=8)
    b0 = sorted(state.blocks[0])
    state.step(set(b0[:4]))          # collision, block0 -> 2 elements of Y
    survivors = sorted(state.blocks[0])
    state.step({survivors[0]})       # single
    state.step(set())                # silence
    good = set(survivors)  # hits both collision elements; single matches
    assert state.models(good)
    assert state.violation_report(good) == []
    # A choice missing the collision pair fails.
    other = sorted(state.blocks[1])[:2]
    assert not state.models(set(other))
    assert state.violation_report(set(other))


def test_history_records_every_step():
    state = make_state()
    state.step(set())
    state.step({101})
    assert len(state.history) == 2


def test_largest_block_index():
    state = make_state(m=40, k=8)
    state.step(set(sorted(state.blocks[0])[:4]))  # shrink block 0
    assert state.largest_block() != 0


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_property_answers_consistent_with_final_blocks(seed):
    """Any X with two elements per final block models every answer,
    provided the single-answer nodes are also included — this mirrors the
    invariant INV the construction relies on (without the p* subtleties:
    we include all inactive-block survivors, which X' does too)."""
    rng = random.Random(seed)
    state = JammingState(range(50), 6)
    universe = list(range(50))
    for _ in range(rng.randint(1, 8)):
        y = {x for x in universe if rng.random() < rng.choice([0.05, 0.3, 0.8])}
        state.step(y)
    chosen: set[int] = set()
    for block in state.blocks:
        chosen |= set(sorted(block)[:2])
    # The construction's X' includes exactly these survivors for inactive
    # blocks; actives contribute 2 "never-answered" elements.  All SILENCE
    # and COLLISION constraints must hold; "single" answers are in some
    # inactive block by construction, hence in `chosen`.
    for y, answer in state.history:
        overlap = chosen & y
        if answer.kind == "silence":
            assert not overlap
        elif answer.kind == "single":
            assert overlap == {answer.node}
        else:
            assert len(overlap) >= 2
