"""Layered radio networks.

Complete layered networks (Section 4.3) are central to the paper twice
over: they are the *hardest* instances for randomized broadcasting (the
Kushilevitz–Mansour lower bound is proved on them) yet admit a fast
O(n + D log n) deterministic algorithm — the paper's Corollary in
Section 1.2.  This module generates them, plus sparse layered variants
used for the randomized experiments.
"""

from __future__ import annotations

import math
import random
from typing import Sequence

from ..sim.errors import ConfigurationError
from ..sim.network import RadioNetwork

__all__ = [
    "complete_layered",
    "directed_complete_layered",
    "uniform_complete_layered",
    "km_hard_layered",
    "random_layered",
    "layer_sizes_for",
]


def complete_layered(
    layer_sizes: Sequence[int], relabel_seed: int | None = None, r: int | None = None
) -> RadioNetwork:
    """Complete layered network with the given layer sizes.

    Layer 0 is the source layer and must have size 1; adjacent pairs of
    nodes are *exactly* those in consecutive layers (paper, Section 1.3).

    Args:
        layer_sizes: Size of every layer; ``layer_sizes[0] == 1``.
        relabel_seed: When given, labels other than the source are randomly
            permuted with this seed (layer structure is unchanged).
        r: Label bound; defaults to ``n - 1``.

    Returns:
        A network of radius ``len(layer_sizes) - 1``.
    """
    if not layer_sizes or layer_sizes[0] != 1:
        raise ConfigurationError("layer_sizes[0] must be 1 (the source layer)")
    if any(size < 1 for size in layer_sizes):
        raise ConfigurationError("every layer must be non-empty")
    n = sum(layer_sizes)
    labels = list(range(n))
    if relabel_seed is not None:
        rng = random.Random(relabel_seed)
        tail = labels[1:]
        rng.shuffle(tail)
        labels = [0, *tail]
    layers: list[list[int]] = []
    cursor = 0
    for size in layer_sizes:
        layers.append(labels[cursor : cursor + size])
        cursor += size
    edges = [
        (u, v)
        for j in range(len(layers) - 1)
        for u in layers[j]
        for v in layers[j + 1]
    ]
    return RadioNetwork.undirected(range(n), edges, r=r)


def directed_complete_layered(
    layer_sizes: Sequence[int], relabel_seed: int | None = None, r: int | None = None
) -> RadioNetwork:
    """Directed complete layered network: arcs point away from the source.

    Section 2 analyses the randomized algorithm on *directed* graphs (its
    result holds there too); this is the directed counterpart of
    :func:`complete_layered` — every node of layer ``j`` has an arc to
    every node of layer ``j + 1`` and none back, so the information flow
    is strictly forward and in-neighbourhoods equal the previous layer.
    """
    undirected = complete_layered(layer_sizes, relabel_seed=relabel_seed, r=r)
    layer_of = undirected.distances_from_source()
    arcs = [
        (u, v)
        for u, nbrs in undirected.out_neighbors.items()
        for v in nbrs
        if layer_of[v] == layer_of[u] + 1
    ]
    return RadioNetwork.directed(undirected.nodes, arcs, r=undirected.r)


def uniform_complete_layered(
    n: int, depth: int, relabel_seed: int | None = None
) -> RadioNetwork:
    """Complete layered network with ``depth`` equal-size layers after the source.

    The first ``depth - 1`` non-source layers get ``(n - 1) // depth`` nodes
    and the last layer absorbs the remainder.
    """
    if depth < 1 or n < depth + 1:
        raise ConfigurationError(f"need n >= depth + 1, got n={n}, depth={depth}")
    base = (n - 1) // depth
    sizes = [1] + [base] * (depth - 1)
    sizes.append(n - sum(sizes))
    return complete_layered(sizes, relabel_seed=relabel_seed)


def km_hard_layered(n: int, depth: int, seed: int = 0) -> RadioNetwork:
    """Kushilevitz–Mansour-style hard instance for randomized broadcasting.

    The KM Omega(D log(n/D)) lower bound is proved on complete layered
    networks whose layer sizes are *unknown* powers of two: a broadcasting
    algorithm cannot know the right transmission probability for the next
    layer and must sweep ~log(n/D) probabilities per layer.  This generator
    draws each layer size as ``2^u`` with ``u`` uniform in
    ``[0, log2(n/depth)]``, then pads/truncates to exactly ``n`` nodes.

    Args:
        n: Total number of nodes.
        depth: Number of non-source layers (the radius).
        seed: Seed for the layer-size draws.
    """
    if depth < 1 or n < depth + 1:
        raise ConfigurationError(f"need n >= depth + 1, got n={n}, depth={depth}")
    rng = random.Random(seed)
    max_exp = max(0, int(math.log2(max(1, (n - 1) // depth))))
    sizes = [1]
    remaining = n - 1
    for i in range(depth):
        layers_left = depth - i
        if layers_left == 1:
            size = remaining
        else:
            size = min(1 << rng.randint(0, max_exp), remaining - (layers_left - 1))
            size = max(1, size)
        sizes.append(size)
        remaining -= size
    if remaining > 0:
        sizes[-1] += remaining
    return complete_layered(sizes, relabel_seed=seed)


def random_layered(
    n: int,
    depth: int,
    edge_prob: float = 0.5,
    seed: int = 0,
    relabel_seed: int | None = None,
) -> RadioNetwork:
    """Sparse layered network: consecutive-layer edges drawn independently.

    Every node keeps at least one edge to the previous layer so the network
    stays connected with radius exactly ``depth``.  With ``edge_prob=1.0``
    this coincides with :func:`uniform_complete_layered`.
    """
    if not 0.0 < edge_prob <= 1.0:
        raise ConfigurationError(f"edge_prob must be in (0, 1], got {edge_prob}")
    if depth < 1 or n < depth + 1:
        raise ConfigurationError(f"need n >= depth + 1, got n={n}, depth={depth}")
    rng = random.Random(seed)
    sizes = layer_sizes_for(n, depth)
    layers: list[list[int]] = []
    cursor = 0
    for size in sizes:
        layers.append(list(range(cursor, cursor + size)))
        cursor += size
    edges: list[tuple[int, int]] = []
    for j in range(len(layers) - 1):
        for v in layers[j + 1]:
            parents = [u for u in layers[j] if rng.random() < edge_prob]
            if not parents:
                parents = [rng.choice(layers[j])]
            edges.extend((u, v) for u in parents)
    net = RadioNetwork.undirected(range(n), edges)
    if relabel_seed is not None:
        from .generators import relabel_network

        net = relabel_network(net, relabel_seed)
    return net


def layer_sizes_for(n: int, depth: int) -> list[int]:
    """Evenly split ``n`` nodes into a source layer plus ``depth`` layers."""
    if depth < 1 or n < depth + 1:
        raise ConfigurationError(f"need n >= depth + 1, got n={n}, depth={depth}")
    base, extra = divmod(n - 1, depth)
    return [1] + [base + (1 if i < extra else 0) for i in range(depth)]
