"""On-disk result cache for sweep points.

Each executed point is stored as one JSON file under the cache root,
named by the point's content hash (canonical point JSON + the engine
:data:`CODE_VERSION`).  Re-running an unchanged sweep therefore performs
zero engine runs and reproduces byte-identical results; changing a
parameter (or bumping the code version after a semantics change)
invalidates exactly the affected points.
"""

from __future__ import annotations

import json
import os
import pathlib

from .spec import SweepPoint, canonical_json

__all__ = ["CODE_VERSION", "DEFAULT_CACHE_DIR", "ResultCache"]

#: Version tag of the execution semantics.  Bump whenever an engine or
#: algorithm change alters what a (point, seed) pair computes — cached
#: results from older semantics must never be served as current.
CODE_VERSION = "batched-coins-1"

#: Default cache location, relative to the repository root / CWD.
DEFAULT_CACHE_DIR = pathlib.Path("benchmarks") / "results" / "sweep-cache"


class ResultCache:
    """Content-addressed JSON store for sweep point results.

    Args:
        root: Directory to hold the per-point files (created on first
            write).
        code_version: Engine semantics tag entering every key; tests
            override it to simulate invalidation.
    """

    def __init__(self, root: os.PathLike | str, code_version: str = CODE_VERSION):
        self.root = pathlib.Path(root)
        self.code_version = code_version

    def path_for(self, point: SweepPoint) -> pathlib.Path:
        return self.root / f"{point.content_hash(self.code_version)}.json"

    def get(self, point: SweepPoint) -> dict | None:
        """Stored payload for ``point``, or ``None`` on a miss."""
        path = self.path_for(point)
        try:
            with path.open("r", encoding="utf-8") as handle:
                return json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError):
            # A torn or corrupt entry is a miss; the point simply re-runs.
            return None

    def put(
        self, point: SweepPoint, payload: dict, text: str | None = None
    ) -> pathlib.Path:
        """Store ``payload`` for ``point`` atomically; returns the path.

        Args:
            text: Pre-serialised ``canonical_json(payload)``; callers that
                time serialisation separately from the write pass it in so
                the payload is not encoded twice.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(point)
        tmp = path.with_suffix(".tmp")
        tmp.write_text(
            text if text is not None else canonical_json(payload),
            encoding="utf-8",
        )
        os.replace(tmp, path)
        return path
