"""Parallel sweep execution with per-point caching and crash recovery.

The runner shards the points of a :class:`~repro.sweep.spec.SweepSpec`
across worker processes.  Cache lookups happen in the parent *before*
dispatch, so a fully-cached sweep performs zero engine runs and zero
worker spawns; only misses travel to the pool.  Every executed point's
payload is written back through :class:`~repro.sweep.cache.ResultCache`
**as soon as that point completes**, so a sweep that later fails — or a
parent that is killed outright — never loses the points it already paid
for.

The pool is a small purpose-built one rather than
``multiprocessing.Pool``: stock pools cannot survive a worker that is
SIGKILLed (by the OOM killer, a cluster preemption, or a per-point
timeout) — the in-flight task is silently lost and ``map`` hangs.  Here
every worker announces which point it is executing before starting it,
so the parent can attribute a worker death to a specific point, resubmit
that point with exponential backoff, and respawn a replacement worker.
Points that exhaust their retry budget fail the sweep with
:class:`SweepExecutionError` — but only after every other point got its
chance, and with all successful payloads already cached.

Each point itself runs all its Monte-Carlo trials as one batched array
program (:func:`~repro.sim.run.repeat_broadcast` dispatches oblivious
algorithms to :class:`~repro.sim.fast.BatchedFastEngine`), so the
parallelism is two-level: processes over points, arrays over trials.
"""

from __future__ import annotations

import collections
import multiprocessing
import os
import queue as queue_module
import time
from dataclasses import dataclass
from typing import Callable, Sequence

from ..analysis import render_table
from ..obs.metrics import MetricsRegistry
from ..obs.runlog import RunLogger
from ..obs.telemetry import TelemetryHub, WorkerTelemetry
from ..obs.timings import Timings
from ..sim.errors import ConfigurationError, SimulationError
from ..sim.faults import FaultPlan
from ..sim.run import repeat_broadcast
from .cache import CODE_VERSION, ResultCache
from .registry import build_algorithm, build_topology
from .spec import SweepPoint, SweepSpec, canonical_json

__all__ = [
    "PointResult",
    "SweepOutcome",
    "SweepExecutionError",
    "execute_point",
    "run_sweep",
    "engine_run_count",
    "reset_engine_run_counter",
]

#: Broadcast executions performed by this process's sweeps since the last
#: reset.  The cache regression test asserts this stays at zero on a warm
#: re-run; it counts *trials actually executed*, cached points add nothing.
_ENGINE_RUNS = 0


def engine_run_count() -> int:
    """Engine runs performed by ``run_sweep`` since the last reset."""
    return _ENGINE_RUNS


def reset_engine_run_counter() -> None:
    global _ENGINE_RUNS
    _ENGINE_RUNS = 0


class SweepExecutionError(SimulationError):
    """One or more sweep points failed after exhausting their retries.

    Raised only after every point has been attempted, with all successful
    payloads already written to the cache — re-running the sweep retries
    just the failed points.

    Attributes:
        failures: point label -> last error description.
    """

    def __init__(self, message: str, failures: dict[str, str] | None = None):
        super().__init__(message)
        self.failures = dict(failures or {})


def _point_from_canonical(payload: dict) -> SweepPoint:
    faults = payload.get("faults")
    return SweepPoint(
        topology=payload["topology"],
        topology_params=tuple(sorted(payload["topology_params"].items())),
        algorithm=payload["algorithm"],
        algorithm_params=tuple(sorted(payload["algorithm_params"].items())),
        trials=payload["trials"],
        base_seed=payload["base_seed"],
        max_steps=payload["max_steps"],
        faults=FaultPlan.from_dict(faults) if faults is not None else None,
    )


def execute_point(
    canonical: dict, instrument: bool = False, profile_dir: str | None = None,
    telemetry: WorkerTelemetry | None = None, index: int | None = None,
) -> dict:
    """Run one sweep point; top-level so worker processes can unpickle it.

    Args:
        canonical: A :meth:`SweepPoint.canonical` dict.
        instrument: Record stage timings (``point.build``, ``point.run``,
            plus the engine stages) and a metrics snapshot into the
            payload under ``"timings"`` / ``"metrics"``.  The simulated
            results are identical either way; the extra keys are stripped
            before cache writes so cached payloads stay deterministic.
        profile_dir: When given, execute the point under
            :class:`cProfile.Profile` and dump ``<label>.pstats`` into
            this directory — the per-point hook that makes hot-path
            attribution work across the multiprocessing pool.  Profiling
            observes only; the payload is identical either way.
        telemetry: Optional
            :class:`~repro.obs.telemetry.WorkerTelemetry` bundle.  When
            given, the point streams a ``point_running`` progress beat
            and a ``point`` span (with nested trial and stage spans)
            through the bundle's sender; the payload is bit-identical
            either way.
        index: The point's grid index, carried on telemetry events so the
            parent can attribute them.

    Returns:
        JSON-safe payload with per-trial times and summary statistics.
        Deterministic given the point (seeds are derived, never drawn), so
        cached payloads reproduce byte-identically.  Faulty points
        additionally carry their plan and the fault tallies summed over
        trials.
    """
    if profile_dir is not None:
        import cProfile
        import pathlib

        from ..obs.profile import profile_file_name

        profiler = cProfile.Profile()
        profiler.enable()
        try:
            payload = _execute_point_body(
                canonical, instrument, telemetry=telemetry, index=index
            )
        finally:
            profiler.disable()
        directory = pathlib.Path(profile_dir)
        directory.mkdir(parents=True, exist_ok=True)
        profiler.dump_stats(str(directory / profile_file_name(payload["label"])))
        return payload
    return _execute_point_body(canonical, instrument, telemetry=telemetry, index=index)


def _execute_point_body(
    canonical: dict, instrument: bool = False,
    telemetry: WorkerTelemetry | None = None, index: int | None = None,
) -> dict:
    point = _point_from_canonical(canonical)
    metrics: MetricsRegistry | None = None
    timings: Timings | None = None
    observe = instrument or telemetry is not None
    if instrument:
        metrics = MetricsRegistry()
    if observe:
        timings = Timings()
    recorder = point_span = None
    if telemetry is not None:
        recorder = telemetry.recorder()
        telemetry.sender.emit(
            {"event": "point_running", "index": index, "label": point.label()}
        )
        point_span = recorder.start(
            point.label(), "point",
            parent_id=telemetry.context.parent_id,
            index=index,
        )
    try:
        t_start = time.perf_counter() if observe else 0.0
        network = build_topology(point.topology, dict(point.topology_params))
        algorithm = build_algorithm(
            point.algorithm, network, dict(point.algorithm_params)
        )
        if observe:
            t_built = time.perf_counter()
            timings.add("point.build", t_built - t_start)
        results = repeat_broadcast(
            network,
            algorithm,
            runs=point.trials,
            base_seed=point.base_seed,
            max_steps=point.max_steps,
            require_completion=False,
            faults=point.faults,
            metrics=metrics,
            timings=timings,
            spans=recorder,
        )
        if observe:
            timings.add("point.run", time.perf_counter() - t_built)
        if point_span is not None:
            point_span.attrs["runs"] = len(results)
    finally:
        if recorder is not None:
            # ``point.build`` / ``point.run`` as synthetic stage lanes;
            # the engine.* stages already landed under the trial span.
            recorder.emit_stage_spans(point_span, {}, timings, prefix="point.")
            recorder.end(point_span)
    times = [r.time for r in results]
    payload = {
        "point": canonical,
        "label": point.label(),
        "algorithm_name": getattr(algorithm, "name", point.algorithm),
        "n": network.n,
        "radius": network.radius,
        "runs": len(results),
        "completed": sum(1 for r in results if r.completed),
        "times": times,
        "mean_time": sum(times) / len(times),
        "min_time": min(times),
        "max_time": max(times),
    }
    if point.faults is not None:
        totals = collections.Counter()
        for r in results:
            totals.update(r.fault_counters.to_dict())
        payload["faults"] = point.faults.to_dict()
        payload["fault_totals"] = {
            key: int(totals.get(key, 0))
            for key in (
                "crashed_nodes", "jammed_slots", "lost_messages", "delayed_wakes"
            )
        }
    if instrument:
        payload["timings"] = timings.to_dict()
        payload["metrics"] = metrics.to_dict()
    return payload


#: Payload keys that must never enter the cache: they carry wall-clock
#: measurements, and cached payloads are required to reproduce
#: byte-identically on every machine.
_OBS_KEYS = ("timings", "metrics")


def _strip_observability(payload: dict) -> dict:
    """Payload without its observability keys (for cache writes)."""
    if any(key in payload for key in _OBS_KEYS):
        return {k: v for k, v in payload.items() if k not in _OBS_KEYS}
    return payload


@dataclass(frozen=True)
class PointResult:
    """One sweep cell's outcome plus its provenance."""

    point: SweepPoint
    payload: dict
    cached: bool


@dataclass
class SweepOutcome:
    """Everything one ``run_sweep`` call produced."""

    spec: SweepSpec
    results: list[PointResult]

    @property
    def executed(self) -> int:
        return sum(1 for r in self.results if not r.cached)

    @property
    def from_cache(self) -> int:
        return sum(1 for r in self.results if r.cached)

    def to_dict(self) -> dict:
        """Deterministic JSON form (no cache provenance — content only)."""
        return {
            "spec": self.spec.to_dict(),
            "code_version": CODE_VERSION,
            "points": [r.payload for r in self.results],
        }

    def to_json(self) -> str:
        return canonical_json(self.to_dict())

    def render_table(self) -> str:
        rows = []
        for r in self.results:
            p = r.payload
            rows.append([
                r.point.label(),
                f"{p['completed']}/{p['runs']}",
                f"{p['mean_time']:.0f}",
                f"[{p['min_time']}, {p['max_time']}]",
                "cache" if r.cached else "run",
            ])
        return render_table(
            ["point", "completed", "mean slots", "range", "source"], rows
        )


# ----------------------------------------------------------------------
# Crash-safe worker pool


def _pool_worker(
    task_queue, result_queue, instrument: bool = False,
    profile_dir: str | None = None,
    telemetry: WorkerTelemetry | None = None,
) -> None:
    """Worker loop: announce the task, run it, report the outcome.

    The ``start`` message *before* execution is what makes recovery
    possible: if this process dies mid-point (SIGKILL, OOM, segfault),
    the parent knows exactly which point was in flight and resubmits it.
    """
    pid = os.getpid()
    while True:
        task = task_queue.get()
        if task is None:
            return
        index, canonical = task
        result_queue.put(("start", index, pid))
        try:
            # Positional single-arg call when uninstrumented: tests may
            # monkeypatch ``execute_point`` with one-argument stand-ins.
            if instrument or profile_dir is not None or telemetry is not None:
                payload = execute_point(
                    canonical, instrument=instrument, profile_dir=profile_dir,
                    telemetry=telemetry, index=index,
                )
            else:
                payload = execute_point(canonical)
        except Exception as exc:
            retryable = not isinstance(exc, ConfigurationError)
            result_queue.put(
                ("error", index, f"{type(exc).__name__}: {exc}", retryable)
            )
        else:
            result_queue.put(("done", index, payload))


def _run_pool(
    tasks: Sequence[tuple[int, dict]],
    workers: int,
    timeout: float | None,
    retries: int,
    backoff: float,
    on_done: Callable[[int, dict], None],
    instrument: bool = False,
    on_event: Callable[..., None] | None = None,
    profile_dir: str | None = None,
    telemetry: TelemetryHub | None = None,
    parent_span=None,
) -> dict[int, tuple[str, int]]:
    """Execute ``(index, canonical)`` tasks on a kill-tolerant pool.

    Calls ``on_done(index, payload)`` in completion order.  ``on_event``
    (when given) observes lifecycle transitions as
    ``on_event(kind, index, **info)`` with kinds ``spawned`` / ``started``
    / ``timed_out`` / ``killed`` / ``retried`` / ``failed``; the runner
    uses it for run logs and queue-wait timing.  When a ``telemetry``
    hub is given its bus is opened on the pool's multiprocessing context,
    each worker gets a sender (worker spans nest under ``parent_span``),
    and the bus is drained on every poll iteration so events stream while
    points are still executing.  Returns
    ``index -> (error, attempts)`` for every task that exhausted its
    attempts (empty on full success); never raises for task-level
    failures.
    """
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        context = multiprocessing.get_context("spawn")
    task_queue = context.Queue()
    result_queue = context.Queue()
    worker_telemetry: WorkerTelemetry | None = None
    if telemetry is not None:
        telemetry.open_bus(context)
        worker_telemetry = telemetry.worker_telemetry(parent_span)

    canonicals = dict(tasks)
    attempts = {index: 0 for index, _ in tasks}
    remaining = set(canonicals)
    failed: dict[int, tuple[str, int]] = {}
    delayed: list[tuple[float, int]] = []  # (ready time, index)
    inflight: dict[int, tuple[int, float | None]] = {}  # pid -> (index, deadline)

    def emit(kind: str, index: int, **info) -> None:
        if on_event is not None:
            on_event(kind, index, **info)

    def submit(index: int) -> None:
        nonlocal last_activity
        attempts[index] += 1
        task_queue.put((index, canonicals[index]))
        last_activity = time.monotonic()
        emit("spawned", index, attempt=attempts[index])

    def handle_failure(index: int, error: str, retryable: bool) -> None:
        if index not in remaining or index in failed:
            return  # stale duplicate report for an already-settled point
        if any(i == index for _, i in delayed):
            return  # a retry of this point is already scheduled
        if retryable and attempts[index] < retries + 1:
            pause = backoff * (2 ** (attempts[index] - 1))
            delayed.append((time.monotonic() + pause, index))
            emit("retried", index, attempt=attempts[index], error=error)
        else:
            remaining.discard(index)
            failed[index] = (error, attempts[index])
            emit("failed", index, error=error, attempts=attempts[index])

    def clear_inflight(index: int) -> None:
        for pid, (running, _) in list(inflight.items()):
            if running == index:
                del inflight[pid]

    def spawn() -> "multiprocessing.Process":
        process = context.Process(
            target=_pool_worker,
            args=(task_queue, result_queue, instrument, profile_dir,
                  worker_telemetry),
            daemon=True,
        )
        process.start()
        return process

    processes = [spawn() for _ in range(max(1, min(workers, len(canonicals))))]
    for index, _ in tasks:
        submit(index)
    last_activity = time.monotonic()

    try:
        while remaining:
            if telemetry is not None:
                telemetry.drain()
            now = time.monotonic()
            for ready, index in list(delayed):
                if ready <= now:
                    delayed.remove((ready, index))
                    if index in remaining:
                        submit(index)
            if timeout is not None:
                for pid, (index, deadline) in list(inflight.items()):
                    if deadline is not None and now > deadline:
                        # Charge the point once, here, and drop the
                        # in-flight entry so the death observed below is
                        # not attributed a second time.
                        del inflight[pid]
                        emit("timed_out", index, timeout=timeout)
                        handle_failure(
                            index, f"timed out after {timeout:g}s", retryable=True
                        )
                        for process in processes:
                            if process.pid == pid:
                                process.kill()
            for process in list(processes):
                if not process.is_alive():
                    process.join()
                    processes.remove(process)
                    info = inflight.pop(process.pid, None)
                    if info is not None:
                        emit("killed", info[0])
                        handle_failure(
                            info[0],
                            "worker process died mid-point "
                            "(killed, out-of-memory, or crashed)",
                            retryable=True,
                        )
                    if remaining:
                        processes.append(spawn())
            # Stall rescue: a worker killed in the instant between taking
            # a task and announcing it leaves that task unattributable.
            # If nothing is running, scheduled, or arriving, resubmit
            # whatever is still open — completed duplicates are ignored.
            if not inflight and not delayed and now - last_activity > 1.0:
                for index in sorted(remaining):
                    submit(index)
                last_activity = now
            try:
                message = result_queue.get(timeout=0.05)
            except queue_module.Empty:
                continue
            last_activity = time.monotonic()
            kind, index = message[0], message[1]
            if kind == "start":
                pid = message[2]
                deadline = time.monotonic() + timeout if timeout is not None else None
                inflight[pid] = (index, deadline)
                emit("started", index)
            elif kind == "done":
                clear_inflight(index)
                if index in remaining:
                    remaining.discard(index)
                    on_done(index, message[2])
            else:  # "error"
                clear_inflight(index)
                handle_failure(index, message[2], message[3])
    finally:
        if telemetry is not None:
            telemetry.drain()
        for process in processes:
            process.kill()
        for process in processes:
            process.join(timeout=5.0)
        for q in (task_queue, result_queue):
            q.close()
            q.cancel_join_thread()
    return failed


def _execute_serial(
    tasks: Sequence[tuple[int, dict]],
    retries: int,
    backoff: float,
    on_done: Callable[[int, dict], None],
    instrument: bool = False,
    on_event: Callable[..., None] | None = None,
    profile_dir: str | None = None,
    telemetry: WorkerTelemetry | None = None,
) -> dict[int, tuple[str, int]]:
    """In-process counterpart of :func:`_run_pool` (no timeout support)."""

    def emit(kind: str, index: int, **info) -> None:
        if on_event is not None:
            on_event(kind, index, **info)

    failed: dict[int, tuple[str, int]] = {}
    for index, canonical in tasks:
        for attempt in range(retries + 1):
            emit("spawned", index, attempt=attempt + 1)
            emit("started", index)
            try:
                if instrument or profile_dir is not None or telemetry is not None:
                    payload = execute_point(
                        canonical, instrument=instrument, profile_dir=profile_dir,
                        telemetry=telemetry, index=index,
                    )
                else:
                    payload = execute_point(canonical)
            except ConfigurationError as exc:
                error = f"{type(exc).__name__}: {exc}"
                failed[index] = (error, attempt + 1)
                emit("failed", index, error=error, attempts=attempt + 1)
                break
            except Exception as exc:
                error = f"{type(exc).__name__}: {exc}"
                if attempt == retries:
                    failed[index] = (error, attempt + 1)
                    emit("failed", index, error=error, attempts=attempt + 1)
                    break
                emit("retried", index, attempt=attempt + 1, error=error)
                time.sleep(backoff * (2 ** attempt))
            else:
                on_done(index, payload)
                break
    return failed


def run_sweep(
    spec: SweepSpec,
    workers: int = 1,
    cache: ResultCache | None = None,
    on_point: Callable[[SweepPoint, dict, bool], None] | None = None,
    timeout: float | None = None,
    retries: int = 0,
    backoff: float = 0.5,
    instrument: bool = False,
    runlog: RunLogger | None = None,
    metrics: MetricsRegistry | None = None,
    profile_dir: str | None = None,
    telemetry: TelemetryHub | None = None,
) -> SweepOutcome:
    """Execute a sweep, sharding cache misses across worker processes.

    Args:
        spec: The declarative sweep description.
        workers: Process count for cache-missed points; ``1`` executes
            in-process (no pool spin-up — also what deterministic
            run-counter tests use) unless a ``timeout`` forces a worker,
            since only a separate process can be killed mid-point.
        cache: Result cache; ``None`` disables caching entirely.  Each
            executed payload is written back the moment its point
            completes, so partial progress survives later failures.
        on_point: Progress callback ``(point, payload, cached)``, invoked
            in completion order: cache hits first (grid order), then each
            executed point as it finishes — *before* later points
            complete, so callers can stream results.
        timeout: Per-point wall-clock budget in seconds; a point
            exceeding it has its worker killed and counts as a retryable
            failure.  ``None`` disables the limit.
        retries: How many times a failed point (error, timeout, or worker
            death) is re-attempted.  Configuration errors are
            deterministic and never retried.
        backoff: Base delay in seconds before a retry; doubles with each
            subsequent attempt of the same point.
        instrument: Execute points with metrics and stage timings; each
            executed payload then carries ``"timings"`` (worker stages
            plus ``pool.queue_wait`` / ``pool.execute`` /
            ``pool.serialize`` / ``pool.cache_write``) and ``"metrics"``
            keys.  Both are stripped before cache writes — the cache
            stores only deterministic content.
        runlog: Optional :class:`~repro.obs.runlog.RunLogger` receiving
            one JSONL event per lifecycle transition (``sweep_started``,
            ``point_cache_hit``, ``point_spawned``, ``point_completed``,
            ``point_timed_out``, ``point_killed``, ``point_retried``,
            ``point_failed``, ``sweep_completed``).  Only this parent
            process writes to it.
        metrics: Optional parent-side
            :class:`~repro.obs.metrics.MetricsRegistry`.  The runner sets
            the sweep gauges (``sweep_cache_hit_ratio``,
            ``sweep_active_workers``) on it, and — when ``instrument`` is
            on — folds every executed point's worker-side snapshot into
            it as the point completes, so after the sweep this one
            registry holds the whole grid's tallies.
        profile_dir: When given, every executed point runs under
            cProfile and dumps ``<label>.pstats`` into this directory
            (workers write their own files; labels are unique per point,
            so parallel writers never clash).  Merge them back with
            :func:`repro.obs.profile.merge_stats_files`.
        telemetry: Optional :class:`~repro.obs.telemetry.TelemetryHub`.
            The sweep then records a ``sweep`` span, workers stream
            ``point`` / ``trial`` / ``stage`` spans and ``point_running``
            beats over the hub's bounded bus (drained live on the pool's
            poll loop, never blocking workers), and every lifecycle event
            fans out to the hub's subscribers as it happens.  When the
            hub has a runlog and ``runlog`` is ``None``, the hub's is
            used.  Results and cache bytes are bit-identical with
            telemetry on or off; a saturated bus drops events and the
            total is reported as one ``telemetry_dropped`` event (plus a
            ``telemetry_dropped_events`` counter on ``metrics``).

    Returns:
        A :class:`SweepOutcome` with one :class:`PointResult` per grid
        cell, in grid order.

    Raises:
        SweepExecutionError: If any point still fails after its retry
            budget.  All other points finish (and are cached) first.
    """
    global _ENGINE_RUNS
    if retries < 0:
        raise ConfigurationError(f"retries must be non-negative, got {retries}")
    if timeout is not None and timeout <= 0:
        raise ConfigurationError(f"timeout must be positive, got {timeout}")
    if telemetry is not None and runlog is None:
        runlog = telemetry.runlog
    observing = runlog is not None or telemetry is not None

    def log(kind: str, **fields) -> None:
        """One lifecycle event: into the runlog and out to hub subscribers."""
        if runlog is not None:
            record = runlog.event(kind, **fields)
        else:
            record = {"event": kind, **fields}
        if telemetry is not None:
            telemetry.notify(record)

    points = spec.points()
    if observing:
        log(
            "sweep_started",
            name=spec.name,
            points=len(points),
            workers=workers,
            instrument=instrument,
        )
    sweep_span = None
    if telemetry is not None:
        sweep_span = telemetry.recorder.start(
            spec.name, "sweep", points=len(points), workers=workers
        )
    payloads: dict[int, dict] = {}
    cached_flags: dict[int, bool] = {}
    pending: list[int] = []
    for i, point in enumerate(points):
        hit = cache.get(point) if cache is not None else None
        if hit is not None:
            payloads[i] = hit
            cached_flags[i] = True
            if observing:
                log("point_cache_hit", index=i, label=point.label())
            if on_point is not None:
                on_point(point, hit, True)
        else:
            pending.append(i)

    if metrics is not None:
        hit_count = len(points) - len(pending)
        metrics.gauge("sweep_cache_hit_ratio").set(
            hit_count / len(points) if points else 0.0
        )
        metrics.gauge("sweep_active_workers").set(0)

    failed: dict[int, tuple[str, int]] = {}
    if pending:
        # Lifecycle bookkeeping: submit/start walltimes feed the
        # pool.queue_wait / pool.execute stages of each point's timings.
        submit_times: dict[int, float] = {}
        start_times: dict[int, float] = {}
        point_attempts: dict[int, int] = {}
        observe = instrument or observing

        def pool_event(kind: str, index: int, **info) -> None:
            now = time.perf_counter()
            if kind == "spawned":
                submit_times[index] = now
                start_times.pop(index, None)
                point_attempts[index] = info.get("attempt", 1)
                if observing:
                    log(
                        "point_spawned",
                        index=index,
                        label=points[index].label(),
                        **info,
                    )
            elif kind == "started":
                start_times[index] = now
            elif observing:  # timed_out / killed / retried / failed
                log(
                    f"point_{kind}",
                    index=index,
                    label=points[index].label(),
                    **info,
                )

        def on_done(index: int, payload: dict) -> None:
            global _ENGINE_RUNS
            payloads[index] = payload
            cached_flags[index] = False
            _ENGINE_RUNS += payload["runs"]
            done_at = time.perf_counter()
            to_store = _strip_observability(payload)
            timings: Timings | None = None
            if observe:
                timings = Timings.from_dict(payload.get("timings") or {})
                submitted = submit_times.get(index)
                started = start_times.get(index, submitted)
                if started is not None and submitted is not None:
                    timings.add("pool.queue_wait", started - submitted)
                    timings.add("pool.execute", done_at - started)
            if cache is not None:
                if timings is not None:
                    t0 = time.perf_counter()
                    text = canonical_json(to_store)
                    t1 = time.perf_counter()
                    cache.put(points[index], to_store, text=text)
                    timings.add("pool.serialize", t1 - t0)
                    timings.add("pool.cache_write", time.perf_counter() - t1)
                else:
                    cache.put(points[index], to_store)
            if timings is not None and "timings" in payload:
                payload["timings"] = timings.to_dict()
            if metrics is not None and payload.get("metrics"):
                metrics.merge(MetricsRegistry.from_dict(payload["metrics"]))
            if observing:
                log(
                    "point_completed",
                    index=index,
                    label=points[index].label(),
                    attempt=point_attempts.get(index, 1),
                    mean_time=payload.get("mean_time"),
                    timings=(timings.to_dict() if timings is not None else None),
                    metrics=payload.get("metrics"),
                )
            if on_point is not None:
                on_point(points[index], payload, False)

        tasks = [(i, points[i].canonical()) for i in pending]
        use_pool = (workers > 1 and len(pending) > 1) or timeout is not None
        on_event = pool_event if observe else None
        if metrics is not None:
            metrics.gauge("sweep_active_workers").set(
                max(1, min(workers, len(pending))) if use_pool else 1
            )
        if use_pool:
            failed = _run_pool(
                tasks, workers, timeout, retries, backoff, on_done,
                instrument=instrument, on_event=on_event,
                profile_dir=profile_dir,
                telemetry=telemetry, parent_span=sweep_span,
            )
        else:
            failed = _execute_serial(
                tasks, retries, backoff, on_done,
                instrument=instrument, on_event=on_event,
                profile_dir=profile_dir,
                telemetry=(
                    telemetry.local_telemetry(sweep_span)
                    if telemetry is not None
                    else None
                ),
            )

    executed_count = sum(1 for f in cached_flags.values() if not f)
    cache_count = sum(1 for f in cached_flags.values() if f)
    if telemetry is not None:
        telemetry.drain()
        telemetry.recorder.end(
            sweep_span,
            executed=executed_count, from_cache=cache_count, failed=len(failed),
        )
        if telemetry.dropped:
            log("telemetry_dropped", count=telemetry.dropped)
            if metrics is not None:
                metrics.counter("telemetry_dropped_events").inc(telemetry.dropped)
    if observing:
        log(
            "sweep_completed",
            name=spec.name,
            executed=executed_count,
            from_cache=cache_count,
            failed=len(failed),
        )
    if failed:
        failures = {}
        details = []
        for i in sorted(failed):
            error, attempt_count = failed[i]
            label = points[i].label()
            failures[label] = error
            details.append(
                f"{label}: {error} (after {attempt_count} attempt(s); "
                f"spec {canonical_json(points[i].canonical())})"
            )
        raise SweepExecutionError(
            f"{len(failed)} sweep point(s) failed: " + "; ".join(details),
            failures=failures,
        )

    results = [
        PointResult(point=point, payload=payloads[i], cached=cached_flags[i])
        for i, point in enumerate(points)
    ]
    return SweepOutcome(spec=spec, results=results)
