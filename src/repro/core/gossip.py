"""Gossiping (all-to-all rumor exchange) on top of Select-and-Send.

An extension beyond the paper's broadcast problem, in the direction of the
gossiping literature it cites (Chrobak–Gasieniec–Rytter): every node
starts with a private rumor, and the goal is for *every* node to learn
*every* rumor — in the same ad hoc radio model.

Mechanism: two DFS passes of the Section 4.2 token algorithm, with rumor
sets piggybacked on every transmission (the model allows arbitrarily large
messages, as the paper's history-carrying message format already does).

* **Collection pass** — a plain Select-and-Send DFS.  Whenever the token
  returns from a subtree, the pass message carries every rumor of that
  subtree, so DFS post-order accumulation leaves the source holding all
  ``n`` rumors when the pass ends.
* **Dissemination pass** — the source starts a second DFS.  Every token
  pass now carries the complete rumor set, and every node is visited, so
  each node receives the complete set with the token (and typically
  earlier, from a neighbour's announce).

Total time: two Select-and-Send runs plus O(1) glue — ``O(n log n)``,
i.e. gossiping costs asymptotically no more than deterministic broadcast
in this model.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any

from ..sim.engine import SynchronousEngine
from ..sim.errors import BroadcastIncompleteError
from ..sim.messages import Message
from ..sim.network import RadioNetwork
from ..sim.protocol import BroadcastAlgorithm, Protocol
from .select_and_send import SelectAndSend, _SelectAndSendProtocol

__all__ = ["TokenGossip", "GossipResult", "run_gossip"]


@dataclass(frozen=True, slots=True)
class _Envelope:
    """A Select-and-Send payload with the sender's rumor set attached."""

    phase: int
    inner: Any
    rumors: frozenset[int]


class _GossipProtocol(Protocol):
    """Wraps a Select-and-Send protocol per phase and carries rumors.

    The inner protocol is oblivious to the wrapping: it sees exactly the
    payloads it would see in a plain broadcast, so the DFS logic is reused
    verbatim.  The wrapper merges rumor sets from every overheard envelope
    and switches to the dissemination phase when the collection DFS ends.
    """

    def __init__(self, label: int, r: int, rng: random.Random):
        super().__init__(label, r, rng)
        self.rumors: set[int] = {label}  # the node's own rumor
        self.phase = 1
        self._inner = _SelectAndSendProtocol(label, r, rng)
        self._algorithm = SelectAndSend()

    # -- engine hooks ------------------------------------------------------

    def on_wake(self, step: int, message: Message | None) -> None:
        if message is None:  # the source
            self._inner.wake_step = step
            self._inner.on_wake(step, None)
            return
        inner_message, phase_switch = self._unwrap(message)
        if phase_switch:
            self.phase = 2
            self._inner = _SelectAndSendProtocol(self.label, self.r, self.rng)
        self._inner.wake_step = step
        self._inner.on_wake(step, inner_message)

    def next_action(self, step: int) -> Any | None:
        payload = self._inner.next_action(step)
        if payload is None:
            return None
        from .echo import StopAll

        if isinstance(payload, StopAll) and self.phase == 1 and self.label == 0:
            # Collection finished: the source holds every rumor (DFS
            # post-order accumulation).  Suppress the StopAll; start the
            # dissemination DFS one slot later via a fresh inner source
            # protocol whose startup is anchored at step + 1.
            self.phase = 2
            self._inner = _SelectAndSendProtocol(self.label, self.r, self.rng)
            self._inner.start_slot = step + 1
            self._inner.wake_step = step
            self._inner.on_wake(step, None)
            return None
        return _Envelope(self.phase, payload, frozenset(self.rumors))

    def observe(self, step: int, message: Message | None) -> None:
        if message is None:
            self._inner.observe(step, None)
            return
        inner_message, phase_switch = self._unwrap(message)
        if phase_switch:
            # First phase-2 transmission heard: retire the collection
            # protocol and join the dissemination DFS fresh, treating this
            # message as the fresh protocol's wake.
            self.phase = 2
            self._inner = _SelectAndSendProtocol(self.label, self.r, self.rng)
            self._inner.wake_step = step
            self._inner.on_wake(step, inner_message)
            return
        self._inner.observe(step, inner_message)

    # -- rumor bookkeeping ---------------------------------------------------

    def _unwrap(self, message: Message) -> tuple[Message, bool]:
        """Merge the envelope's rumors; return (inner message, phase switch)."""
        payload = message.payload
        if isinstance(payload, _Envelope):
            self.rumors |= payload.rumors
            switch = payload.phase == 2 and self.phase == 1
            return Message(message.sender, payload.inner), switch
        return message, False

    def knows(self, total: int) -> bool:
        """Whether this node has collected all ``total`` rumors."""
        return len(self.rumors) >= total


class TokenGossip(BroadcastAlgorithm):
    """Two-pass DFS gossip; see the module docstring."""

    deterministic = True

    def __init__(self) -> None:
        self.name = "token-gossip"

    def create(self, label: int, r: int, rng: random.Random) -> Protocol:
        return _GossipProtocol(label, r, rng)

    def max_steps_hint(self, n: int, r: int) -> int | None:
        single = SelectAndSend().max_steps_hint(n, r)
        return 2 * single + 8 if single is not None else None


@dataclass(frozen=True)
class GossipResult:
    """Outcome of a gossip run.

    Attributes:
        completed: Every node learned every rumor.
        time: Slots until the last node completed its rumor set.
        broadcast_time: Slots until every node was merely *informed*
            (the broadcast sub-goal, for comparison).
        n: Network size.
    """

    completed: bool
    time: int
    broadcast_time: int | None
    n: int


def run_gossip(
    network: RadioNetwork, max_steps: int | None = None, require_completion: bool = False
) -> GossipResult:
    """Run :class:`TokenGossip` until every node knows every rumor.

    Args:
        network: Topology to gossip on.
        max_steps: Step limit; defaults to the algorithm's hint.
        require_completion: Raise instead of returning a partial result.
    """
    algorithm = TokenGossip()
    if max_steps is None:
        max_steps = algorithm.max_steps_hint(network.n, network.r)
    engine = SynchronousEngine(network, algorithm)
    total = network.n
    finished_at: int | None = None
    for _ in range(max_steps):
        engine.run_step()
        protocols = engine.protocols
        if len(protocols) == total and all(
            p.knows(total) for p in protocols.values()
        ):
            finished_at = engine.step
            break
    completed = finished_at is not None
    result = GossipResult(
        completed=completed,
        time=finished_at if completed else engine.step,
        broadcast_time=engine.completion_time,
        n=total,
    )
    if require_completion and not completed:
        raise BroadcastIncompleteError(
            f"gossip informed {engine.informed_count}/{total} nodes but rumor "
            f"exchange did not complete within {max_steps} slots",
            result=result,
        )
    return result
