"""E10 — Section 4.1: Echo-based collision detection and Binary-Selection
in O(log m) segments, at the state-machine and the radio level."""

from __future__ import annotations

import random

from ..analysis import render_table
from ..core import (
    CompleteLayeredBroadcast,
    EchoOutcome,
    Selected,
    SelectionDriver,
)
from ..sim import run_broadcast
from ..topology import complete_layered
from .base import ExperimentReport, register

FULL_BOUNDS = [16, 64, 256, 1024, 4096]
QUICK_BOUNDS = [16, 256, 4096]
FULL_M = [4, 16, 64, 256]
QUICK_M = [4, 64]


def _worst_segments(r: int, trials: int, rng: random.Random) -> int:
    worst = 0
    for _ in range(trials):
        size = rng.randint(1, min(r, 64))
        hidden = set(rng.sample(range(1, r + 1), size))
        driver = SelectionDriver(r)
        probe = driver.current_probe
        segments = 1
        while True:
            members = [x for x in hidden if probe.lo <= x <= probe.hi]
            if len(members) == 1:
                step = driver.feed(EchoOutcome.SINGLE, members[0])
            elif not members:
                step = driver.feed(EchoOutcome.EMPTY)
            else:
                step = driver.feed(EchoOutcome.MANY)
            if isinstance(step, Selected):
                break
            probe = step
            segments += 1
        worst = max(worst, segments)
    return worst


@register("e10")
def run(quick: bool = False) -> ExperimentReport:
    """Segment counts vs the bound; end-to-end selection cost over radio."""
    rng = random.Random(0)
    trials = 100 if quick else 300
    report = ExperimentReport("e10", "Echo and Binary-Selection (Section 4.1)")

    rows = []
    within_bound = True
    for r in (QUICK_BOUNDS if quick else FULL_BOUNDS):
        bound = SelectionDriver(r).segments_used_bound()
        worst = _worst_segments(r, trials, rng)
        within_bound &= worst <= bound
        rows.append([r, worst, bound, worst / bound])
    report.add_table(
        render_table(
            ["label bound r", f"worst segments ({trials} trials)",
             "2(log r + 2) bound", "ratio"],
            rows,
        )
    )
    report.check(
        "Binary-Selection always selects within 2(log r + 2) Echo segments",
        within_bound,
    )

    # Layer profile [1, 1, m, 1]: the m-wide layer sits at depth 2, so its
    # leader is picked by a genuine Echo Binary-Selection among m responders
    # (depth 1 is elected by the O(n) startup instead), and the last node
    # can only be informed once a lone layer-2 transmission happens during
    # that selection.  Completion time therefore isolates one selection
    # among m plus O(1) overhead.
    # Labels are shuffled: with sorted labels the first probe [1..2] would
    # isolate the lowest layer-2 label immediately and hide the search.
    # Radio-level cost.  The measured quantity is the gap between layer 2
    # completing and layer 3 waking: exactly the Echo selection among the
    # responders.  Binary-Selection searches the LABEL space, so its cost
    # is governed by log r (with the label bound r), and the adversarial
    # placement — all responder labels clustered at the top of the range —
    # forces the doubling phase through every scale.  The cost must grow
    # like log r and respect the 3 * 2(log r + 2) slot bound.
    from ..sim.network import RadioNetwork

    rows2 = []
    m = 8
    r_values = [64, 512] if quick else [64, 512, 4096, 16384]
    for r in r_values:
        responders = list(range(r - m + 1, r + 1))
        nodes = [0, 1, 2, *responders]
        edges = [(0, 1)]
        edges += [(1, x) for x in responders]
        edges += [(x, 2) for x in responders]
        net = RadioNetwork.undirected(nodes, edges, r=r)
        result = run_broadcast(
            net, CompleteLayeredBroadcast(), require_completion=True
        )
        cost = result.layer_times[3] - result.layer_times[2]
        log_r = max(1, r.bit_length())
        slot_bound = 3 * 2 * (log_r + 2) + 6
        rows2.append([r, cost, cost / log_r, slot_bound])
    report.add_table(
        render_table(
            ["label bound r", "selection slots", "slots / log r", "3*2(log r+2) bound"],
            rows2,
        )
    )
    deltas = [rows2[i + 1][1] - rows2[i][1] for i in range(len(rows2) - 1)]
    report.check(
        "end-to-end radio selection cost grows logarithmically in the label "
        "bound and stays under 3 slots per Echo segment times the segment "
        "bound",
        all(delta > 0 for delta in deltas)
        and all(row[1] <= row[3] for row in rows2),
        f"slots: {[row[1] for row in rows2]}",
    )

    # What does *simulating* collision detection cost?  Run the same
    # leader-chain broadcast under the CD model variant, where one slot
    # per probe replaces the Echo pair and no distinguished parent is
    # needed.  Echo's overhead is the price the paper's model exacts.
    from ..topology import uniform_complete_layered

    rows3 = []
    cd_cases = [(100, 10)] if quick else [(100, 10), (200, 20), (400, 40)]
    cd_always_faster = True
    for n, d in cd_cases:
        net = uniform_complete_layered(n, d)
        plain = run_broadcast(
            net, CompleteLayeredBroadcast(), require_completion=True
        )
        with_cd = run_broadcast(
            net,
            CompleteLayeredBroadcast(native_cd=True),
            collision_detection=True,
            require_completion=True,
        )
        cd_always_faster &= with_cd.time < plain.time
        rows3.append([n, d, plain.time, with_cd.time, plain.time / with_cd.time])
    report.add_table(
        render_table(
            ["n", "D", "Echo (paper model)", "native CD", "Echo overhead"],
            rows3,
        )
    )
    report.check(
        "simulated collision detection (Echo) costs a measurable constant "
        "factor over native collision detection — and nothing more",
        cd_always_faster and all(row[4] < 2.2 for row in rows3),
        f"overheads: {[f'{row[4]:.2f}' for row in rows3]}",
    )
    return report
