"""The optimal randomized broadcasting algorithm (Section 2).

Structure, following the paper exactly:

* ``Procedure Stage(D, i)`` — ``log(r/D) + 2`` slots: first transmit with
  probabilities ``1, 1/2, ..., D/r`` (one per slot), then one extra slot
  with the universal-sequence probability ``p_i``.  The sweep informs nodes
  with at most ``r/D`` informed in-neighbours with constant probability
  (Lemma 2); the extra slot handles nodes with *many* informed
  in-neighbours (Lemmas 3-4) — this is the paper's key novelty over BGI.
* ``Procedure Randomized-Broadcasting(D)`` — the source transmits once,
  then ``4660 D`` stages run; a node performs stage ``i`` iff it was
  informed before the stage began.
* ``Algorithm Optimal-Randomized-Broadcasting`` — doubling over
  ``D = 2, 4, ..., r`` removes the assumption that D is known.

Both a per-node :class:`~repro.sim.protocol.Protocol` (reference engine)
and a vectorised schedule (fast engine) are provided; they implement the
same probability timetable.

Fidelity knobs
--------------

``stage_constant`` defaults to the paper's 4660.  The constant only caps
how many stages a phase runs — per-slot probabilities never depend on it —
so measuring time-to-completion with a known radius is constant-free.  The
paper's fallback to BGI for ``D <= 32 r^(2/3)`` exists for the *analysis*;
``use_paper_fallback=True`` reproduces it, while the default keeps the
stage mechanism at every D (the universal sequence is built in clamped
practical mode there, see :mod:`repro.combinatorics.universal`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from ..combinatorics.universal import UniversalSequence, build_universal_sequence
from ..sim.errors import ConfigurationError
from ..sim.protocol import BroadcastAlgorithm, ObliviousTransmitter, Protocol

__all__ = [
    "next_power_of_two",
    "StageTimetable",
    "KnownRadiusKP",
    "OptimalRandomizedBroadcasting",
]


def next_power_of_two(x: int) -> int:
    """Smallest power of two >= x (the paper replaces r by 2^ceil(log r))."""
    if x < 1:
        raise ConfigurationError(f"need a positive integer, got {x}")
    return 1 << (x - 1).bit_length()


@dataclass(frozen=True)
class StageTimetable:
    """Probability timetable of one ``Randomized-Broadcasting(D)`` phase.

    Slot 0 of the phase is the source's solo transmission; after it come
    ``num_stages`` stages of ``stage_len`` slots each.

    Attributes:
        r2: Label bound rounded up to a power of two.
        d2: The phase's radius guess D (power of two).
        stage_len: ``log(r2/d2) + 2`` slots per stage.
        num_stages: How many stages the phase runs.
        universal: The universal sequence supplying the ``p_i`` values.
    """

    r2: int
    d2: int
    stage_len: int
    num_stages: int
    universal: UniversalSequence | None

    @classmethod
    def build(
        cls, r: int, d_guess: int, stage_constant: int, extra_step: str = "universal"
    ) -> "StageTimetable":
        """Create the timetable for ``Randomized-Broadcasting(d_guess)``.

        ``r`` is rounded up to a power of two (at least 4, so the universal
        exponent ranges are non-degenerate) and the radius guess is clamped
        into ``[2, r2]`` — the doubling algorithm never probes below D = 2.

        ``extra_step`` selects the stage shape (ablation E9):
        ``"universal"`` is the paper's stage (probability sweep plus one
        universal-sequence slot); ``"none"`` drops the extra slot, leaving
        the bare shortened-Decay sweep the paper argues is insufficient for
        nodes with many informed in-neighbours.
        """
        if extra_step not in ("universal", "none"):
            raise ConfigurationError(f"unknown extra_step {extra_step!r}")
        r2 = max(4, next_power_of_two(r))
        d2 = max(2, next_power_of_two(d_guess))
        if d2 > r2:
            d2 = r2
        log_ratio = (r2 // d2).bit_length() - 1  # log2(r2/d2)
        universal = (
            build_universal_sequence(r2, d2, strict=False)
            if extra_step == "universal"
            else None
        )
        return cls(
            r2=r2,
            d2=d2,
            stage_len=log_ratio + (2 if universal is not None else 1),
            num_stages=stage_constant * d2,
            universal=universal,
        )

    @property
    def duration(self) -> int:
        """Total slots in the phase (source slot + all stages)."""
        return 1 + self.num_stages * self.stage_len

    def slot(self, offset: int) -> tuple[float, int] | None:
        """Decode one slot of the phase.

        Args:
            offset: Slot index within the phase, ``0 <= offset < duration``.

        Returns:
            ``None`` for slot 0 (only the source transmits), else a pair
            ``(probability, eligibility_offset)``: nodes informed strictly
            before ``eligibility_offset`` (the first slot of the current
            stage, phase-relative) transmit with ``probability``.
        """
        if offset == 0:
            return None
        stage_index = (offset - 1) // self.stage_len  # 0-based stage number
        position = (offset - 1) % self.stage_len
        stage_start = 1 + stage_index * self.stage_len
        if self.universal is not None and position == self.stage_len - 1:
            probability = self.universal.probability(stage_index + 1)
        else:
            probability = 2.0 ** (-position)
        return probability, stage_start


class _StageProtocol(ObliviousTransmitter):
    """Reference-engine protocol executing a sequence of phase timetables."""

    def __init__(
        self,
        label: int,
        r: int,
        rng: random.Random,
        phases: list[StageTimetable],
        phase_starts: list[int],
    ) -> None:
        super().__init__(label, r, rng)
        self._phases = phases
        self._phase_starts = phase_starts

    def wants_to_transmit(self, step: int) -> bool:
        located = _locate_phase(self._phase_starts, step)
        if located is None:
            return False
        phase_index, offset = located
        timetable = self._phases[phase_index]
        decoded = timetable.slot(offset)
        if decoded is None:
            return self.label == 0
        probability, stage_start = decoded
        phase_start = self._phase_starts[phase_index]
        # "if node v received the source message before Stage(D, i)": the
        # stage starts at global slot phase_start + stage_start, so a node
        # is eligible iff it woke in an earlier slot.  A node woken during
        # a stage waits for the next one (Lemma 2 relies on this).
        if self.wake_step is None or self.wake_step >= phase_start + stage_start:
            return False
        if probability >= 1.0:
            return True
        return self.coin(step) < probability


def _locate_phase(phase_starts: list[int], step: int) -> tuple[int, int] | None:
    """Map a global step to ``(phase index, offset within phase)``."""
    if not phase_starts or step < phase_starts[0]:
        return None
    import bisect

    index = bisect.bisect_right(phase_starts, step) - 1
    return index, step - phase_starts[index]


class _PhasedAlgorithm(BroadcastAlgorithm):
    """Shared machinery: a schedule made of consecutive phase timetables."""

    deterministic = False

    def __init__(self, phases: list[StageTimetable]):
        self._phases = phases
        starts: list[int] = []
        cursor = 0
        for timetable in phases:
            starts.append(cursor)
            cursor += timetable.duration
        self._phase_starts = starts
        self._total_duration = cursor

    # -- reference engine -------------------------------------------------

    def create(self, label: int, r: int, rng: random.Random) -> Protocol:
        return _StageProtocol(label, r, rng, self._phases, self._phase_starts)

    # -- fast engine -------------------------------------------------------

    def transmit_mask(
        self,
        step: int,
        labels: np.ndarray,
        wake_steps: np.ndarray,
        r: int,
        coins,
    ) -> np.ndarray:
        located = _locate_phase(self._phase_starts, step)
        if located is None:
            return np.zeros(wake_steps.shape, dtype=bool)
        phase_index, offset = located
        timetable = self._phases[phase_index]
        decoded = timetable.slot(offset)
        if decoded is None:
            return np.broadcast_to(labels == 0, wake_steps.shape)
        probability, stage_start = decoded
        eligible = wake_steps < (self._phase_starts[phase_index] + stage_start)
        if probability >= 1.0:
            return eligible
        return eligible & (coins.uniform(step) < probability)

    def macro_plan(self, start: int, count: int, r: int):
        """Decode ``count`` slots at once for the macro-step engine.

        Each slot is decoded by exactly the same ``_locate_phase`` +
        ``StageTimetable.slot`` pair as :meth:`transmit_mask`, so the
        plan is the batched form of the per-slot masks by construction
        (the conformance suite asserts it stays that way).
        """
        from ..sim.macro import ELIGIBLE_ANY_AWAKE, MacroPlan

        probs = np.full(count, -1.0, dtype=np.float64)
        elig = np.full(count, ELIGIBLE_ANY_AWAKE, dtype=np.int64)
        single = np.full(count, -1, dtype=np.int64)
        for j in range(count):
            located = _locate_phase(self._phase_starts, start + j)
            if located is None:
                continue  # before the schedule: silence
            phase_index, offset = located
            decoded = self._phases[phase_index].slot(offset)
            if decoded is None:
                single[j] = 0  # the source's solo slot
                continue
            probability, stage_start = decoded
            probs[j] = probability
            elig[j] = self._phase_starts[phase_index] + stage_start
        return MacroPlan(start=start, probs=probs, elig=elig, single=single)

    def max_steps_hint(self, n: int, r: int) -> int | None:
        return self._total_duration

    # -- forensics ---------------------------------------------------------

    def stage_hint(self, step: int, trace=None) -> str | None:
        """Charge a slot to its phase stage: source slot, sweep slot (by
        probability scale), or the universal-sequence slot."""
        located = _locate_phase(self._phase_starts, step)
        if located is None:
            return None
        phase_index, offset = located
        timetable = self._phases[phase_index]
        prefix = f"D={timetable.d2}:" if len(self._phases) > 1 else ""
        if offset == 0:
            return f"{prefix}source"
        position = (offset - 1) % timetable.stage_len
        if timetable.universal is not None and position == timetable.stage_len - 1:
            return f"{prefix}universal"
        return f"{prefix}sweep[p=2^-{position}]"


class KnownRadiusKP(_PhasedAlgorithm):
    """``Procedure Randomized-Broadcasting(D)`` with D known a priori.

    This is the constant-free object to benchmark: its per-slot
    probabilities depend only on ``(r, D)``, so measured completion times
    expose the ``O(D log(n/D) + log^2 n)`` behaviour of Theorem 1 without
    the pessimistic stage-count constant.

    Args:
        r: Label bound the nodes know.
        d_known: The radius D given to the procedure.
        stage_constant: Stage-count multiplier (paper: 4660).  Only bounds
            the schedule length.
        extra_step: ``"universal"`` (the paper's stage) or ``"none"``
            (ablation: bare shortened sweep, no universal slot — E9).
    """

    def __init__(
        self,
        r: int,
        d_known: int,
        stage_constant: int = 4660,
        extra_step: str = "universal",
    ):
        if d_known < 1:
            raise ConfigurationError(f"D must be positive, got {d_known}")
        timetable = StageTimetable.build(r, d_known, stage_constant, extra_step)
        super().__init__([timetable])
        suffix = "" if extra_step == "universal" else ", no-universal"
        self.name = f"kp-known-D(D={d_known}{suffix})"
        self.d_known = d_known
        self.stage_constant = stage_constant
        self.extra_step = extra_step


class OptimalRandomizedBroadcasting(_PhasedAlgorithm):
    """``Algorithm Optimal-Randomized-Broadcasting`` (doubling over D).

    Runs ``Randomized-Broadcasting(2^i)`` for ``i = 1, ..., log r`` in
    sequence.  With the paper's ``stage_constant=4660`` each phase runs its
    full pessimistic length before the next starts; Theorem 1 guarantees
    completion within phase ``ceil(log D)`` with probability ``1 - 1/r``.

    Args:
        r: Label bound the nodes know.
        stage_constant: Stage-count multiplier per phase (paper: 4660).
            Smaller values shorten the doubling overhead at the cost of a
            larger per-phase failure probability; E2 measures this
            trade-off.
        max_d: Optional cap on the largest phase D (defaults to r).
    """

    def __init__(self, r: int, stage_constant: int = 4660, max_d: int | None = None):
        r2 = next_power_of_two(r)
        top = r2 if max_d is None else min(r2, next_power_of_two(max_d))
        phases = []
        d_guess = 2
        while d_guess <= top:
            phases.append(StageTimetable.build(r2, d_guess, stage_constant))
            d_guess *= 2
        if not phases:
            raise ConfigurationError(f"no phases for r={r}, max_d={max_d}")
        super().__init__(phases)
        self.name = f"kp-optimal(c={stage_constant})"
        self.stage_constant = stage_constant
