"""Combinatorial objects used by the algorithms and the adversary."""

from .selective import (
    cms_size_lower_bound,
    find_nonselective_witness,
    greedy_selective_family,
    is_selective,
    kautz_singleton_family,
    selects,
    strongly_selective_family,
)
from .universal import (
    UniversalSequence,
    UniversalityReport,
    build_universal_sequence,
    check_universality,
    universal_ranges,
)

__all__ = [
    "UniversalSequence",
    "UniversalityReport",
    "build_universal_sequence",
    "check_universality",
    "cms_size_lower_bound",
    "find_nonselective_witness",
    "greedy_selective_family",
    "is_selective",
    "kautz_singleton_family",
    "selects",
    "strongly_selective_family",
    "universal_ranges",
]
