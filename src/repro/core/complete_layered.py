"""``Algorithm Complete-Layered``: O(n + D log n) broadcast (Section 4.3).

For *complete layered* networks — where adjacent pairs are exactly those in
consecutive BFS layers — the paper shows broadcasting in ``O(n + D log n)``
even without spontaneous transmissions.  This refutes the claim of
Clementi, Monti and Silvestri that their directed ``Omega(n log D)`` lower
bound extends to undirected networks: for every unbounded ``D in o(n)``
this algorithm is faster than that claimed bound (experiment E5).

Mechanism: a single *leader* per layer.  Phase 1 elects the layer-1 leader
``v_1`` exactly like Select-and-Send's startup.  In phase ``k + 1`` leader
``v_k`` transmits the source message — waking the whole of layer ``k + 1``
at once, this is where completeness of the layers is used — and then
selects the next leader ``v_(k+1)`` among the newly woken nodes with the
Echo/Binary-Selection machinery, using the previous leader ``v_(k-1)`` as
the distinguished node.  Each phase costs ``O(log n)`` slots, and there
are ``D`` phases after the ``O(n)`` startup.

Membership rule: a node takes part in leader selection iff its *first*
message came from the current leader.  In a complete layered network the
only node of layer ``k`` that ever transmits alone is ``v_k`` itself (any
other selection slot collides at every layer-``(k+1)`` node, since those
neighbour all of layer ``k``), so this rule captures exactly layer
``k + 1`` — the set the paper calls ``S``.

The pass message that names ``v_(k+1)`` doubles as the paper's final
"order all neighbours in the previous layer to stop": previous-layer nodes
hear it and never qualify as responders again, so no separate stop slot is
needed (behaviourally identical, one slot cheaper per phase).
"""

from __future__ import annotations

import random
from typing import Any

from ..sim.errors import ProtocolViolationError
from ..sim.messages import COLLISION_MARKER, CollisionMarker, Message
from ..sim.protocol import BroadcastAlgorithm, Protocol
from .echo import (
    EchoOutcome,
    EchoProbe,
    EchoReply,
    HereIAm,
    InitOrder,
    InitStop,
    Probe,
    QuietEchoSchedule,
    Selected,
    SelectionDriver,
    StopAll,
    TokenAnnounce,
    TokenPass,
    classify_echo,
    startup_boundary,
)

__all__ = ["CompleteLayeredBroadcast"]


class _CompleteLayeredProtocol(QuietEchoSchedule, Protocol):
    """Per-node state machine for the layered leader chain.

    :class:`QuietEchoSchedule` supplies the idle hint; it needs no
    CD-specific handling because ``_awaiting`` is cleared exactly when
    the observation window ends (after one slot under ``native_cd``,
    two otherwise).
    """

    def __init__(self, label: int, r: int, rng: random.Random, native_cd: bool = False):
        super().__init__(label, r, rng)
        self.native_cd = native_cd
        self.scheduled: dict[int, Any] = {}
        self.first_sender: int | None = None
        self.was_leader = False
        self.parent: int | None = None  # the previous layer's leader
        self.holding = False
        self.stopped = False
        self._awaiting: tuple[str, int] | None = None
        self._echo_first: int | None = None
        self._driver: SelectionDriver | None = None
        self._init_waiting = False
        self._init_reply_slot: int | None = None

    # -- engine hooks ------------------------------------------------------

    def on_wake(self, step: int, message: Message | None) -> None:
        if message is None:  # the source
            self.was_leader = True
            self._init_waiting = True
            self.scheduled[0] = InitOrder()
        else:
            self.first_sender = message.sender
            self._handle(step, message)

    def next_action(self, step: int) -> Any | None:
        if self.stopped:
            return None
        return self.scheduled.pop(step, None)

    def observe(self, step: int, message: Message | None) -> None:
        if self.holding and self._awaiting is not None:
            kind, base = self._awaiting
            if self.native_cd:
                if step == base + 1:
                    # One slot suffices: silence / single / collision are
                    # directly distinguishable under collision detection.
                    if isinstance(message, CollisionMarker) or message is COLLISION_MARKER:
                        self._conclude(kind, base, EchoOutcome.MANY, None)
                    elif message is None:
                        self._conclude(kind, base, EchoOutcome.EMPTY, None)
                    else:
                        self._conclude(
                            kind, base, EchoOutcome.SINGLE, _reply_label(message)
                        )
                    return
            else:
                if step == base + 1:
                    self._echo_first = _reply_label(message)
                    return
                if step == base + 2:
                    second = _reply_label(message)
                    outcome, label = classify_echo(self._echo_first, second)
                    self._conclude(kind, base, outcome, label)
                    return
        if message is None or isinstance(message, CollisionMarker):
            return
        self._handle(step, message)

    # -- message dispatch ----------------------------------------------------

    def _handle(self, step: int, message: Message) -> None:
        payload = message.payload
        if isinstance(payload, InitOrder):
            self._init_reply_slot = payload.base_slot + 2 * self.label
            self.scheduled[self._init_reply_slot] = HereIAm(self.label)
        elif isinstance(payload, HereIAm):
            if self.label == 0 and self._init_waiting:
                self._init_waiting = False
                self.scheduled[step + 1] = InitStop(token_to=payload.label)
        elif isinstance(payload, InitStop):
            if self._init_reply_slot is not None:
                self.scheduled.pop(self._init_reply_slot, None)
                self._init_reply_slot = None
            if self.label == payload.token_to:
                self.was_leader = True
                self.parent = 0
                self._announce(step + 1)
        elif isinstance(payload, TokenAnnounce):
            self._respond(payload.holder, payload.parent, payload.base_slot, 1, self.r)
        elif isinstance(payload, EchoProbe):
            self._respond(
                payload.holder, payload.parent, payload.base_slot, payload.lo, payload.hi
            )
        elif isinstance(payload, TokenPass):
            if self.label == payload.to and not self.was_leader:
                self.was_leader = True
                self.parent = payload.from_label
                self._announce(step + 1)
        elif isinstance(payload, StopAll):
            self.stopped = True
            self.scheduled.clear()
        elif isinstance(payload, EchoReply):
            pass  # informational: carries the source message to the next layer
        else:
            raise ProtocolViolationError(
                f"node {self.label}: unexpected payload {payload!r}"
            )

    def _respond(self, holder: int, parent: int, base: int, lo: int, hi: int) -> None:
        """Take part in the Echo pair iff woken by the current leader.

        Under native collision detection the second slot (and the
        distinguished parent) are unnecessary: the leader reads the
        outcome straight off slot ``base + 1``.
        """
        if (
            not self.was_leader
            and self.first_sender == holder
            and lo <= self.label <= hi
        ):
            self.scheduled[base + 1] = EchoReply(self.label)
            if not self.native_cd:
                self.scheduled[base + 2] = EchoReply(self.label)
        elif self.label == parent and not self.native_cd:
            self.scheduled[base + 2] = EchoReply(self.label)

    # -- leader side ---------------------------------------------------------

    def _announce(self, slot: int) -> None:
        self.holding = True
        assert self.parent is not None
        self.scheduled[slot] = TokenAnnounce(
            holder=self.label, parent=self.parent, base_slot=slot
        )
        self._awaiting = ("announce", slot)
        self._echo_first = None

    def _conclude(self, kind: str, base: int, outcome: EchoOutcome, label: int | None) -> None:
        """Act on one probe outcome; the next order goes out right after
        the probe's observation window (1 slot with CD, 2 without)."""
        self._awaiting = None
        self._echo_first = None
        next_slot = base + (2 if self.native_cd else 3)
        if outcome is EchoOutcome.SINGLE:
            self._pass_leadership(next_slot, label)
            return
        if kind == "announce":
            if outcome is EchoOutcome.EMPTY:
                # No next layer: this leader sits in layer D.  Order every
                # neighbour to stop and stop as well (paper's termination).
                self.scheduled[next_slot] = StopAll()
                self.holding = False
            else:
                self._driver = SelectionDriver(self.r)
                self._emit_probe(next_slot, self._driver.current_probe)
        else:
            assert self._driver is not None
            step = self._driver.feed(outcome, label)
            if isinstance(step, Selected):
                self._driver = None
                self._pass_leadership(next_slot, step.label)
            else:
                self._emit_probe(next_slot, step)

    def _emit_probe(self, slot: int, probe: Probe) -> None:
        assert self.parent is not None
        self.scheduled[slot] = EchoProbe(
            holder=self.label,
            parent=self.parent,
            lo=probe.lo,
            hi=probe.hi,
            base_slot=slot,
        )
        self._awaiting = ("probe", slot)

    def _pass_leadership(self, slot: int, to: int) -> None:
        self.scheduled[slot] = TokenPass(to=to, from_label=self.label)
        self.holding = False
        self._driver = None


def _reply_label(message: Message | None) -> int | None:
    if message is None:
        return None
    payload = message.payload
    if isinstance(payload, EchoReply):
        return payload.label
    raise ProtocolViolationError(
        f"non-EchoReply payload {payload!r} observed in an Echo slot"
    )


class CompleteLayeredBroadcast(BroadcastAlgorithm):
    """Leader-chain broadcast for complete layered networks (Theorem 4).

    Correct on complete layered networks only — that is the class the
    theorem addresses.  On other topologies the membership rule can select
    leaders that do not wake everything; callers wanting a universal
    algorithm should use :class:`~repro.core.select_and_send.SelectAndSend`.
    """

    deterministic = True

    def __init__(self, native_cd: bool = False) -> None:
        """Args:
            native_cd: Run under the collision-detection model variant —
                each probe costs one slot instead of an Echo pair, and no
                distinguished parent is needed.  The engine must be run
                with ``collision_detection=True``.  This is the Section
                4.1 ablation: it measures exactly what simulating
                collision detection costs.
        """
        self.native_cd = native_cd
        self.name = "complete-layered" + ("+cd" if native_cd else "")
        self._stage_cache_key: tuple[int, int] | None = None
        self._stage_boundary: int | None = None

    def create(self, label: int, r: int, rng: random.Random) -> Protocol:
        return _CompleteLayeredProtocol(label, r, rng, native_cd=self.native_cd)

    def max_steps_hint(self, n: int, r: int) -> int | None:
        log_r = max(1, (r + 1).bit_length())
        return 2 * r + 8 + (n + 2) * (6 * log_r + 30)

    def stage_hint(self, step: int, trace=None) -> str | None:
        """Split a recorded run at the source's ``InitStop`` (its second
        transmission): Part 1 startup vs the leader-chain phases."""
        from ..sim.trace import TraceLevel

        if trace is None or trace.level is not TraceLevel.FULL:
            return None
        key = (id(trace), len(trace.steps))
        if self._stage_cache_key != key:
            self._stage_cache_key = key
            self._stage_boundary = startup_boundary(trace)
        boundary = self._stage_boundary
        if boundary is None or step < boundary:
            return "startup"
        return "leader-chain"
