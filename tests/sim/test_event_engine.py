"""Differential suite for the event-driven adaptive engine.

The :class:`~repro.sim.event.EventDrivenEngine` is a pure execution
strategy: idle-hint polling, slot compression, and the shared channel
kernel must never change what is computed.  This suite locks that down
three ways:

* a matrix of adaptive algorithms x topologies x fault plans asserting
  *slot-for-slot* identical traces, fault counters, and metrics against
  the polling :class:`~repro.sim.engine.SynchronousEngine`;
* identical *failures*: when a protocol violation aborts the reference
  run (Select-and-Send under message loss), the event engine must abort
  with the same error;
* a hypothesis property that :meth:`Protocol.quiet_until` promises are
  honest — a protocol that hints quiet through slot ``s`` must return
  ``None`` from ``next_action`` on every polled slot before ``s``
  (checked on the reference engine, which polls every slot, under
  randomly drawn topologies and fault plans).
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CompleteLayeredBroadcast, SelectAndSend, TokenGossip
from repro.core.echo import QuietEchoSchedule
from repro.obs.metrics import MetricsRegistry
from repro.sim import FaultPlan, QUIET_FOREVER, run_broadcast
from repro.sim.errors import ProtocolViolationError
from repro.sim.messages import CollisionMarker
from repro.sim.protocol import BroadcastAlgorithm, Protocol
from repro.sim.trace import TraceLevel
from repro.topology import (
    gnp_connected,
    km_hard_layered,
    path,
    random_tree,
    uniform_complete_layered,
)

#: (name, network builder, algorithm builder, collision_detection).
#: Select-and-Send runs on arbitrary topologies; Complete-Layered only
#: on the complete layered class it is correct for.  TokenGossip wraps
#: S&S without implementing ``quiet_until`` — it exercises the unhinted
#: default (polled every slot) on the event engine.
CASES = {
    "ss-path": (lambda: path(24, relabel="shuffled", seed=5), SelectAndSend, False),
    "ss-tree": (lambda: random_tree(32, seed=3), SelectAndSend, False),
    "ss-gnp": (lambda: gnp_connected(48, 0.12, seed=7), SelectAndSend, False),
    "cl-uniform": (
        lambda: uniform_complete_layered(48, 5, relabel_seed=2),
        CompleteLayeredBroadcast,
        False,
    ),
    "cl-km": (lambda: km_hard_layered(48, 6, seed=4), CompleteLayeredBroadcast, False),
    "cl-native-cd": (
        lambda: uniform_complete_layered(48, 5, relabel_seed=2),
        lambda: CompleteLayeredBroadcast(native_cd=True),
        True,
    ),
    "gossip-unhinted": (lambda: path(10), TokenGossip, False),
}


def _crash_jam_delay_plan(net):
    """All fault families except loss (the adaptive token algorithms are
    not loss-tolerant; the loss case is tested as identical *failure*)."""
    labels = sorted(set(net.nodes) - {net.source})
    return FaultPlan(
        crashes=((labels[-1], 9),),
        jams=tuple((slot, labels[0]) for slot in range(6)),
        wake_delays=((labels[1], 7),),
        seed=23,
    )


PLANS = {
    "none": lambda net: None,
    "crash-jam-delay": _crash_jam_delay_plan,
}


def _run(net, make_algo, engine, cd, plan):
    metrics = MetricsRegistry()
    result = run_broadcast(
        net,
        make_algo(),
        engine=engine,
        collision_detection=cd,
        faults=plan,
        metrics=metrics,
        trace_level=TraceLevel.FULL,
        require_completion=False,
        max_steps=4000,
    )
    return result, metrics.to_dict()


@pytest.mark.parametrize("plan_name", sorted(PLANS))
@pytest.mark.parametrize("case", sorted(CASES))
def test_event_engine_slot_identical(case, plan_name):
    build, make_algo, cd = CASES[case]
    net = build()
    plan = PLANS[plan_name](net)

    reference, ref_metrics = _run(net, make_algo, "reference", cd, plan)
    event, ev_metrics = _run(net, make_algo, "event", cd, plan)

    key = (case, plan_name)
    assert event.completed == reference.completed, key
    assert event.time == reference.time, key
    assert event.informed == reference.informed, key
    assert event.wake_times == reference.wake_times, key
    assert event.layer_times == reference.layer_times, key
    # Slot-for-slot: every synthesized (compressed) slot must appear in
    # the trace exactly as the reference engine's executed slot does.
    assert event.trace.steps == reference.trace.steps, key
    assert event.trace.informed_counts == reference.trace.informed_counts, key
    assert event.trace.wake_times == reference.trace.wake_times, key
    assert event.fault_counters == reference.fault_counters, key
    assert ev_metrics == ref_metrics, key


def test_step_hook_sees_every_compressed_slot():
    """The step-hook stream must contain one call per slot — including
    the slots the event engine fast-forwarded over in a single jump."""
    from repro.sim import SynchronousEngine
    from repro.sim.event import EventDrivenEngine

    net = path(24, relabel="shuffled", seed=5)
    streams = {}
    for name, engine_cls in (
        ("reference", SynchronousEngine),
        ("event", EventDrivenEngine),
    ):
        hooked: list[tuple[int, tuple[int, ...]]] = []
        engine = engine_cls(
            net, SelectAndSend(),
            step_hook=lambda step, tx: hooked.append((step, tx)),
        )
        engine.run(4000)
        streams[name] = hooked
    assert streams["event"] == streams["reference"]
    # Sanity: the stream really is per-slot and gap-free.
    assert [step for step, _ in streams["event"]] == list(
        range(len(streams["event"]))
    )


def test_event_engine_fails_identically_under_loss():
    """S&S Echo is not loss-tolerant: under 30% loss the reference run
    aborts with a protocol violation, and the event engine must abort
    with exactly the same error (not silently diverge)."""
    net = gnp_connected(48, 0.12, seed=7)
    labels = sorted(set(net.nodes) - {net.source})
    plan = FaultPlan(
        crashes=((labels[-1], 9),),
        jams=tuple((slot, labels[0]) for slot in range(6)),
        loss_probability=0.3,
        wake_delays=((labels[1], 7),),
        seed=23,
    )

    def outcome(engine):
        try:
            run_broadcast(
                net, SelectAndSend(), engine=engine, faults=plan,
                require_completion=False, max_steps=4000,
            )
        except ProtocolViolationError as exc:
            return str(exc)
        return None

    reference = outcome("reference")
    assert reference is not None  # the plan does break this run
    assert outcome("event") == reference


# ---------------------------------------------------------------------------
# Hint honesty: quiet promises can never hide an action.


class _HintChecked(Protocol):
    """Wrapper asserting the inner protocol honours its quiet promises.

    Runs on the *reference* engine (polled every slot).  Whenever the
    inner hint promises quiet through ``s``, every polled slot before
    ``s`` must yield ``next_action(...) is None`` — the actionable half
    of the ``quiet_until`` contract.  A message delivery voids the
    promise, exactly as the event engine treats it.
    """

    def __init__(self, inner: Protocol):
        super().__init__(inner.label, inner.r, inner.rng)
        self._inner = inner
        self._promised_until = -1
        self._promised_at = -1

    def on_wake(self, step, message):
        self._inner.on_wake(step, message)

    def next_action(self, step):
        quiet = self._inner.quiet_until(step)
        assert quiet >= step, (
            f"node {self.label}: quiet_until({step}) = {quiet} points backwards"
        )
        action = self._inner.next_action(step)
        if step < self._promised_until:
            assert action is None, (
                f"node {self.label} acted in slot {step} despite promising "
                f"(at slot {self._promised_at}) quiet until "
                f"{self._promised_until}"
            )
        if quiet > step:
            assert action is None, (
                f"node {self.label} acted in slot {step} while hinting "
                f"quiet until {quiet}"
            )
            if quiet > self._promised_until:
                self._promised_until = quiet
                self._promised_at = step
        return action

    def observe(self, step, message):
        if message is not None and not isinstance(message, CollisionMarker):
            # A real delivery voids the promise (the event engine re-polls
            # receivers).  Silence and CD markers do NOT: keeping the
            # recorded promise across them is what catches a protocol
            # whose quiet window is secretly marker-sensitive.
            self._promised_until = -1
        self._inner.observe(step, message)


class _HintCheckedAlgorithm(BroadcastAlgorithm):
    def __init__(self, inner: BroadcastAlgorithm):
        self._inner = inner
        self.name = f"hint-checked({inner.name})"
        self.deterministic = inner.deterministic

    def create(self, label: int, r: int, rng: random.Random) -> Protocol:
        return _HintChecked(self._inner.create(label, r, rng))

    def max_steps_hint(self, n: int, r: int) -> int | None:
        return self._inner.max_steps_hint(n, r)


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=6, max_value=40),
    topo_seed=st.integers(min_value=0, max_value=10_000),
    family=st.sampled_from(["path", "tree", "gnp"]),
    crash_slot=st.integers(min_value=0, max_value=60),
    jam_len=st.integers(min_value=0, max_value=8),
    delay_until=st.integers(min_value=0, max_value=40),
)
def test_quiet_until_never_hides_an_action(
    n, topo_seed, family, crash_slot, jam_len, delay_until
):
    if family == "path":
        net = path(n, relabel="shuffled", seed=topo_seed)
    elif family == "tree":
        net = random_tree(n, seed=topo_seed)
    else:
        net = gnp_connected(n, min(0.9, 4.0 / n), seed=topo_seed)
    labels = sorted(set(net.nodes) - {net.source})
    plan = FaultPlan(
        crashes=((labels[-1], crash_slot),),
        jams=tuple((slot, labels[0]) for slot in range(jam_len)),
        wake_delays=((labels[min(1, len(labels) - 1)], delay_until),),
        seed=topo_seed,
    )
    try:
        run_broadcast(
            net,
            _HintCheckedAlgorithm(SelectAndSend()),
            faults=plan,
            require_completion=False,
            max_steps=3000,
        )
    except ProtocolViolationError:
        # Echo is not fault-tolerant: a crash or jam mid-procedure can make
        # its outcomes inconsistent and abort the run.  That is an algorithm
        # property, not a hint violation — the wrapper's assertions (plain
        # AssertionError) are what this test is about, and they fired on
        # every polled slot up to the abort.
        pass


@settings(max_examples=10, deadline=None)
@given(
    n=st.integers(min_value=8, max_value=48),
    depth=st.integers(min_value=2, max_value=6),
    relabel_seed=st.integers(min_value=0, max_value=1000),
)
def test_quiet_until_never_hides_an_action_layered(n, depth, relabel_seed):
    depth = min(depth, n - 2)
    net = uniform_complete_layered(n, depth, relabel_seed=relabel_seed)
    run_broadcast(
        net,
        _HintCheckedAlgorithm(CompleteLayeredBroadcast()),
        require_completion=True,
    )


# ---------------------------------------------------------------------------
# Unit coverage for the hint itself.


def test_quiet_echo_schedule_hint_values():
    class _Node(QuietEchoSchedule):
        def __init__(self):
            self.stopped = False
            self.scheduled = {}
            self._awaiting = None

    node = _Node()
    # Nothing scheduled, nothing awaited: quiet forever (until spoken to).
    assert node.quiet_until(3) == QUIET_FOREVER
    # Earliest scheduled slot at or after `step` bounds the promise.
    node.scheduled = {10: "x", 7: "y", 2: "z"}
    assert node.quiet_until(3) == 7
    assert node.quiet_until(8) == 10
    assert node.quiet_until(11) == QUIET_FOREVER
    # Inside an Echo observation window silence is information: no promise.
    node._awaiting = ("announce", 4)
    assert node.quiet_until(5) == 5
    assert node.quiet_until(6) == 6
    # Before the window opens, the window's first slot caps the promise.
    assert node.quiet_until(4) == 5
    # A stopped node never acts again.
    node.stopped = True
    assert node.quiet_until(0) == QUIET_FOREVER


def test_fault_plan_event_slots():
    plan = FaultPlan(
        crashes=((5, 12), (6, 3)),
        jams=((0, 5), (9, 6)),
        loss_probability=0.5,
        wake_delays=((7, 20),),
        seed=1,
    )
    # Crash slots, jam slots, and wake-delay expiries, sorted and deduped;
    # loss has no schedule (it is per-delivery) so it contributes nothing.
    assert plan.event_slots() == (0, 3, 9, 12, 20)
