"""Declarative, seed-deterministic fault injection.

The paper's lower bound (Section 3) is built on an adversary that jams
the channel; related work (Czumaj–Davies randomized broadcasting without
network knowledge, crash-prone radio models) studies how algorithms
degrade when the network misbehaves.  This module gives the simulator a
single declarative description of such misbehaviour — a
:class:`FaultPlan` — that **all three engines** apply with identical
semantics, so the differential suite can assert bit-identical faulty
executions across the reference, fast, and batched paths.

Four fault families are supported:

* **Node crashes** — ``(label, slot)``: from slot ``slot`` onward the
  node is dead; it never transmits, receives, or observes again.  A
  sleeping node that crashes can never be informed.
* **Channel jamming** — ``(slot, receiver)``: in that slot the receiver
  hears noise, indistinguishable from silence, regardless of how many
  in-neighbours transmit.  This is the adversary of the Section 3 lower
  bound made operational.
* **Message loss** — every would-be delivery (exactly one transmitting
  in-neighbour at a live, non-transmitting node that is not jammed) is
  dropped independently with probability ``loss_probability``.  The loss
  coin of ``(receiver, slot)`` is the counter-based hash of
  :mod:`repro.sim.coins` keyed by :func:`derive_fault_seed`, so scalar
  and vectorised engines flip the *same* coins.
* **Wake-up delays** — ``(label, slot)``: the node ignores every message
  received strictly before ``slot`` (an adversarially delayed wake-up).
  The source, awake before slot 0, is unaffected.

Ordering within one slot (also specified in ``docs/MODEL.md``):
crash -> transmit -> channel resolution -> jam -> loss -> wake-delay ->
deliver/wake.  A delivery suppressed at one stage is not re-counted at a
later one.

Determinism: the plan carries its own ``seed``; the per-run loss stream
is keyed by ``derive_fault_seed(plan.seed, run_seed)``, so Monte-Carlo
trials see independent loss realisations while every engine reproduces
the same execution for the same ``(plan, run seed)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Mapping, Sequence

import numpy as np

from .coins import CoinSource, coin_uniform, node_key
from .errors import ConfigurationError
from .network import RadioNetwork

__all__ = [
    "FaultPlan",
    "FaultCounters",
    "CompiledFaults",
    "derive_fault_seed",
    "compile_faults",
]

#: Sentinel crash slot for nodes that never crash (mirrors fast.ASLEEP).
NEVER: int = np.iinfo(np.int64).max


def derive_fault_seed(plan_seed: int, run_seed: int) -> int:
    """Loss-stream seed for one run: a 64-bit mix of plan and run seeds.

    Mixing the run seed in gives every Monte-Carlo trial its own loss
    realisation; using :func:`repro.sim.coins.node_key` keeps the
    derivation inside the shared splitmix machinery, so the scalar
    (:func:`~repro.sim.coins.coin_uniform`) and vectorised
    (:class:`~repro.sim.coins.CoinSource`) loss coins agree bit for bit.
    """
    return node_key(plan_seed, run_seed)


def _normalize_pairs(pairs: Any, what: str) -> tuple[tuple[int, int], ...]:
    out = []
    for pair in pairs:
        try:
            a, b = pair
        except (TypeError, ValueError):
            raise ConfigurationError(
                f"{what} entries must be (int, int) pairs, got {pair!r}"
            ) from None
        out.append((int(a), int(b)))
    return tuple(sorted(out))


@dataclass(frozen=True)
class FaultPlan:
    """Declarative description of every fault injected into one execution.

    All fields are normalised to sorted tuples at construction, so plans
    are hashable, order-insensitive, and byte-stable under
    :meth:`to_dict` — which is what lets sweep points carry a plan into
    their content-hashed cache keys.

    Attributes:
        crashes: ``(label, slot)`` pairs; the node is dead from ``slot``.
        jams: ``(slot, receiver)`` pairs; the receiver hears noise in
            that slot.
        loss_probability: Independent per-delivery drop probability.
        wake_delays: ``(label, slot)`` pairs; the node ignores messages
            received before ``slot``.
        seed: Fault-stream seed for the probabilistic loss coins.
    """

    crashes: tuple[tuple[int, int], ...] = ()
    jams: tuple[tuple[int, int], ...] = ()
    loss_probability: float = 0.0
    wake_delays: tuple[tuple[int, int], ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        object.__setattr__(self, "crashes", _normalize_pairs(self.crashes, "crashes"))
        object.__setattr__(self, "jams", _normalize_pairs(self.jams, "jams"))
        object.__setattr__(
            self, "wake_delays", _normalize_pairs(self.wake_delays, "wake_delays")
        )
        object.__setattr__(self, "loss_probability", float(self.loss_probability))
        object.__setattr__(self, "seed", int(self.seed))
        if not 0.0 <= self.loss_probability <= 1.0:
            raise ConfigurationError(
                f"loss_probability must be in [0, 1], got {self.loss_probability}"
            )
        for what, pairs, key_pos in (
            ("crashes", self.crashes, 0),
            ("wake_delays", self.wake_delays, 0),
        ):
            labels = [pair[key_pos] for pair in pairs]
            if len(labels) != len(set(labels)):
                raise ConfigurationError(f"duplicate labels in {what}: {labels}")
        if len(self.jams) != len(set(self.jams)):
            raise ConfigurationError("duplicate (slot, receiver) entries in jams")
        for what, pairs, slot_pos in (
            ("crashes", self.crashes, 1),
            ("jams", self.jams, 0),
            ("wake_delays", self.wake_delays, 1),
        ):
            for pair in pairs:
                if pair[slot_pos] < 0:
                    raise ConfigurationError(
                        f"negative slot in {what} entry {pair}"
                    )

    # ------------------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        """Whether the plan injects nothing (inert plans are no-ops)."""
        return (
            not self.crashes
            and not self.jams
            and not self.wake_delays
            and self.loss_probability == 0.0
        )

    def event_slots(self) -> tuple[int, ...]:
        """Sorted slots at which some *scheduled* fault event lands.

        Covers crash slots, jammed slots, and wake-delay expiry slots —
        the discrete events whose slot boundaries the event-driven
        engine must not compress across (see
        :class:`~repro.sim.event.EventDrivenEngine`).  Probabilistic
        loss has no schedule: it only acts on actual deliveries, which
        by definition never happen inside a compressed silent window.
        """
        slots = {slot for _, slot in self.crashes}
        slots.update(slot for slot, _ in self.jams)
        slots.update(slot for _, slot in self.wake_delays)
        return tuple(sorted(slots))

    def validate_for(self, network: RadioNetwork) -> None:
        """Check every referenced label exists in ``network``."""
        for what, labels in (
            ("crashes", (label for label, _ in self.crashes)),
            ("jams", (receiver for _, receiver in self.jams)),
            ("wake_delays", (label for label, _ in self.wake_delays)),
        ):
            for label in labels:
                if label not in network:
                    raise ConfigurationError(
                        f"fault plan {what} references label {label}, "
                        f"which is not in the network"
                    )

    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-safe, byte-stable form (the ``--faults`` file format)."""
        return {
            "crashes": [list(pair) for pair in self.crashes],
            "jams": [list(pair) for pair in self.jams],
            "loss_probability": self.loss_probability,
            "wake_delays": [list(pair) for pair in self.wake_delays],
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultPlan":
        """Build a plan from a JSON document; rejects unknown fields."""
        known = {"crashes", "jams", "loss_probability", "wake_delays", "seed"}
        unknown = set(payload) - known
        if unknown:
            raise ConfigurationError(
                f"unknown fault plan fields: {sorted(unknown)}"
            )
        return cls(
            crashes=tuple(tuple(p) for p in payload.get("crashes", ())),
            jams=tuple(tuple(p) for p in payload.get("jams", ())),
            loss_probability=payload.get("loss_probability", 0.0),
            wake_delays=tuple(tuple(p) for p in payload.get("wake_delays", ())),
            seed=payload.get("seed", 0),
        )


@dataclass
class FaultCounters:
    """What the faults actually did to one execution.

    Attributes:
        crashed_nodes: Crashes whose slot was reached during the run.
        jammed_slots: ``(slot, receiver)`` jam events applied (their slot
            executed), whether or not they suppressed a delivery.
        lost_messages: Deliveries dropped by the loss coin.
        delayed_wakes: Would-be wake-ups ignored because the receiver's
            wake delay had not elapsed.
    """

    crashed_nodes: int = 0
    jammed_slots: int = 0
    lost_messages: int = 0
    delayed_wakes: int = 0

    def snapshot(self) -> "FaultCounters":
        """Immutable-by-convention copy for storing on a result."""
        return replace(self)

    def to_dict(self) -> dict:
        return {
            "crashed_nodes": self.crashed_nodes,
            "jammed_slots": self.jammed_slots,
            "lost_messages": self.lost_messages,
            "delayed_wakes": self.delayed_wakes,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, int]) -> "FaultCounters":
        return cls(**{str(k): int(v) for k, v in payload.items()})


def scalar_loss_coin(fault_seed: int, receiver: int, step: int) -> float:
    """The loss coin the reference engine flips for one delivery.

    Bit-identical to ``CoinSource.for_run(fault_seed, labels).uniform(step)``
    at the receiver's position — the parity the differential suite pins.
    """
    return coin_uniform(fault_seed, receiver, step)


@dataclass
class CompiledFaults:
    """A :class:`FaultPlan` lowered onto one engine's node indexing.

    Shared by :class:`~repro.sim.fast.FastEngine` (coin keys of shape
    ``(n,)``) and :class:`~repro.sim.fast.BatchedFastEngine` (``(T, n)``,
    one loss stream per trial).

    Attributes:
        crash_slots: ``(n,)`` int64; :data:`NEVER` where the node never
            crashes.
        deaf_until: ``(n,)`` int64; 0 where the node has no wake delay.
        jam_indices: slot -> engine indices jammed in that slot.
        crash_counts: slot -> number of crashes activating in that slot.
        loss_probability: Per-delivery drop probability.
        loss_coins: Slot-indexed loss coins, or ``None`` when lossless.
    """

    crash_slots: np.ndarray
    deaf_until: np.ndarray
    jam_indices: dict[int, np.ndarray] = field(default_factory=dict)
    crash_counts: dict[int, int] = field(default_factory=dict)
    loss_probability: float = 0.0
    loss_coins: CoinSource | None = None
    has_crashes: bool = False
    has_delays: bool = False


def compile_faults(
    plan: FaultPlan,
    network: RadioNetwork,
    index: Mapping[int, int],
    labels: np.ndarray,
    fault_seeds: Sequence[int],
) -> CompiledFaults:
    """Lower ``plan`` onto an engine's index space.

    Args:
        plan: The declarative plan (validated against ``network`` here).
        network: The topology the engine runs on.
        index: label -> engine array index.
        labels: The engine's label array (coin keys are per *label*).
        fault_seeds: One derived fault seed per trial
            (:func:`derive_fault_seed`); a single-element sequence yields
            ``(n,)`` coins, more yield ``(trials, n)``.
    """
    plan.validate_for(network)
    n = network.n
    crash_slots = np.full(n, NEVER, dtype=np.int64)
    crash_counts: dict[int, int] = {}
    for label, slot in plan.crashes:
        crash_slots[index[label]] = slot
        crash_counts[slot] = crash_counts.get(slot, 0) + 1
    deaf_until = np.zeros(n, dtype=np.int64)
    for label, slot in plan.wake_delays:
        deaf_until[index[label]] = slot
    jam_indices: dict[int, list[int]] = {}
    for slot, receiver in plan.jams:
        jam_indices.setdefault(slot, []).append(index[receiver])
    loss_coins = None
    if plan.loss_probability > 0.0:
        if len(fault_seeds) == 1:
            loss_coins = CoinSource.for_run(fault_seeds[0], labels)
        else:
            loss_coins = CoinSource.for_batch(list(fault_seeds), labels)
    return CompiledFaults(
        crash_slots=crash_slots,
        deaf_until=deaf_until,
        jam_indices={
            slot: np.array(sorted(idx), dtype=np.intp)
            for slot, idx in jam_indices.items()
        },
        crash_counts=crash_counts,
        loss_probability=plan.loss_probability,
        loss_coins=loss_coins,
        has_crashes=bool(plan.crashes),
        has_delays=bool(plan.wake_delays),
    )
