"""Failure injection: the Lemma 9 verifier must actually detect tampering.

A verifier that always says "histories match" would vacuously pass every
positive test; these tests corrupt a finished construction and check the
verifier notices.
"""

from __future__ import annotations

import dataclasses

from repro.adversary import LowerBoundConstruction, verify_construction
from repro.baselines import RoundRobinBroadcast
from repro.sim.network import RadioNetwork


def _build(n=256, d=8):
    construction = LowerBoundConstruction(RoundRobinBroadcast(n - 1), n, d)
    return construction.build()


def test_tampered_network_fails_history_check():
    result = _build()
    net = result.network
    # Splice an extra edge between the source and some final-layer node:
    # the real run then informs that node far too early and the recorded
    # transmitter sets diverge.
    extra = result.final_layer[0]
    edges = [
        (u, v)
        for u, nbrs in net.out_neighbors.items()
        for v in nbrs
        if u < v
    ]
    edges.append((0, extra))
    tampered_net = RadioNetwork.undirected(net.nodes, edges, r=net.r)
    tampered = dataclasses.replace(result, network=tampered_net)
    report = verify_construction(tampered, RoundRobinBroadcast(255))
    assert not report.histories_match
    assert report.first_mismatch is not None


def test_tampered_abstract_record_fails():
    result = _build()
    # Corrupt one recorded abstract transmitter set mid-horizon.
    target = result.horizon // 2
    corrupted = dict(result.abstract_transmitters)
    corrupted[target] = corrupted.get(target, frozenset()) | frozenset({0})
    tampered = dataclasses.replace(result, abstract_transmitters=corrupted)
    report = verify_construction(tampered, RoundRobinBroadcast(255))
    assert not report.histories_match


def test_wrong_algorithm_fails_verification():
    """Verifying G_A built for round-robin against a different-period
    round-robin must mismatch: G_A is algorithm-specific."""
    result = _build()
    report = verify_construction(result, RoundRobinBroadcast(127))
    assert not report.histories_match


def test_inflated_silence_floor_detected():
    result = _build()
    tampered = dataclasses.replace(
        result, silence_floor=result.horizon * 50  # absurd claim
    )
    report = verify_construction(tampered, RoundRobinBroadcast(255))
    # Node D/2-1 certainly transmits before such a floor.
    assert not report.silence_respected
