#!/usr/bin/env python3
"""Scenario: Section 4.3 — refuting a published lower-bound claim, live.

Clementi, Monti and Silvestri claimed their directed Omega(n log D) lower
bound extends to undirected complete layered networks.  Kowalski & Pelc
disproved the extension by exhibiting the O(n + D log n) Complete-Layered
algorithm.  This example re-enacts the refutation: it runs the algorithm
on progressively larger layered networks with D ~ 2 sqrt(n) (so
D is unbounded but o(n)) and watches measured time fall below the claimed
bound and keep diverging from it.

Run:  python examples/layered_refutation.py
"""

import math

from repro.analysis import render_table
from repro.core import CompleteLayeredBroadcast
from repro.sim import run_broadcast
from repro.topology import uniform_complete_layered


def main() -> None:
    rows = []
    for n in [256, 512, 1024, 2048]:
        d = 2 * int(math.sqrt(n))
        net = uniform_complete_layered(n, d)
        result = run_broadcast(net, CompleteLayeredBroadcast(), require_completion=True)
        claimed = n * math.log2(d)
        theorem4 = n + d * math.log2(n)
        rows.append(
            [n, d, result.time,
             f"{theorem4:.0f}", f"{claimed:.0f}", result.time / claimed]
        )
    print(
        render_table(
            ["n", "D", "measured slots", "n + D log n  (Thm 4)",
             "n log D  (claimed LB)", "measured/claim"],
            rows,
            title="Complete-Layered vs the refuted Omega(n log D) claim",
        )
    )
    print()
    print(
        "The measured/claim column keeps falling: no Omega(n log D) lower\n"
        "bound can hold for undirected complete layered networks, exactly\n"
        "as Section 4.3 argues.  (For directed layered networks the CMS\n"
        "bound stands - the refutation is about the undirected extension.)"
    )


if __name__ == "__main__":
    main()
