"""Tests for the radio network model."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.errors import NetworkError
from repro.sim.network import RadioNetwork


def test_basic_undirected_construction():
    net = RadioNetwork.undirected([0, 1, 2], [(0, 1), (1, 2)])
    assert net.n == 3
    assert net.nodes == (0, 1, 2)
    assert net.r == 2
    assert not net.is_directed
    assert net.out_neighbors[1] == (0, 2)
    assert net.in_neighbors[1] == (0, 2)


def test_explicit_r_is_kept():
    net = RadioNetwork.undirected([0, 5], [(0, 5)], r=9)
    assert net.r == 9


def test_source_required():
    with pytest.raises(NetworkError, match="source"):
        RadioNetwork.undirected([1, 2], [(1, 2)])


def test_self_loop_rejected():
    with pytest.raises(NetworkError, match="self-loop"):
        RadioNetwork.undirected([0, 1], [(0, 0)])


def test_unknown_endpoint_rejected():
    with pytest.raises(NetworkError, match="unknown node"):
        RadioNetwork.undirected([0, 1], [(0, 2)])


def test_unreachable_node_rejected():
    with pytest.raises(NetworkError, match="unreachable"):
        RadioNetwork.undirected([0, 1, 2, 3], [(0, 1), (2, 3)])


def test_label_above_r_rejected():
    with pytest.raises(NetworkError, match="exceeds"):
        RadioNetwork.undirected([0, 7], [(0, 7)], r=5)


def test_negative_label_rejected():
    with pytest.raises(NetworkError):
        RadioNetwork.undirected([0, -1], [(0, -1)])


def test_directed_reachability_uses_out_edges():
    # 0 -> 1 -> 2 works; all nodes reachable even though 2 has no out-edges.
    net = RadioNetwork.directed([0, 1, 2], [(0, 1), (1, 2)])
    assert net.is_directed
    assert net.out_neighbors[0] == (1,)
    assert net.in_neighbors[2] == (1,)
    # Reverse orientation leaves 1, 2 unreachable.
    with pytest.raises(NetworkError, match="unreachable"):
        RadioNetwork.directed([0, 1, 2], [(1, 0), (2, 1)])


def test_layers_and_radius_path():
    net = RadioNetwork.undirected(range(5), [(i, i + 1) for i in range(4)])
    assert net.radius == 4
    assert net.layers() == [(0,), (1,), (2,), (3,), (4,)]
    assert net.distances_from_source()[4] == 4


def test_layers_star():
    net = RadioNetwork.undirected(range(6), [(0, i) for i in range(1, 6)])
    assert net.radius == 1
    assert net.layers()[1] == (1, 2, 3, 4, 5)


def test_degree_helpers():
    net = RadioNetwork.undirected(range(4), [(0, 1), (0, 2), (0, 3), (1, 2)])
    assert net.degree(0) == 3
    assert net.in_degree(0) == 3
    assert net.max_in_degree == 3
    assert net.num_edges == 4


def test_is_complete_layered_positive():
    # 1 source, layer sizes 1-2-2, all consecutive-layer pairs adjacent.
    edges = [(0, 1), (0, 2), (1, 3), (1, 4), (2, 3), (2, 4)]
    net = RadioNetwork.undirected(range(5), edges)
    assert net.is_complete_layered()


def test_is_complete_layered_negative_missing_edge():
    edges = [(0, 1), (0, 2), (1, 3), (2, 3), (1, 4)]  # (2,4) missing
    net = RadioNetwork.undirected(range(5), edges)
    assert not net.is_complete_layered()


def test_is_complete_layered_negative_same_layer_edge():
    edges = [(0, 1), (0, 2), (1, 2)]
    net = RadioNetwork.undirected(range(3), edges)
    assert not net.is_complete_layered()


def test_to_networkx_round_trip():
    edges = [(0, 1), (1, 2), (2, 3)]
    net = RadioNetwork.undirected(range(4), edges)
    graph = net.to_networkx()
    again = RadioNetwork.from_networkx(graph)
    assert again.out_neighbors == net.out_neighbors


def test_as_directed_doubles_edges():
    net = RadioNetwork.undirected(range(3), [(0, 1), (1, 2)])
    directed = net.as_directed()
    assert directed.is_directed
    assert directed.out_neighbors[1] == (0, 2)
    assert directed.in_neighbors[1] == (0, 2)
    assert directed.num_edges == 4


def test_describe_mentions_basic_stats():
    net = RadioNetwork.undirected(range(3), [(0, 1), (1, 2)])
    text = net.describe()
    assert "n=3" in text and "D=2" in text


def test_contains_and_iter():
    net = RadioNetwork.undirected(range(3), [(0, 1), (1, 2)])
    assert 2 in net and 5 not in net
    assert list(net) == [0, 1, 2]


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=2, max_value=40), st.randoms(use_true_random=False))
def test_random_tree_layers_partition_nodes(n, rng):
    """Layers always partition the node set and respect BFS distances."""
    edges = [(i, rng.randrange(i)) for i in range(1, n)]
    net = RadioNetwork.undirected(range(n), edges)
    layers = net.layers()
    seen = [v for layer in layers for v in layer]
    assert sorted(seen) == list(range(n))
    dist = net.distances_from_source()
    for j, layer in enumerate(layers):
        for v in layer:
            assert dist[v] == j
    # Radius equals the largest distance.
    assert net.radius == max(dist.values())
