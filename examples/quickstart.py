#!/usr/bin/env python3
"""Quickstart: broadcast on an ad hoc radio network in a dozen lines.

Builds a random multi-hop network, runs the paper's optimal randomized
broadcasting algorithm (Theorem 1) and the deterministic Select-and-Send
(Theorem 3), and prints what happened.

Run:  python examples/quickstart.py
"""

from repro import run_broadcast, topology
from repro.core import OptimalRandomizedBroadcasting, SelectAndSend


def main() -> None:
    # A unit-disk graph: n transceivers dropped in the unit square, edges
    # between pairs within radio range -- the canonical ad hoc network.
    net = topology.random_geometric(150, seed=42)
    print(net.describe())

    randomized = OptimalRandomizedBroadcasting(net.r, stage_constant=8)
    result = run_broadcast(net, randomized, seed=7)
    print(
        f"{result.algorithm}: informed all {result.informed} nodes "
        f"in {result.time} slots (radius D = {result.radius})"
    )

    deterministic = SelectAndSend()
    result = run_broadcast(net, deterministic)
    print(
        f"{result.algorithm}: informed all {result.informed} nodes "
        f"in {result.time} slots"
    )

    # Per-layer progress of the randomized run: when each BFS shell of the
    # network was fully informed.
    result = run_broadcast(net, randomized, seed=7)
    for layer_index, slot in enumerate(result.layer_times):
        print(f"  layer {layer_index:2d} fully informed by slot {slot}")


if __name__ == "__main__":
    main()
