"""Baseline broadcasting algorithms the paper compares against."""

from .bgi import BGIBroadcast, default_phase_length
from .centralized import CentralizedGreedySchedule, greedy_broadcast_schedule
from .interleaved import InterleavedBroadcast
from .known_neighbors import KnownNeighborsDFS
from .round_robin import RoundRobinBroadcast
from .selective_schedule import SelectiveFamilyBroadcast

__all__ = [
    "BGIBroadcast",
    "CentralizedGreedySchedule",
    "InterleavedBroadcast",
    "KnownNeighborsDFS",
    "RoundRobinBroadcast",
    "SelectiveFamilyBroadcast",
    "default_phase_length",
    "greedy_broadcast_schedule",
]
