"""BGI randomized broadcast (Bar-Yehuda, Goldreich, Itai 1992).

The best previously known randomized algorithm, running in expected time
``O(D log n + log^2 n)`` — the baseline Theorem 1 improves on.

Mechanism (procedure *Decay*): time is divided into phases of
``2 ceil(log2 n)`` slots.  At the start of each phase every node informed
*before* the phase begins starts a Decay run: it transmits in the first
slot and keeps transmitting while fair coin flips come up heads, so it is
active in slot ``l`` of the phase with probability ``2^-l``.  For an
uninformed node with at least one informed neighbour, each phase delivers
a message with constant probability.

The paper's Section 2 contrasts this with its stage design: Decay's phase
sweeps all ``log n`` probability scales, while a Kowalski–Pelc stage sweeps
only ``log(n/D)`` scales plus a single universal-sequence slot — that is
the entire source of the ``D log n`` vs ``D log(n/D)`` separation (E1/E9).
"""

from __future__ import annotations

import random

import numpy as np

from ..sim.errors import ConfigurationError
from ..sim.protocol import BroadcastAlgorithm, ObliviousTransmitter, Protocol

__all__ = ["BGIBroadcast", "default_phase_length"]


def default_phase_length(r: int) -> int:
    """BGI's phase length ``2 ceil(log2 n)`` with ``n`` replaced by ``r + 1``.

    In the ad hoc model nodes know only the label bound ``r`` (linear in
    ``n``), so the classic ``2 ceil(log Delta)`` is instantiated with the
    only bound available.
    """
    return 2 * max(1, (r + 1 - 1).bit_length())


class _DecayProtocol(ObliviousTransmitter):
    """Per-node Decay state machine for the reference engine."""

    def __init__(self, label: int, r: int, rng: random.Random, phase_len: int):
        super().__init__(label, r, rng)
        self._phase_len = phase_len
        self._active_phase = -1  # phase currently being decayed in
        self._active = False

    def wants_to_transmit(self, step: int) -> bool:
        phase, offset = divmod(step, self._phase_len)
        phase_start = phase * self._phase_len
        if self.wake_step is None or self.wake_step >= phase_start:
            return False  # informed mid-phase: wait for the next phase
        if offset == 0:
            self._active_phase = phase
            self._active = True
            return True
        if self._active_phase != phase or not self._active:
            return False
        # Continue while the coin keeps coming up heads.
        self._active = self.coin(step) < 0.5
        return self._active


class BGIBroadcast(BroadcastAlgorithm):
    """BGI Decay broadcast, runnable on both engines.

    Args:
        r: Label bound.
        phase_len: Slots per Decay phase; defaults to ``2 ceil(log2(r+1))``.
            E9 uses shortened phases to show why Decay cannot simply be
            truncated (the paper's Section 2 remark).
    """

    deterministic = False

    def __init__(self, r: int, phase_len: int | None = None):
        if phase_len is None:
            phase_len = default_phase_length(r)
        if phase_len < 1:
            raise ConfigurationError(f"phase_len must be positive, got {phase_len}")
        self.phase_len = phase_len
        self.name = f"bgi-decay(L={phase_len})"
        # Fast-engine per-run state (reset by the engine via reset_run).
        self._active_mask: np.ndarray | None = None
        self._active_phase: int = -1

    # -- reference engine -------------------------------------------------

    def create(self, label: int, r: int, rng: random.Random) -> Protocol:
        return _DecayProtocol(label, r, rng, self.phase_len)

    # -- fast engine -------------------------------------------------------

    def reset_run(self, shape: int | tuple[int, int]) -> None:
        """Called by the fast engines before a run.

        ``shape`` is ``n`` on :class:`~repro.sim.fast.FastEngine` and
        ``(trials, n)`` on :class:`~repro.sim.fast.BatchedFastEngine`.
        """
        self._active_mask = np.zeros(shape, dtype=bool)
        self._active_phase = -1

    def transmit_mask(
        self,
        step: int,
        labels: np.ndarray,
        wake_steps: np.ndarray,
        r: int,
        coins,
    ) -> np.ndarray:
        phase, offset = divmod(step, self.phase_len)
        phase_start = phase * self.phase_len
        eligible = wake_steps < phase_start
        if self._active_mask is None or self._active_mask.shape != wake_steps.shape:
            self._active_mask = np.zeros(wake_steps.shape, dtype=bool)
        if offset == 0:
            self._active_phase = phase
            self._active_mask = eligible.copy()
        elif self._active_phase == phase:
            # Slot-indexed coins: ANDing into already-inactive rows is a
            # no-op, so this matches the per-node stateful Decay exactly.
            self._active_mask &= coins.uniform(step) < 0.5
        else:  # run started mid-phase (step offset != 0): stay silent
            self._active_mask[:] = False
        return self._active_mask.copy()

    def max_steps_hint(self, n: int, r: int) -> int | None:
        # Expected time is O(D log n + log^2 n) <= O(n log n); leave slack.
        log_n = max(1, n.bit_length())
        return 64 * (n + log_n * log_n) * log_n

    # -- forensics ---------------------------------------------------------

    def stage_hint(self, step: int, trace=None) -> str | None:
        """Charge a slot to its Decay probability scale ``2^-offset``."""
        return f"decay[p=2^-{step % self.phase_len}]"
