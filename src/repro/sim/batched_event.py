"""Batched event-driven engine: Monte-Carlo trials with slot compression.

:class:`~repro.sim.event.EventDrivenEngine` makes one adaptive run cheap
by polling only the nodes whose ``quiet_until`` promise expired and
fast-forwarding provably silent slots; :class:`~repro.sim.fast.
BatchedFastEngine` makes many *oblivious* trials cheap by lifting state
to ``(trials, n)`` arrays.  This engine combines the two ideas for the
adaptive protocols the array engines cannot run: a batch of trials
advances on one shared clock, every trial keeps its own promise heap, and
whenever *all* trials are quiet the whole batch jumps to the minimum next
promise expiry (capped at :meth:`~repro.sim.faults.FaultPlan.event_slots`
boundaries and the step budget) in a single vectorised fast-forward,
synthesizing the skipped slots into metrics, traces, and step hooks
exactly as slot-by-slot execution would have.

Trial ``i`` of a batch is **slot-for-slot identical** to a serial
``EventDrivenEngine`` run with seed ``seeds[i]`` — batching is an
execution strategy, never a semantic variant (the conformance harness in
``tests/sim/conformance.py`` pins this across the full engine x algorithm
x topology x fault-plan matrix).

Two structural facts make the batch fast rather than merely T serial
loops glued together:

1. **Execution-class collapse.**  Trials differ only through their seeds,
   and a seed reaches an execution through exactly two doors: the
   per-node RNGs (:func:`~repro.sim.coins.derive_node_rng`) and the
   per-trial message-loss stream
   (:func:`~repro.sim.faults.derive_fault_seed`).  When the algorithm is
   :attr:`~repro.sim.protocol.BroadcastAlgorithm.deterministic` (never
   consults its RNG) and the fault plan has no loss component, *every*
   trial is provably the same execution — one representative run serves
   the whole batch, with per-trial results replicated in O(1) and the
   metric tallies merged with multiplicity
   (:meth:`~repro.obs.metrics.MetricsRegistry.merge` with ``weight``).
   Otherwise trials are grouped by seed value: equal seeds are still
   provably identical, distinct seeds get genuinely independent runs.
   This mirrors the long-standing collapse in
   :func:`~repro.sim.run.repeat_broadcast` — same rule, same soundness
   argument — but keeps per-trial traces, hooks, and counters available.

2. **Shared topology compilation.**  All classes resolve the channel
   through one :class:`~repro.sim.channel.ChannelKernel` (CSR arrays are
   compiled once per batch); classes are stepped sequentially within a
   slot, so the kernel's scratch buffers are never shared concurrently.

Select via ``run_broadcast_batch(..., engine="batched_event")`` (or let
``engine="auto"`` pick it for non-vectorisable algorithms);
``docs/PERFORMANCE.md`` covers the cost model, including the worst case
when desynchronised classes deny the batch-wide jump.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..obs.metrics import MetricsRegistry
from ..obs.timings import Timings
from .channel import ChannelKernel
from .errors import ConfigurationError, ProtocolViolationError
from .event import EventDrivenEngine
from .faults import FaultCounters, FaultPlan
from .network import RadioNetwork
from .protocol import BroadcastAlgorithm
from .trace import Trace, TraceLevel

__all__ = ["BatchedEventEngine"]

StepHook = Callable[[int, tuple[int, ...]], None]


class _ExecutionClass:
    """One representative :class:`EventDrivenEngine` plus the trials it serves."""

    __slots__ = ("engine", "members", "metrics", "error")

    def __init__(
        self,
        engine: EventDrivenEngine,
        members: list[int],
        metrics: MetricsRegistry | None,
    ):
        self.engine = engine
        self.members = members
        self.metrics = metrics
        self.error: ProtocolViolationError | None = None


def _fan_out_hook(
    members: Sequence[int], step_hooks: Sequence[StepHook | None]
) -> StepHook | None:
    """One engine-side hook that replays the slot to every member trial's
    hook, in trial order — for executed and synthesized slots alike."""
    hooks = [step_hooks[t] for t in members if step_hooks[t] is not None]
    if not hooks:
        return None

    def hook(step: int, transmitters: tuple[int, ...]) -> None:
        for member_hook in hooks:
            member_hook(step, transmitters)

    return hook


class BatchedEventEngine:
    """Run ``T`` adaptive Monte-Carlo trials on one shared, compressed clock.

    Args:
        network: Topology (directed or undirected).
        algorithm: Any :class:`~repro.sim.protocol.BroadcastAlgorithm`
            (its protocol factory must be stateless, which every
            algorithm in the repo is — per-run state lives on the
            protocol instances the factory creates).
        seeds: One master seed per trial.
        faults: Optional :class:`~repro.sim.faults.FaultPlan` applied to
            every trial; crashes, jams, and delays are identical across
            trials, the loss stream is keyed per trial seed — exactly the
            :class:`~repro.sim.fast.BatchedFastEngine` convention.
        metrics: Optional :class:`~repro.obs.metrics.MetricsRegistry`.
            Each execution class records into a private registry; after
            the run the private registries are merged in with
            multiplicity = class size, so the shared registry holds
            exactly what ``T`` serial event-engine runs would have
            recorded in aggregate (call :meth:`flush_metrics`, or use
            :meth:`run`, which does).
        timings: Optional :class:`~repro.obs.timings.Timings`, shared by
            the whole batch (stage costs are joint across trials).
        trace_level: Channel detail to record; collapsed trials share
            their class's trace object (the executions are identical, so
            the records are too).
        collision_detection: Run the CD model variant in every trial.
        step_hooks: Optional per-trial ``(step, transmitters)`` callbacks,
            one entry per trial (``None`` entries allowed).  Trial ``i``'s
            hook sees exactly the stream a serial run would produce,
            synthesized slots included.
    """

    def __init__(
        self,
        network: RadioNetwork,
        algorithm: BroadcastAlgorithm,
        seeds: Sequence[int],
        faults: FaultPlan | None = None,
        metrics: MetricsRegistry | None = None,
        timings: Timings | None = None,
        trace_level: TraceLevel = TraceLevel.NONE,
        collision_detection: bool = False,
        step_hooks: Sequence[StepHook | None] | None = None,
    ):
        if len(seeds) < 1:
            raise ConfigurationError("need at least one trial seed")
        self.network = network
        self.algorithm = algorithm
        self.seeds = [int(s) for s in seeds]
        self.trials = len(self.seeds)
        if step_hooks is not None and len(step_hooks) != self.trials:
            raise ConfigurationError(
                f"step_hooks has {len(step_hooks)} entries for "
                f"{self.trials} trials"
            )
        self.faults = faults
        self.metrics = metrics
        self.timings = timings
        self._kernel = ChannelKernel(network)
        self._metrics_flushed = False
        self._classes: list[_ExecutionClass] = []
        for rep_seed, members in self._group_trials().items():
            private = MetricsRegistry() if metrics is not None else None
            hook = (
                _fan_out_hook(members, step_hooks)
                if step_hooks is not None
                else None
            )
            engine = EventDrivenEngine(
                network,
                algorithm,
                seed=rep_seed,
                trace_level=trace_level,
                step_hook=hook,
                collision_detection=collision_detection,
                faults=faults,
                metrics=private,
                timings=timings,
                kernel=self._kernel,
            )
            self._classes.append(_ExecutionClass(engine, members, private))
        #: trial index -> its execution class (shared for collapsed trials).
        self._class_of: dict[int, _ExecutionClass] = {
            t: cls for cls in self._classes for t in cls.members
        }

    def _group_trials(self) -> dict[int, list[int]]:
        """Partition trial indices into provably-identical execution classes.

        Returns ``representative seed -> member trial indices``.  The
        collapse-all rule requires ``algorithm.deterministic`` (the
        protocol never consults its RNG) and a loss-free plan (loss is
        the only fault stream keyed by the trial seed); it is the same
        condition :func:`~repro.sim.run.repeat_broadcast` has always used
        to run deterministic algorithms once.  Failing that, trials with
        equal seeds are still byte-identical executions and share a class.
        """
        deterministic = bool(getattr(self.algorithm, "deterministic", False))
        lossless = self.faults is None or self.faults.loss_probability == 0.0
        if deterministic and lossless:
            return {self.seeds[0]: list(range(self.trials))}
        groups: dict[int, list[int]] = {}
        for trial, seed in enumerate(self.seeds):
            groups.setdefault(seed, []).append(trial)
        return groups

    # ------------------------------------------------------------------
    # Batch-level state, mirroring BatchedFastEngine's vocabulary.

    @property
    def execution_classes(self) -> int:
        """How many representative runs the batch actually executes."""
        return len(self._classes)

    @property
    def trials_settled(self) -> list[bool]:
        """Per-trial: no further wake possible (informed or dead asleep)."""
        return [self._class_of[t].engine.all_settled for t in range(self.trials)]

    @property
    def all_settled(self) -> bool:
        return all(cls.engine.all_settled for cls in self._classes)

    @property
    def all_informed(self) -> bool:
        return all(cls.engine.all_informed for cls in self._classes)

    def informed_counts(self) -> list[int]:
        return [
            self._class_of[t].engine.informed_count for t in range(self.trials)
        ]

    # ------------------------------------------------------------------

    def run(self, max_steps: int, stop_when_informed: bool = True) -> int:
        """Advance every unsettled trial on the shared clock.

        Per iteration each live class reports its next event slot — the
        earliest promise expiry from its heap, capped at the next
        scheduled fault slot.  If the minimum over classes lies in the
        future, **all** live classes fast-forward there in one jump
        (``_skip_silent`` synthesizes the skipped slots per trial);
        otherwise due classes execute the slot and quiet ones synthesize
        it, keeping every live engine on the same clock.  Settled classes
        freeze exactly where their serial runs would have stopped.

        A :class:`~repro.sim.errors.ProtocolViolationError` aborts only
        its own class; the remaining classes run to completion, and the
        error of the lowest aborted trial index is re-raised — the same
        error a serial seed-order loop would have surfaced first.

        Returns the number of shared-clock slots executed (synthesized
        slots count: they *were* simulated, in one jump).
        """
        if max_steps < 0:
            raise ConfigurationError(
                f"max_steps must be non-negative, got {max_steps}"
            )
        executed = 0
        while executed < max_steps:
            live = [
                cls
                for cls in self._classes
                if cls.error is None
                and not (stop_when_informed and cls.engine.all_settled)
            ]
            if not live:
                break
            # Invariant: live engines share one clock — they all started at
            # slot 0 and advance in lock-step below; only settled or
            # aborted classes fall behind, frozen at their stopping slot.
            step = live[0].engine.step
            target = step + (max_steps - executed)
            next_events = []
            for cls in live:
                engine = cls.engine
                upcoming = engine._next_poll_slot()
                if engine._fault_events:
                    fault_slot = engine._next_fault_slot(step)
                    if fault_slot < upcoming:
                        upcoming = fault_slot
                next_events.append(upcoming)
                if upcoming < target:
                    target = upcoming
            if target > step:
                # Batch-wide fast-forward: every live trial is quiet until
                # ``target`` (and no fault event lands before it), so the
                # whole batch jumps in one step.
                jump = target - step
                for cls in live:
                    cls.engine._skip_silent(jump)
                executed += jump
                continue
            for cls, upcoming in zip(live, next_events):
                if upcoming > step:
                    # This class is quiet this slot but another one is not;
                    # synthesize the slot to keep the shared clock aligned.
                    # Chunked single-slot skips produce byte-identical
                    # instrumentation to one large jump.
                    cls.engine._skip_silent(1)
                    continue
                try:
                    cls.engine.run_step()
                except ProtocolViolationError as exc:
                    cls.error = exc
            executed += 1
        self.flush_metrics()
        first_failed = min(
            (cls for cls in self._classes if cls.error is not None),
            key=lambda cls: cls.members[0],
            default=None,
        )
        if first_failed is not None:
            raise first_failed.error
        return executed

    def flush_metrics(self) -> None:
        """Merge each class's private registry into the shared one.

        Counters and histogram tallies are folded in with multiplicity =
        class size, so the shared registry equals the aggregate of ``T``
        serial event-engine runs exactly.  One-shot (the class registries
        are consumed); :meth:`run` calls it, manual steppers must call it
        before snapshotting.  Also sets ``batch_active_trials`` to the
        current unsettled count, mirroring the batched fast engine.
        """
        if self.metrics is None or self._metrics_flushed:
            return
        self._metrics_flushed = True
        for cls in self._classes:
            self.metrics.merge(cls.metrics, weight=len(cls.members))
        self.metrics.gauge("batch_active_trials").set(
            sum(
                len(cls.members)
                for cls in self._classes
                if not cls.engine.all_settled
            )
        )

    # ------------------------------------------------------------------
    # Per-trial accessors (the driver's view), all O(1) per trial.

    def trial_steps(self, trial: int) -> int:
        """Slots trial ``trial`` executed before settling or the limit —
        the serial run's final ``engine.step``."""
        return self._class_of[trial].engine.step

    def completion_times(self) -> list[int | None]:
        """Per-trial broadcasting times; ``None`` for incomplete trials."""
        return [
            self._class_of[t].engine.completion_time for t in range(self.trials)
        ]

    def wake_times(self, trial: int) -> dict[int, int]:
        """Map informed labels of one trial to their wake slots."""
        return dict(self._class_of[trial].engine.wake_times)

    def trace_for(self, trial: int) -> Trace:
        """The trial's channel trace (collapsed trials share one object —
        their executions, hence their records, are identical)."""
        return self._class_of[trial].engine.trace

    def fault_counters_for(self, trial: int) -> FaultCounters | None:
        """Fault tallies of one trial, identical to its serial values."""
        counters = self._class_of[trial].engine.fault_counters
        return counters.snapshot() if counters is not None else None

    def transmission_counts(self, trial: int) -> list[int] | None:
        """Per-node transmission tallies of one trial (label order);
        ``None`` when the batch ran uninstrumented."""
        return self._class_of[trial].engine.transmission_counts()

    def error_for(self, trial: int) -> ProtocolViolationError | None:
        """The violation that aborted this trial's class, if any."""
        return self._class_of[trial].error
