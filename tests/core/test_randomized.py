"""The Kowalski-Pelc randomized algorithm (Section 2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.randomized import (
    KnownRadiusKP,
    OptimalRandomizedBroadcasting,
    StageTimetable,
    next_power_of_two,
)
from repro.sim import run_broadcast, run_broadcast_fast
from repro.sim.errors import ConfigurationError
from repro.topology import (
    gnp_connected,
    km_hard_layered,
    path,
    star,
    uniform_complete_layered,
)


def test_next_power_of_two():
    assert next_power_of_two(1) == 1
    assert next_power_of_two(2) == 2
    assert next_power_of_two(3) == 4
    assert next_power_of_two(1000) == 1024
    with pytest.raises(ConfigurationError):
        next_power_of_two(0)


class TestStageTimetable:
    def test_shape(self):
        tt = StageTimetable.build(r=255, d_guess=16, stage_constant=10)
        assert tt.r2 == 256 and tt.d2 == 16
        assert tt.stage_len == 4 + 2  # log2(256/16) + 2
        assert tt.num_stages == 160
        assert tt.duration == 1 + 160 * 6

    def test_d_clamped_to_r(self):
        tt = StageTimetable.build(r=64, d_guess=1000, stage_constant=2)
        assert tt.d2 == 64

    def test_slot_zero_is_source_solo(self):
        tt = StageTimetable.build(r=255, d_guess=16, stage_constant=10)
        assert tt.slot(0) is None

    def test_probability_sweep_within_stage(self):
        tt = StageTimetable.build(r=255, d_guess=16, stage_constant=10)
        # Stage 0 occupies slots 1..6; positions 0..4 sweep 1, 1/2, ... 1/16.
        for position in range(5):
            probability, stage_start = tt.slot(1 + position)
            assert probability == 2.0 ** (-position)
            assert stage_start == 1
        # Position 5 is the universal-sequence slot.
        probability, _ = tt.slot(6)
        assert probability == tt.universal.probability(1)

    def test_stage_starts_advance(self):
        tt = StageTimetable.build(r=255, d_guess=16, stage_constant=10)
        _, start_stage2 = tt.slot(1 + 6)
        assert start_stage2 == 7

    def test_universal_slot_cycles_with_stage_index(self):
        tt = StageTimetable.build(r=255, d_guess=16, stage_constant=10)
        p_stage1, _ = tt.slot(6)
        p_stage2, _ = tt.slot(12)
        assert p_stage1 == tt.universal.probability(1)
        assert p_stage2 == tt.universal.probability(2)


class TestKnownRadiusKP:
    def test_completes_on_zoo(self, topology_zoo):
        for name, net in topology_zoo.items():
            algo = KnownRadiusKP(net.r, max(1, net.radius))
            result = run_broadcast(net, algo, seed=1)
            assert result.completed, name

    def test_fast_engine_completes(self):
        net = km_hard_layered(256, 16, seed=2)
        result = run_broadcast_fast(net, KnownRadiusKP(net.r, 16), seed=0)
        assert result.completed

    def test_source_transmits_alone_in_slot_zero(self):
        net = star(10)
        algo = KnownRadiusKP(net.r, 1)
        result = run_broadcast(net, algo, seed=0)
        # The source's solo slot informs the whole star immediately.
        assert result.time == 1

    def test_rejects_bad_d(self):
        with pytest.raises(ConfigurationError):
            KnownRadiusKP(63, 0)

    def test_eligibility_waits_for_stage_boundary(self):
        """A node informed mid-stage stays silent until the next stage."""
        net = path(3)
        algo = KnownRadiusKP(net.r, 2)
        tt = algo._phases[0]
        result = run_broadcast(net, algo, seed=5)
        wake1 = result.wake_times[1]
        wake2 = result.wake_times[2]
        # Node 2 can only be informed by node 1, which first acts in the
        # stage after its own wake: strictly later stage index.
        stage_of = lambda t: (t - 1) // tt.stage_len if t >= 1 else -1
        assert stage_of(wake2) > stage_of(wake1)

    def test_seeds_change_outcomes(self):
        net = km_hard_layered(200, 10, seed=1)
        algo = KnownRadiusKP(net.r, 10)
        times = {run_broadcast_fast(net, algo, seed=s).time for s in range(6)}
        assert len(times) > 1


class TestOptimalRandomized:
    def test_phases_double(self):
        algo = OptimalRandomizedBroadcasting(255, stage_constant=2)
        assert [tt.d2 for tt in algo._phases] == [2, 4, 8, 16, 32, 64, 128, 256]

    def test_completes_without_knowing_d(self, topology_zoo):
        for name, net in topology_zoo.items():
            algo = OptimalRandomizedBroadcasting(net.r, stage_constant=4)
            result = run_broadcast(net, algo, seed=2)
            assert result.completed, name

    def test_max_d_caps_phases(self):
        algo = OptimalRandomizedBroadcasting(255, stage_constant=2, max_d=8)
        assert [tt.d2 for tt in algo._phases] == [2, 4, 8]

    def test_paper_constant_is_default(self):
        algo = OptimalRandomizedBroadcasting(63)
        assert algo.stage_constant == 4660

    def test_engines_agree_in_distribution(self):
        """Both engines implement the same schedule; compare mean times."""
        net = uniform_complete_layered(120, 6)
        algo = KnownRadiusKP(net.r, 6)
        ref = [run_broadcast(net, algo, seed=s).time for s in range(8)]
        fast = [run_broadcast_fast(net, algo, seed=s).time for s in range(8)]
        # Means within a factor of two of each other (loose but meaningful:
        # catches systematically wrong probabilities or eligibility).
        assert 0.5 < (sum(ref) / len(ref)) / (sum(fast) / len(fast)) < 2.0

    def test_vector_mask_shape_and_type(self):
        algo = OptimalRandomizedBroadcasting(31, stage_constant=2)
        labels = np.arange(8)
        wake = np.zeros(8, dtype=np.int64)
        mask = algo.transmit_mask(0, labels, wake, 31, np.random.default_rng(0))
        assert mask.dtype == bool and mask.shape == (8,)
        assert mask[0] and not mask[1:].any()  # slot 0: source only


def test_kp_beats_bgi_shape_on_layered():
    """The headline separation: KP < BGI on a large-D layered network."""
    from repro.baselines.bgi import BGIBroadcast

    net = km_hard_layered(512, 32, seed=7)
    kp = [run_broadcast_fast(net, KnownRadiusKP(net.r, 32), seed=s).time for s in range(5)]
    bgi = [run_broadcast_fast(net, BGIBroadcast(net.r), seed=s).time for s in range(5)]
    assert sum(kp) < sum(bgi)
