"""Event-engine specifics beyond the shared conformance matrix.

The slot-for-slot identity matrix (adaptive cases x fault plans x
engines, incl. identical failures under loss) moved to
``test_conformance.py`` on top of the harness in ``conformance.py``.
This module keeps what is particular to the *serial* event engine and
the hint contract itself:

* the step-hook stream is gap-free across compressed slots;
* a hypothesis property that :meth:`Protocol.quiet_until` promises are
  honest — a protocol that hints quiet through slot ``s`` must return
  ``None`` from ``next_action`` on every polled slot before ``s``
  (checked on the reference engine, which polls every slot, under
  randomly drawn topologies and fault plans);
* unit coverage of :class:`~repro.core.echo.QuietEchoSchedule` hint
  values and :meth:`FaultPlan.event_slots`.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CompleteLayeredBroadcast, SelectAndSend
from repro.core.echo import QuietEchoSchedule
from repro.sim import FaultPlan, QUIET_FOREVER, run_broadcast
from repro.sim.errors import ProtocolViolationError
from repro.topology import path, uniform_complete_layered

from .conformance import HintCheckedAlgorithm, adaptive_faulty_networks


def test_step_hook_sees_every_compressed_slot():
    """The step-hook stream must contain one call per slot — including
    the slots the event engine fast-forwarded over in a single jump."""
    from repro.sim import SynchronousEngine
    from repro.sim.event import EventDrivenEngine

    net = path(24, relabel="shuffled", seed=5)
    streams = {}
    for name, engine_cls in (
        ("reference", SynchronousEngine),
        ("event", EventDrivenEngine),
    ):
        hooked: list[tuple[int, tuple[int, ...]]] = []
        engine = engine_cls(
            net, SelectAndSend(),
            step_hook=lambda step, tx: hooked.append((step, tx)),
        )
        engine.run(4000)
        streams[name] = hooked
    assert streams["event"] == streams["reference"]
    # Sanity: the stream really is per-slot and gap-free.
    assert [step for step, _ in streams["event"]] == list(
        range(len(streams["event"]))
    )


# ---------------------------------------------------------------------------
# Hint honesty: quiet promises can never hide an action.


@settings(max_examples=25, deadline=None)
@given(case=adaptive_faulty_networks())
def test_quiet_until_never_hides_an_action(case):
    net, plan = case
    try:
        run_broadcast(
            net,
            HintCheckedAlgorithm(SelectAndSend()),
            faults=plan,
            require_completion=False,
            max_steps=3000,
        )
    except ProtocolViolationError:
        # Echo is not fault-tolerant: a crash or jam mid-procedure can make
        # its outcomes inconsistent and abort the run.  That is an algorithm
        # property, not a hint violation — the wrapper's assertions (plain
        # AssertionError) are what this test is about, and they fired on
        # every polled slot up to the abort.
        pass


@settings(max_examples=10, deadline=None)
@given(
    n=st.integers(min_value=8, max_value=48),
    depth=st.integers(min_value=2, max_value=6),
    relabel_seed=st.integers(min_value=0, max_value=1000),
)
def test_quiet_until_never_hides_an_action_layered(n, depth, relabel_seed):
    depth = min(depth, n - 2)
    net = uniform_complete_layered(n, depth, relabel_seed=relabel_seed)
    run_broadcast(
        net,
        HintCheckedAlgorithm(CompleteLayeredBroadcast()),
        require_completion=True,
    )


# ---------------------------------------------------------------------------
# Unit coverage for the hint itself.


def test_quiet_echo_schedule_hint_values():
    class _Node(QuietEchoSchedule):
        def __init__(self):
            self.stopped = False
            self.scheduled = {}
            self._awaiting = None

    node = _Node()
    # Nothing scheduled, nothing awaited: quiet forever (until spoken to).
    assert node.quiet_until(3) == QUIET_FOREVER
    # Earliest scheduled slot at or after `step` bounds the promise.
    node.scheduled = {10: "x", 7: "y", 2: "z"}
    assert node.quiet_until(3) == 7
    assert node.quiet_until(8) == 10
    assert node.quiet_until(11) == QUIET_FOREVER
    # A slot with a scheduled transmission short-circuits: busy now.
    assert node.quiet_until(7) == 7
    assert node.quiet_until(2) == 2
    # Inside an Echo observation window silence is information: no promise.
    node._awaiting = ("announce", 4)
    assert node.quiet_until(5) == 5
    assert node.quiet_until(6) == 6
    # Before the window opens, the window's first slot caps the promise.
    assert node.quiet_until(4) == 5
    # A stopped node never acts again.
    node.stopped = True
    assert node.quiet_until(0) == QUIET_FOREVER


def test_fault_plan_event_slots():
    plan = FaultPlan(
        crashes=((5, 12), (6, 3)),
        jams=((0, 5), (9, 6)),
        loss_probability=0.5,
        wake_delays=((7, 20),),
        seed=1,
    )
    # Crash slots, jam slots, and wake-delay expiries, sorted and deduped;
    # loss has no schedule (it is per-delivery) so it contributes nothing.
    assert plan.event_slots() == (0, 3, 9, 12, 20)
