"""JSONL run-log writer and schema validator."""

from __future__ import annotations

import json
import multiprocessing
import os
import time

import pytest

from repro.obs.runlog import (
    RunLogger,
    RunlogError,
    assert_valid_runlog,
    default_runlog_path,
    new_run_id,
    read_runlog,
    validate_runlog,
)


def test_logger_writes_envelope_per_event(tmp_path):
    path = tmp_path / "log.jsonl"
    with RunLogger(path, run_id="abc123") as log:
        record = log.event("run_started", seed=7)
        log.event("run_completed", time=41)
    assert record["run_id"] == "abc123"
    events = read_runlog(path)
    assert [e["event"] for e in events] == ["run_started", "run_completed"]
    for event in events:
        assert set(event) >= {"ts", "event", "run_id", "git_sha"}
    assert events[0]["seed"] == 7
    assert events[1]["time"] == 41


def test_logger_clamps_backwards_clock(tmp_path):
    ticks = iter([100.0, 50.0, 200.0])
    with RunLogger(tmp_path / "log.jsonl", clock=lambda: next(ticks)) as log:
        first = log.event("a")
        second = log.event("b")
        third = log.event("c")
    # The wall clock stepped back; the log must stay monotone.
    assert first["ts"] == 100.0
    assert second["ts"] == 100.0
    assert third["ts"] == 200.0


def test_append_mode_keeps_prior_runs(tmp_path):
    path = tmp_path / "shared.jsonl"
    with RunLogger(path, run_id="one") as log:
        log.event("run_started")
    with RunLogger(path, run_id="two") as log:
        log.event("run_started")
    events = read_runlog(path)
    assert [e["run_id"] for e in events] == ["one", "two"]
    assert validate_runlog(events) == []


def test_read_rejects_bad_json(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"ts": 1}\nnot json\n')
    with pytest.raises(RunlogError, match="line|JSON|2"):
        read_runlog(path)


def test_read_rejects_non_object_lines(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text("[1, 2]\n")
    with pytest.raises(RunlogError, match="not a JSON object"):
        read_runlog(path)


def _event(kind, ts, run="r", **fields):
    return {"ts": ts, "event": kind, "run_id": run, "git_sha": "deadbee", **fields}


class TestValidation:
    def test_clean_sweep_lifecycle_passes(self):
        events = [
            _event("sweep_started", 1.0, points=2),
            _event("point_cache_hit", 1.1, index=0),
            _event("point_spawned", 1.2, index=1),
            _event("point_completed", 2.0, index=1),
            _event("sweep_completed", 2.1),
        ]
        assert validate_runlog(events) == []

    def test_missing_envelope_field_reported(self):
        events = [{"ts": 1.0, "event": "run_started", "run_id": "r"}]
        errors = validate_runlog(events)
        assert len(errors) == 1 and "git_sha" in errors[0]

    def test_backwards_timestamp_reported_per_run(self):
        events = [_event("a", 2.0), _event("b", 1.0)]
        assert any("backwards" in e for e in validate_runlog(events))
        # Interleaved runs each keep their own clock.
        interleaved = [_event("a", 2.0, run="x"), _event("a", 1.0, run="y"),
                       _event("b", 3.0, run="x"), _event("b", 1.5, run="y")]
        assert validate_runlog(interleaved) == []

    def test_orphan_point_event_reported(self):
        events = [_event("point_completed", 1.0, index=3)]
        errors = validate_runlog(events)
        assert any("orphan" in e for e in errors)

    def test_spawned_point_must_terminate(self):
        events = [_event("point_spawned", 1.0, index=0)]
        errors = validate_runlog(events)
        assert any("never reached" in e for e in errors)

    def test_retry_then_failure_is_terminal(self):
        events = [
            _event("point_spawned", 1.0, index=0),
            _event("point_timed_out", 2.0, index=0),
            _event("point_retried", 2.1, index=0),
            _event("point_spawned", 2.2, index=0),
            _event("point_failed", 3.0, index=0),
        ]
        assert validate_runlog(events) == []


class TestTelemetryValidation:
    def _span(self, ts, **overrides):
        span = {
            "ts": ts, "event": "span", "run_id": "r", "git_sha": "deadbee",
            "span_id": "s0", "parent_id": None, "trace_id": "t",
            "name": "quick", "kind": "sweep", "start_ts": ts - 1.0,
            "end_ts": ts, "pid": 1,
        }
        span.update(overrides)
        return span

    def test_well_formed_telemetry_events_pass(self):
        events = [
            _event("sweep_started", 1.0, points=1),
            _event("point_running", 1.1, index=0),
            self._span(2.0),
            _event("telemetry_dropped", 2.1, count=0),
            _event("sweep_completed", 2.2),
        ]
        assert validate_runlog(events) == []

    def test_malformed_spans_reported(self):
        cases = [
            (self._span(2.0, span_id=7), "string span_id"),
            (self._span(2.0, name=""), "without a name"),
            (self._span(2.0, kind="galaxy"), "span kind"),
            (self._span(2.0, start_ts="soon"), "numeric start_ts"),
            (self._span(2.0, end_ts=0.5), "ends before it starts"),
            (self._span(2.0, parent_id=12), "not a string"),
        ]
        for span, fragment in cases:
            errors = validate_runlog([span])
            assert any(fragment in e for e in errors), (fragment, errors)

    def test_point_running_requires_index(self):
        errors = validate_runlog([_event("point_running", 1.0)])
        assert any("point_running without an index" in e for e in errors)

    def test_telemetry_dropped_count_checked(self):
        for bad in (-1, True, "3", None):
            errors = validate_runlog([_event("telemetry_dropped", 1.0, count=bad)])
            assert any("telemetry_dropped" in e for e in errors), bad

    def test_point_event_run_id_must_match_sweep_envelope(self):
        events = [
            _event("sweep_started", 1.0, run="sweep-run", points=1),
            _event("point_cache_hit", 1.1, run="other-run", index=0),
        ]
        errors = validate_runlog(events)
        assert any("no matching sweep_started envelope" in e for e in errors)

    def test_single_run_logs_are_exempt_from_envelope_rule(self):
        # `repro run` writes point-free logs with no sweep_started at all;
        # a lone cache-hit style event must not demand an envelope.
        events = [
            _event("point_spawned", 1.0, index=0),
            _event("point_completed", 2.0, index=0),
        ]
        assert validate_runlog(events) == []


class TestFlushBatching:
    def test_default_flushes_every_event(self, tmp_path):
        path = tmp_path / "log.jsonl"
        log = RunLogger(path)
        try:
            log.event("a")
            # Visible to a concurrent reader before close: per-event flush.
            assert [e["event"] for e in read_runlog(path)] == ["a"]
        finally:
            log.close()

    def test_interval_batches_until_batch_size(self, tmp_path):
        path = tmp_path / "log.jsonl"
        log = RunLogger(path, flush_interval=60.0, flush_batch=4)
        try:
            for kind in ("a", "b", "c"):
                log.event(kind)
            assert read_runlog(path) == []  # still buffered
            log.event("d")  # hits flush_batch
            assert [e["event"] for e in read_runlog(path)] == ["a", "b", "c", "d"]
        finally:
            log.close()

    def test_interval_elapsing_forces_flush(self, tmp_path):
        path = tmp_path / "log.jsonl"
        log = RunLogger(path, flush_interval=0.01, flush_batch=1000)
        try:
            log.event("a")
            time.sleep(0.03)
            log.event("b")  # interval elapsed -> flush
            assert len(read_runlog(path)) == 2
        finally:
            log.close()

    def test_explicit_flush_and_close_flush(self, tmp_path):
        path = tmp_path / "log.jsonl"
        log = RunLogger(path, flush_interval=60.0, flush_batch=1000)
        log.event("a")
        log.flush()
        assert len(read_runlog(path)) == 1
        log.event("b")
        log.close()
        assert len(read_runlog(path)) == 2

    def test_invalid_parameters_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="flush_interval"):
            RunLogger(tmp_path / "x.jsonl", flush_interval=-1.0)
        with pytest.raises(ValueError, match="flush_batch"):
            RunLogger(tmp_path / "x.jsonl", flush_batch=0)

    def test_killed_writer_loses_at_most_one_batch(self, tmp_path):
        path = tmp_path / "killed.jsonl"
        total, batch = 10, 4

        def writer():
            log = RunLogger(path, run_id="kill", flush_interval=60.0,
                            flush_batch=batch)
            for i in range(total):
                log.event("tick", i=i)
            os._exit(0)  # killed: no close(), no interpreter cleanup

        process = multiprocessing.get_context("fork").Process(target=writer)
        process.start()
        process.join(timeout=30)
        assert process.exitcode == 0
        events = read_runlog(path)
        # Batch flushes fired at events 4 and 8; the trailing partial
        # batch (2 events) died in the buffer.  The guarantee under test:
        # a killed writer loses strictly less than one full batch.
        assert total - batch < len(events) <= total
        assert [e["i"] for e in events] == list(range(len(events)))
        assert validate_runlog(events) == []


def test_assert_valid_runlog_raises_with_violations(tmp_path):
    path = tmp_path / "log.jsonl"
    path.write_text(json.dumps(_event("point_completed", 1.0, index=0)) + "\n")
    with pytest.raises(RunlogError, match="schema violation"):
        assert_valid_runlog(path)


def test_default_runlog_path_shape(tmp_path):
    path = default_runlog_path("sweep", directory=tmp_path)
    assert path.parent == tmp_path
    assert path.name.startswith("sweep-") and path.suffix == ".jsonl"


def test_new_run_id_is_hexish_and_unique():
    a, b = new_run_id(), new_run_id()
    assert a != b and len(a) == 12
    int(a, 16)  # parses as hex
