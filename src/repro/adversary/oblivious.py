"""Layer-by-layer adversary for *oblivious* deterministic schedules.

The paper's Section 3 adversary handles arbitrary (adaptive) algorithms.
For the important special case of **oblivious** schedules — where node
``v``'s decision to transmit in slot ``t`` depends only on ``(v, t)`` and
its wake slot, never on message contents (round-robin, selective-family
schedules, and every fixed transmission matrix) — a much simpler adversary
in the style of Bruschi & Del Pinto's ``Omega(D log n)`` bound works:

build a complete layered network whose layers are *pairs*, chosen greedily
so that the schedule keeps both pair members transmitting together (or
both silent) for as long as possible after they wake.  While the pair is
unseparated, every slot collides at the next layer and the information
front is stuck; the first slot that schedules exactly one member is the
first possible hop.  The delay of layer ``j`` is therefore an exact,
schedule-derived quantity, and the broadcast time on the built network is
(at least) the sum of the per-layer delays.

The connection to selective families is the one the paper exploits: a
schedule that separates every pair within ``T`` slots of waking is an
``(n, 2)``-selective family of size ``T``, so ``T = Omega(log n)`` — each
pair layer buys ``Omega(log n)`` slots and ``D`` layers give
``Omega(D log n)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sim.engine import SynchronousEngine
from ..sim.errors import ConfigurationError, SimulationError
from ..sim.fast import VectorizedAlgorithm
from ..sim.network import RadioNetwork
from ..sim.protocol import BroadcastAlgorithm

__all__ = ["ObliviousAdversaryResult", "ObliviousLayerAdversary", "verify_oblivious"]


@dataclass(frozen=True)
class ObliviousAdversaryResult:
    """Output of the oblivious-schedule adversary.

    Attributes:
        network: The constructed complete layered network (pair layers).
        algorithm_name: The schedule it was built against.
        layer_delays: Per pair-layer separation delay, in slots.
        predicted_floor: Sum of the delays — the earliest slot by which the
            last pair layer can possibly be informed.
        layers: The pair chosen for every layer, in order.
    """

    network: RadioNetwork
    algorithm_name: str
    layer_delays: tuple[int, ...]
    predicted_floor: int
    layers: tuple[tuple[int, ...], ...]


class ObliviousLayerAdversary:
    """Builds a pair-layer hard network for an oblivious schedule.

    Args:
        algorithm: A deterministic algorithm implementing the vectorised
            interface (its ``transmit_mask`` *is* the schedule).
        n: Number of nodes; labels ``{0..n-1}``, ``r = n - 1``.
        depth: Number of pair layers to build (radius is ``depth + 1``
            including the final absorbing layer).
        candidate_pairs: How many candidate pairs to score per layer
            (greedy beam; the full quadratic scan is unnecessary).
        horizon: Scan limit when computing a pair's separation delay; a
            pair not separated within the horizon would stall the schedule
            forever, which is reported as an error (a correct broadcast
            schedule must separate every pair eventually).
    """

    def __init__(
        self,
        algorithm: BroadcastAlgorithm,
        n: int,
        depth: int,
        candidate_pairs: int = 128,
        horizon: int | None = None,
    ):
        if not algorithm.deterministic:
            raise ConfigurationError("the oblivious adversary needs a deterministic schedule")
        if not isinstance(algorithm, VectorizedAlgorithm):
            raise ConfigurationError(
                "the oblivious adversary reads the schedule through the "
                "vectorised interface; interactive protocols need the "
                "Section 3 adversary instead"
            )
        if depth < 1 or n < 2 * depth + 3:
            raise ConfigurationError(
                f"need n >= 2*depth + 3 (pairs + source + final layer), "
                f"got n={n}, depth={depth}"
            )
        self.algorithm = algorithm
        self.n = n
        self.r = n - 1
        self.depth = depth
        self.candidate_pairs = candidate_pairs
        self.horizon = horizon if horizon is not None else 8 * n + 64

    # ------------------------------------------------------------------

    def _schedule_matrix(
        self, labels: list[int], wake: int, start: int, end: int
    ) -> np.ndarray:
        """Schedule rows for several nodes all woken at ``wake``.

        One vectorised ``transmit_mask`` query per slot covers every
        candidate at once — the schedules under attack are elementwise in
        the label, so batching does not change any row.
        """
        label_array = np.asarray(labels, dtype=np.int64)
        wakes = np.full(label_array.shape, wake, dtype=np.int64)
        rng = np.random.default_rng(0)  # deterministic schedules ignore it
        reset = getattr(self.algorithm, "reset_run", None)
        if reset is not None:
            reset(len(labels))
        matrix = np.zeros((len(labels), end - start), dtype=bool)
        for t in range(start, end):
            matrix[:, t - start] = self.algorithm.transmit_mask(
                t, label_array, wakes, self.r, rng
            )
        return matrix

    def _transmits(self, label: int, wake: int, start: int, horizon: int) -> np.ndarray:
        """Boolean schedule row for one node woken at ``wake``."""
        return self._schedule_matrix([label], wake, start, horizon)[0]

    @staticmethod
    def _separation_delay_from_rows(row_a: np.ndarray, row_b: np.ndarray) -> int | None:
        """Offset of the first slot scheduling exactly one of the pair."""
        hits = np.flatnonzero(row_a ^ row_b)
        if hits.size == 0:
            return None
        return int(hits[0]) + 1

    # ------------------------------------------------------------------

    def build(self) -> ObliviousAdversaryResult:
        """Greedily choose the worst pair per layer and assemble the network."""
        pool = list(range(1, self.n))
        layers: list[tuple[int, ...]] = [(0,)]
        delays: list[int] = []

        # The source transmits on its own schedule; layer 1 wakes at the
        # source's first scheduled slot.
        source_row = self._transmits(0, -1, 0, self.horizon)
        first = np.flatnonzero(source_row)
        if first.size == 0:
            raise SimulationError(
                f"{self.algorithm.name}: the source never transmits"
            )
        wake = int(first[0])
        delays.append(wake + 1)  # slots until layer 1 is informed

        rng = np.random.default_rng(7)
        for _ in range(self.depth):
            candidates = self._candidate_pairs(pool, rng)
            involved = sorted({label for pair in candidates for label in pair})
            row_index = {label: i for i, label in enumerate(involved)}
            matrix = self._schedule_matrix(
                involved, wake, wake + 1, wake + 1 + self.horizon
            )
            best_pair, best_delay = None, -1
            for a, b in candidates:
                delay = self._separation_delay_from_rows(
                    matrix[row_index[a]], matrix[row_index[b]]
                )
                if delay is None:
                    raise SimulationError(
                        f"{self.algorithm.name}: pair ({a}, {b}) woken at "
                        f"{wake} is never separated within {self.horizon} "
                        f"slots — the schedule cannot broadcast on pair "
                        f"layers at all"
                    )
                if delay > best_delay:
                    best_pair, best_delay = (a, b), delay
            assert best_pair is not None
            layers.append(tuple(sorted(best_pair)))
            delays.append(best_delay)
            pool.remove(best_pair[0])
            pool.remove(best_pair[1])
            wake = wake + best_delay

        layers.append(tuple(sorted(pool)))  # absorbing final layer

        edges = [
            (u, v)
            for upper, lower in zip(layers, layers[1:])
            for u in upper
            for v in lower
        ]
        network = RadioNetwork.undirected(range(self.n), edges, r=self.r)
        return ObliviousAdversaryResult(
            network=network,
            algorithm_name=self.algorithm.name,
            layer_delays=tuple(delays),
            predicted_floor=sum(delays),
            layers=tuple(layers),
        )

    def _candidate_pairs(self, pool: list[int], rng: np.random.Generator):
        """A bounded sample of unordered pairs from the pool."""
        total_pairs = len(pool) * (len(pool) - 1) // 2
        if total_pairs <= self.candidate_pairs:
            return [
                (pool[i], pool[j])
                for i in range(len(pool))
                for j in range(i + 1, len(pool))
            ]
        seen: set[tuple[int, int]] = set()
        while len(seen) < self.candidate_pairs:
            a, b = rng.choice(len(pool), size=2, replace=False)
            pair = (pool[min(a, b)], pool[max(a, b)])
            seen.add(pair)
        return sorted(seen)


def verify_oblivious(
    result: ObliviousAdversaryResult, algorithm: BroadcastAlgorithm
) -> tuple[bool, int | None]:
    """Replay the schedule on the built network.

    Returns:
        ``(floor_respected, completion_time)`` — the real broadcast must
        not finish before the predicted floor (it informs the *last pair
        layer* no earlier than ``predicted_floor``; the absorbing layer
        adds more).
    """
    engine = SynchronousEngine(result.network, algorithm)
    limit = algorithm.max_steps_hint(result.network.n, result.network.r)
    if limit is None:
        limit = 64 * result.network.n * 16
    engine.run(limit)
    completion = engine.completion_time
    floor_respected = completion is None or completion >= result.predicted_floor
    return floor_respected, completion
