"""E2 — Corollary 1: expected-time scaling and bound fitting.

Fits four candidate shapes to a (n, D) sweep; Theorem 1's finite-n form
``D(log(n/D)+2)`` must fit KP's measurements best.  Logic in
:mod:`repro.experiments.e2_scaling_fit`.
"""

from __future__ import annotations

from repro.experiments import get_experiment


def test_e2(benchmark, table_reporter):
    report = get_experiment("e2")()
    for table in report.tables:
        table_reporter.record("e2", table)
    table_reporter.record(
        "e2",
        "\n".join(
            f"[{'PASS' if claim.holds else 'FAIL'}] {claim.description}"
            + (f"  ({claim.details})" if claim.details else "")
            for claim in report.claims
        ),
    )
    assert report.ok, report.render()

    from repro.core import KnownRadiusKP
    from repro.sim import run_broadcast_fast
    from repro.topology import km_hard_layered

    net = km_hard_layered(512, 64, seed=23)
    benchmark.pedantic(
        lambda: run_broadcast_fast(net, KnownRadiusKP(net.r, 64), seed=1),
        rounds=3, iterations=1,
    )
