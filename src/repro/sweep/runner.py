"""Parallel sweep execution with per-point caching and crash recovery.

The runner shards the points of a :class:`~repro.sweep.spec.SweepSpec`
across worker processes.  Cache lookups happen in the parent *before*
dispatch, so a fully-cached sweep performs zero engine runs and zero
worker spawns; only misses travel to the pool.  Every executed point's
payload is written back through :class:`~repro.sweep.cache.ResultCache`
**as soon as that point completes**, so a sweep that later fails — or a
parent that is killed outright — never loses the points it already paid
for.

The pool is a small purpose-built one rather than
``multiprocessing.Pool``: stock pools cannot survive a worker that is
SIGKILLed (by the OOM killer, a cluster preemption, or a per-point
timeout) — the in-flight task is silently lost and ``map`` hangs.  Here
every worker announces which point it is executing before starting it,
so the parent can attribute a worker death to a specific point, resubmit
that point with exponential backoff, and respawn a replacement worker.
Points that exhaust their retry budget fail the sweep with
:class:`SweepExecutionError` — but only after every other point got its
chance, and with all successful payloads already cached.

Each point itself runs all its Monte-Carlo trials as one batched array
program (:func:`~repro.sim.run.repeat_broadcast` dispatches oblivious
algorithms to :class:`~repro.sim.fast.BatchedFastEngine`), so the
parallelism is two-level: processes over points, arrays over trials.
"""

from __future__ import annotations

import collections
import multiprocessing
import os
import queue as queue_module
import time
from dataclasses import dataclass
from typing import Callable, Sequence

from ..analysis import render_table
from ..sim.errors import ConfigurationError, SimulationError
from ..sim.faults import FaultPlan
from ..sim.run import repeat_broadcast
from .cache import CODE_VERSION, ResultCache
from .registry import build_algorithm, build_topology
from .spec import SweepPoint, SweepSpec, canonical_json

__all__ = [
    "PointResult",
    "SweepOutcome",
    "SweepExecutionError",
    "execute_point",
    "run_sweep",
    "engine_run_count",
    "reset_engine_run_counter",
]

#: Broadcast executions performed by this process's sweeps since the last
#: reset.  The cache regression test asserts this stays at zero on a warm
#: re-run; it counts *trials actually executed*, cached points add nothing.
_ENGINE_RUNS = 0


def engine_run_count() -> int:
    """Engine runs performed by ``run_sweep`` since the last reset."""
    return _ENGINE_RUNS


def reset_engine_run_counter() -> None:
    global _ENGINE_RUNS
    _ENGINE_RUNS = 0


class SweepExecutionError(SimulationError):
    """One or more sweep points failed after exhausting their retries.

    Raised only after every point has been attempted, with all successful
    payloads already written to the cache — re-running the sweep retries
    just the failed points.

    Attributes:
        failures: point label -> last error description.
    """

    def __init__(self, message: str, failures: dict[str, str] | None = None):
        super().__init__(message)
        self.failures = dict(failures or {})


def _point_from_canonical(payload: dict) -> SweepPoint:
    faults = payload.get("faults")
    return SweepPoint(
        topology=payload["topology"],
        topology_params=tuple(sorted(payload["topology_params"].items())),
        algorithm=payload["algorithm"],
        algorithm_params=tuple(sorted(payload["algorithm_params"].items())),
        trials=payload["trials"],
        base_seed=payload["base_seed"],
        max_steps=payload["max_steps"],
        faults=FaultPlan.from_dict(faults) if faults is not None else None,
    )


def execute_point(canonical: dict) -> dict:
    """Run one sweep point; top-level so worker processes can unpickle it.

    Args:
        canonical: A :meth:`SweepPoint.canonical` dict.

    Returns:
        JSON-safe payload with per-trial times and summary statistics.
        Deterministic given the point (seeds are derived, never drawn), so
        cached payloads reproduce byte-identically.  Faulty points
        additionally carry their plan and the fault tallies summed over
        trials.
    """
    point = _point_from_canonical(canonical)
    network = build_topology(point.topology, dict(point.topology_params))
    algorithm = build_algorithm(point.algorithm, network, dict(point.algorithm_params))
    results = repeat_broadcast(
        network,
        algorithm,
        runs=point.trials,
        base_seed=point.base_seed,
        max_steps=point.max_steps,
        require_completion=False,
        faults=point.faults,
    )
    times = [r.time for r in results]
    payload = {
        "point": canonical,
        "label": point.label(),
        "algorithm_name": getattr(algorithm, "name", point.algorithm),
        "n": network.n,
        "radius": network.radius,
        "runs": len(results),
        "completed": sum(1 for r in results if r.completed),
        "times": times,
        "mean_time": sum(times) / len(times),
        "min_time": min(times),
        "max_time": max(times),
    }
    if point.faults is not None:
        totals = collections.Counter()
        for r in results:
            totals.update(r.fault_counters.to_dict())
        payload["faults"] = point.faults.to_dict()
        payload["fault_totals"] = {
            key: int(totals.get(key, 0))
            for key in (
                "crashed_nodes", "jammed_slots", "lost_messages", "delayed_wakes"
            )
        }
    return payload


@dataclass(frozen=True)
class PointResult:
    """One sweep cell's outcome plus its provenance."""

    point: SweepPoint
    payload: dict
    cached: bool


@dataclass
class SweepOutcome:
    """Everything one ``run_sweep`` call produced."""

    spec: SweepSpec
    results: list[PointResult]

    @property
    def executed(self) -> int:
        return sum(1 for r in self.results if not r.cached)

    @property
    def from_cache(self) -> int:
        return sum(1 for r in self.results if r.cached)

    def to_dict(self) -> dict:
        """Deterministic JSON form (no cache provenance — content only)."""
        return {
            "spec": self.spec.to_dict(),
            "code_version": CODE_VERSION,
            "points": [r.payload for r in self.results],
        }

    def to_json(self) -> str:
        return canonical_json(self.to_dict())

    def render_table(self) -> str:
        rows = []
        for r in self.results:
            p = r.payload
            rows.append([
                r.point.label(),
                f"{p['completed']}/{p['runs']}",
                f"{p['mean_time']:.0f}",
                f"[{p['min_time']}, {p['max_time']}]",
                "cache" if r.cached else "run",
            ])
        return render_table(
            ["point", "completed", "mean slots", "range", "source"], rows
        )


# ----------------------------------------------------------------------
# Crash-safe worker pool


def _pool_worker(task_queue, result_queue) -> None:
    """Worker loop: announce the task, run it, report the outcome.

    The ``start`` message *before* execution is what makes recovery
    possible: if this process dies mid-point (SIGKILL, OOM, segfault),
    the parent knows exactly which point was in flight and resubmits it.
    """
    pid = os.getpid()
    while True:
        task = task_queue.get()
        if task is None:
            return
        index, canonical = task
        result_queue.put(("start", index, pid))
        try:
            payload = execute_point(canonical)
        except Exception as exc:
            retryable = not isinstance(exc, ConfigurationError)
            result_queue.put(
                ("error", index, f"{type(exc).__name__}: {exc}", retryable)
            )
        else:
            result_queue.put(("done", index, payload))


def _run_pool(
    tasks: Sequence[tuple[int, dict]],
    workers: int,
    timeout: float | None,
    retries: int,
    backoff: float,
    on_done: Callable[[int, dict], None],
) -> dict[int, str]:
    """Execute ``(index, canonical)`` tasks on a kill-tolerant pool.

    Calls ``on_done(index, payload)`` in completion order.  Returns
    ``index -> error`` for every task that exhausted its attempts (empty
    on full success); never raises for task-level failures.
    """
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        context = multiprocessing.get_context("spawn")
    task_queue = context.Queue()
    result_queue = context.Queue()

    canonicals = dict(tasks)
    attempts = {index: 0 for index, _ in tasks}
    remaining = set(canonicals)
    failed: dict[int, str] = {}
    delayed: list[tuple[float, int]] = []  # (ready time, index)
    inflight: dict[int, tuple[int, float | None]] = {}  # pid -> (index, deadline)

    def submit(index: int) -> None:
        nonlocal last_activity
        attempts[index] += 1
        task_queue.put((index, canonicals[index]))
        last_activity = time.monotonic()

    def handle_failure(index: int, error: str, retryable: bool) -> None:
        if index not in remaining or index in failed:
            return  # stale duplicate report for an already-settled point
        if any(i == index for _, i in delayed):
            return  # a retry of this point is already scheduled
        if retryable and attempts[index] < retries + 1:
            pause = backoff * (2 ** (attempts[index] - 1))
            delayed.append((time.monotonic() + pause, index))
        else:
            remaining.discard(index)
            failed[index] = error

    def clear_inflight(index: int) -> None:
        for pid, (running, _) in list(inflight.items()):
            if running == index:
                del inflight[pid]

    def spawn() -> "multiprocessing.Process":
        process = context.Process(
            target=_pool_worker, args=(task_queue, result_queue), daemon=True
        )
        process.start()
        return process

    processes = [spawn() for _ in range(max(1, min(workers, len(canonicals))))]
    for index, _ in tasks:
        submit(index)
    last_activity = time.monotonic()

    try:
        while remaining:
            now = time.monotonic()
            for ready, index in list(delayed):
                if ready <= now:
                    delayed.remove((ready, index))
                    if index in remaining:
                        submit(index)
            if timeout is not None:
                for pid, (index, deadline) in list(inflight.items()):
                    if deadline is not None and now > deadline:
                        # Charge the point once, here, and drop the
                        # in-flight entry so the death observed below is
                        # not attributed a second time.
                        del inflight[pid]
                        handle_failure(
                            index, f"timed out after {timeout:g}s", retryable=True
                        )
                        for process in processes:
                            if process.pid == pid:
                                process.kill()
            for process in list(processes):
                if not process.is_alive():
                    process.join()
                    processes.remove(process)
                    info = inflight.pop(process.pid, None)
                    if info is not None:
                        handle_failure(
                            info[0],
                            "worker process died mid-point "
                            "(killed, out-of-memory, or crashed)",
                            retryable=True,
                        )
                    if remaining:
                        processes.append(spawn())
            # Stall rescue: a worker killed in the instant between taking
            # a task and announcing it leaves that task unattributable.
            # If nothing is running, scheduled, or arriving, resubmit
            # whatever is still open — completed duplicates are ignored.
            if not inflight and not delayed and now - last_activity > 1.0:
                for index in sorted(remaining):
                    submit(index)
                last_activity = now
            try:
                message = result_queue.get(timeout=0.05)
            except queue_module.Empty:
                continue
            last_activity = time.monotonic()
            kind, index = message[0], message[1]
            if kind == "start":
                pid = message[2]
                deadline = time.monotonic() + timeout if timeout is not None else None
                inflight[pid] = (index, deadline)
            elif kind == "done":
                clear_inflight(index)
                if index in remaining:
                    remaining.discard(index)
                    on_done(index, message[2])
            else:  # "error"
                clear_inflight(index)
                handle_failure(index, message[2], message[3])
    finally:
        for process in processes:
            process.kill()
        for process in processes:
            process.join(timeout=5.0)
        for q in (task_queue, result_queue):
            q.close()
            q.cancel_join_thread()
    return failed


def _execute_serial(
    tasks: Sequence[tuple[int, dict]],
    retries: int,
    backoff: float,
    on_done: Callable[[int, dict], None],
) -> dict[int, str]:
    """In-process counterpart of :func:`_run_pool` (no timeout support)."""
    failed: dict[int, str] = {}
    for index, canonical in tasks:
        for attempt in range(retries + 1):
            try:
                payload = execute_point(canonical)
            except ConfigurationError as exc:
                failed[index] = f"{type(exc).__name__}: {exc}"
                break
            except Exception as exc:
                if attempt == retries:
                    failed[index] = f"{type(exc).__name__}: {exc}"
                    break
                time.sleep(backoff * (2 ** attempt))
            else:
                on_done(index, payload)
                break
    return failed


def run_sweep(
    spec: SweepSpec,
    workers: int = 1,
    cache: ResultCache | None = None,
    on_point: Callable[[SweepPoint, dict, bool], None] | None = None,
    timeout: float | None = None,
    retries: int = 0,
    backoff: float = 0.5,
) -> SweepOutcome:
    """Execute a sweep, sharding cache misses across worker processes.

    Args:
        spec: The declarative sweep description.
        workers: Process count for cache-missed points; ``1`` executes
            in-process (no pool spin-up — also what deterministic
            run-counter tests use) unless a ``timeout`` forces a worker,
            since only a separate process can be killed mid-point.
        cache: Result cache; ``None`` disables caching entirely.  Each
            executed payload is written back the moment its point
            completes, so partial progress survives later failures.
        on_point: Progress callback ``(point, payload, cached)``, invoked
            in completion order: cache hits first (grid order), then each
            executed point as it finishes — *before* later points
            complete, so callers can stream results.
        timeout: Per-point wall-clock budget in seconds; a point
            exceeding it has its worker killed and counts as a retryable
            failure.  ``None`` disables the limit.
        retries: How many times a failed point (error, timeout, or worker
            death) is re-attempted.  Configuration errors are
            deterministic and never retried.
        backoff: Base delay in seconds before a retry; doubles with each
            subsequent attempt of the same point.

    Returns:
        A :class:`SweepOutcome` with one :class:`PointResult` per grid
        cell, in grid order.

    Raises:
        SweepExecutionError: If any point still fails after its retry
            budget.  All other points finish (and are cached) first.
    """
    global _ENGINE_RUNS
    if retries < 0:
        raise ConfigurationError(f"retries must be non-negative, got {retries}")
    if timeout is not None and timeout <= 0:
        raise ConfigurationError(f"timeout must be positive, got {timeout}")
    points = spec.points()
    payloads: dict[int, dict] = {}
    cached_flags: dict[int, bool] = {}
    pending: list[int] = []
    for i, point in enumerate(points):
        hit = cache.get(point) if cache is not None else None
        if hit is not None:
            payloads[i] = hit
            cached_flags[i] = True
            if on_point is not None:
                on_point(point, hit, True)
        else:
            pending.append(i)

    if pending:

        def on_done(index: int, payload: dict) -> None:
            global _ENGINE_RUNS
            payloads[index] = payload
            cached_flags[index] = False
            _ENGINE_RUNS += payload["runs"]
            if cache is not None:
                cache.put(points[index], payload)
            if on_point is not None:
                on_point(points[index], payload, False)

        tasks = [(i, points[i].canonical()) for i in pending]
        use_pool = (workers > 1 and len(pending) > 1) or timeout is not None
        if use_pool:
            failed = _run_pool(tasks, workers, timeout, retries, backoff, on_done)
        else:
            failed = _execute_serial(tasks, retries, backoff, on_done)
        if failed:
            failures = {points[i].label(): error for i, error in failed.items()}
            detail = "; ".join(
                f"{label}: {error}" for label, error in sorted(failures.items())
            )
            raise SweepExecutionError(
                f"{len(failed)} sweep point(s) failed after "
                f"{retries + 1} attempt(s): {detail}",
                failures=failures,
            )

    results = [
        PointResult(point=point, payload=payloads[i], cached=cached_flags[i])
        for i, point in enumerate(points)
    ]
    return SweepOutcome(spec=spec, results=results)
