"""cProfile wrappers: top-N pstats tables and callgrind export.

``repro profile run|sweep|bench`` drives these.  Three pieces:

* :func:`profile_call` — run one callable under :class:`cProfile.Profile`
  and return ``(result, Stats)``; profiling observes, never perturbs, so
  the callable's outputs are bit-identical with or without it
  (``tests/sim/test_instrumentation.py`` asserts this for the engines).
* :func:`format_stats` — the pstats top-N table as a string, callers
  pick the sort key (``cumulative`` by default).
* :func:`write_callgrind` / :func:`parse_callgrind` — export a profile
  in the callgrind format KCachegrind/QCachegrind load, plus the minimal
  parser the format test round-trips through.  Costs are integer
  microseconds (callgrind costs must be integers); call targets are
  attributed to the caller's definition line, which is the standard
  pstats-to-callgrind convention (pstats does not retain call sites).

The sweep pool threads a per-point profile hook through its workers
(``run_sweep(profile_dir=...)``): each executed point dumps
``<label>.pstats`` into the directory, and :func:`merge_stats_files`
folds them back into one :class:`pstats.Stats` for attribution across
the whole grid even under multiprocessing.
"""

from __future__ import annotations

import cProfile
import io
import pathlib
import pstats
import re
from typing import Callable, Iterable, Mapping

__all__ = [
    "format_stats",
    "merge_stats_files",
    "parse_callgrind",
    "profile_call",
    "profile_file_name",
    "write_callgrind",
]

#: Allowed pstats sort keys exposed on the CLI.
SORT_KEYS = ("cumulative", "tottime", "calls", "ncalls", "time")


def profile_call(func: Callable[[], object]) -> tuple[object, pstats.Stats]:
    """Run ``func()`` under cProfile; returns ``(result, stats)``."""
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = func()
    finally:
        profiler.disable()
    return result, pstats.Stats(profiler)


def format_stats(
    stats: pstats.Stats, top: int = 20, sort: str = "cumulative"
) -> str:
    """The pstats report for the ``top`` costliest functions, as a string."""
    stream = io.StringIO()
    stats.stream = stream
    stats.sort_stats(sort).print_stats(top)
    return stream.getvalue()


def profile_file_name(label: str) -> str:
    """Filesystem-safe ``<label>.pstats`` name for one sweep point."""
    safe = re.sub(r"[^A-Za-z0-9._=-]+", "_", label).strip("_")
    return f"{safe or 'point'}.pstats"


def merge_stats_files(paths: Iterable[pathlib.Path | str]) -> pstats.Stats | None:
    """Fold several ``.pstats`` dumps into one profile (None if empty)."""
    merged: pstats.Stats | None = None
    for path in paths:
        if merged is None:
            merged = pstats.Stats(str(path))
        else:
            merged.add(str(path))
    return merged


# ----------------------------------------------------------------------
# Callgrind export


def _location(func: tuple) -> tuple[str, int, str]:
    """Normalise a pstats function key ``(file, line, name)``."""
    file, line, name = func
    if file == "~":  # C functions carry no file
        file = ""
    return file or "~", int(line), name


def write_callgrind(stats: pstats.Stats, path: pathlib.Path | str) -> pathlib.Path:
    """Write ``stats`` in callgrind format (KCachegrind-compatible).

    Self costs come from ``tt`` (total time excluding subcalls), call
    arcs from the inverted callers map with the callee's cumulative time
    attributed to each caller.  Event unit: integer microseconds.
    """
    entries: Mapping = stats.stats
    # pstats stores callee -> {caller: (cc, nc, tt, ct)}; callgrind wants
    # caller -> calls.  Invert once.
    calls: dict[tuple, list[tuple[tuple, int, float]]] = {}
    for callee, (_cc, _nc, _tt, _ct, callers) in entries.items():
        for caller, caller_stats in callers.items():
            # Older profile dumps may store a bare float; normalise.
            if isinstance(caller_stats, tuple):
                _, ncalls, _, cum = caller_stats
            else:  # pragma: no cover - legacy pstats layout
                ncalls, cum = 1, float(caller_stats)
            calls.setdefault(caller, []).append((callee, int(ncalls), cum))

    lines = [
        "# callgrind format",
        "version: 1",
        "creator: repro.obs.profile",
        "events: us",
        "",
    ]
    for func in sorted(entries, key=lambda f: _location(f)):
        _cc, _nc, tt, _ct, _callers = entries[func]
        file, line, name = _location(func)
        lines.append(f"fl={file}")
        lines.append(f"fn={name}")
        lines.append(f"{line} {int(tt * 1e6)}")
        for callee, ncalls, cum in sorted(
            calls.get(func, ()), key=lambda c: _location(c[0])
        ):
            cfile, cline, cname = _location(callee)
            lines.append(f"cfl={cfile}")
            lines.append(f"cfn={cname}")
            lines.append(f"calls={ncalls} {cline}")
            lines.append(f"{line} {int(cum * 1e6)}")
        lines.append("")
    out = pathlib.Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text("\n".join(lines), encoding="utf-8")
    return out


_COST_LINE = re.compile(r"^(\d+|\*|[+-]\d+)( \d+)+$")
_CALLS_LINE = re.compile(r"^calls=\d+ \d+$")


def parse_callgrind(text: str) -> dict[str, int]:
    """Minimal KCachegrind-compatible parser: ``function -> self cost``.

    Raises ``ValueError`` on grammar violations — the format test runs
    every exported file through this, so a file we emit is guaranteed to
    at least satisfy the callgrind grammar KCachegrind expects:
    an ``events:`` header, ``fl=``/``fn=`` position scopes before any
    cost line, integer costs, and every ``calls=`` line immediately
    followed by a cost line.
    """
    events: list[str] | None = None
    current_fn: str | None = None
    current_fl: str | None = None
    pending_call = False
    costs: dict[str, int] = {}
    for number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if events is None:
            if line.startswith("events:"):
                events = line.split(":", 1)[1].split()
                if not events:
                    raise ValueError(f"line {number}: events header names no events")
            elif ":" in line and "=" not in line:
                continue  # other headers (version, creator, ...)
            else:
                raise ValueError(f"line {number}: cost data before events header")
            continue
        if line.startswith("fl="):
            current_fl = line[3:]
        elif line.startswith("fn="):
            current_fn = line[3:]
            costs.setdefault(current_fn, 0)
        elif line.startswith(("cfl=", "cfn=", "cob=", "ob=")):
            continue
        elif _CALLS_LINE.match(line):
            pending_call = True
        elif _COST_LINE.match(line):
            if current_fn is None or current_fl is None:
                raise ValueError(f"line {number}: cost line outside fl=/fn= scope")
            if not pending_call:
                costs[current_fn] += int(line.split()[1])
            pending_call = False
        else:
            raise ValueError(f"line {number}: unrecognised callgrind line {raw!r}")
    if events is None:
        raise ValueError("no events header found")
    if pending_call:
        raise ValueError("dangling calls= line with no cost line")
    return costs
