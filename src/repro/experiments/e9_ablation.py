"""E9 — ablation of the Section 2 stage design on a bottleneck topology.

The paper's argument for its stage shape, tested destructively: remove the
universal-sequence slot (or shorten BGI's Decay the naive way) and the
broadcast must stall at a layer whose width far exceeds r/D.
"""

from __future__ import annotations

from ..analysis import render_table, summarize
from ..baselines import BGIBroadcast
from ..core import KnownRadiusKP
from ..sim import run_broadcast_batch
from ..topology import complete_layered
from .base import ExperimentReport, register

STEP_BUDGET = 60_000


def _bottleneck(height: int, fat: int):
    sizes = [1] * (height // 2) + [fat] + [1] * (height // 2)
    return complete_layered(sizes)


@register("e9")
def run(quick: bool = False) -> ExperimentReport:
    """Four stage variants on the fat-layer bottleneck network."""
    seeds = 3 if quick else 5
    net = _bottleneck(100, 300)
    d = net.radius
    report = ExperimentReport(
        "e9",
        f"stage ablation on a bottleneck network (n={net.n}, D={d}, fat=300)",
    )
    variants = {
        "KP full stage (paper)": KnownRadiusKP(net.r, d),
        "KP without universal slot": KnownRadiusKP(net.r, d, extra_step="none"),
        "BGI, full phases": BGIBroadcast(net.r),
        "BGI, shortened phases": BGIBroadcast(net.r, phase_len=4),
    }
    rows, outcomes = [], {}
    for name, algo in variants.items():
        results = run_broadcast_batch(
            net, algo, trials=seeds, max_steps=STEP_BUDGET
        )
        completed = sum(1 for res in results if res.completed)
        informed = summarize([res.informed for res in results])
        spent = summarize([res.time for res in results])
        outcomes[name] = (completed, spent.mean)
        rows.append([name, f"{completed}/{seeds}", f"{spent.mean:.0f}",
                     f"{informed.mean:.0f}/{net.n}"])
    report.add_table(
        render_table(["variant", "completed", "mean rounds", "mean informed"], rows)
    )
    report.check(
        "the paper's full stage always completes",
        outcomes["KP full stage (paper)"][0] == seeds,
    )
    report.check(
        "dropping the universal slot stalls every run at the fat layer "
        "(the paper's justification for the extra step)",
        outcomes["KP without universal slot"][0] == 0,
    )
    report.check(
        "naively shortened Decay stalls too — Decay cannot simply be cut "
        "to log(n/D) steps (Section 2's remark)",
        outcomes["BGI, shortened phases"][0] == 0,
    )
    report.check(
        "full BGI completes but is much slower than the KP stage design",
        outcomes["BGI, full phases"][0] == seeds
        and outcomes["KP full stage (paper)"][1] < outcomes["BGI, full phases"][1],
        f"KP {outcomes['KP full stage (paper)'][1]:.0f} vs "
        f"BGI {outcomes['BGI, full phases'][1]:.0f}",
    )
    return report
