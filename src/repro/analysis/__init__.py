"""Statistics, bound formulas and table rendering for the experiments."""

from .bounds import (
    FitResult,
    alon_lower_bound,
    bgi_randomized_bound,
    bgi_stage_cost_bound,
    claimed_cms_undirected_bound,
    compare_bounds,
    complete_layered_bound,
    complete_layered_phase_cost_bound,
    deterministic_lower_bound,
    fit_constant,
    km_lower_bound,
    kp_randomized_bound,
    kp_stage_cost_bound,
    round_robin_bound,
    select_and_send_bound,
)
from .progress import (
    Milestones,
    ascii_sparkline,
    front_speed,
    milestones,
    progress_curve,
    progress_table_rows,
    transmissions_per_node,
)
from .stats import Summary, summarize
from .tables import format_number, render_table

__all__ = [
    "FitResult",
    "Milestones",
    "Summary",
    "alon_lower_bound",
    "ascii_sparkline",
    "bgi_randomized_bound",
    "bgi_stage_cost_bound",
    "claimed_cms_undirected_bound",
    "compare_bounds",
    "complete_layered_bound",
    "complete_layered_phase_cost_bound",
    "deterministic_lower_bound",
    "fit_constant",
    "front_speed",
    "milestones",
    "format_number",
    "km_lower_bound",
    "kp_randomized_bound",
    "kp_stage_cost_bound",
    "progress_curve",
    "progress_table_rows",
    "render_table",
    "round_robin_bound",
    "select_and_send_bound",
    "summarize",
    "transmissions_per_node",
]
