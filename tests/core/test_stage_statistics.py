"""Statistical validation of the randomized stage implementation.

The Section 2 analysis hinges on nodes transmitting with *exactly* the
prescribed probabilities.  These tests estimate empirical transmission
frequencies from many runs of the vectorised schedule and check them
against the timetable, slot class by slot class — a bug in eligibility or
probability indexing would shift these frequencies far outside the bands.
"""

from __future__ import annotations

import numpy as np

from repro.core.randomized import KnownRadiusKP, StageTimetable
from repro.sim.coins import CoinSource, derive_trial_seeds


def _empirical_rate(algo, slot: int, eligible_wake: int, trials: int = 4000) -> float:
    """Fraction of trials in which one eligible node transmits at ``slot``.

    Coins are slot-indexed per (seed, label, step), so each trial is one
    run seed: the empirical frequency samples across the seed axis —
    exactly the randomness Monte-Carlo estimates average over.
    """
    labels = np.arange(1, 2)  # a single non-source node
    wake = np.tile(np.array([eligible_wake], dtype=np.int64), (trials, 1))
    coins = CoinSource.for_batch(derive_trial_seeds(123, trials), labels)
    mask = algo.transmit_mask(slot, labels, wake, algo._phases[0].r2 - 1, coins)
    mask = np.broadcast_to(mask, wake.shape)
    return float(mask[:, 0].mean())


def test_sweep_probabilities_match_timetable():
    algo = KnownRadiusKP(255, 16, stage_constant=4)
    timetable = algo._phases[0]
    # Stage 0 occupies slots 1..stage_len; test the sweep positions.
    for position in range(timetable.stage_len - 1):
        slot = 1 + position
        expected = 2.0 ** (-position)
        rate = _empirical_rate(algo, slot, eligible_wake=-1)
        assert abs(rate - expected) <= max(0.03, 4 * (expected * (1 - expected) / 4000) ** 0.5), (
            position,
            rate,
            expected,
        )


def test_universal_slot_probability_matches_sequence():
    algo = KnownRadiusKP(255, 16, stage_constant=4)
    timetable = algo._phases[0]
    slot = timetable.stage_len  # last slot of stage 0
    expected = timetable.universal.probability(1)
    rate = _empirical_rate(algo, slot, eligible_wake=-1)
    assert abs(rate - expected) <= max(0.03, 4 * (expected * (1 - expected) / 4000) ** 0.5)


def test_ineligible_node_never_transmits():
    algo = KnownRadiusKP(255, 16, stage_constant=4)
    timetable = algo._phases[0]
    # A node woken inside stage 0 must be silent for all of stage 0.
    for position in range(timetable.stage_len):
        slot = 1 + position
        rate = _empirical_rate(algo, slot, eligible_wake=1, trials=300)
        assert rate == 0.0, (slot, rate)


def test_node_becomes_eligible_at_next_stage():
    algo = KnownRadiusKP(255, 16, stage_constant=4)
    timetable = algo._phases[0]
    stage1_first_slot = 1 + timetable.stage_len  # position 0 -> probability 1
    rate = _empirical_rate(algo, stage1_first_slot, eligible_wake=1, trials=100)
    assert rate == 1.0


def test_source_solo_slot():
    algo = KnownRadiusKP(255, 16, stage_constant=4)
    labels = np.array([0, 5])
    wake = np.array([-1, -1], dtype=np.int64)
    mask = algo.transmit_mask(0, labels, wake, 255, np.random.default_rng(0))
    assert mask[0] and not mask[1]


def test_timetable_probabilities_are_powers_of_two():
    timetable = StageTimetable.build(1023, 64, stage_constant=2)
    for offset in range(1, 1 + 3 * timetable.stage_len):
        decoded = timetable.slot(offset)
        assert decoded is not None
        probability, _ = decoded
        assert probability > 0
        exponent = -np.log2(probability)
        assert abs(exponent - round(exponent)) < 1e-12
