"""Round-robin, selective-family, interleaved, known-neighbour DFS and
centralized baselines."""

from __future__ import annotations

import math

import pytest

from repro.baselines.centralized import CentralizedGreedySchedule, greedy_broadcast_schedule
from repro.baselines.interleaved import InterleavedBroadcast
from repro.baselines.known_neighbors import KnownNeighborsDFS
from repro.baselines.round_robin import RoundRobinBroadcast
from repro.baselines.selective_schedule import SelectiveFamilyBroadcast
from repro.core.select_and_send import SelectAndSend
from repro.sim import run_broadcast, run_broadcast_fast
from repro.sim.errors import ConfigurationError
from repro.topology import gnp_connected, grid, path, random_tree, star, uniform_complete_layered


class TestRoundRobin:
    def test_sorted_path_pipelines_one_hop_per_slot(self):
        net = path(10)
        result = run_broadcast(net, RoundRobinBroadcast(net.r))
        assert result.time == 9  # labels in BFS order: perfect pipeline

    def test_nd_bound(self):
        for net in [path(20, relabel="shuffled", seed=2), grid(5, 5), star(15)]:
            result = run_broadcast(net, RoundRobinBroadcast(net.r))
            assert result.completed
            assert result.time <= (net.r + 1) * net.radius + net.r + 1

    def test_completes_on_zoo(self, topology_zoo):
        for name, net in topology_zoo.items():
            assert run_broadcast(net, RoundRobinBroadcast(net.r)).completed, name


class TestSelectiveFamily:
    def test_random_variant_completes(self, topology_zoo):
        for name, net in topology_zoo.items():
            algo = SelectiveFamilyBroadcast(net.r, "random", seed=1)
            assert run_broadcast(net, algo).completed, name

    def test_kautz_singleton_variant_completes(self):
        net = gnp_connected(25, 0.25, seed=2)
        algo = SelectiveFamilyBroadcast(net.r, "kautz-singleton", max_scale=8)
        assert run_broadcast(net, algo).completed

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            SelectiveFamilyBroadcast(31, "magic")

    def test_cycle_contains_full_set(self):
        algo = SelectiveFamilyBroadcast(15, "random", seed=0)
        assert frozenset(range(16)) in algo._sets

    def test_fast_and_reference_agree(self):
        net = grid(4, 4)
        algo = SelectiveFamilyBroadcast(net.r, "random", seed=3)
        assert run_broadcast(net, algo).time == run_broadcast_fast(net, algo).time


class TestInterleaved:
    def test_completes_both_orders(self):
        net = grid(5, 5)
        rr = RoundRobinBroadcast(net.r)
        ss = SelectAndSend()
        for algo in [InterleavedBroadcast(rr, ss), InterleavedBroadcast(ss, rr)]:
            result = run_broadcast(net, algo, require_completion=True)
            assert result.completed

    def test_time_about_twice_the_faster(self):
        """Interleaving costs at most ~2x the faster component."""
        for net in [path(24), star(24), random_tree(40, seed=2)]:
            rr_time = run_broadcast(net, RoundRobinBroadcast(net.r)).time
            ss_time = run_broadcast(net, SelectAndSend()).time
            both = run_broadcast(
                net, InterleavedBroadcast(RoundRobinBroadcast(net.r), SelectAndSend())
            ).time
            assert both <= 2 * min(rr_time, ss_time) + 2

    def test_deterministic_flag_propagates(self):
        from repro.baselines.bgi import BGIBroadcast

        det = InterleavedBroadcast(RoundRobinBroadcast(7), SelectAndSend())
        assert det.deterministic
        mixed = InterleavedBroadcast(RoundRobinBroadcast(7), BGIBroadcast(7))
        assert not mixed.deterministic

    def test_min_d_log_n_bound(self):
        """The paper's O(n min(D, log n)) claim, with a generous constant."""
        for net in [path(40), star(40), grid(6, 6)]:
            algo = InterleavedBroadcast(RoundRobinBroadcast(net.r), SelectAndSend())
            time = run_broadcast(net, algo, require_completion=True).time
            bound = 14 * net.n * min(net.radius, math.log2(net.n))
            assert time <= bound, (net.describe(), time, bound)


class TestKnownNeighborsDFS:
    def test_completes_in_linear_steps(self, topology_zoo):
        for name, net in topology_zoo.items():
            result = run_broadcast(net, KnownNeighborsDFS(net))
            assert result.completed, name
            assert result.time <= 2 * net.n + 2, name

    def test_token_carries_dfs(self):
        net = path(12)
        result = run_broadcast(net, KnownNeighborsDFS(net))
        assert result.time == 11  # straight descent down the path


class TestCentralized:
    def test_schedule_informs_everyone_when_replayed(self, topology_zoo):
        for name, net in topology_zoo.items():
            algo = CentralizedGreedySchedule(net)
            result = run_broadcast(net, algo)
            assert result.completed, name
            assert result.time <= algo.schedule_length

    def test_schedule_shorter_than_n(self, topology_zoo):
        for name, net in topology_zoo.items():
            schedule = greedy_broadcast_schedule(net)
            assert len(schedule) <= net.n, name

    def test_fast_and_reference_agree(self):
        net = uniform_complete_layered(50, 5)
        algo = CentralizedGreedySchedule(net)
        assert run_broadcast(net, algo).time == run_broadcast_fast(net, algo).time

    def test_near_optimal_on_star(self):
        net = star(30)
        algo = CentralizedGreedySchedule(net)
        assert algo.schedule_length == 1
