"""Live telemetry bus: streaming span/progress events out of workers.

The sweep pool's result queue reports *outcomes*; this module streams
*progress* — span and lifecycle events flow from fork-pool workers to
the parent while points are still executing, so consumers (``repro
top``, a future ``repro serve`` SSE endpoint, the runlog) observe a
sweep as it happens instead of at ``on_point`` time.

Discipline (same as the metrics/timings layers): **zero overhead when
disabled** — everything here is reached only through optional handles
that default to ``None`` — and **never block the hot path** when
enabled.  The bus is a bounded ``multiprocessing`` queue; worker-side
:class:`TelemetrySender.emit` uses ``put_nowait`` only, and when the
parent falls behind and the queue is full the event is *dropped and
counted*, never waited for.  Drop counts piggyback on the next
successful event (cumulative per sender), so the parent's tally is
exact up to a sender's trailing drops — a sender whose final events all
dropped undercounts by that tail, which is the price of never blocking.

Wire format: plain JSON-safe dicts with an ``"event"`` kind key —
``span`` events from :mod:`repro.obs.spans` plus worker progress beats
(``point_running``).  The parent-side :class:`TelemetryHub` drains the
bus, writes events into the run log (the parent stays the only writer),
and fans them out to in-process subscribers.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import time
from dataclasses import dataclass
from typing import Callable

from .spans import SpanRecorder, new_span_id

__all__ = [
    "DEFAULT_CAPACITY",
    "LocalSender",
    "SpanContext",
    "TelemetryBus",
    "TelemetryHub",
    "TelemetrySender",
    "WorkerTelemetry",
]

#: Default bounded-queue capacity; a quick sweep emits well under this,
#: a saturated bus drops (and counts) rather than growing without bound.
DEFAULT_CAPACITY = 1024


class TelemetrySender:
    """Worker-side handle: non-blocking emit with drop counting.

    Created by :meth:`TelemetryBus.sender` in the parent and shipped to
    workers as a process argument.  :meth:`emit` never blocks: a full
    queue increments :attr:`dropped` and the event is gone.  The
    cumulative drop count rides on the next event that does fit, which
    is how the parent learns about drops without a side channel.
    """

    __slots__ = ("_queue", "dropped")

    def __init__(self, bus_queue) -> None:
        self._queue = bus_queue
        self.dropped = 0

    def emit(self, event: dict) -> bool:
        """Enqueue one event; returns ``False`` (and counts) when full."""
        record = dict(event)
        record.setdefault("pid", os.getpid())
        if self.dropped:
            record["dropped"] = self.dropped
        try:
            self._queue.put_nowait(record)
        except queue_module.Full:
            self.dropped += 1
            return False
        return True


class LocalSender:
    """In-process sender for serial execution: events go straight to the
    hub's ingest callback, nothing is queued and nothing can drop."""

    __slots__ = ("_ingest", "dropped")

    def __init__(self, ingest: Callable[[dict], None]) -> None:
        self._ingest = ingest
        self.dropped = 0

    def emit(self, event: dict) -> bool:
        record = dict(event)
        record.setdefault("pid", os.getpid())
        self._ingest(record)
        return True


class TelemetryBus:
    """Parent-created bounded channel from workers to the parent.

    Args:
        context: The ``multiprocessing`` context the worker pool uses
            (the queue must come from the same one); defaults to the
            platform default.
        capacity: Maximum queued-but-undrained events before senders
            start dropping.
    """

    def __init__(self, context=None, capacity: int = DEFAULT_CAPACITY) -> None:
        ctx = context if context is not None else multiprocessing.get_context()
        self.capacity = capacity
        self._queue = ctx.Queue(capacity)
        self.received = 0
        self._dropped_by_pid: dict[int | None, int] = {}

    def sender(self) -> TelemetrySender:
        """A sender for this bus (picklable into a worker process)."""
        return TelemetrySender(self._queue)

    def drain(self, limit: int = 10_000, timeout: float = 0.0) -> list[dict]:
        """Pop every queued event (up to ``limit``) without blocking.

        A positive ``timeout`` waits up to that long (total) for events
        still in flight through the queue's feeder thread — useful for a
        final drain; the steady-state polling drain should leave it 0.
        """
        events: list[dict] = []
        deadline = time.monotonic() + timeout if timeout > 0 else None
        while len(events) < limit:
            try:
                if deadline is None:
                    event = self._queue.get_nowait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        event = self._queue.get_nowait()
                    else:
                        event = self._queue.get(timeout=remaining)
            except queue_module.Empty:
                break
            except (EOFError, OSError):  # pragma: no cover - closing race
                break
            self.received += 1
            if isinstance(event, dict):
                dropped = event.pop("dropped", None)
                if dropped is not None:
                    # Per-sender cumulative count; queue order is FIFO per
                    # process, so the latest value supersedes earlier ones.
                    self._dropped_by_pid[event.get("pid")] = int(dropped)
                events.append(event)
        return events

    @property
    def dropped(self) -> int:
        """Events known to have been dropped by saturated senders."""
        return sum(self._dropped_by_pid.values())

    def close(self) -> None:
        self._queue.close()
        self._queue.cancel_join_thread()


@dataclass(frozen=True)
class SpanContext:
    """Cross-process span ancestry: ships with a worker task so
    worker-side spans nest under the parent's sweep span."""

    trace_id: str
    parent_id: str | None = None


@dataclass(frozen=True)
class WorkerTelemetry:
    """What one worker needs to report telemetry: a sender + ancestry.

    Picklable (the sender carries a ``multiprocessing`` queue, which
    survives being passed as a process argument).  Workers build their
    :class:`~repro.obs.spans.SpanRecorder` from it via :meth:`recorder`.
    """

    sender: TelemetrySender | LocalSender
    context: SpanContext

    def recorder(self, clock=time.time) -> SpanRecorder:
        return SpanRecorder(
            sink=self.sender.emit, clock=clock, trace_id=self.context.trace_id
        )


class TelemetryHub:
    """Parent-side façade: span recorder, bus, runlog writes, fan-out.

    One hub observes one invocation (a sweep, typically).  It owns

    * :attr:`recorder` — the parent's own :class:`SpanRecorder` (sweep
      span, cache-hit accounting), whose finished spans flow through
      :meth:`ingest` like every bus event;
    * the bounded :class:`TelemetryBus` (created lazily by
      :meth:`open_bus` with the pool's multiprocessing context);
    * the optional :class:`~repro.obs.runlog.RunLogger` every ingested
      event is appended to — the parent remains the runlog's only
      writer, worker events reach it through the bus;
    * in-process subscribers (:meth:`subscribe`) — ``repro top``'s view,
      a future SSE publisher — each called with every event dict.

    Subscriber callbacks run on the parent's drain path; they should be
    cheap and must not raise (an exception would abort the sweep loop).
    """

    def __init__(
        self,
        runlog=None,
        clock: Callable[[], float] = time.time,
        capacity: int = DEFAULT_CAPACITY,
        trace_id: str | None = None,
        id_factory: Callable[[], str] = new_span_id,
    ) -> None:
        self.runlog = runlog
        self.clock = clock
        self.capacity = capacity
        self.recorder = SpanRecorder(
            sink=self.ingest, clock=clock, trace_id=trace_id,
            id_factory=id_factory,
        )
        self._subscribers: list[Callable[[dict], None]] = []
        self._bus: TelemetryBus | None = None

    # -- fan-out -------------------------------------------------------

    def subscribe(self, callback: Callable[[dict], None]) -> None:
        self._subscribers.append(callback)

    def notify(self, event: dict) -> None:
        """Fan an event out to subscribers (no runlog write)."""
        for callback in self._subscribers:
            callback(event)

    def ingest(self, event: dict) -> None:
        """Record one telemetry event: append to the runlog, then fan out."""
        record = dict(event)
        if self.runlog is not None and "event" in record:
            fields = {k: v for k, v in record.items() if k != "event"}
            record = self.runlog.event(record["event"], **fields)
        self.notify(record)

    # -- the bus -------------------------------------------------------

    def open_bus(self, context=None) -> TelemetryBus:
        """The hub's bus, created on first call (with the pool's context)."""
        if self._bus is None:
            self._bus = TelemetryBus(context=context, capacity=self.capacity)
        return self._bus

    def worker_telemetry(self, parent_span=None) -> WorkerTelemetry:
        """Telemetry bundle for a pooled worker (requires an open bus)."""
        if self._bus is None:
            raise RuntimeError("open_bus() must be called before worker_telemetry()")
        return WorkerTelemetry(self._bus.sender(), self.span_context(parent_span))

    def local_telemetry(self, parent_span=None) -> WorkerTelemetry:
        """Telemetry bundle for in-process (serial) execution."""
        return WorkerTelemetry(LocalSender(self.ingest), self.span_context(parent_span))

    def span_context(self, parent_span=None) -> SpanContext:
        return SpanContext(
            trace_id=self.recorder.trace_id,
            parent_id=parent_span.span_id if parent_span is not None else None,
        )

    def drain(self, timeout: float = 0.0) -> int:
        """Ingest everything currently queued; returns the event count."""
        if self._bus is None:
            return 0
        events = self._bus.drain(timeout=timeout)
        for event in events:
            self.ingest(event)
        return len(events)

    @property
    def dropped(self) -> int:
        """Bus events dropped by saturated senders (0 with no bus)."""
        return self._bus.dropped if self._bus is not None else 0

    def close(self) -> None:
        """Final drain, then release the bus queue."""
        self.drain()
        if self._bus is not None:
            self._bus.close()
            self._bus = None
