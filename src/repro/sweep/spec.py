"""Declarative sweep specifications.

A sweep is *topology family × parameter grid × algorithm × trial count*.
:class:`SweepSpec` expands the grids into concrete :class:`SweepPoint`
objects; every point is self-contained (it names the topology and
algorithm factories plus all parameters), which is what makes points
shardable across worker processes and individually cacheable.

Canonical serialisation matters here: a point's cache key is a content
hash of its canonical JSON plus the engine code version, so byte-stable
encoding (sorted keys, fixed separators) is part of the contract.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Sequence

from ..sim.errors import ConfigurationError
from ..sim.faults import FaultPlan

__all__ = ["SweepPoint", "SweepSpec", "canonical_json"]


def canonical_json(payload: Any) -> str:
    """Byte-stable JSON encoding (sorted keys, no whitespace)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class SweepPoint:
    """One fully-instantiated cell of a sweep grid.

    Attributes:
        topology: Topology family name (see :mod:`repro.sweep.registry`).
        topology_params: Concrete parameters for the topology factory.
        algorithm: Algorithm factory name.
        algorithm_params: Concrete parameters for the algorithm factory.
        trials: Monte-Carlo repetitions at this point.
        base_seed: First trial seed (trial ``i`` uses ``base_seed + i``).
        max_steps: Optional step limit override.
        faults: Optional :class:`~repro.sim.faults.FaultPlan` injected
            into every trial of the point.
    """

    topology: str
    topology_params: tuple[tuple[str, Any], ...]
    algorithm: str
    algorithm_params: tuple[tuple[str, Any], ...]
    trials: int
    base_seed: int
    max_steps: int | None
    faults: FaultPlan | None = None

    def __post_init__(self) -> None:
        # Validated here — not only on SweepSpec — because points are also
        # constructed directly from cached/canonical dicts; a zero-trial
        # point would otherwise only fail deep inside execution (as a
        # ZeroDivisionError computing the mean over no times).
        if self.trials < 1:
            raise ConfigurationError(
                f"trials must be positive, got {self.trials}"
            )
        if self.faults is not None and not isinstance(self.faults, FaultPlan):
            object.__setattr__(self, "faults", FaultPlan.from_dict(self.faults))

    def canonical(self) -> dict:
        """JSON-safe dict uniquely describing the point's computation.

        The ``faults`` key appears only for faulty points, so fault-free
        points hash exactly as they always have — existing caches stay
        valid.
        """
        data = {
            "topology": self.topology,
            "topology_params": dict(self.topology_params),
            "algorithm": self.algorithm,
            "algorithm_params": dict(self.algorithm_params),
            "trials": self.trials,
            "base_seed": self.base_seed,
            "max_steps": self.max_steps,
        }
        if self.faults is not None:
            data["faults"] = self.faults.to_dict()
        return data

    def content_hash(self, code_version: str) -> str:
        """Cache key: sha256 of canonical JSON + engine code version.

        Only the computation's inputs enter the hash — the sweep *name*
        does not, so identical points are shared across sweeps, and a
        changed parameter invalidates exactly the points it touches.
        """
        blob = canonical_json({"code_version": code_version, "point": self.canonical()})
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def label(self) -> str:
        """Short human-readable cell id for tables and progress lines."""
        params = ", ".join(
            f"{k}={v}" for k, v in (*self.topology_params, *self.algorithm_params)
        )
        suffix = " +faults" if self.faults is not None else ""
        return f"{self.topology}({params}) x {self.algorithm}{suffix}"


def _as_grid(grid: Mapping[str, Any]) -> dict[str, tuple]:
    """Normalise a parameter grid: every value becomes a tuple of choices."""
    out: dict[str, tuple] = {}
    for key, values in grid.items():
        if isinstance(values, (str, bytes)) or not isinstance(values, Sequence):
            values = (values,)
        out[str(key)] = tuple(values)
    return out


def _expand(grid: dict[str, tuple]) -> Iterator[tuple[tuple[str, Any], ...]]:
    """Cartesian product of a grid as sorted (key, value) tuples."""
    keys = sorted(grid)
    for combo in itertools.product(*(grid[k] for k in keys)):
        yield tuple(zip(keys, combo))


@dataclass(frozen=True)
class SweepSpec:
    """Declarative description of one sweep.

    Attributes:
        name: Sweep id; used for output file names only (never hashed).
        topology: Topology family name.
        algorithm: Algorithm factory name.
        topology_grid: Parameter name -> value or sequence of values.
        algorithm_grid: Parameter name -> value or sequence of values.
        trials: Monte-Carlo repetitions per point.
        base_seed: First trial seed at every point.
        max_steps: Optional step limit override for every point.
        faults: Optional fault plan applied at every point — a
            :class:`~repro.sim.faults.FaultPlan` or its dict form.
    """

    name: str
    topology: str
    algorithm: str
    topology_grid: Mapping[str, Any] = field(default_factory=dict)
    algorithm_grid: Mapping[str, Any] = field(default_factory=dict)
    trials: int = 5
    base_seed: int = 0
    max_steps: int | None = None
    faults: FaultPlan | None = None

    def __post_init__(self) -> None:
        if self.trials < 1:
            raise ConfigurationError(f"trials must be positive, got {self.trials}")
        if self.faults is not None and not isinstance(self.faults, FaultPlan):
            object.__setattr__(self, "faults", FaultPlan.from_dict(self.faults))

    def points(self) -> list[SweepPoint]:
        """Expand the grids into concrete sweep points (stable order)."""
        topo_grid = _as_grid(self.topology_grid)
        algo_grid = _as_grid(self.algorithm_grid)
        return [
            SweepPoint(
                topology=self.topology,
                topology_params=topo_params,
                algorithm=self.algorithm,
                algorithm_params=algo_params,
                trials=self.trials,
                base_seed=self.base_seed,
                max_steps=self.max_steps,
                faults=self.faults,
            )
            for topo_params in _expand(topo_grid)
            for algo_params in _expand(algo_grid)
        ]

    def to_dict(self) -> dict:
        data = {
            "name": self.name,
            "topology": self.topology,
            "algorithm": self.algorithm,
            "topology_grid": {k: list(v) for k, v in _as_grid(self.topology_grid).items()},
            "algorithm_grid": {k: list(v) for k, v in _as_grid(self.algorithm_grid).items()},
            "trials": self.trials,
            "base_seed": self.base_seed,
            "max_steps": self.max_steps,
        }
        if self.faults is not None:
            data["faults"] = self.faults.to_dict()
        return data

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SweepSpec":
        """Build a spec from a JSON document (the ``repro sweep --spec`` format)."""
        known = {
            "name", "topology", "algorithm", "topology_grid",
            "algorithm_grid", "trials", "base_seed", "max_steps", "faults",
        }
        unknown = set(payload) - known
        if unknown:
            raise ConfigurationError(f"unknown sweep spec fields: {sorted(unknown)}")
        for required in ("name", "topology", "algorithm"):
            if required not in payload:
                raise ConfigurationError(f"sweep spec is missing {required!r}")
        return cls(
            name=str(payload["name"]),
            topology=str(payload["topology"]),
            algorithm=str(payload["algorithm"]),
            topology_grid=dict(payload.get("topology_grid", {})),
            algorithm_grid=dict(payload.get("algorithm_grid", {})),
            trials=int(payload.get("trials", 5)),
            base_seed=int(payload.get("base_seed", 0)),
            max_steps=payload.get("max_steps"),
            faults=(
                FaultPlan.from_dict(payload["faults"])
                if payload.get("faults") is not None
                else None
            ),
        )
