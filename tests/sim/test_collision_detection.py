"""The collision-detection model variant (Section 4.1 ablation support)."""

from __future__ import annotations

from repro.sim.engine import SynchronousEngine
from repro.sim.messages import COLLISION_MARKER, CollisionMarker
from repro.sim.network import RadioNetwork
from repro.sim.protocol import BroadcastAlgorithm, Protocol


class _CdScripted(Protocol):
    """CD-aware scripted protocol: records raw observations."""

    def __init__(self, label, r, rng, steps):
        super().__init__(label, r, rng)
        self.steps = steps
        self.observations: list[object] = []

    def on_wake(self, step, message):
        pass

    def next_action(self, step):
        return ("tick", self.label) if step in self.steps else None

    def observe(self, step, message):
        self.observations.append(message)


class CdScriptedAlgorithm(BroadcastAlgorithm):
    deterministic = True
    name = "cd-scripted"

    def __init__(self, scripts):
        self.scripts = scripts

    def create(self, label, r, rng):
        return _CdScripted(label, r, rng, self.scripts.get(label, set()))


def star4():
    return RadioNetwork.undirected(range(4), [(0, 1), (0, 2), (0, 3)])


def test_awake_listener_observes_collision_marker():
    net = star4()
    engine = SynchronousEngine(
        net, CdScriptedAlgorithm({0: {0}, 1: {1}, 2: {1}}), collision_detection=True
    )
    engine.run_step()  # informs everyone (centre transmits alone)
    engine.run_step()  # 1 and 2 collide at the centre
    centre = engine.protocols[0]
    assert centre.observations == [None, COLLISION_MARKER]


def test_silence_still_observed_as_none_under_cd():
    net = star4()
    engine = SynchronousEngine(
        net, CdScriptedAlgorithm({0: {0}}), collision_detection=True
    )
    engine.run_step()
    engine.run_step()  # nobody transmits
    centre = engine.protocols[0]
    assert centre.observations == [None, None]


def test_single_transmitter_still_delivers_under_cd():
    net = star4()
    engine = SynchronousEngine(
        net, CdScriptedAlgorithm({0: {0}, 1: {1}}), collision_detection=True
    )
    engine.run_step()
    engine.run_step()
    centre = engine.protocols[0]
    assert centre.observations[-1].sender == 1


def test_collision_never_wakes_sleepers():
    # Nodes 1, 2 adjacent to 3; both transmit -> 3 collides while asleep.
    net = RadioNetwork.undirected(range(4), [(0, 1), (0, 2), (1, 3), (2, 3)])
    engine = SynchronousEngine(
        net, CdScriptedAlgorithm({0: {0}, 1: {1}, 2: {1}}), collision_detection=True
    )
    engine.run_step()
    engine.run_step()
    assert 3 not in engine.protocols  # still asleep despite the collision


def test_default_model_never_emits_marker():
    net = star4()
    engine = SynchronousEngine(net, CdScriptedAlgorithm({0: {0}, 1: {1}, 2: {1}}))
    engine.run_step()
    engine.run_step()
    centre = engine.protocols[0]
    assert centre.observations == [None, None]


def test_marker_is_singleton_dataclass():
    assert isinstance(COLLISION_MARKER, CollisionMarker)
    assert CollisionMarker() == COLLISION_MARKER
