"""Span model, Timings-delta stage synthesis, and trace-event export."""

from __future__ import annotations

import itertools
import json

import pytest

from repro.obs.spans import (
    SPAN_KINDS,
    Span,
    SpanRecorder,
    TraceFormatError,
    export_trace_events,
    new_span_id,
    parse_trace_events,
    span_events,
    write_trace,
)
from repro.obs.timings import Timings


def make_recorder(sink=None, start=100.0, step=1.0):
    """Recorder with a deterministic clock and sequential span ids."""
    ticks = itertools.count()
    ids = itertools.count()
    return SpanRecorder(
        sink=sink,
        clock=lambda: start + step * next(ticks),
        trace_id="trace0",
        id_factory=lambda: f"s{next(ids)}",
    )


class TestSpanModel:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown span kind"):
            Span("x", "galaxy", "id", None, "t", 0.0, pid=1)

    def test_new_span_id_shape(self):
        a, b = new_span_id(), new_span_id()
        assert a != b and len(a) == 16
        int(a, 16)

    def test_to_event_wire_form(self):
        recorder = make_recorder()
        span = recorder.start("quick", "sweep", points=4)
        recorder.end(span)
        event = span.to_event()
        assert event["event"] == "span"
        assert event["name"] == "quick" and event["kind"] == "sweep"
        assert event["span_id"] == "s0" and event["parent_id"] is None
        assert event["end_ts"] >= event["start_ts"]
        assert event["attrs"] == {"points": 4}


class TestNesting:
    def test_stack_nesting_and_sink(self):
        events = []
        recorder = make_recorder(sink=events.append)
        outer = recorder.start("sweep", "sweep")
        inner = recorder.start("p0", "point")
        assert inner.parent_id == outer.span_id
        assert recorder.current is inner
        recorder.end(inner)
        recorder.end(outer)
        assert [e["name"] for e in events] == ["p0", "sweep"]
        assert recorder.current is None

    def test_explicit_parent_crosses_processes(self):
        # A worker-side recorder attaches its point span to the parent's
        # sweep span id — the context-propagation contract.
        recorder = make_recorder()
        span = recorder.start("p1", "point", parent_id="parent-sweep-id")
        assert span.parent_id == "parent-sweep-id"

    def test_context_manager_closes_on_exception(self):
        events = []
        recorder = make_recorder(sink=events.append)
        with pytest.raises(RuntimeError):
            with recorder.span("trial", "trial"):
                raise RuntimeError("boom")
        assert [e["name"] for e in events] == ["trial"]
        assert recorder.current is None

    def test_out_of_order_end_tolerated(self):
        recorder = make_recorder()
        outer = recorder.start("a", "sweep")
        inner = recorder.start("b", "point")
        recorder.end(outer)  # exception path may close outer first
        recorder.end(inner)
        assert recorder.current is None

    def test_monotone_end_clamp(self):
        ticks = iter([100.0, 50.0])
        recorder = SpanRecorder(clock=lambda: next(ticks))
        span = recorder.start("a", "sweep")
        recorder.end(span)
        assert span.end_ts == span.start_ts == 100.0


class TestStageSynthesis:
    def test_emit_stage_spans_from_delta(self):
        events = []
        recorder = make_recorder(sink=events.append)
        timings = Timings()
        timings.add("engine.step", 1.0, count=3)
        parent = recorder.start("trial", "trial")
        before = recorder.stage_snapshot(timings)
        timings.add("engine.step", 2.0, count=5)
        timings.add("engine.coins", 0.5, count=5)
        timings.add("point.build", 9.0)  # wrong prefix: skipped
        spans = recorder.emit_stage_spans(parent, before, timings)
        names = {s.name: s for s in spans}
        assert set(names) == {"engine.step", "engine.coins"}
        step = names["engine.step"]
        # Only the delta accumulated inside the parent, not the prior 1.0s.
        assert step.duration == pytest.approx(2.0)
        assert step.attrs == {"count": 5, "synthetic": True}
        assert step.start_ts == parent.start_ts
        assert step.parent_id == parent.span_id
        assert all(e["event"] == "span" for e in events)

    def test_no_timings_no_stage_spans(self):
        recorder = make_recorder()
        parent = recorder.start("trial", "trial")
        assert recorder.emit_stage_spans(parent, {}, None) == []

    def test_trial_span_contextmanager(self):
        events = []
        recorder = make_recorder(sink=events.append)
        timings = Timings()
        with recorder.trial_span("trial[0]", timings, seed=0) as span:
            timings.add("engine.step", 0.25, count=2)
        kinds = [(e["name"], e["kind"]) for e in events]
        assert ("engine.step", "stage") in kinds
        assert ("trial[0]", "trial") in kinds
        assert span.end_ts is not None


def finished_events():
    """A two-process span tree as runlog events (parent pid 1, worker 2)."""
    sweep = {
        "event": "span", "span_id": "sw", "parent_id": None,
        "trace_id": "t", "name": "quick", "kind": "sweep",
        "start_ts": 100.0, "end_ts": 104.0, "pid": 1,
    }
    point = {
        "event": "span", "span_id": "pt", "parent_id": "sw",
        "trace_id": "t", "name": "p0", "kind": "point",
        "start_ts": 100.5, "end_ts": 103.0, "pid": 2,
    }
    trial = {
        "event": "span", "span_id": "tr", "parent_id": "pt",
        "trace_id": "t", "name": "batch[3]", "kind": "trial",
        "start_ts": 100.6, "end_ts": 102.9, "pid": 2,
    }
    stage = {
        "event": "span", "span_id": "st", "parent_id": "tr",
        "trace_id": "t", "name": "engine.step", "kind": "stage",
        "start_ts": 100.6, "end_ts": 102.0, "pid": 2,
        "attrs": {"count": 9, "synthetic": True},
    }
    other = {"event": "point_completed", "index": 0}
    return [other, sweep, point, trial, stage]


class TestTraceExport:
    def test_span_events_filters(self):
        events = finished_events()
        assert [s["span_id"] for s in span_events(events)] == ["sw", "pt", "tr", "st"]

    def test_export_pid_tid_mapping(self):
        document = export_trace_events(finished_events())
        entries = document["traceEvents"]
        meta = [e for e in entries if e["ph"] == "M"]
        process_names = {
            e["pid"]: e["args"]["name"]
            for e in meta if e["name"] == "process_name"
        }
        assert process_names == {1: "parent", 2: "worker-2"}
        complete = {e["args"]["span_id"]: e for e in entries if e["ph"] == "X"}
        # Lifecycle spans on tid 0; the synthetic stage on its own lane.
        assert complete["sw"]["tid"] == 0
        assert complete["pt"]["tid"] == 0
        assert complete["st"]["tid"] != 0
        # Microseconds relative to the earliest start.
        assert complete["sw"]["ts"] == 0.0
        assert complete["pt"]["ts"] == pytest.approx(0.5e6)
        assert complete["st"]["dur"] == pytest.approx(1.4e6)
        assert complete["st"]["args"]["synthetic"] is True

    def test_export_requires_spans(self):
        with pytest.raises(TraceFormatError, match="no span events"):
            export_trace_events([{"event": "sweep_started"}])

    def test_export_rejects_backwards_span(self):
        events = finished_events()
        events[1]["end_ts"] = events[1]["start_ts"] - 1
        with pytest.raises(TraceFormatError, match="ends before it starts"):
            export_trace_events(events)

    def test_write_trace_round_trips(self, tmp_path):
        path = write_trace(finished_events(), tmp_path / "out.trace.json")
        records = parse_trace_events(path.read_text())
        assert {r["span_id"] for r in records} == {"sw", "pt", "tr", "st"}
        by_id = {r["span_id"]: r for r in records}
        assert by_id["st"]["parent_id"] == "tr"
        assert by_id["sw"]["parent_id"] is None
        assert all(r["kind"] in SPAN_KINDS for r in records)

    def test_parse_rejects_bad_documents(self):
        with pytest.raises(TraceFormatError, match="not valid JSON"):
            parse_trace_events("{nope")
        with pytest.raises(TraceFormatError, match="traceEvents"):
            parse_trace_events("{}")
        document = export_trace_events(finished_events())
        document["traceEvents"].append({"ph": "Z"})
        with pytest.raises(TraceFormatError, match="unknown phase"):
            parse_trace_events(json.dumps(document))

    def test_parse_rejects_dangling_parent(self):
        events = finished_events()
        events[4]["parent_id"] = "ghost"
        document = export_trace_events(events)
        with pytest.raises(TraceFormatError, match="unknown parent"):
            parse_trace_events(json.dumps(document))
