"""Topology generators: sizes, radii, labelling policies, error paths."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.errors import ConfigurationError
from repro.topology import (
    binary_tree,
    caterpillar,
    complete_graph,
    cycle,
    gnp_connected,
    grid,
    hypercube,
    path,
    random_geometric,
    random_tree,
    relabel_network,
    star,
)


def test_path_shape():
    net = path(7)
    assert net.n == 7 and net.radius == 6
    assert net.degree(0) == 1 and net.degree(3) == 2


def test_cycle_shape():
    net = cycle(9)
    assert net.n == 9 and net.radius == 4
    assert all(net.degree(v) == 2 for v in net)


def test_star_shape():
    net = star(12)
    assert net.radius == 1
    assert net.degree(0) == 11


def test_complete_graph_shape():
    net = complete_graph(6)
    assert net.num_edges == 15
    assert net.radius == 1


def test_binary_tree_shape():
    net = binary_tree(15)
    assert net.radius == 3
    assert net.degree(0) == 2


def test_random_tree_is_tree():
    net = random_tree(33, seed=4)
    assert net.num_edges == 32
    assert net.n == 33


def test_grid_shape():
    net = grid(3, 4)
    assert net.n == 12
    assert net.radius == 3 + 4 - 2


def test_hypercube_shape():
    net = hypercube(4)
    assert net.n == 16
    assert net.radius == 4
    assert all(net.degree(v) == 4 for v in net)


def test_gnp_connected_returns_connected():
    net = gnp_connected(30, 0.2, seed=0)
    assert net.n == 30  # validation inside guarantees reachability


def test_gnp_rejects_bad_p():
    with pytest.raises(ConfigurationError):
        gnp_connected(10, 0.0, seed=0)
    with pytest.raises(ConfigurationError):
        gnp_connected(10, 1.5, seed=0)


def test_gnp_gives_up_below_threshold():
    with pytest.raises(ConfigurationError, match="no connected"):
        gnp_connected(60, 0.001, seed=0, max_attempts=5)


def test_random_geometric_default_radius_connects():
    net = random_geometric(60, seed=3)
    assert net.n == 60
    assert net.radius >= 2  # multi-hop: the point of the ad hoc scenario


def test_random_geometric_explicit_radius():
    net = random_geometric(25, radius=0.9, seed=1)
    assert net.radius == 1 or net.radius == 2  # near-complete graph


def test_caterpillar_shape():
    net = caterpillar(5, 3)
    assert net.n == 5 + 15
    assert net.radius == 5  # 4 spine hops + 1 leg


def test_caterpillar_no_legs_is_path():
    net = caterpillar(6, 0)
    assert net.n == 6 and net.radius == 5


def test_shuffled_relabel_keeps_source_and_structure():
    sorted_net = path(20)
    shuffled = path(20, relabel="shuffled", seed=5)
    assert 0 in shuffled
    assert shuffled.n == sorted_net.n
    assert shuffled.radius == sorted_net.radius
    assert shuffled.num_edges == sorted_net.num_edges
    # The labelling must actually differ somewhere.
    assert shuffled.out_neighbors != sorted_net.out_neighbors


def test_relabel_network_function():
    net = grid(3, 3)
    relabelled = relabel_network(net, seed=9)
    assert relabelled.radius == net.radius
    assert relabelled.num_edges == net.num_edges
    assert sorted(relabelled.nodes) == sorted(net.nodes)


def test_invalid_relabel_value():
    with pytest.raises(ConfigurationError):
        path(5, relabel="banana")


@pytest.mark.parametrize(
    "factory",
    [
        lambda: path(0),
        lambda: cycle(2),
        lambda: star(1),
        lambda: complete_graph(1),
        lambda: binary_tree(0),
        lambda: grid(0, 3),
        lambda: hypercube(0),
        lambda: caterpillar(0, 2),
    ],
)
def test_degenerate_sizes_rejected(factory):
    with pytest.raises(ConfigurationError):
        factory()


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=2, max_value=64))
def test_path_radius_property(n):
    assert path(n).radius == n - 1


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=2, max_value=40), st.integers(min_value=0, max_value=999))
def test_random_tree_property(n, seed):
    net = random_tree(n, seed=seed)
    assert net.num_edges == n - 1
    assert 1 <= net.radius <= n - 1
