"""Linear-time DFS broadcast when nodes know their neighbourhoods.

Section 1.1: under the stronger scenario of Bar-Yehuda, Goldreich and Itai
— each node knows the labels of its neighbours — "a simple linear-time
broadcasting algorithm based on DFS follows from [Awerbuch 1985]".  This
baseline implements it: the token carries the set of visited nodes, the
holder picks its lowest-labelled unvisited neighbour directly (no Echo
needed — the holder *knows* who its neighbours are), and each token move
costs exactly one slot, for at most ``2 (n - 1) + 1`` slots total.

It quantifies what the ad hoc assumption costs: E4 contrasts its ``O(n)``
against Select-and-Send's ``O(n log n)`` on identical topologies.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any

from ..sim.errors import ProtocolViolationError
from ..sim.messages import Message
from ..sim.network import RadioNetwork
from ..sim.protocol import BroadcastAlgorithm, Protocol

__all__ = ["KnownNeighborsDFS"]


@dataclass(frozen=True, slots=True)
class _DfsToken:
    """The token: destination plus the DFS bookkeeping it carries."""

    to: int
    visited: frozenset[int]
    stack: tuple[int, ...]  # DFS ancestry, topmost last


class _KnownNeighborsProtocol(Protocol):
    def __init__(self, label: int, r: int, rng: random.Random, neighbors: tuple[int, ...]):
        super().__init__(label, r, rng)
        self._neighbors = neighbors
        self._pending: tuple[int, Any] | None = None  # (slot, payload)

    def on_wake(self, step: int, message: Message | None) -> None:
        if message is None:  # the source starts holding the token
            self._take_token(
                step,
                _DfsToken(to=self.label, visited=frozenset([self.label]), stack=()),
            )
        else:
            self._handle(step, message)

    def next_action(self, step: int) -> Any | None:
        if self._pending is not None and self._pending[0] == step:
            payload = self._pending[1]
            self._pending = None
            return payload
        return None

    def observe(self, step: int, message: Message | None) -> None:
        if message is not None:
            self._handle(step, message)

    def _handle(self, step: int, message: Message) -> None:
        payload = message.payload
        if not isinstance(payload, _DfsToken):
            raise ProtocolViolationError(f"unexpected payload {payload!r}")
        if payload.to == self.label:
            self._take_token(step, payload)

    def _take_token(self, step: int, token: _DfsToken) -> None:
        """Forward the token to the next DFS target in the next slot."""
        visited = token.visited | {self.label}
        unvisited = [w for w in self._neighbors if w not in visited]
        if unvisited:
            target = min(unvisited)
            next_token = _DfsToken(
                to=target, visited=visited, stack=token.stack + (self.label,)
            )
        elif token.stack:
            next_token = _DfsToken(
                to=token.stack[-1], visited=visited, stack=token.stack[:-1]
            )
        else:
            return  # DFS complete at the source
        self._pending = (step + 1, next_token)


class KnownNeighborsDFS(BroadcastAlgorithm):
    """O(n) DFS token broadcast under the known-neighbourhood model.

    Note: this algorithm lives in a *stronger* knowledge model than the
    paper's ad hoc setting — it is constructed with the topology so each
    protocol can be given its neighbour list, standing in for the
    "knows its neighbourhood" assumption of [3].

    Args:
        network: The topology the broadcast will run on.
    """

    deterministic = True

    def __init__(self, network: RadioNetwork):
        self._neighbors = {v: tuple(network.out_neighbors[v]) for v in network.nodes}
        self.name = "dfs-known-neighbors"

    def create(self, label: int, r: int, rng: random.Random) -> Protocol:
        return _KnownNeighborsProtocol(label, r, rng, self._neighbors[label])

    def max_steps_hint(self, n: int, r: int) -> int | None:
        return 2 * n + 4
