"""Lightweight metrics registry: counters, gauges, histograms.

The registry is pull-based and in-process — instruments are plain Python
objects the engines increment, snapshot with :meth:`MetricsRegistry.to_dict`,
and merge across workers/trials.  There is no background thread, no
global state, and no sampling: disabled means *absent* (``metrics=None``
everywhere), so the uninstrumented paths execute zero metrics code.

Histograms use **fixed bucket edges** so that merged snapshots (across
sweep points, workers, or repeated runs) stay exact: bucket ``i`` counts
observations ``edges[i-1] < x <= edges[i]`` with an unbounded overflow
bucket at the end.  The canonical metric names and bucket layouts used
by the engines are documented in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterable, Mapping, Sequence

import numpy as np

__all__ = [
    "COUNT_BUCKETS",
    "Counter",
    "FRACTION_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SLOT_BUCKETS",
]

#: Power-of-two edges for slot counts (broadcast times): 1 .. 131072.
SLOT_BUCKETS: tuple[int, ...] = tuple(2**i for i in range(18))

#: Edges for small event counts (transmissions per node, collisions per
#: slot): zero gets its own bucket, then powers of two up to 1024.
COUNT_BUCKETS: tuple[int, ...] = (0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)

#: Decile edges for ratios in ``[0, 1]`` (e.g. the wasted-slot fraction
#: of a forensics report); values are exact at the edges, so 0.0 and 1.0
#: land in their own buckets.
FRACTION_BUCKETS: tuple[float, ...] = tuple(i / 10 for i in range(11))


class Counter:
    """Monotonically increasing tally."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """Last-observed value (e.g. informed-node count, queue depth)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Fixed-bucket histogram with sum/count/min/max summary stats.

    Args:
        name: Metric name.
        edges: Strictly ascending bucket *upper* edges.  Bucket ``i``
            holds observations ``x <= edges[i]`` (and ``> edges[i-1]``);
            one extra overflow bucket holds everything above the last
            edge.
    """

    __slots__ = ("name", "edges", "counts", "total", "sum", "minimum", "maximum")

    def __init__(self, name: str, edges: Sequence[float]):
        if not edges or list(edges) != sorted(set(edges)):
            raise ValueError(f"histogram edges must be ascending, got {edges!r}")
        self.name = name
        self.edges: tuple[float, ...] = tuple(edges)
        self.counts = [0] * (len(self.edges) + 1)
        self.total = 0
        self.sum = 0.0
        self.minimum: float | None = None
        self.maximum: float | None = None

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.counts[bisect_left(self.edges, value)] += 1
        self.total += 1
        self.sum += value
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    def observe_many(self, values: Iterable[float]) -> None:
        """Record a batch of observations (vectorised for arrays)."""
        array = np.asarray(list(values) if not isinstance(values, np.ndarray) else values)
        if array.size == 0:
            return
        array = array.ravel()
        indices = np.searchsorted(self.edges, array, side="left")
        for index, count in zip(*np.unique(indices, return_counts=True)):
            self.counts[int(index)] += int(count)
        self.total += int(array.size)
        self.sum += float(array.sum())
        low, high = float(array.min()), float(array.max())
        if self.minimum is None or low < self.minimum:
            self.minimum = low
        if self.maximum is None or high > self.maximum:
            self.maximum = high

    def observe_repeated(self, value: float, count: int) -> None:
        """Record ``count`` observations of the same ``value`` at once.

        Exactly equivalent to calling :meth:`observe` ``count`` times
        (integer-valued sums stay exact); the batched engine uses this to
        flush its buffered zero-collision slots in O(1).
        """
        if count <= 0:
            return
        self.counts[bisect_left(self.edges, value)] += count
        self.total += count
        self.sum += value * count
        if self.minimum is None or value < self.minimum:
            self.minimum = value
        if self.maximum is None or value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self.sum / self.total if self.total else 0.0

    def merge(self, other: "Histogram", weight: int = 1) -> None:
        """Fold another histogram with identical edges into this one.

        ``weight > 1`` folds ``other`` in with multiplicity, exactly as if
        ``weight`` identical copies had been merged: bucket counts, total,
        and sum scale; min/max do not (repeating observations cannot move
        the extremes).  The batched event engine uses this to account one
        representative execution for a whole class of identical trials.
        """
        if other.edges != self.edges:
            raise ValueError(
                f"cannot merge histogram {other.name!r}: edges differ "
                f"({other.edges} vs {self.edges})"
            )
        if weight < 1:
            raise ValueError(f"merge weight must be positive, got {weight}")
        self.counts = [
            a + b * weight for a, b in zip(self.counts, other.counts)
        ]
        self.total += other.total * weight
        self.sum += other.sum * weight
        for bound in (other.minimum,):
            if bound is not None and (self.minimum is None or bound < self.minimum):
                self.minimum = bound
        for bound in (other.maximum,):
            if bound is not None and (self.maximum is None or bound > self.maximum):
                self.maximum = bound

    def to_dict(self) -> dict:
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "count": self.total,
            "sum": self.sum,
            "min": self.minimum,
            "max": self.maximum,
        }


class MetricsRegistry:
    """Named instruments, created lazily on first use.

    The registry is the unit that travels: engines fill one, sweep
    workers serialise theirs into the point payload, and the parent (or
    ``repro report``) merges the snapshots back together.
    """

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self.counters.get(name)
        if instrument is None:
            instrument = self.counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self.gauges.get(name)
        if instrument is None:
            instrument = self.gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str, edges: Sequence[float] = COUNT_BUCKETS) -> Histogram:
        instrument = self.histograms.get(name)
        if instrument is None:
            instrument = self.histograms[name] = Histogram(name, edges)
        elif tuple(edges) != instrument.edges:
            raise ValueError(
                f"histogram {name!r} already registered with edges "
                f"{instrument.edges}, requested {tuple(edges)}"
            )
        return instrument

    def merge(self, other: "MetricsRegistry", weight: int = 1) -> "MetricsRegistry":
        """Fold another registry's instruments into this one.

        ``weight > 1`` merges with multiplicity: counters and histogram
        tallies count as if ``weight`` identical registries had been
        folded in, while gauges (last-observed values) are simply taken
        from ``other`` regardless of weight.  This is how an execution
        class of ``weight`` provably-identical trials accounts for all
        its members at once.
        """
        if weight < 1:
            raise ValueError(f"merge weight must be positive, got {weight}")
        for name, counter in other.counters.items():
            self.counter(name).inc(counter.value * weight)
        for name, gauge in other.gauges.items():
            self.gauge(name).set(gauge.value)
        for name, histogram in other.histograms.items():
            mine = self.histograms.get(name)
            if mine is None:
                mine = self.histogram(name, histogram.edges)
            mine.merge(histogram, weight)
        return self

    def to_dict(self) -> dict:
        """JSON-safe snapshot of every instrument."""
        return {
            "counters": {
                name: counter.value for name, counter in sorted(self.counters.items())
            },
            "gauges": {
                name: gauge.value for name, gauge in sorted(self.gauges.items())
            },
            "histograms": {
                name: histogram.to_dict()
                for name, histogram in sorted(self.histograms.items())
            },
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`to_dict` output."""
        registry = cls()
        for name, value in payload.get("counters", {}).items():
            registry.counter(name).inc(int(value))
        for name, value in payload.get("gauges", {}).items():
            registry.gauge(name).set(value)
        for name, data in payload.get("histograms", {}).items():
            histogram = registry.histogram(name, tuple(data["edges"]))
            histogram.counts = [int(c) for c in data["counts"]]
            histogram.total = int(data["count"])
            histogram.sum = float(data["sum"])
            histogram.minimum = data.get("min")
            histogram.maximum = data.get("max")
        return registry
