"""Forensics: propagation DAGs, slot attribution, stage tables, exports."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import BGIBroadcast, RoundRobinBroadcast
from repro.core import KnownRadiusKP, SelectAndSend
from repro.obs import MetricsRegistry
from repro.obs.forensics import (
    SLOT_CLASSES,
    analyze,
    build_dag,
    classify_slot,
    forensic_span_events,
    record_forensics_metrics,
)
from repro.obs.spans import parse_trace_events, write_trace
from repro.sim import run_broadcast
from repro.sim.trace import StepRecord, Trace, TraceLevel
from repro.topology import gnp_connected, km_hard_layered, path, random_tree, star


def _record(step, tx=(), deliveries=None, collisions=(), woken=()):
    return StepRecord(
        step=step, transmitters=tuple(tx), deliveries=dict(deliveries or {}),
        collisions=tuple(collisions), woken=tuple(woken),
    )


class TestClassification:
    def test_precedence(self):
        assert classify_slot(_record(0)) == "silent"
        assert classify_slot(
            _record(0, tx=(0,), deliveries={1: 0}, woken=(1,))
        ) == "productive"
        # A slot that wakes somebody is productive even if it also
        # collided elsewhere.
        assert classify_slot(
            _record(0, tx=(0, 2), deliveries={1: 0}, collisions=(3,), woken=(1,))
        ) == "productive"
        assert classify_slot(
            _record(0, tx=(0, 2), collisions=(3,))
        ) == "collision-wasted"
        assert classify_slot(
            _record(0, tx=(0,), deliveries={1: 0})
        ) == "redundant"


class TestBuildDag:
    def _trace(self):
        trace = Trace(level=TraceLevel.FULL)
        trace.mark_initially_informed(0)
        trace.record(0, (0,), {1: 0, 2: 0}, (), (1, 2), informed=3)
        trace.record(1, (1, 2), {}, (3,), (), informed=3)
        trace.record(2, (2,), {3: 2}, (), (3,), informed=4)
        return trace

    def test_parents_and_depths(self):
        dag = build_dag(self._trace())
        assert dag.root == 0
        assert dag.parents == {1: 0, 2: 0, 3: 2}
        assert dag.depths == {0: 0, 1: 1, 2: 1, 3: 2}
        assert dag.children == {0: (1, 2), 2: (3,)}
        assert dag.depth == 2
        assert dag.max_branching == 2
        assert dag.critical_path == (0, 2, 3)

    def test_critical_path_tie_breaks_to_lowest_label(self):
        trace = Trace(level=TraceLevel.FULL)
        trace.mark_initially_informed(0)
        trace.record(0, (0,), {5: 0, 3: 0}, (), (3, 5), informed=3)
        dag = build_dag(trace)
        assert dag.critical_path == (0, 3)

    def test_requires_full(self):
        trace = Trace(level=TraceLevel.PROGRESS)
        trace.mark_initially_informed(0)
        with pytest.raises(ValueError, match="TraceLevel.FULL"):
            build_dag(trace)

    def test_requires_single_root(self):
        trace = Trace(level=TraceLevel.FULL)
        with pytest.raises(ValueError, match="exactly one initially informed"):
            build_dag(trace)
        trace.mark_initially_informed(0)
        trace.mark_initially_informed(1)
        with pytest.raises(ValueError, match="exactly one initially informed"):
            build_dag(trace)


class TestAnalyze:
    def test_scalars_on_a_path(self):
        net = path(6)
        result = run_broadcast(
            net, RoundRobinBroadcast(net.r), trace_level=TraceLevel.FULL
        )
        report = analyze(result, algorithm=RoundRobinBroadcast(net.r))
        assert report.informed == 6
        assert report.critical_path_depth == 5
        assert report.dag.critical_path == (0, 1, 2, 3, 4, 5)
        assert sum(report.slot_classes.values()) == report.slots
        assert set(report.slot_classes) == set(SLOT_CLASSES)
        assert report.total_transmissions == sum(report.energy.values())
        assert 0.0 <= report.wasted_slot_fraction <= 1.0

    def test_single_node_network_is_degenerate_but_valid(self):
        net = path(1)
        result = run_broadcast(
            net, RoundRobinBroadcast(net.r), trace_level=TraceLevel.FULL
        )
        report = analyze(result)
        assert report.slots == 0
        assert report.dag.critical_path == (0,)
        assert report.critical_path_depth == 0
        assert report.wasted_slot_fraction == 0.0
        assert report.redundancy_ratio == 0.0

    def test_stage_attribution_covers_all_slots_for_token_algorithm(self):
        net = random_tree(16, seed=2)
        algo = SelectAndSend()
        result = run_broadcast(net, algo, trace_level=TraceLevel.FULL)
        report = analyze(result, algorithm=algo)
        assert list(report.stages) == ["startup", "dfs-traversal"]
        assert sum(s["slots"] for s in report.stages.values()) == report.slots
        assert len(report.stage_labels) == report.slots

    def test_requires_full_trace(self):
        net = path(4)
        result = run_broadcast(
            net, RoundRobinBroadcast(net.r), trace_level=TraceLevel.PROGRESS
        )
        with pytest.raises(ValueError, match="requires TraceLevel.FULL"):
            analyze(result)

    def test_render_and_to_dict_are_stable(self):
        net = km_hard_layered(32, 4, seed=7)
        algo = KnownRadiusKP(net.r, 4)
        result = run_broadcast(net, algo, seed=2, trace_level=TraceLevel.FULL)
        report = analyze(result, algorithm=algo)
        text = report.render()
        assert "slot attribution" in text
        assert "critical path:" in text
        assert "stage attribution" in text
        payload = report.to_dict()
        assert payload["scalars"]["critical_path_depth"] == report.dag.depth
        assert payload["dag"]["root"] == 0


class TestMetricsAndExport:
    def test_record_forensics_metrics(self):
        net = star(8)
        result = run_broadcast(
            net, RoundRobinBroadcast(net.r), trace_level=TraceLevel.FULL
        )
        report = analyze(result)
        registry = MetricsRegistry()
        record_forensics_metrics(registry, report)
        snapshot = registry.to_dict()
        assert snapshot["histograms"]["forensics_wasted_slot_fraction"]["count"] == 1
        assert snapshot["histograms"]["forensics_critical_path_depth"]["sum"] == 1
        assert (
            sum(snapshot["counters"][f"forensics_slots_{c.replace('-', '_')}"]
                for c in SLOT_CLASSES)
            == report.slots
        )

    def test_span_events_round_trip_through_trace_export(self, tmp_path):
        net = gnp_connected(24, 0.2, seed=5)
        algo = BGIBroadcast(net.r)
        result = run_broadcast(net, algo, seed=1, trace_level=TraceLevel.FULL)
        report = analyze(result, algorithm=algo)
        events = forensic_span_events(report)
        names = {e["name"] for e in events}
        assert any(name.startswith("slots.") for name in names)
        assert any(name.startswith("dag.depth[") for name in names)
        assert any(name.startswith("stage.decay") for name in names)
        target = write_trace(events, tmp_path / "forensics.trace.json")
        parsed = parse_trace_events(target.read_text())
        assert len(parsed) == len(events)

    def test_span_events_are_deterministic(self):
        net = path(8)
        algo = RoundRobinBroadcast(net.r)
        result = run_broadcast(net, algo, trace_level=TraceLevel.FULL)
        a = forensic_span_events(analyze(result, algorithm=algo))
        b = forensic_span_events(analyze(result, algorithm=algo))
        assert a == b


@st.composite
def _traced_runs(draw):
    family = draw(st.sampled_from(["path", "star", "tree", "gnp"]))
    n = draw(st.integers(min_value=2, max_value=24))
    seed = draw(st.integers(min_value=0, max_value=50))
    topo_seed = draw(st.integers(min_value=0, max_value=10))
    if family == "path":
        net = path(n)
    elif family == "star":
        net = star(n)
    elif family == "tree":
        net = random_tree(n, seed=topo_seed)
    else:
        net = gnp_connected(n, min(0.9, 4.0 / n), seed=topo_seed)
    algo_name = draw(st.sampled_from(["round-robin", "bgi", "kp"]))
    if algo_name == "round-robin":
        algo = RoundRobinBroadcast(net.r)
    elif algo_name == "bgi":
        algo = BGIBroadcast(net.r)
    else:
        algo = KnownRadiusKP(net.r, max(1, net.radius), stage_constant=4)
    return net, algo, seed


@given(_traced_runs())
@settings(max_examples=40, deadline=None)
def test_every_informed_node_has_one_parent_woken_after_it(case):
    """DAG soundness over random runs: every non-source informed node has
    exactly one parent, and its parent woke strictly before it did."""
    net, algo, seed = case
    result = run_broadcast(net, algo, seed=seed, trace_level=TraceLevel.FULL)
    report = analyze(result, algorithm=algo)
    dag = report.dag
    informed = set(result.trace.wake_times)
    assert set(dag.parents) == informed - {dag.root}
    for child, parent in dag.parents.items():
        assert parent in informed
        assert dag.wake_slots[parent] < dag.wake_slots[child]
        assert dag.depths[child] == dag.depths[parent] + 1
    # The critical path runs root -> last-informed node through parents,
    # so its length matches that node's depth (not necessarily the max).
    assert dag.critical_path[0] == dag.root
    last = dag.critical_path[-1]
    assert len(dag.critical_path) == dag.depths[last] + 1
    assert dag.wake_slots[last] == max(dag.wake_slots.values())
    assert dag.depth == max(dag.depths.values())
    assert sum(report.slot_classes.values()) == report.slots
