"""Topology generators for radio networks."""

from .generators import (
    binary_tree,
    caterpillar,
    complete_graph,
    cycle,
    gnp_connected,
    grid,
    hypercube,
    path,
    random_geometric,
    random_tree,
    relabel_network,
    star,
)
from .hard_instances import (
    HardInstanceReport,
    random_radius2,
    search_radius2_hard_instance,
)
from .layered import (
    complete_layered,
    directed_complete_layered,
    km_hard_layered,
    layer_sizes_for,
    random_layered,
    uniform_complete_layered,
)

__all__ = [
    "HardInstanceReport",
    "binary_tree",
    "caterpillar",
    "complete_graph",
    "complete_layered",
    "directed_complete_layered",
    "cycle",
    "gnp_connected",
    "grid",
    "hypercube",
    "km_hard_layered",
    "layer_sizes_for",
    "path",
    "random_geometric",
    "random_layered",
    "random_radius2",
    "random_tree",
    "relabel_network",
    "search_radius2_hard_instance",
    "star",
    "uniform_complete_layered",
]
