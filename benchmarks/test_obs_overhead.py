"""Observability overhead benchmark (emits ``BENCH_obs.json``).

The zero-overhead contract: with ``metrics=None`` (the default) the
engines execute no instrumentation code beyond one ``is not None`` check
per stage, so the uninstrumented 1000-trial batched run must not
regress against the committed baseline.  With metrics *on*, the results
must stay bit-identical — instrumentation observes, never perturbs —
and the measured overhead ratio is recorded so future PRs inherit a
perf trajectory rather than a single anecdote.

The workload and timing protocol come from the shared benchmark
registry (:mod:`repro.obs.suite` / :mod:`repro.obs.bench`): the
``batched_engine`` and ``obs_overhead`` entries that ``repro bench``
runs measure exactly what this test measures.

Wall-clock assertions against the committed baseline only run when
``REPRO_BENCH_STRICT=1`` (dedicated benchmark hardware); shared CI
runners are too noisy for a 3% bound, so there the baseline is
refreshed and uploaded as an artifact instead.
"""

from __future__ import annotations

import json
import os
import pathlib

from repro.analysis import render_table
from repro.obs.bench import Benchmark, environment_fingerprint, run_benchmark
from repro.obs.suite import batched_workload, obs_overhead_workload

BENCH_PATH = pathlib.Path(__file__).parent / "results" / "BENCH_obs.json"

REPEATS = 3  # best-of to shave scheduler noise


def test_metrics_overhead_and_bench_baseline(table_reporter):
    _, _, trials = batched_workload(quick=False)
    plain, instrumented = obs_overhead_workload(quick=False)

    # Instrumentation must never change what the engine computes.  These
    # two calls double as the warmup for the timed runs below.
    plain_results = plain()
    instrumented_results = instrumented()
    assert [r.time for r in instrumented_results] == [r.time for r in plain_results]
    assert [r.wake_times for r in instrumented_results] == [
        r.wake_times for r in plain_results
    ]

    env = environment_fingerprint()
    off_record = run_benchmark(
        Benchmark("obs_overhead_off", lambda quick: plain,
                  repeats=REPEATS, warmup=0),
        env=env,
    )
    on_record = run_benchmark(
        Benchmark("obs_overhead_on", lambda quick: instrumented,
                  repeats=REPEATS, warmup=0),
        env=env,
    )
    off_s, on_s = off_record["min_s"], on_record["min_s"]

    slots = sum(r.time for r in plain_results)
    overhead = on_s / off_s
    record = {
        "bench": "obs-overhead",
        "git_sha": env["git_sha"],
        "network": "km_hard_layered(128, 32, seed=17)",
        "algorithm": "kp-known-d(stage_constant=32)",
        "trials": trials,
        "trial_slots": slots,
        "metrics_off_s": round(off_s, 4),
        "metrics_on_s": round(on_s, 4),
        "overhead_ratio": round(overhead, 3),
        "slots_per_s_off": round(slots / off_s),
        "slots_per_s_on": round(slots / on_s),
    }

    baseline = None
    if BENCH_PATH.exists():
        baseline = json.loads(BENCH_PATH.read_text())

    table_reporter.record(
        "obs-overhead",
        render_table(
            ["path", "wall (s)", "trial-slots/s"],
            [
                ["metrics off", f"{off_s:.3f}", f"{slots / off_s:.0f}"],
                ["metrics on", f"{on_s:.3f}", f"{slots / on_s:.0f}"],
                ["overhead", f"{overhead:.2f}x", ""],
            ],
            title=f"BatchedFastEngine, {trials} trials ({slots} trial-slots)",
        ),
    )

    BENCH_PATH.parent.mkdir(exist_ok=True)
    BENCH_PATH.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")

    # Per-slot instrumentation on a batched engine is real work (histogram
    # observes over 1000-row arrays); it must stay bounded, not free.  The
    # buffered collision flush brought the measured ratio well under this
    # ceiling; the registry's obs_overhead tolerance (1.25x) guards the
    # tighter target on the trajectory side.
    assert overhead < 2.0, f"instrumentation overhead {overhead:.2f}x"

    if baseline is not None and os.environ.get("REPRO_BENCH_STRICT") == "1":
        regression = off_s / baseline["metrics_off_s"]
        assert regression < 1.03, (
            f"uninstrumented path regressed {regression:.3f}x vs baseline "
            f"{baseline['git_sha']}"
        )
