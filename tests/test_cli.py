"""Command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


def test_run_subcommand(capsys):
    code = main(["run", "--topology", "gnp", "--n", "40", "--algorithm",
                 "select-and-send"])
    out = capsys.readouterr().out
    assert code == 0
    assert "completed: True" in out


def test_run_with_trace(capsys):
    code = main(["run", "--topology", "path", "--n", "6", "--algorithm",
                 "round-robin", "--trace", "--trace-steps", "10"])
    out = capsys.readouterr().out
    assert code == 0
    assert "step" in out


def test_compare_subcommand(capsys):
    code = main([
        "compare", "--topology", "layered", "--n", "60", "--depth", "4",
        "--algorithms", "bgi", "round-robin", "--runs", "3",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "bgi-decay" in out and "round-robin" in out


def test_adversary_subcommand(capsys):
    code = main(["adversary", "--algorithm", "round-robin", "--n", "256",
                 "--depth", "8"])
    out = capsys.readouterr().out
    assert code == 0
    assert "Lemma 9 histories match: True" in out


def test_adversary_rejects_randomized():
    with pytest.raises(SystemExit):
        main(["adversary", "--algorithm", "bgi", "--n", "256", "--depth", "8"])


def test_universal_subcommand(capsys):
    code = main(["universal", "--r", "1024", "--d", "1024"])
    out = capsys.readouterr().out
    assert code == 0
    assert "U1/U2 satisfied: True" in out


def test_universal_reports_degradation(capsys):
    code = main(["universal", "--r", "4096", "--d", "4"])
    out = capsys.readouterr().out
    assert code == 1
    assert "U2" in out


def test_unknown_topology_rejected():
    with pytest.raises(SystemExit):
        main(["run", "--topology", "torus", "--n", "10"])


def test_unknown_algorithm_rejected():
    with pytest.raises(SystemExit):
        main(["run", "--topology", "path", "--n", "10", "--algorithm", "magic"])


def test_gossip_subcommand(capsys):
    code = main(["gossip", "--topology", "tree", "--n", "25"])
    out = capsys.readouterr().out
    assert code == 0
    assert "gossip completed: True" in out


def test_run_save_and_load_round_trip(tmp_path, capsys):
    net_file = tmp_path / "net.json"
    result_file = tmp_path / "res.json"
    code = main([
        "run", "--topology", "grid", "--n", "16", "--algorithm", "round-robin",
        "--save-network", str(net_file), "--save-result", str(result_file),
    ])
    assert code == 0
    assert net_file.exists() and result_file.exists()
    capsys.readouterr()
    # Re-run on the saved network; deterministic algorithm -> same time.
    code = main([
        "run", "--load-network", str(net_file), "--algorithm", "round-robin",
    ])
    out = capsys.readouterr().out
    assert code == 0
    from repro.sim import load_result

    saved = load_result(result_file)
    assert f"time: {saved.time} slots" in out


def test_sweep_quick(tmp_path, capsys):
    code = main(["sweep", "--quick", "--cache-dir", str(tmp_path)])
    out = capsys.readouterr().out
    assert code == 0
    assert "2 points (2 executed, 0 from cache)" in out
    assert list(tmp_path.glob("*.json"))
    # Warm re-run: everything from cache.
    code = main(["sweep", "--quick", "--cache-dir", str(tmp_path)])
    out = capsys.readouterr().out
    assert code == 0
    assert "(0 executed, 2 from cache)" in out


def test_sweep_spec_file_and_json_output(tmp_path, capsys):
    import json

    spec_file = tmp_path / "spec.json"
    spec_file.write_text(json.dumps({
        "name": "cli-test",
        "topology": "path",
        "algorithm": "round-robin",
        "topology_grid": {"n": [6, 8]},
        "trials": 2,
    }))
    code = main(["sweep", "--spec", str(spec_file), "--no-cache", "--json"])
    out = capsys.readouterr().out
    assert code == 0
    document = json.loads(out)
    assert document["spec"]["name"] == "cli-test"
    assert len(document["points"]) == 2
    assert all(p["completed"] == p["runs"] for p in document["points"])


def test_sweep_requires_spec_or_quick():
    with pytest.raises(SystemExit):
        main(["sweep"])


def test_experiment_json_output(capsys):
    code = main(["experiment", "e10", "--quick", "--json"])
    out = capsys.readouterr().out
    assert code == 0
    import json

    document = json.loads(out)
    assert document["experiment"] == "e10"
    assert document["ok"] is True
    assert document["claims"]


def test_run_with_faults(tmp_path, capsys):
    import json

    plan_file = tmp_path / "plan.json"
    plan_file.write_text(json.dumps({"loss_probability": 1.0, "seed": 3}))
    # Certain loss strands every non-source node -> incomplete -> exit 1.
    code = main(["run", "--topology", "path", "--n", "5", "--algorithm",
                 "round-robin", "--faults", str(plan_file)])
    out = capsys.readouterr().out
    assert code == 1
    assert "completed: False" in out
    assert "faults:" in out and "lost" in out


def test_run_rejects_bad_fault_plan(tmp_path):
    plan_file = tmp_path / "plan.json"
    plan_file.write_text('{"loss_probability": 7}')
    with pytest.raises(SystemExit):
        main(["run", "--topology", "path", "--n", "5", "--algorithm",
              "round-robin", "--faults", str(plan_file)])
    with pytest.raises(SystemExit):
        main(["run", "--topology", "path", "--n", "5", "--algorithm",
              "round-robin", "--faults", str(tmp_path / "missing.json")])


def test_sweep_with_faults_and_timeout(tmp_path, capsys):
    import json

    plan_file = tmp_path / "plan.json"
    plan_file.write_text(json.dumps({"crashes": [[3, 0]], "seed": 1}))
    spec_file = tmp_path / "spec.json"
    spec_file.write_text(json.dumps({
        "name": "cli-faulty",
        "topology": "path",
        "algorithm": "round-robin",
        "topology_grid": {"n": [6]},
        "trials": 2,
    }))
    code = main([
        "sweep", "--spec", str(spec_file), "--no-cache", "--json",
        "--faults", str(plan_file), "--timeout", "60", "--retries", "1",
    ])
    out = capsys.readouterr().out
    assert code == 0
    document = json.loads(out)
    (point,) = document["points"]
    assert point["faults"]["crashes"] == [[3, 0]]
    assert point["faults"]["seed"] == 1
    # Deterministic algorithm + loss-free plan collapses to one run,
    # which counts the crash exactly once.
    assert point["fault_totals"]["crashed_nodes"] == point["runs"] == 1
    assert point["completed"] == 0  # the crash partitions the path


def test_run_with_metrics_and_runlog(tmp_path, capsys):
    log = tmp_path / "run.jsonl"
    code = main(["run", "--topology", "path", "--n", "8", "--algorithm",
                 "round-robin", "--metrics", "--log-jsonl", str(log)])
    out = capsys.readouterr().out
    assert code == 0
    assert "stage timings" in out
    assert "engine_slots" in out
    from repro.obs.runlog import assert_valid_runlog

    events = assert_valid_runlog(log)
    kinds = [e["event"] for e in events]
    assert kinds[0] == "run_started" and kinds[-1] == "run_completed"
    # --log-jsonl also records the trial/stage span tree for the run.
    assert "span" in kinds[1:-1]
    assert events[-1]["metrics"]["counters"]["runs_total"] == 1


def test_sweep_with_metrics_and_report(tmp_path, capsys):
    log = tmp_path / "sweep.jsonl"
    code = main(["sweep", "--quick", "--cache-dir", str(tmp_path / "cache"),
                 "--metrics", "--log-jsonl", str(log)])
    out = capsys.readouterr().out
    assert code == 0
    assert "stage timings" in out and "run log written" in out
    from repro.obs.runlog import assert_valid_runlog

    kinds = [e["event"] for e in assert_valid_runlog(log)]
    assert kinds[0] == "sweep_started" and kinds[-1] == "sweep_completed"

    code = main(["report", str(log)])
    out = capsys.readouterr().out
    assert code == 0
    assert "lifecycle events" in out
    assert "sweep points" in out


def test_report_rejects_missing_or_invalid_file(tmp_path):
    with pytest.raises(SystemExit):
        main(["report", str(tmp_path / "nope.jsonl")])
    bad = tmp_path / "bad.jsonl"
    bad.write_text("not json\n")
    with pytest.raises(SystemExit):
        main(["report", str(bad)])


# ----------------------------------------------------------------------
# bench / profile / report --json


def test_bench_list(capsys):
    code = main(["bench", "--list"])
    out = capsys.readouterr().out
    assert code == 0
    assert "universal_sequence" in out and "batched_engine" in out


def test_bench_quick_appends_valid_trajectory_records(tmp_path, capsys):
    from repro.obs.bench import read_trajectory, validate_record

    code = main(["bench", "--quick", "--filter", "combinatorics",
                 "--results-dir", str(tmp_path)])
    out = capsys.readouterr().out
    assert code == 0
    assert "universal_sequence" in out
    records = read_trajectory(tmp_path / "BENCH_trajectory.jsonl")
    assert len(records) == 1
    assert validate_record(records[0]) == []
    assert records[0]["quick"] is True
    assert records[0]["env"]["git_sha"]


def test_bench_update_baseline_then_compare_ok(tmp_path, capsys):
    code = main(["bench", "--quick", "--filter", "universal",
                 "--results-dir", str(tmp_path), "--update-baseline"])
    assert code == 0
    assert (tmp_path / "BENCH_universal_sequence.json").exists()
    code = main(["bench", "--quick", "--filter", "universal",
                 "--results-dir", str(tmp_path), "--compare"])
    out = capsys.readouterr().out
    assert code == 0
    assert "ok" in out or "improved" in out


def test_bench_compare_without_baseline_does_not_fail(tmp_path, capsys):
    code = main(["bench", "--quick", "--filter", "universal",
                 "--results-dir", str(tmp_path), "--compare"])
    out = capsys.readouterr().out
    assert code == 0
    assert "no-baseline" in out


def _tampered_baseline(tmp_path, capsys):
    """Run one quick bench, then shrink its baseline to force a regression."""
    import json as json_mod

    assert main(["bench", "--quick", "--filter", "universal",
                 "--results-dir", str(tmp_path), "--update-baseline"]) == 0
    capsys.readouterr()
    path = tmp_path / "BENCH_universal_sequence.json"
    baseline = json_mod.loads(path.read_text())
    baseline["min_s"] = baseline["min_s"] / 100.0
    path.write_text(json_mod.dumps(baseline))


def test_bench_regression_warns_by_default(tmp_path, capsys, monkeypatch):
    monkeypatch.delenv("REPRO_BENCH_STRICT", raising=False)
    _tampered_baseline(tmp_path, capsys)
    code = main(["bench", "--quick", "--filter", "universal",
                 "--results-dir", str(tmp_path), "--compare"])
    captured = capsys.readouterr()
    assert code == 0
    assert "REGRESSION" in captured.err
    assert "warning only" in captured.err


def test_bench_regression_fails_under_strict(tmp_path, capsys, monkeypatch):
    _tampered_baseline(tmp_path, capsys)
    monkeypatch.setenv("REPRO_BENCH_STRICT", "1")
    code = main(["bench", "--quick", "--filter", "universal",
                 "--results-dir", str(tmp_path), "--compare"])
    captured = capsys.readouterr()
    assert code == 1
    assert "REGRESSION" in captured.err


def test_bench_json_output(tmp_path, capsys):
    import json as json_mod

    code = main(["bench", "--quick", "--filter", "combinatorics",
                 "--results-dir", str(tmp_path), "--compare", "--json"])
    out = capsys.readouterr().out
    assert code == 0
    document = json_mod.loads(out)
    assert document["records"][0]["bench"] == "universal_sequence"
    assert document["comparisons"][0]["status"] == "no-baseline"


def test_bench_unknown_filter_rejected(tmp_path):
    with pytest.raises(SystemExit, match="no benchmark matches"):
        main(["bench", "--quick", "--filter", "nonexistent",
              "--results-dir", str(tmp_path)])


def test_report_renders_bench_trajectory(tmp_path, capsys):
    assert main(["bench", "--quick", "--filter", "combinatorics",
                 "--results-dir", str(tmp_path)]) == 0
    capsys.readouterr()
    code = main(["report", str(tmp_path / "BENCH_trajectory.jsonl")])
    out = capsys.readouterr().out
    assert code == 0
    assert "benchmark trajectory" in out
    assert "universal_sequence" in out


def test_report_json_on_trajectory(tmp_path, capsys):
    import json as json_mod

    assert main(["bench", "--quick", "--filter", "combinatorics",
                 "--results-dir", str(tmp_path)]) == 0
    capsys.readouterr()
    code = main(["report", str(tmp_path / "BENCH_trajectory.jsonl"), "--json"])
    document = json_mod.loads(capsys.readouterr().out)
    assert code == 0
    assert document["kind"] == "trajectory"
    assert "universal_sequence" in document["benches"]


def test_report_json_on_runlog(tmp_path, capsys):
    import json as json_mod

    log_path = tmp_path / "run.jsonl"
    assert main(["run", "--topology", "path", "--n", "6", "--algorithm",
                 "round-robin", "--log-jsonl", str(log_path)]) == 0
    capsys.readouterr()
    code = main(["report", str(log_path), "--json"])
    document = json_mod.loads(capsys.readouterr().out)
    assert code == 0
    assert document["kind"] == "runlog"
    assert document["lifecycle"]["run_completed"] == 1


def test_profile_bench_prints_pstats_table(capsys):
    code = main(["profile", "bench", "universal_sequence", "--quick",
                 "--top", "5"])
    out = capsys.readouterr().out
    assert code == 0
    assert "ncalls" in out and "cumtime" in out
    assert "build_universal_sequence" in out


def test_profile_bench_unknown_name_rejected():
    with pytest.raises(SystemExit, match="unknown benchmark"):
        main(["profile", "bench", "nonexistent"])


def test_profile_run_with_callgrind_export(tmp_path, capsys):
    from repro.obs.profile import parse_callgrind

    out_file = tmp_path / "run.callgrind"
    code = main(["profile", "run", "--topology", "path", "--n", "8",
                 "--algorithm", "round-robin", "--trials", "2",
                 "--top", "5", "--callgrind", str(out_file)])
    out = capsys.readouterr().out
    assert code == 0
    assert "ncalls" in out
    costs = parse_callgrind(out_file.read_text())
    assert costs


def test_profile_sweep_quick(tmp_path, capsys):
    code = main(["profile", "sweep", "--quick", "--workers", "1",
                 "--top", "8", "--profile-dir", str(tmp_path)])
    out = capsys.readouterr().out
    assert code == 0
    assert "2 point(s) profiled" in out
    assert "ncalls" in out
    assert len(list(tmp_path.glob("*.pstats"))) == 2


def test_sweep_with_telemetry_writes_spans(tmp_path, capsys):
    log = tmp_path / "sweep.jsonl"
    code = main(["sweep", "--quick", "--no-cache", "--telemetry", "--quiet",
                 "--log-jsonl", str(log)])
    out = capsys.readouterr().out
    assert code == 0
    assert "run log written" in out
    from repro.obs.runlog import assert_valid_runlog

    events = assert_valid_runlog(log)
    spans = [e for e in events if e["event"] == "span"]
    assert {s["kind"] for s in spans} >= {"sweep", "point", "trial", "stage"}


def test_sweep_progress_line_on_tty(tmp_path, capsys, monkeypatch):
    import io
    import sys as sys_module

    class FakeTty(io.StringIO):
        def isatty(self):
            return True

    stream = FakeTty()
    monkeypatch.setattr(sys_module, "stderr", stream)
    code = main(["sweep", "--quick", "--cache-dir", str(tmp_path)])
    assert code == 0
    progress = stream.getvalue()
    assert "[1/2]" in progress and "[2/2]" in progress
    # --quiet suppresses the line entirely.
    stream2 = FakeTty()
    monkeypatch.setattr(sys_module, "stderr", stream2)
    assert main(["sweep", "--quick", "--cache-dir", str(tmp_path),
                 "--quiet"]) == 0
    assert stream2.getvalue() == ""


def test_trace_export_round_trips(tmp_path, capsys):
    from repro.obs.spans import parse_trace_events

    log = tmp_path / "sweep.jsonl"
    assert main(["sweep", "--quick", "--no-cache", "--telemetry", "--quiet",
                 "--log-jsonl", str(log)]) == 0
    capsys.readouterr()
    out_file = tmp_path / "sweep.trace.json"
    code = main(["trace", "export", str(log), "-o", str(out_file)])
    out = capsys.readouterr().out
    assert code == 0
    assert "span(s)" in out and str(out_file) in out
    records = parse_trace_events(out_file.read_text())
    assert {r["kind"] for r in records} >= {"sweep", "point", "trial"}


def test_trace_export_default_output_and_spanless_log(tmp_path, capsys):
    log = tmp_path / "plain.jsonl"
    assert main(["sweep", "--quick", "--no-cache",
                 "--log-jsonl", str(log)]) == 0
    capsys.readouterr()
    # A runlog without telemetry has no spans: clean error, no file.
    with pytest.raises(SystemExit, match="no span events"):
        main(["trace", "export", str(log)])
    assert not (tmp_path / "plain.trace.json").exists()


def test_top_replay_renders_summary(tmp_path, capsys):
    log = tmp_path / "sweep.jsonl"
    assert main(["sweep", "--quick", "--no-cache", "--telemetry", "--quiet",
                 "--log-jsonl", str(log)]) == 0
    capsys.readouterr()
    code = main(["top", "--replay", str(log)])
    out = capsys.readouterr().out
    assert code == 0
    assert "sweep quick" in out
    assert "2/2 (100%)" in out
    assert "done in" in out


def test_top_live_runs_a_sweep(tmp_path, capsys):
    code = main(["top", "--quick", "--workers", "1",
                 "--cache-dir", str(tmp_path)])
    captured = capsys.readouterr()
    assert code == 0
    # The view renders to stderr (stdout stays pipeable); the final
    # summary line goes to stdout like `repro sweep`.
    assert "2/2 (100%)" in captured.err
    assert "2 points (2 executed, 0 from cache)" in captured.out
