"""Wall-clock stage timers (``time.perf_counter`` based).

A :class:`Timings` object accumulates ``(seconds, count)`` per named
stage.  Engines and the sweep pool hold an *optional* reference to one:
when it is ``None`` — the default everywhere — no timer code runs at
all, so the uninstrumented hot paths pay nothing beyond a single
``is not None`` check per stage.

Stage names are dotted and hierarchical by convention (documented in
``docs/OBSERVABILITY.md``): ``engine.coins`` ⊂ ``engine.step``,
``pool.execute`` covers a worker's whole point, and so on.  Overlapping
stages are intentional — a stage's seconds answer "where did the wall
time go?", not "do the rows sum to the total?".
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator, Mapping

__all__ = ["Timings"]


class Timings:
    """Accumulated stage timings of one run, batch, sweep point, or pool.

    The mutable accumulator is deliberately tiny: hot loops call
    :meth:`add` with an explicit ``perf_counter`` delta (no context
    manager overhead); coarse stages use :meth:`time`.
    """

    __slots__ = ("stages",)

    def __init__(self) -> None:
        #: stage name -> ``[seconds, count]`` (a list so the hot-path
        #: increment is two C-level item assignments, no allocation).
        self.stages: dict[str, list] = {}

    def add(self, stage: str, seconds: float, count: int = 1) -> None:
        """Accumulate ``seconds`` (and ``count`` events) under ``stage``."""
        entry = self.stages.get(stage)
        if entry is None:
            self.stages[stage] = [seconds, count]
        else:
            entry[0] += seconds
            entry[1] += count

    @contextmanager
    def time(self, stage: str) -> Iterator[None]:
        """Context manager timing one block as ``stage``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add(stage, time.perf_counter() - start)

    def seconds(self, stage: str) -> float:
        """Total seconds recorded for ``stage`` (0.0 if never hit)."""
        entry = self.stages.get(stage)
        return entry[0] if entry is not None else 0.0

    def count(self, stage: str) -> int:
        """How many times ``stage`` was recorded."""
        entry = self.stages.get(stage)
        return entry[1] if entry is not None else 0

    def merge(self, other: "Timings | Mapping[str, Mapping[str, float]]") -> "Timings":
        """Fold another accumulator (or its dict form) into this one."""
        if isinstance(other, Timings):
            for stage, (seconds, count) in other.stages.items():
                self.add(stage, seconds, count)
        else:
            for stage, entry in other.items():
                self.add(stage, float(entry["seconds"]), int(entry["count"]))
        return self

    def to_dict(self) -> dict:
        """JSON-safe form: ``{stage: {"seconds": s, "count": c}}``."""
        return {
            stage: {"seconds": entry[0], "count": entry[1]}
            for stage, entry in sorted(self.stages.items())
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Mapping[str, float]]) -> "Timings":
        """Rebuild an accumulator from :meth:`to_dict` output."""
        timings = cls()
        return timings.merge(payload)

    def render_rows(self) -> list[list[object]]:
        """Table rows ``[stage, seconds, count, mean ms]``, slowest first."""
        rows: list[list[object]] = []
        for stage, (seconds, count) in sorted(
            self.stages.items(), key=lambda item: -item[1][0]
        ):
            mean_ms = (seconds / count * 1000.0) if count else 0.0
            rows.append([stage, f"{seconds:.4f}", count, f"{mean_ms:.3f}"])
        return rows

    def __bool__(self) -> bool:
        return bool(self.stages)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        total = sum(entry[0] for entry in self.stages.values())
        return f"Timings({len(self.stages)} stages, {total:.4f}s)"
