"""Hard-instance search.

The Omega(log^2 n) lower bound of Alon, Bar-Noy, Linial and Peleg holds on
a family of radius-2 networks whose *existence* is proved probabilistically
— no explicit construction is known.  To reproduce its effect we search:
radius-2 layered graphs are sampled and scored by the measured broadcast
time of a given randomized algorithm, keeping the worst-case sample.  This
is the substitution documented in DESIGN.md (E8): same code path, synthetic
hard instances instead of non-constructive ones.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from statistics import mean
from typing import Callable

from ..sim.errors import ConfigurationError
from ..sim.network import RadioNetwork
from ..sim.protocol import BroadcastAlgorithm
from ..sim.run import run_broadcast

__all__ = ["HardInstanceReport", "random_radius2", "search_radius2_hard_instance"]


@dataclass(frozen=True)
class HardInstanceReport:
    """Best (hardest) instance found by a search.

    Attributes:
        network: The hardest sampled network.
        score: Mean broadcast time of the probe algorithm on it.
        samples: How many candidate networks were scored.
        all_scores: Score of every candidate, in sample order.
    """

    network: RadioNetwork
    score: float
    samples: int
    all_scores: tuple[float, ...]


def random_radius2(n: int, mid_size: int, edge_prob: float, seed: int) -> RadioNetwork:
    """A random radius-2 network in the Alon-et-al shape.

    Layer 1 has ``mid_size`` nodes all adjacent to the source; the remaining
    ``n - 1 - mid_size`` nodes form layer 2, each adjacent to a random
    subset of layer 1 (each edge with probability ``edge_prob``, at least
    one edge forced).  Hardness comes from layer-2 nodes whose layer-1
    in-neighbourhoods overlap in ways that keep producing collisions.
    """
    if mid_size < 1 or n < mid_size + 2:
        raise ConfigurationError(f"need n >= mid_size + 2, got n={n}, mid_size={mid_size}")
    rng = random.Random(seed)
    mid = list(range(1, 1 + mid_size))
    outer = list(range(1 + mid_size, n))
    edges = [(0, v) for v in mid]
    for w in outer:
        parents = [v for v in mid if rng.random() < edge_prob]
        if not parents:
            parents = [rng.choice(mid)]
        edges.extend((v, w) for v in parents)
    return RadioNetwork.undirected(range(n), edges)


def search_radius2_hard_instance(
    n: int,
    algorithm: BroadcastAlgorithm,
    trials: int = 20,
    runs_per_trial: int = 5,
    seed: int = 0,
    mid_size: int | None = None,
    edge_prob_choices: tuple[float, ...] = (0.1, 0.25, 0.5, 0.75),
    runner: Callable[..., object] | None = None,
) -> HardInstanceReport:
    """Sample radius-2 networks, keep the one slowest for ``algorithm``.

    Args:
        n: Network size for every candidate.
        algorithm: The randomized algorithm to stress (its mean broadcast
            time over ``runs_per_trial`` seeds is the hardness score).
        trials: Number of candidate networks.
        runs_per_trial: Monte-Carlo repetitions per candidate.
        seed: Master seed; candidate topologies and probe runs derive from it.
        mid_size: Layer-1 size; default ``max(2, n // 4)``.
        edge_prob_choices: Edge densities cycled across candidates.
        runner: Injection point for tests; defaults to
            :func:`~repro.sim.run.run_broadcast`.

    Returns:
        A :class:`HardInstanceReport` with the worst sample found.
    """
    if trials < 1:
        raise ConfigurationError("need at least one trial")
    run = runner if runner is not None else run_broadcast
    mid = mid_size if mid_size is not None else max(2, n // 4)
    best_net: RadioNetwork | None = None
    best_score = -1.0
    scores: list[float] = []
    for t in range(trials):
        edge_prob = edge_prob_choices[t % len(edge_prob_choices)]
        net = random_radius2(n, mid, edge_prob, seed=seed * 10_000 + t)
        times = [
            run(net, algorithm, seed=seed * 100_000 + t * 100 + i).time
            for i in range(runs_per_trial)
        ]
        score = mean(times)
        scores.append(score)
        if score > best_score:
            best_score = score
            best_net = net
    assert best_net is not None
    return HardInstanceReport(
        network=best_net, score=best_score, samples=trials, all_scores=tuple(scores)
    )
