"""The default benchmark suite (importing this module registers it).

Each entry couples a pinned workload to the registry's timing protocol;
``repro bench`` and the pytest benchmarks (``benchmarks/test_*.py``)
import the *same* definitions, so a workload is declared exactly once.
The hard layered networks are the Clementi–Monti–Silvestri-style
instances the paper's sweeps run on, which is what makes these numbers
meaningful as a trajectory: every record measures the same hot path the
experiments exercise.

Workload builders do all setup (topology generation, registry
construction) outside the timed thunk.  ``quick=True`` shrinks every
workload to CI-smoke size — same code paths, smaller n/trials.

This module imports the simulation stack, so — like
:mod:`repro.obs.report` — it stays out of ``repro.obs.__init__``.
"""

from __future__ import annotations

from .bench import DEFAULT_REGISTRY, BenchmarkRegistry, register
from .metrics import MetricsRegistry

__all__ = [
    "adaptive_workload",
    "batched_adaptive_workload",
    "batched_workload",
    "default_registry",
    "forensics_overhead_workload",
    "million_node_workload",
    "obs_overhead_workload",
    "telemetry_overhead_workload",
]


def default_registry() -> BenchmarkRegistry:
    """The fully-populated default registry (registration is import-time)."""
    return DEFAULT_REGISTRY


def batched_workload(quick: bool = False):
    """The canonical batched-engine workload: (network, algorithm, trials).

    Shared by the ``batched_engine`` / ``obs_overhead`` benches and
    ``benchmarks/test_obs_overhead.py`` so the committed ``BENCH_obs``
    baseline and the registry trajectory measure the same thing.
    """
    from ..core import KnownRadiusKP
    from ..topology import km_hard_layered

    net = km_hard_layered(128, 32, seed=17)
    algorithm = KnownRadiusKP(net.r, 32)
    trials = 200 if quick else 1000
    return net, algorithm, trials


def adaptive_workload(quick: bool = False):
    """The canonical adaptive-engine workload: (network, algorithm).

    E4's G(n, p) family at its largest full size — the Select-and-Send
    run the event-driven engine exists to accelerate.  Shared by the
    ``adaptive_engine`` bench and ``benchmarks/test_adaptive_engine.py``
    so the committed ``BENCH_adaptive_engine`` baseline and the pytest
    speedup gate measure the same thing.
    """
    from ..core import SelectAndSend
    from ..topology import gnp_connected

    n = 256 if quick else 512
    net = gnp_connected(n, 6.0 / n, seed=5)
    return net, SelectAndSend()


def batched_adaptive_workload(quick: bool = False):
    """The batched adaptive workload: (network, algorithm, trials).

    The same e4 Select-and-Send run as :func:`adaptive_workload`, but as
    a Monte-Carlo batch — the shape the
    :class:`~repro.sim.batched_event.BatchedEventEngine` exists to
    accelerate (execution-class collapse turns the deterministic batch
    into one representative run).  Shared by the
    ``batched_adaptive_engine`` bench and
    ``benchmarks/test_batched_adaptive_engine.py`` so the committed
    ``BENCH_batched_adaptive_engine`` baseline and the pytest speedup
    gate measure the same thing.
    """
    net, algorithm = adaptive_workload(quick)
    trials = 4 if quick else 8
    return net, algorithm, trials


def obs_overhead_workload(quick: bool = False):
    """Thunk pair ``(plain, instrumented)`` for the overhead measurement."""
    from ..sim import repeat_broadcast

    net, algorithm, trials = batched_workload(quick)

    def plain():
        return repeat_broadcast(net, algorithm, runs=trials, engine="batch")

    def instrumented():
        return repeat_broadcast(
            net, algorithm, runs=trials, engine="batch", metrics=MetricsRegistry()
        )

    return plain, instrumented


def telemetry_overhead_workload(quick: bool = False):
    """Thunk pair ``(plain, telemetered)`` for the span-overhead gate.

    The telemetered thunk runs the same batched workload with a
    :class:`~repro.obs.spans.SpanRecorder` draining into a no-op sink —
    the worker-side cost of span recording and stage synthesis, without
    the (parent-side) bus or runlog.  Shared with
    ``benchmarks/test_telemetry_overhead.py`` so the committed
    ``BENCH_telemetry_overhead`` baseline measures the same thing.
    """
    from ..sim import repeat_broadcast
    from .spans import SpanRecorder

    net, algorithm, trials = batched_workload(quick)

    def plain():
        return repeat_broadcast(net, algorithm, runs=trials, engine="batch")

    def telemetered():
        recorder = SpanRecorder(sink=lambda event: None)
        with recorder.span("point", "point"):
            return repeat_broadcast(
                net, algorithm, runs=trials, engine="batch", spans=recorder
            )

    return plain, telemetered


def forensics_overhead_workload(quick: bool = False):
    """Thunk pair ``(plain, forensic)`` for the forensics cost gate.

    ``plain`` is the canonical batched workload with traces off — the
    path that must stay untouched by the trace-recording branches added
    to the fast engines (one attribute check per slot).  ``forensic`` is
    the same batch at ``TraceLevel.FULL`` *plus* a full
    :func:`~repro.obs.forensics.analyze` pass per trial — the end-to-end
    cost of asking "why" instead of "how long".  Shared with
    ``benchmarks/test_forensics_overhead.py`` so the committed
    ``BENCH_forensics_overhead`` baseline measures the same thing.
    """
    from ..sim import run_broadcast_batch
    from ..sim.trace import TraceLevel
    from .forensics import analyze

    net, algorithm, trials = batched_workload(quick)

    def plain():
        return run_broadcast_batch(net, algorithm, trials=trials, engine="auto")

    def forensic():
        results = run_broadcast_batch(
            net, algorithm, trials=trials, engine="auto",
            trace_level=TraceLevel.FULL,
        )
        return [analyze(result, algorithm=algorithm) for result in results]

    return plain, forensic


@register(
    "reference_engine",
    tags=("engine", "reference"),
    description="Per-node reference engine, round-robin on km_hard_layered",
)
def _reference_engine(quick: bool):
    from ..baselines import RoundRobinBroadcast
    from ..sim import run_broadcast
    from ..topology import km_hard_layered

    n, depth = (48, 8) if quick else (96, 16)
    net = km_hard_layered(n, depth, seed=3)
    algorithm = RoundRobinBroadcast(net.r)
    return lambda: run_broadcast(net, algorithm, seed=1)


@register(
    "fast_engine",
    tags=("engine", "fast"),
    description="Single-run vectorised engine, BGI Decay on km_hard_layered",
)
def _fast_engine(quick: bool):
    from ..baselines import BGIBroadcast
    from ..sim import run_broadcast_fast
    from ..topology import km_hard_layered

    n, depth = (256, 32) if quick else (1024, 64)
    net = km_hard_layered(n, depth, seed=3)
    algorithm = BGIBroadcast(net.r)
    return lambda: run_broadcast_fast(net, algorithm, seed=1)


@register(
    "batched_engine",
    tags=("engine", "batch"),
    description="Batched Monte-Carlo engine, KP on km_hard_layered",
)
def _batched_engine(quick: bool):
    from ..sim import repeat_broadcast

    net, algorithm, trials = batched_workload(quick)
    return lambda: repeat_broadcast(net, algorithm, runs=trials, engine="batch")


@register(
    "adaptive_engine",
    tags=("engine", "event", "adaptive"),
    description="Event-driven engine, Select-and-Send on e4's G(n, p)",
)
def _adaptive_engine(quick: bool):
    from ..sim import run_broadcast

    net, algorithm = adaptive_workload(quick)
    return lambda: run_broadcast(
        net, algorithm, require_completion=True, engine="event"
    )


@register(
    "batched_adaptive_engine",
    tags=("engine", "event", "adaptive", "batch"),
    # Sub-100ms quick workload on shared CI boxes: scheduler noise easily
    # exceeds the generic 1.3; the 5x-speedup pytest gate is the real bar.
    tolerance=1.6,
    description="Batched event engine, Select-and-Send Monte-Carlo on e4's G(n, p)",
)
def _batched_adaptive_engine(quick: bool):
    # run_broadcast_batch, not repeat_broadcast: the driver's own
    # deterministic collapse would shrink the batch to one run before the
    # engine is involved — this bench measures the engine's class collapse.
    from ..sim import run_broadcast_batch

    net, algorithm, trials = batched_adaptive_workload(quick)
    return lambda: run_broadcast_batch(
        net, algorithm, trials=trials, engine="batched_event"
    )


@register(
    "obs_overhead",
    tags=("engine", "batch", "obs"),
    # Tighter than the generic 1.3: the instrumented path is the one this
    # PR optimised (buffered collision flush), and it must not creep back.
    tolerance=1.25,
    description="Instrumented batched run (metrics on) — the obs cost itself",
)
def _obs_overhead(quick: bool):
    _, instrumented = obs_overhead_workload(quick)
    return instrumented


@register(
    "telemetry_overhead",
    tags=("engine", "batch", "obs", "telemetry"),
    # The acceptance bar for spans is 1.10x over the plain run; the
    # baseline ratio guards the telemetered path against creep.
    tolerance=1.25,
    description="Batched run with span recording on — the telemetry cost itself",
)
def _telemetry_overhead(quick: bool):
    _, telemetered = telemetry_overhead_workload(quick)
    return telemetered


@register(
    "forensics_overhead",
    tags=("engine", "batch", "obs", "forensics"),
    # FULL tracing + per-trial DAG/taxonomy analysis is a per-slot python
    # loop by design (debug tooling, not a hot path); the bar that
    # matters — the traces-off path staying flat — is the pytest gate.
    tolerance=1.4,
    description="Batched run at TraceLevel.FULL + per-trial forensic analysis",
)
def _forensics_overhead(quick: bool):
    _, forensic = forensics_overhead_workload(quick)
    return forensic


@register(
    "sweep_pool",
    tags=("sweep", "pool"),
    repeats=3,
    quick_repeats=2,
    # Pool spin-up + fork noise dominate a sub-second sweep; allow more.
    tolerance=1.6,
    description="End-to-end run_sweep on the worker pool (uncached)",
)
def _sweep_pool(quick: bool):
    from ..sweep import SweepSpec, run_sweep

    sizes = [24, 48] if quick else [32, 64, 96]
    spec = SweepSpec.from_dict({
        "name": "bench-pool",
        "topology": "km-layered",
        "algorithm": "kp-known-d",
        "topology_grid": {"n": sizes, "depth": 4},
        "algorithm_grid": {"stage_constant": 8},
        "trials": 3 if quick else 10,
    })
    return lambda: run_sweep(spec, workers=2, cache=None)


def million_node_workload(quick: bool = False):
    """The macro-step engine's canonical workload: (network, algorithm).

    A sparse G(n, p) at the scale the macro path exists for — average
    degree 10, KP known-radius schedule.  Shared by the
    ``million_node_engine`` bench and ``benchmarks/test_macro_engine.py``
    so the committed baseline and the >= 5x gate measure the same thing.
    """
    from ..core import KnownRadiusKP
    from ..topology import gnp_random_csr

    n = 20_000 if quick else 100_000
    net = gnp_random_csr(n, 10 / n, seed=11)
    algorithm = KnownRadiusKP(net.r, max(1, net.radius))
    return net, algorithm


@register(
    "million_node_engine",
    tags=("engine", "macro", "scale"),
    description="Macro-step engine, KP known-radius on sparse G(n, p)",
)
def _million_node_engine(quick: bool):
    from ..sim import run_broadcast_macro

    net, algorithm = million_node_workload(quick)
    return lambda: run_broadcast_macro(net, algorithm, seed=1)


@register(
    "topology_generation",
    tags=("topology",),
    description="km_hard_layered hard-instance construction",
)
def _topology_generation(quick: bool):
    from ..topology import km_hard_layered

    n, depth = (512, 64) if quick else (2048, 128)
    return lambda: km_hard_layered(n, depth, seed=7)


@register(
    "topology_csr_generation",
    tags=("topology", "scale"),
    description="CSR-native sparse G(n, p) construction (skip sampling)",
)
def _topology_csr_generation(quick: bool):
    from ..topology import gnp_random_csr

    n = 100_000 if quick else 1_000_000
    return lambda: gnp_random_csr(n, 10 / n, seed=7)


@register(
    "universal_sequence",
    tags=("combinatorics",),
    description="Lemma 1 universal-sequence construction",
)
def _universal_sequence(quick: bool):
    from ..combinatorics import build_universal_sequence

    r, d = (1024, 256) if quick else (4096, 1024)
    return lambda: build_universal_sequence(r, d)
