"""Precompiled radio-channel kernel shared by the non-reference engines.

Channel resolution — "how many transmitting in-neighbours does each node
have, and who was the unique one?" — is the inner loop of every engine.
The reference :class:`~repro.sim.engine.SynchronousEngine` resolves it
with per-edge dict updates, which is exact but costs a Python-level
operation per edge per slot.  This module compiles the topology once into
flat CSR arrays so the two fast families share one kernel:

* :class:`~repro.sim.event.EventDrivenEngine` calls :meth:`ChannelKernel.
  resolve` with the (typically tiny) set of transmitter indices — a
  neighbour-slice gather plus one ``np.bincount``.
* :class:`~repro.sim.fast.FastEngine` and
  :class:`~repro.sim.fast.BatchedFastEngine` use the
  :attr:`ChannelKernel.adjacency` / :attr:`ChannelKernel.adjacency_t`
  scipy matrices built from the same arrays, resolving the whole (or the
  whole batch of) transmit mask(s) with one sparse product.

Node *indices* are positions in the sorted label array
(:attr:`ChannelKernel.labels`), the same convention ``sim/fast.py`` has
always used.
"""

from __future__ import annotations

import numpy as np

from .network import RadioNetwork

__all__ = ["ChannelKernel"]


class _IdentityIndex:
    """Label -> index map for identity-labelled (CSR-native) networks.

    Behaves like the dict the kernel builds for a
    :class:`~repro.sim.network.RadioNetwork` — ``index[label] == label``
    for every valid label — without materialising n dict entries.
    """

    __slots__ = ("n",)

    def __init__(self, n: int):
        self.n = n

    def __getitem__(self, label: int) -> int:
        i = int(label)
        if not 0 <= i < self.n:
            raise KeyError(label)
        return i

    def __contains__(self, label: int) -> bool:
        return 0 <= int(label) < self.n

    def get(self, label: int, default=None):
        i = int(label)
        return i if 0 <= i < self.n else default

    def __len__(self) -> int:
        return self.n


class ChannelKernel:
    """CSR neighbour lists + bincount hit counting for one topology.

    Attributes:
        network: The compiled topology.
        n: Number of nodes.
        labels: ``int64`` array of node labels in increasing order; index
            ``i`` everywhere below refers to ``labels[i]``.
        index: Inverse map ``label -> index``.
        indptr / indices: Flat CSR out-neighbour lists over indices:
            node ``i`` reaches ``indices[indptr[i]:indptr[i + 1]]``.
    """

    def __init__(self, network: RadioNetwork):
        self.network = network
        self.n = network.n
        csr = getattr(network, "csr_arrays", None)
        if csr is not None:
            # CSR-native topology (repro.topology.csr.CSRNetwork): labels
            # are the identity 0..n-1 and the arrays already follow this
            # kernel's convention — adopt them without copying.
            self.indptr, self.indices = csr()
            self.labels = np.arange(self.n, dtype=np.int64)
            self.index = _IdentityIndex(self.n)
        else:
            self.labels = np.array(network.nodes, dtype=np.int64)
            self.index = {
                int(label): i for i, label in enumerate(self.labels)
            }
            indptr = np.zeros(self.n + 1, dtype=np.int64)
            cols: list[int] = []
            for i, label in enumerate(self.labels):
                nbrs = network.out_neighbors[int(label)]
                indptr[i + 1] = indptr[i] + len(nbrs)
                cols.extend(self.index[v] for v in nbrs)
            self.indptr = indptr
            self.indices = np.array(cols, dtype=np.int64)
        # Written fresh on every resolve(); only entries with hits == 1
        # this slot are ever read, and those were written this slot.
        self._sender_buf = np.empty(self.n, dtype=np.int64)
        self._adjacency = None
        self._adjacency_t = None

    # -- sparse-matrix views (the fast engines' form of the kernel) --------

    @property
    def adjacency(self):
        """Sparse ``(n, n)`` int32 CSR sender -> receiver matrix.

        ``mask_int32 @ adjacency`` yields per-receiver hit counts; built
        lazily so engines that never need the matrix form (the
        event-driven engine) keep scipy off their import path.
        """
        if self._adjacency is None:
            from scipy import sparse

            data = np.ones(len(self.indices), dtype=np.int32)
            self._adjacency = sparse.csr_matrix(
                (data, self.indices.astype(np.int32), self.indptr),
                shape=(self.n, self.n), dtype=np.int32,
            )
            self._adjacency.sort_indices()  # canonical form for scipy fast paths
        return self._adjacency

    @property
    def adjacency_t(self):
        """Transposed adjacency as CSR, for the batched sparse-first form
        ``(adj^T @ mask^T)^T`` (see :class:`~repro.sim.fast.BatchedFastEngine`)."""
        if self._adjacency_t is None:
            self._adjacency_t = self.adjacency.T.tocsr()
        return self._adjacency_t

    # -- sparse-transmitter resolution (the event engine's form) -----------

    def resolve(self, tx: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Resolve one slot for a sparse set of transmitters.

        Args:
            tx: ``int64`` array of transmitting node *indices* (non-empty).

        Returns:
            ``(hits, sender_of, touched)``: ``hits[i]`` is the number of
            transmitting in-neighbours of node ``i``; ``sender_of[i]`` is
            the index of the transmitter heard at ``i``, valid exactly
            where ``hits[i] == 1`` (elsewhere it holds stale data);
            ``touched`` is the concatenation of the transmitters'
            neighbour lists — every index with ``hits > 0``, appearing
            once per hit, so callers can restrict their scans to the
            reached part of the network instead of all ``n`` nodes.
        """
        indptr, indices = self.indptr, self.indices
        sender_of = self._sender_buf
        if len(tx) == 1:
            t = int(tx[0])
            cat = indices[indptr[t]:indptr[t + 1]]
            sender_of[cat] = t
        else:
            cat = np.concatenate(
                [indices[indptr[t]:indptr[t + 1]] for t in tx]
            )
            lengths = indptr[tx + 1] - indptr[tx]
            sender_of[cat] = np.repeat(tx, lengths)
        hits = np.bincount(cat, minlength=self.n)
        return hits, sender_of, cat
