"""Report rendering from run logs and metric snapshots."""

from __future__ import annotations

import json

from repro.analysis.progress import ascii_sparkline
from repro.obs.metrics import MetricsRegistry, SLOT_BUCKETS
from repro.obs.report import (
    render_metrics,
    render_report,
    render_timings,
    report_json_from_file,
    report_from_file,
    runlog_report_data,
)
from repro.obs.runlog import RunLogger
from repro.obs.timings import Timings


def test_render_timings_empty_and_filled():
    assert "(empty)" in render_timings(Timings())
    timings = Timings()
    timings.add("engine.step", 1.5, count=3)
    output = render_timings(timings)
    assert "engine.step" in output and "seconds" in output


def test_render_metrics_tables_and_sparklines():
    metrics = MetricsRegistry()
    metrics.counter("runs_total").inc(5)
    metrics.gauge("depth").set(2)
    metrics.histogram("slots_to_completion", SLOT_BUCKETS).observe_many(
        [3, 9, 17, 100]
    )
    output = render_metrics(metrics)
    assert "runs_total" in output
    assert "counter" in output and "gauge" in output
    assert "slots_to_completion" in output
    assert "histograms" in output


def test_render_report_empty():
    assert "empty" in render_report([])


def test_report_from_file_covers_all_sections(tmp_path):
    metrics = MetricsRegistry()
    metrics.counter("engine_slots").inc(12)
    timings = Timings()
    timings.add("pool.queue_wait", 0.01)
    timings.add("pool.execute", 0.2)
    path = tmp_path / "log.jsonl"
    with RunLogger(path, run_id="feed") as log:
        log.event("sweep_started", name="demo", points=2)
        log.event("point_cache_hit", index=0, label="cached-point")
        log.event("point_spawned", index=1, label="run-point", attempt=1)
        log.event(
            "point_completed",
            index=1,
            label="run-point",
            attempt=1,
            mean_time=33.5,
            timings=timings.to_dict(),
            metrics=metrics.to_dict(),
        )
        log.event("run_completed", algorithm="bgi", engine="reference",
                  seed=4, n=30, time=41, completed=True)
        log.event("sweep_completed", name="demo", executed=1, from_cache=1)
    output = report_from_file(path)
    assert "lifecycle events" in output
    assert "sweep points" in output
    assert "cached-point" in output and "run-point" in output
    assert "runs" in output and "bgi" in output
    assert "stage timings (aggregated)" in output
    assert "metrics (aggregated)" in output
    assert "engine_slots" in output


def test_report_marks_failed_points(tmp_path):
    path = tmp_path / "log.jsonl"
    with RunLogger(path, run_id="deed") as log:
        log.event("point_spawned", index=0, label="doomed", attempt=1)
        log.event("point_failed", index=0, label="doomed", attempts=2)
    output = report_from_file(path)
    assert "FAILED" in output and "doomed" in output


class TestDegenerateInputs:
    def test_empty_histogram_renders_without_stats(self):
        metrics = MetricsRegistry()
        metrics.histogram("untouched", SLOT_BUCKETS)
        output = render_metrics(metrics)
        # Zero observations: count 0, mean 0.0, min/max dashed, no crash.
        row = next(ln for ln in output.splitlines() if "untouched" in ln)
        assert " 0 " in row and " - " in row

    def test_single_bucket_histogram_sparkline(self):
        metrics = MetricsRegistry()
        metrics.histogram("one_bucket", [10.0]).observe_many([1, 2, 3])
        output = render_metrics(metrics)
        row = next(ln for ln in output.splitlines() if "one_bucket" in ln)
        # Two counts (the bucket + overflow), all mass in the first.
        assert ascii_sparkline([3.0, 0.0], width=24) in row

    def test_single_value_sparkline_is_flat(self):
        # A constant series must not divide by zero; it draws the lowest
        # glyph for every point.
        line = ascii_sparkline([5.0, 5.0, 5.0], width=10)
        assert len(line) == 3 and len(set(line)) == 1

    def test_runlog_with_only_sweep_started(self, tmp_path):
        path = tmp_path / "orphan.jsonl"
        with RunLogger(path, run_id="feed") as log:
            log.event("sweep_started", name="interrupted", points=9)
        output = report_from_file(path)
        # Header + lifecycle only: no runs/points/timings/metrics section.
        assert "1 events" in output
        assert "sweep_started" in output
        assert "sweep points" not in output
        assert "runs" not in output.split("lifecycle events")[1]
        data = report_json_from_file(path)
        assert data["lifecycle"] == {"sweep_started": 1}
        assert data["timings"] == {}


def test_report_json_golden():
    events = [
        {"ts": 10.0, "event": "sweep_started", "run_id": "feed",
         "git_sha": "deadbee", "name": "demo", "points": 2},
        {"ts": 10.5, "event": "point_cache_hit", "run_id": "feed",
         "git_sha": "deadbee", "index": 0},
        {"ts": 12.0, "event": "point_completed", "run_id": "feed",
         "git_sha": "deadbee", "index": 1,
         "timings": {"pool.execute": {"seconds": 0.25, "count": 1}},
         "metrics": {"counters": {"runs_total": 2}}},
        {"ts": 12.5, "event": "sweep_completed", "run_id": "feed",
         "git_sha": "deadbee", "executed": 1, "from_cache": 1},
    ]
    data = runlog_report_data(events)
    golden = {
        "kind": "runlog",
        "events": 4,
        "run_ids": ["feed"],
        "git_shas": ["deadbee"],
        "span_s": 2.5,
        "lifecycle": {
            "sweep_started": 1,
            "point_cache_hit": 1,
            "point_completed": 1,
            "sweep_completed": 1,
        },
        "timings": {"pool.execute": {"seconds": 0.25, "count": 1}},
        "metrics": {"counters": {"runs_total": 2}, "gauges": {},
                    "histograms": {}},
    }
    assert json.loads(json.dumps(data)) == golden
