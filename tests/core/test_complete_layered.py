"""Complete-Layered algorithm (Section 4.3, Theorem 4)."""

from __future__ import annotations

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.complete_layered import CompleteLayeredBroadcast
from repro.sim import run_broadcast
from repro.sim.engine import SynchronousEngine
from repro.topology import complete_layered, km_hard_layered, uniform_complete_layered


def test_completes_on_uniform_layered():
    net = uniform_complete_layered(80, 8)
    result = run_broadcast(net, CompleteLayeredBroadcast(), require_completion=True)
    assert result.completed


def test_completes_on_km_hard_instances():
    for seed in range(3):
        net = km_hard_layered(150, 10, seed=seed)
        result = run_broadcast(net, CompleteLayeredBroadcast(), require_completion=True)
        assert result.completed, seed


def test_completes_with_shuffled_labels():
    net = complete_layered([1, 5, 9, 2, 7], relabel_seed=11)
    result = run_broadcast(net, CompleteLayeredBroadcast(), require_completion=True)
    assert result.completed


def test_path_shaped_layered():
    net = complete_layered([1] * 30)
    result = run_broadcast(net, CompleteLayeredBroadcast(), require_completion=True)
    assert result.completed


def test_radius_one_completes_in_one_slot():
    net = complete_layered([1, 50])
    result = run_broadcast(net, CompleteLayeredBroadcast())
    assert result.time == 1


def test_one_leader_per_layer():
    """The leader chain: exactly one node per layer ever announces."""
    net = uniform_complete_layered(60, 5)
    engine = SynchronousEngine(net, CompleteLayeredBroadcast())
    engine.run(6000, stop_when_informed=False)
    layer_of = net.distances_from_source()
    leaders = [l for l, p in engine.protocols.items() if p.was_leader]
    by_layer: dict[int, list[int]] = {}
    for leader in leaders:
        by_layer.setdefault(layer_of[leader], []).append(leader)
    # One leader in every layer 0..D (including the last).
    for layer_index in range(net.radius + 1):
        assert len(by_layer.get(layer_index, [])) == 1, by_layer


def test_time_bound_n_plus_d_log_n():
    """Theorem 4 empirically: time <= c (n + D log n), small c."""
    cases = [
        uniform_complete_layered(200, 20),
        km_hard_layered(300, 25, seed=3),
        complete_layered([1] * 40),
        complete_layered([1, 100, 100, 99]),
    ]
    for net in cases:
        result = run_broadcast(net, CompleteLayeredBroadcast(), require_completion=True)
        bound = 4 * (net.n + net.radius * math.log2(max(2, net.n)))
        assert result.time <= bound, (net.describe(), result.time, bound)


def test_beats_claimed_lower_bound_for_large_d():
    """Section 4.3's refutation: faster than n log D on long layered nets.

    The CMS claim would force time >= c * n log D; the measured time is
    O(n + D log n), far below it for D = Theta(n) with thin layers.
    """
    net = complete_layered([1] * 120 + [40])  # n = 161, D = 120
    result = run_broadcast(net, CompleteLayeredBroadcast(), require_completion=True)
    claimed = net.n * math.log2(net.radius)  # c = 1 reference curve
    assert result.time < claimed


def test_deterministic_reproducible():
    net = km_hard_layered(100, 8, seed=5)
    a = run_broadcast(net, CompleteLayeredBroadcast())
    b = run_broadcast(net, CompleteLayeredBroadcast(), seed=99)
    assert a.time == b.time and a.wake_times == b.wake_times


def test_max_steps_hint_sufficient():
    algo = CompleteLayeredBroadcast()
    for sizes in [[1, 3, 3, 3], [1] * 25, [1, 10, 1, 10, 1]]:
        net = complete_layered(sizes)
        result = run_broadcast(net, algo, max_steps=algo.max_steps_hint(net.n, net.r))
        assert result.completed, sizes


@settings(max_examples=20, deadline=None)
@given(
    st.lists(st.integers(min_value=1, max_value=12), min_size=1, max_size=10),
    st.integers(min_value=0, max_value=99),
)
def test_property_arbitrary_layer_profiles(sizes, relabel_seed):
    net = complete_layered([1, *sizes], relabel_seed=relabel_seed)
    result = run_broadcast(net, CompleteLayeredBroadcast(), require_completion=True)
    assert result.completed
