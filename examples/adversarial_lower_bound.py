#!/usr/bin/env python3
"""Scenario: executing the paper's lower bound against your own algorithm.

Section 3 of the paper is constructive: given ANY deterministic
broadcasting algorithm, it builds a network ``G_A`` on which the algorithm
is provably slow.  This library makes that construction executable — this
example runs it against two algorithms and *verifies* the proof's central
claim (Lemma 9): the real execution on the finished network reproduces,
slot for slot, exactly the transmissions the adversary assumed while
building it.

Run:  python examples/adversarial_lower_bound.py
"""

from repro.adversary import LowerBoundConstruction, verify_construction
from repro.analysis import render_table
from repro.baselines import RoundRobinBroadcast
from repro.core import SelectAndSend


def attack(name, factory, n, d):
    construction = LowerBoundConstruction(factory(), n, d)
    result = construction.build()
    report = verify_construction(result, factory())
    print(f"--- {name} on n={n}, D={d} ---")
    print(f"  stage parameters: k={construction.k}, window W={construction.window}")
    print(f"  constructed {len(result.stages)} odd layers + final layer "
          f"of {len(result.final_layer)} nodes; radius {result.network.radius}")
    print(f"  Lemma 9 (abstract == real histories over {result.horizon} slots): "
          f"{'VERIFIED' if report.histories_match else 'FAILED'}")
    print(f"  node D/2-1 provably silent before slot {result.silence_floor}; "
          f"respected in the real run: {report.silence_respected}")
    print(f"  real broadcast time on G_A: {report.real_completion_time} slots")
    print()
    return [name, n, d, construction.window, result.silence_floor,
            report.real_completion_time]


def main() -> None:
    rows = [
        attack("round-robin", lambda: RoundRobinBroadcast(511), 512, 16),
        attack("select-and-send", SelectAndSend, 512, 16),
        attack("round-robin", lambda: RoundRobinBroadcast(1023), 1024, 16),
    ]
    print(
        render_table(
            ["algorithm", "n", "D", "W", "silence floor", "time on G_A"],
            rows,
            title="Summary: every deterministic algorithm gets its own hard network",
        )
    )
    print()
    print(
        "The paper's Theorem 2 concludes Omega(n log n / log(n/D)) from\n"
        "(D/2 - 1) jamming windows; at laptop-scale n the structural claim\n"
        "(exact history equivalence + silence floors) is what is verified."
    )


if __name__ == "__main__":
    main()
