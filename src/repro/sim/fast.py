"""Vectorised engine for *oblivious* algorithms.

Both randomized algorithms studied in the paper — the Kowalski–Pelc stage
algorithm and BGI Decay — as well as the round-robin and selective-family
deterministic baselines are *oblivious*: a node's decision to transmit in
slot ``t`` depends only on ``(t, label, wake slot, coin flips)``, never on
received message contents.  For such algorithms the channel can be resolved
with one sparse matrix-vector product per slot, which makes the large
parameter sweeps of EXPERIMENTS.md feasible in pure Python.

Semantics are identical to :class:`repro.sim.engine.SynchronousEngine`
(verified by cross-engine tests): exactly-one reception, half-duplex, no
spontaneous transmissions, and nodes woken in slot ``t`` first act in
``t + 1``.
"""

from __future__ import annotations

from typing import Protocol as TypingProtocol, runtime_checkable

import numpy as np
from scipy import sparse

from .errors import ConfigurationError
from .network import RadioNetwork
from .run import BroadcastResult, _layer_times
from .trace import Trace, TraceLevel

__all__ = ["VectorizedAlgorithm", "FastEngine", "run_broadcast_fast", "ASLEEP"]

#: Sentinel wake step for nodes that are not informed yet.
ASLEEP: int = np.iinfo(np.int64).max


@runtime_checkable
class VectorizedAlgorithm(TypingProtocol):
    """Structural interface for algorithms runnable on :class:`FastEngine`.

    Implementors also subclass
    :class:`~repro.sim.protocol.BroadcastAlgorithm` so the same object runs
    on either engine.
    """

    name: str
    deterministic: bool

    def transmit_mask(
        self,
        step: int,
        labels: np.ndarray,
        wake_steps: np.ndarray,
        r: int,
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Vector of transmit decisions for slot ``step``.

        Args:
            step: Global slot number.
            labels: ``int64`` array of node labels (fixed across steps).
            wake_steps: ``int64`` array; ``ASLEEP`` for uninformed nodes.
                Implementations may ignore sleepers — the engine masks them
                out — but must not let them influence other nodes.
            r: Public label bound.
            rng: Run-level numpy generator for coin flips.

        Returns:
            Boolean array: True where the node transmits.
        """
        ...  # pragma: no cover - protocol definition


class FastEngine:
    """Array-based synchronous engine.

    Args:
        network: Topology (directed or undirected).
        algorithm: An oblivious algorithm implementing
            :class:`VectorizedAlgorithm`.
        seed: Seed for the numpy generator handed to the algorithm.
    """

    def __init__(self, network: RadioNetwork, algorithm: VectorizedAlgorithm, seed: int = 0):
        if not isinstance(algorithm, VectorizedAlgorithm):
            raise ConfigurationError(
                f"{algorithm!r} does not implement the vectorised interface"
            )
        self.network = network
        self.algorithm = algorithm
        self.rng = np.random.default_rng(seed)
        self.labels = np.array(network.nodes, dtype=np.int64)
        self._index = {label: i for i, label in enumerate(self.labels)}
        self.adjacency = self._build_adjacency(network)
        self.wake_steps = np.full(network.n, ASLEEP, dtype=np.int64)
        self.wake_steps[self._index[network.source]] = -1
        self.step = 0
        # Stateful schedules (e.g. Decay's per-phase activity mask) get a
        # fresh-run notification so algorithm objects can be reused.
        reset = getattr(algorithm, "reset_run", None)
        if reset is not None:
            reset(network.n)

    def _build_adjacency(self, network: RadioNetwork) -> sparse.csr_matrix:
        rows, cols = [], []
        for sender, nbrs in network.out_neighbors.items():
            si = self._index[sender]
            for receiver in nbrs:
                rows.append(si)
                cols.append(self._index[receiver])
        n = network.n
        data = np.ones(len(rows), dtype=np.int32)
        return sparse.csr_matrix(
            (data, (rows, cols)), shape=(n, n), dtype=np.int32
        )

    # ------------------------------------------------------------------

    @property
    def awake(self) -> np.ndarray:
        """Boolean mask of informed nodes."""
        return self.wake_steps != ASLEEP

    @property
    def all_informed(self) -> bool:
        return bool(self.awake.all())

    @property
    def informed_count(self) -> int:
        return int(self.awake.sum())

    def run_step(self) -> np.ndarray:
        """Execute one slot; returns the boolean transmit mask used."""
        awake = self.awake
        mask = self.algorithm.transmit_mask(
            self.step, self.labels, self.wake_steps, self.network.r, self.rng
        )
        mask = np.asarray(mask, dtype=bool) & awake  # no spontaneous transmissions
        if mask.any():
            hits = mask.astype(np.int32) @ self.adjacency
            # Exactly-one rule; transmitters cannot receive (half-duplex) but
            # they are already informed, so only sleepers matter for waking.
            newly = (~awake) & (np.asarray(hits).ravel() == 1)
            self.wake_steps[newly] = self.step
        self.step += 1
        return mask

    def run(self, max_steps: int, stop_when_informed: bool = True) -> int:
        """Run until completion or the step limit; returns slots executed."""
        executed = 0
        while executed < max_steps:
            if stop_when_informed and self.all_informed:
                break
            self.run_step()
            executed += 1
        return executed

    @property
    def completion_time(self) -> int | None:
        """Slots needed to inform every node, or ``None`` if incomplete."""
        if not self.all_informed:
            return None
        return int(self.wake_steps.max()) + 1

    def wake_times(self) -> dict[int, int]:
        """Map informed labels to their wake slots."""
        return {
            int(label): int(ws)
            for label, ws in zip(self.labels, self.wake_steps)
            if ws != ASLEEP
        }


def run_broadcast_fast(
    network: RadioNetwork,
    algorithm: VectorizedAlgorithm,
    seed: int = 0,
    max_steps: int | None = None,
) -> BroadcastResult:
    """Vectorised counterpart of :func:`repro.sim.run.run_broadcast`."""
    if max_steps is None:
        hint = getattr(algorithm, "max_steps_hint", None)
        max_steps = hint(network.n, network.r) if hint is not None else None
    if max_steps is None:
        max_steps = 64 * network.n * (network.n.bit_length() + 1)
    engine = FastEngine(network, algorithm, seed=seed)
    engine.run(max_steps)
    completed = engine.all_informed
    time = engine.completion_time if completed else engine.step
    wake_times = engine.wake_times()
    return BroadcastResult(
        completed=completed,
        time=time,
        informed=engine.informed_count,
        n=network.n,
        radius=network.radius,
        algorithm=algorithm.name,
        seed=seed,
        wake_times=wake_times,
        layer_times=_layer_times(network, wake_times),
        trace=Trace(level=TraceLevel.NONE),
    )
