"""Message and trace details not covered elsewhere."""

from __future__ import annotations

import pytest

from repro.sim.messages import Message, SOURCE_PAYLOAD, source_message
from repro.sim.trace import StepRecord, Trace, TraceLevel


class TestMessages:
    def test_source_message_shape(self):
        message = source_message()
        assert message.sender == 0
        assert message.payload == SOURCE_PAYLOAD

    def test_messages_are_value_objects(self):
        assert Message(1, "x") == Message(1, "x")
        assert Message(1, "x") != Message(2, "x")

    def test_messages_are_frozen(self):
        message = Message(1, "x")
        with pytest.raises(AttributeError):
            message.sender = 2

    def test_default_payload_is_source(self):
        assert Message(3).payload == SOURCE_PAYLOAD


class TestTrace:
    def test_none_level_records_nothing(self):
        trace = Trace(level=TraceLevel.NONE)
        trace.record(0, (0,), {1: 0}, (), (1,), informed=2)
        assert trace.steps == []
        assert trace.informed_counts == []
        assert trace.wake_times == {}

    def test_progress_level_tracks_wakes(self):
        trace = Trace(level=TraceLevel.PROGRESS)
        trace.record(0, (0,), {1: 0}, (), (1,), informed=2)
        trace.record(1, (1,), {2: 1}, (), (2,), informed=3)
        assert trace.wake_times == {1: 0, 2: 1}
        assert trace.informed_counts == [2, 3]
        assert trace.steps == []

    def test_full_level_records_step_records(self):
        trace = Trace(level=TraceLevel.FULL)
        trace.record(5, (3, 4), {}, (7,), (), informed=4)
        assert trace.steps == [
            StepRecord(step=5, transmitters=(3, 4), deliveries={}, collisions=(7,), woken=())
        ]

    def test_timeline_requires_full(self):
        trace = Trace(level=TraceLevel.PROGRESS)
        with pytest.raises(ValueError):
            trace.format_timeline()

    def test_timeline_truncation(self):
        trace = Trace(level=TraceLevel.FULL)
        for step in range(10):
            trace.record(step, (0,), {}, (), (), informed=1)
        assert len(trace.format_timeline(max_steps=3).splitlines()) == 3
