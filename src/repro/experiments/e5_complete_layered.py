"""E5 — Theorem 4: O(n + D log n) on complete layered networks, and the
refutation of the claimed undirected Omega(n log D) lower bound."""

from __future__ import annotations

from ..analysis import (
    claimed_cms_undirected_bound,
    complete_layered_bound,
    complete_layered_phase_cost_bound,
    fit_constant,
    render_table,
)
from ..core import CompleteLayeredBroadcast
from ..sim import repeat_broadcast
from ..topology import km_hard_layered, uniform_complete_layered
from .base import ExperimentReport, register
from .forensic_golden import add_forensic_golden

FULL_SHAPE = [
    (256, 8), (256, 32), (256, 96),
    (1024, 16), (1024, 32), (1024, 128), (1024, 340),
]
QUICK_SHAPE = [(256, 8), (256, 96), (1024, 128)]
FULL_REFUTATION = [(256, 32), (1024, 64), (2048, 90)]  # D ~ 2 sqrt(n)
QUICK_REFUTATION = [(256, 32), (1024, 64)]


@register("e5")
def run(quick: bool = False) -> ExperimentReport:
    """Shape fit + the asymptotic refutation sweep + KM-profile spot check."""
    report = ExperimentReport(
        "e5", "Complete-Layered: O(n + D log n), refuting the n log D claim"
    )
    shape_cases = QUICK_SHAPE if quick else FULL_SHAPE
    rows, times, params = [], [], []
    for n, d in shape_cases:
        net = uniform_complete_layered(n, d)
        # Complete-Layered is deterministic and hint-exact: the batch
        # path routes it through the batched event engine, one run
        # covering the estimate bit-identically to the reference.
        (result,) = repeat_broadcast(
            net, CompleteLayeredBroadcast(), runs=1, engine="batch",
            require_completion=True,
        )
        rows.append([
            n, d, result.time,
            result.time / complete_layered_bound(n, d),
            result.time / complete_layered_phase_cost_bound(n, d),
        ])
        times.append(float(result.time))
        params.append((n, d))
    honest = fit_constant(times, params, complete_layered_phase_cost_bound)
    asymptotic = fit_constant(times, params, complete_layered_bound)
    rows.append(["(fit)", "-", "-",
                 f"c={asymptotic.constant:.2f} spread={asymptotic.max_ratio_spread:.2f}",
                 f"c={honest.constant:.2f} spread={honest.max_ratio_spread:.2f}"])
    report.add_table(
        render_table(
            ["n", "D", "rounds", "time/(n+D log n)", "time/6D(log n+2)"],
            rows,
        )
    )
    report.check(
        "the finite-n form of Theorem 4 captures the measurements tightly",
        honest.max_ratio_spread < 3.0,
        f"spread {honest.max_ratio_spread:.2f}, c = {honest.constant:.2f}",
    )

    refutation_cases = QUICK_REFUTATION if quick else FULL_REFUTATION
    rows2, ratios = [], []
    for n, d in refutation_cases:
        net = uniform_complete_layered(n, d)
        # Complete-Layered is deterministic and hint-exact: the batch
        # path routes it through the batched event engine, one run
        # covering the estimate bit-identically to the reference.
        (result,) = repeat_broadcast(
            net, CompleteLayeredBroadcast(), runs=1, engine="batch",
            require_completion=True,
        )
        claimed = claimed_cms_undirected_bound(n, d)
        ratios.append(result.time / claimed)
        rows2.append([n, d, result.time, f"{claimed:.0f}", result.time / claimed])
    report.add_table(
        render_table(
            ["n", "D ~ 2 sqrt(n)", "rounds", "claimed n log D", "time/claim"],
            rows2,
        )
    )
    report.check(
        "along a D in o(n) sweep the measured time falls below the claimed "
        "Omega(n log D) and keeps diverging from it (Section 4.3 refutation)",
        ratios == sorted(ratios, reverse=True) and ratios[-1] < 1.0,
        " -> ".join(f"{ratio:.2f}" for ratio in ratios),
    )

    rows3 = []
    for seed in range(2 if quick else 3):
        net = km_hard_layered(1024, 64, seed=seed)
        # Complete-Layered is deterministic and hint-exact: the batch
        # path routes it through the batched event engine, one run
        # covering the estimate bit-identically to the reference.
        (result,) = repeat_broadcast(
            net, CompleteLayeredBroadcast(), runs=1, engine="batch",
            require_completion=True,
        )
        rows3.append([seed, result.time,
                      result.time / complete_layered_bound(1024, 64)])
    report.add_table(
        render_table(["layer seed", "rounds", "time/(n+D log n)"], rows3)
    )
    report.check(
        "layer-size randomness (the randomized hard case) does not slow the "
        "deterministic algorithm",
        max(row[2] for row in rows3) < 6.0,
    )

    add_forensic_golden(
        report, uniform_complete_layered(256, 8), CompleteLayeredBroadcast,
        seed=0, engines=("reference", "event"),
        expected={
            "slots": 233,
            "informed": 256,
            "total_transmissions": 832,
            "wasted_slot_fraction": 0.965665,
            "critical_path_depth": 8,
            "redundancy_ratio": 3.262745,
        },
        label="Complete-Layered on uniform_complete_layered(256, 8)",
    )
    return report
