"""Layered network generators (Section 4.3 substrate)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.errors import ConfigurationError
from repro.topology import (
    complete_layered,
    km_hard_layered,
    layer_sizes_for,
    random_layered,
    uniform_complete_layered,
)


def test_complete_layered_structure():
    net = complete_layered([1, 3, 2, 4])
    assert net.n == 10
    assert net.radius == 3
    assert net.is_complete_layered()
    assert [len(layer) for layer in net.layers()] == [1, 3, 2, 4]


def test_complete_layered_requires_unit_source_layer():
    with pytest.raises(ConfigurationError):
        complete_layered([2, 3])
    with pytest.raises(ConfigurationError):
        complete_layered([])
    with pytest.raises(ConfigurationError):
        complete_layered([1, 0, 2])


def test_complete_layered_relabel_preserves_structure():
    plain = complete_layered([1, 4, 5, 2])
    shuffled = complete_layered([1, 4, 5, 2], relabel_seed=7)
    assert shuffled.is_complete_layered()
    assert [len(l) for l in shuffled.layers()] == [len(l) for l in plain.layers()]
    assert shuffled.out_neighbors != plain.out_neighbors


def test_uniform_complete_layered_sizes():
    net = uniform_complete_layered(100, 9)
    sizes = [len(layer) for layer in net.layers()]
    assert sizes[0] == 1
    assert sum(sizes) == 100
    assert net.radius == 9


def test_uniform_complete_layered_too_small():
    with pytest.raises(ConfigurationError):
        uniform_complete_layered(4, 5)


def test_km_hard_layered_total_and_radius():
    net = km_hard_layered(200, 12, seed=5)
    assert net.n == 200
    assert net.radius == 12
    assert net.is_complete_layered()


def test_km_hard_layered_sizes_are_varied():
    net = km_hard_layered(512, 16, seed=1)
    sizes = {len(layer) for layer in net.layers()[1:]}
    assert len(sizes) > 2  # layer sizes vary (that is the hardness source)


def test_random_layered_radius_and_connectivity():
    net = random_layered(80, 8, edge_prob=0.4, seed=2)
    assert net.n == 80
    assert net.radius == 8


def test_random_layered_full_prob_is_complete():
    net = random_layered(40, 4, edge_prob=1.0, seed=0)
    assert net.is_complete_layered()


def test_random_layered_relabel():
    net = random_layered(40, 4, edge_prob=0.5, seed=1, relabel_seed=3)
    assert net.radius == 4


def test_random_layered_rejects_bad_prob():
    with pytest.raises(ConfigurationError):
        random_layered(30, 3, edge_prob=0.0)


def test_layer_sizes_for_splits_evenly():
    sizes = layer_sizes_for(10, 3)
    assert sizes[0] == 1
    assert sum(sizes) == 10
    assert max(sizes[1:]) - min(sizes[1:]) <= 1


@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=2, max_value=12).flatmap(
        lambda depth: st.tuples(
            st.just(depth), st.integers(min_value=depth + 1, max_value=120)
        )
    ),
    st.integers(min_value=0, max_value=99),
)
def test_km_hard_layered_property(depth_n, seed):
    depth, n = depth_n
    net = km_hard_layered(n, depth, seed=seed)
    assert net.n == n
    assert net.radius == depth
    assert net.is_complete_layered()


def test_directed_complete_layered_arcs_forward_only():
    from repro.topology import directed_complete_layered

    net = directed_complete_layered([1, 3, 2])
    assert net.is_directed
    assert net.radius == 2
    # Arcs go forward: layer-2 nodes have no out-neighbours.
    for v in net.layers()[2]:
        assert net.out_neighbors[v] == ()
    # In-neighbourhood of a layer-2 node is the whole of layer 1.
    for v in net.layers()[2]:
        assert net.in_neighbors[v] == net.layers()[1]


def test_directed_layered_runs_kp(topology_zoo=None):
    from repro.core import KnownRadiusKP
    from repro.sim import run_broadcast, run_broadcast_fast
    from repro.topology import directed_complete_layered

    net = directed_complete_layered([1, 8, 16, 4, 10])
    algo = KnownRadiusKP(net.r, net.radius)
    assert run_broadcast(net, algo, seed=2).completed
    assert run_broadcast_fast(net, algo, seed=2).completed
