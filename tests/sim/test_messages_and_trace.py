"""Message and trace details not covered elsewhere."""

from __future__ import annotations

import pytest

from repro.sim.messages import Message, SOURCE_PAYLOAD, source_message
from repro.sim.trace import StepRecord, Trace, TraceLevel


class TestMessages:
    def test_source_message_shape(self):
        message = source_message()
        assert message.sender == 0
        assert message.payload == SOURCE_PAYLOAD

    def test_messages_are_value_objects(self):
        assert Message(1, "x") == Message(1, "x")
        assert Message(1, "x") != Message(2, "x")

    def test_messages_are_frozen(self):
        message = Message(1, "x")
        with pytest.raises(AttributeError):
            message.sender = 2

    def test_default_payload_is_source(self):
        assert Message(3).payload == SOURCE_PAYLOAD


class TestTrace:
    def test_none_level_records_nothing(self):
        trace = Trace(level=TraceLevel.NONE)
        trace.record(0, (0,), {1: 0}, (), (1,), informed=2)
        assert trace.steps == []
        assert trace.informed_counts == []
        assert trace.wake_times == {}

    def test_progress_level_tracks_wakes(self):
        trace = Trace(level=TraceLevel.PROGRESS)
        trace.record(0, (0,), {1: 0}, (), (1,), informed=2)
        trace.record(1, (1,), {2: 1}, (), (2,), informed=3)
        assert trace.wake_times == {1: 0, 2: 1}
        assert trace.informed_counts == [2, 3]
        assert trace.steps == []

    def test_full_level_records_step_records(self):
        trace = Trace(level=TraceLevel.FULL)
        trace.record(5, (3, 4), {}, (7,), (), informed=4)
        assert trace.steps == [
            StepRecord(step=5, transmitters=(3, 4), deliveries={}, collisions=(7,), woken=())
        ]

    def test_timeline_requires_full(self):
        trace = Trace(level=TraceLevel.PROGRESS)
        with pytest.raises(ValueError):
            trace.format_timeline()

    def test_timeline_truncation(self):
        trace = Trace(level=TraceLevel.FULL)
        for step in range(10):
            trace.record(step, (0,), {}, (), (), informed=1)
        assert len(trace.format_timeline(max_steps=3).splitlines()) == 3

    @pytest.mark.parametrize("level", [TraceLevel.NONE, TraceLevel.PROGRESS])
    def test_full_only_views_name_required_and_actual_level(self, level):
        trace = Trace(level=level)
        for view in (
            trace.format_timeline,
            trace.total_transmissions,
            trace.total_collisions,
        ):
            with pytest.raises(ValueError, match=f"TraceLevel.{level.name}"):
                view()
            with pytest.raises(ValueError, match="requires TraceLevel.FULL"):
                view()

    def test_initially_informed_marker(self):
        trace = Trace(level=TraceLevel.PROGRESS)
        trace.mark_initially_informed(4)
        trace.record(0, (4,), {2: 4}, (), (2,), informed=2)
        assert trace.wake_times == {4: -1, 2: 0}
        assert trace.initially_informed() == (4,)

    def test_marker_is_noop_at_level_none(self):
        trace = Trace(level=TraceLevel.NONE)
        trace.mark_initially_informed(4)
        assert trace.wake_times == {}

    def test_summary_at_progress(self):
        trace = Trace(level=TraceLevel.PROGRESS)
        trace.mark_initially_informed(0)
        trace.record(0, (0,), {1: 0}, (), (1,), informed=2)
        trace.record(1, (1,), {2: 1}, (), (2,), informed=3)
        summary = trace.summary()
        assert summary["level"] == "PROGRESS"
        assert summary["slots"] == 2
        assert summary["informed_final"] == 3
        assert summary["first_wake_slot"] == 0
        assert summary["last_wake_slot"] == 1
        assert summary["initially_informed"] == (0,)

    def test_summary_requires_progress(self):
        trace = Trace(level=TraceLevel.NONE)
        with pytest.raises(ValueError, match="at least TraceLevel.PROGRESS"):
            trace.summary()

    def test_summary_of_single_node_run(self):
        # A single-node network records no slots and no non-negative
        # wakes; the summary must still make sense (the degenerate case
        # the DAG root marker exists for).
        trace = Trace(level=TraceLevel.FULL)
        trace.mark_initially_informed(0)
        summary = trace.summary()
        assert summary["slots"] == 0
        assert summary["informed_final"] == 1
        assert summary["first_wake_slot"] is None
        assert summary["initially_informed"] == (0,)
