"""BGI Decay baseline."""

from __future__ import annotations

import pytest

from repro.baselines.bgi import BGIBroadcast, default_phase_length
from repro.sim import run_broadcast, run_broadcast_fast
from repro.sim.engine import SynchronousEngine
from repro.sim.errors import ConfigurationError
from repro.sim.trace import TraceLevel
from repro.topology import km_hard_layered, path, star, uniform_complete_layered


def test_default_phase_length():
    assert default_phase_length(255) == 2 * 8
    assert default_phase_length(256) == 2 * 9
    assert default_phase_length(1) == 2


def test_rejects_nonpositive_phase():
    with pytest.raises(ConfigurationError):
        BGIBroadcast(63, phase_len=0)


def test_completes_on_zoo(topology_zoo):
    for name, net in topology_zoo.items():
        result = run_broadcast(net, BGIBroadcast(net.r), seed=3)
        assert result.completed, name


def test_fast_engine_completes():
    net = km_hard_layered(300, 12, seed=0)
    result = run_broadcast_fast(net, BGIBroadcast(net.r), seed=5)
    assert result.completed


def test_first_phase_slot_everyone_eligible_transmits():
    """Decay: every node informed before a phase transmits in its slot 0."""
    net = star(6)
    engine = SynchronousEngine(net, BGIBroadcast(net.r), trace_level=TraceLevel.FULL)
    engine.run_step()  # phase 0, slot 0: the source transmits (alone)
    assert engine.trace.steps[0].transmitters == (0,)
    assert engine.informed_count == 6
    # Run to the start of the next phase: all 6 nodes start Decay together.
    phase_len = BGIBroadcast(net.r).phase_len
    for _ in range(phase_len - 1):
        engine.run_step()
    transmitters = engine.run_step()
    assert transmitters == (0, 1, 2, 3, 4, 5)


def test_mid_phase_wake_waits_for_next_phase():
    net = path(3)
    algo = BGIBroadcast(net.r, phase_len=6)
    engine = SynchronousEngine(net, algo, trace_level=TraceLevel.FULL)
    engine.run_step()  # step 0: source informs node 1
    # Node 1 must stay silent for the rest of phase 0.
    for step in range(1, 6):
        tx = engine.run_step()
        assert 1 not in tx, step


def test_decay_activity_is_monotone_within_phase():
    """Once a node's coin kills it, it stays silent until the phase ends."""
    net = star(40)
    algo = BGIBroadcast(net.r, phase_len=10)
    engine = SynchronousEngine(net, algo, trace_level=TraceLevel.FULL)
    engine.run(1 + 10 + 10, stop_when_informed=False)
    records = engine.trace.steps
    phase1 = [set(rec.transmitters) for rec in records if 10 <= rec.step < 20]
    for earlier, later in zip(phase1, phase1[1:]):
        assert later <= earlier


def test_seeds_vary_times():
    net = uniform_complete_layered(150, 6)
    times = {run_broadcast_fast(net, BGIBroadcast(net.r), seed=s).time for s in range(6)}
    assert len(times) > 1


def test_engines_agree_in_distribution():
    net = uniform_complete_layered(100, 5)
    algo = BGIBroadcast(net.r)
    ref = sum(run_broadcast(net, algo, seed=s).time for s in range(6)) / 6
    fast = sum(run_broadcast_fast(net, algo, seed=s).time for s in range(6)) / 6
    assert 0.5 < ref / fast < 2.0
