"""Structured JSONL run logs.

Every instrumented run or sweep appends one JSON object per lifecycle
transition to a ``.jsonl`` file under ``benchmarks/results/runlogs/``
(or a caller-chosen path).  Events share a fixed envelope —

``{"ts": <epoch seconds>, "event": <kind>, "run_id": <hex>,
"git_sha": <short sha or "unknown">, ...}``

— plus event-specific fields (``seed``, ``engine``, ``index``,
``label``, ``timings``, ``metrics``, ...).  The full event vocabulary
and schema live in ``docs/OBSERVABILITY.md``.

Only the *parent* process writes: sweep workers report through the
result queue (and the telemetry bus), and the parent logs on their
behalf, so lines never interleave.  By default every event is flushed
as written — a killed sweep leaves a valid (truncated) log, mirroring
the crash-safe cache.  Under high event rates (telemetry spans stream
one event per point span) per-event ``flush()`` dominates, so
``flush_interval`` batches flushes: a killed writer then loses at most
one batch (bounded by ``flush_batch`` events).

:func:`validate_runlog` is the schema checker used by tests and CI: it
asserts that every line parses, that timestamps are monotone
non-decreasing, that no worker lifecycle event is orphaned (every
``point_*`` event follows a ``point_spawned`` for the same index, every
spawned point reaches a terminal ``point_completed`` /
``point_failed``, and every point event's ``run_id`` matches a
``sweep_started`` envelope), and that telemetry events (``span``,
``point_running``, ``telemetry_dropped``) are well-formed.
"""

from __future__ import annotations

import json
import pathlib
import subprocess
import time
import uuid
from typing import Iterable, Mapping, Sequence

__all__ = [
    "DEFAULT_RUNLOG_DIR",
    "RunLogger",
    "RunlogError",
    "assert_valid_runlog",
    "default_runlog_path",
    "git_sha",
    "new_run_id",
    "read_runlog",
    "validate_runlog",
]

#: Default directory for machine-written run logs.
DEFAULT_RUNLOG_DIR = pathlib.Path("benchmarks") / "results" / "runlogs"

#: Point-lifecycle events that require a preceding ``point_spawned``.
_NEEDS_SPAWN = frozenset(
    {"point_completed", "point_failed", "point_timed_out", "point_killed",
     "point_retried"}
)

#: Terminal outcomes a spawned point must eventually reach.
_TERMINAL = frozenset({"point_completed", "point_failed"})

#: Every point-scoped event kind; each must carry the ``run_id`` of a
#: ``sweep_started`` envelope present in the same log.
_POINT_EVENTS = _NEEDS_SPAWN | {"point_spawned", "point_cache_hit", "point_running"}

#: Span hierarchy accepted in ``span`` events (kept in sync with
#: :data:`repro.obs.spans.SPAN_KINDS` without importing it — this module
#: stays dependency-light so everything above it can import it freely).
_SPAN_KINDS = ("sweep", "point", "trial", "stage")

_GIT_SHA: str | None = None


class RunlogError(ValueError):
    """A run log failed to parse or violated the event schema."""


def git_sha() -> str:
    """Short git SHA of the working tree, or ``"unknown"`` outside a repo.

    Resolved once per process — run logs are written from one checkout.
    """
    global _GIT_SHA
    if _GIT_SHA is None:
        try:
            _GIT_SHA = subprocess.run(
                ["git", "rev-parse", "--short", "HEAD"],
                capture_output=True, text=True, timeout=5.0, check=True,
            ).stdout.strip() or "unknown"
        except (OSError, subprocess.SubprocessError):
            _GIT_SHA = "unknown"
    return _GIT_SHA


def new_run_id() -> str:
    """Fresh 12-hex-digit id tying one invocation's events together."""
    return uuid.uuid4().hex[:12]


def default_runlog_path(name: str, directory: pathlib.Path | None = None) -> pathlib.Path:
    """Timestamped log path under :data:`DEFAULT_RUNLOG_DIR`."""
    stamp = time.strftime("%Y%m%d-%H%M%S")
    root = pathlib.Path(directory) if directory is not None else DEFAULT_RUNLOG_DIR
    return root / f"{name}-{stamp}-{new_run_id()[:4]}.jsonl"


class RunLogger:
    """Append-only JSONL event writer.

    Args:
        path: Log file (parent directories are created).  Opened in
            append mode so several invocations may share one file; their
            events stay distinguishable by ``run_id``.
        run_id: Override the generated invocation id (tests pin it).
        clock: Timestamp source, ``time.time`` by default.  Timestamps
            are clamped to be monotone non-decreasing within the logger
            even if the wall clock steps backwards.
        flush_interval: Seconds between forced flushes.  The default
            ``0.0`` flushes after *every* event — the original
            crash-safety contract.  A positive interval batches flushes
            for high event rates (streaming telemetry spans): events are
            still written to the OS immediately on flush, and a flush is
            forced whenever ``flush_batch`` events have accumulated, so
            a killed writer loses at most one batch.
        flush_batch: Maximum unflushed events regardless of the
            interval (only meaningful with ``flush_interval > 0``).
    """

    def __init__(
        self,
        path: pathlib.Path | str,
        run_id: str | None = None,
        clock=time.time,
        flush_interval: float = 0.0,
        flush_batch: int = 64,
    ) -> None:
        if flush_interval < 0:
            raise ValueError(f"flush_interval must be >= 0, got {flush_interval}")
        if flush_batch < 1:
            raise ValueError(f"flush_batch must be >= 1, got {flush_batch}")
        self.path = pathlib.Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.run_id = run_id or new_run_id()
        self._clock = clock
        self._sha = git_sha()
        self._last_ts = float("-inf")
        self._handle = self.path.open("a", encoding="utf-8")
        self.flush_interval = flush_interval
        self.flush_batch = flush_batch
        self._unflushed = 0
        self._last_flush = time.monotonic()

    def event(self, kind: str, /, **fields) -> dict:
        """Write one event; returns the record that was written.

        ``kind`` is positional-only so event payloads may themselves
        carry a ``kind`` field (span events do).
        """
        ts = max(float(self._clock()), self._last_ts)
        self._last_ts = ts
        record = {"ts": ts, "event": kind, "run_id": self.run_id,
                  "git_sha": self._sha, **fields}
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._unflushed += 1
        if (
            self.flush_interval <= 0.0
            or self._unflushed >= self.flush_batch
            or time.monotonic() - self._last_flush >= self.flush_interval
        ):
            self.flush()
        return record

    def flush(self) -> None:
        """Force buffered events to the OS (a crash loses nothing flushed)."""
        self._handle.flush()
        self._unflushed = 0
        self._last_flush = time.monotonic()

    def close(self) -> None:
        if not self._handle.closed:
            self.flush()
        self._handle.close()

    def __enter__(self) -> "RunLogger":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_runlog(path: pathlib.Path | str) -> list[dict]:
    """Parse a JSONL run log into event dicts.

    Raises:
        RunlogError: On an unparseable or non-object line (with its line
            number).
    """
    events: list[dict] = []
    with pathlib.Path(path).open("r", encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise RunlogError(f"{path}:{number}: not valid JSON: {exc}") from exc
            if not isinstance(record, dict):
                raise RunlogError(f"{path}:{number}: event is not a JSON object")
            events.append(record)
    return events


def validate_runlog(events: Sequence[Mapping]) -> list[str]:
    """Schema-check parsed events; returns a list of violations (empty = valid).

    Checks, per ``run_id``:

    * envelope: every event carries ``ts``/``event``/``run_id``/``git_sha``;
    * timestamps are monotone non-decreasing in file order;
    * worker lifecycle: ``point_completed`` / ``point_failed`` /
      ``point_timed_out`` / ``point_killed`` / ``point_retried`` must
      follow a ``point_spawned`` for the same point index (cache hits
      are exempt — they are never spawned), and every spawned index must
      reach a terminal ``point_completed`` or ``point_failed``;
    * envelope matching: every point-scoped event's ``run_id`` must
      match a ``sweep_started`` envelope when the log contains any
      ``sweep_started`` at all (single-run logs written by ``repro run``
      have no sweep envelope and are exempt);
    * telemetry: ``span`` events carry a string ``span_id``, a ``name``,
      a ``kind`` from the span hierarchy, numeric ``start_ts`` /
      ``end_ts`` with ``end_ts >= start_ts``, and a ``parent_id`` that
      is a string or null; ``point_running`` carries an ``index``;
      ``telemetry_dropped`` carries a non-negative integer ``count``.
    """
    errors: list[str] = []
    last_ts: dict[str, float] = {}
    spawned: dict[tuple[str, object], bool] = {}  # (run, index) -> reached terminal
    sweep_runs: set[str] = set()
    point_runs: dict[str, int] = {}  # run_id -> first position of a point event

    for position, event in enumerate(events):
        where = f"event #{position}"
        missing = [key for key in ("ts", "event", "run_id", "git_sha")
                   if key not in event]
        if missing:
            errors.append(f"{where}: missing envelope fields {missing}")
            continue
        run = event["run_id"]
        kind = event["event"]
        ts = event["ts"]
        if not isinstance(ts, (int, float)):
            errors.append(f"{where}: non-numeric ts {ts!r}")
            continue
        previous = last_ts.get(run)
        if previous is not None and ts < previous:
            errors.append(
                f"{where}: timestamp went backwards for run {run} "
                f"({ts} < {previous})"
            )
        last_ts[run] = ts

        if kind == "sweep_started":
            sweep_runs.add(run)
        if kind in _POINT_EVENTS:
            point_runs.setdefault(run, position)

        if kind == "point_spawned":
            if "index" not in event:
                errors.append(f"{where}: point_spawned without an index")
            else:
                spawned.setdefault((run, event["index"]), False)
        elif kind in _NEEDS_SPAWN:
            key = (run, event.get("index"))
            if key not in spawned:
                errors.append(
                    f"{where}: orphan {kind} for point {event.get('index')!r} "
                    f"(no prior point_spawned)"
                )
            elif kind in _TERMINAL:
                spawned[key] = True
        elif kind == "point_running" and "index" not in event:
            errors.append(f"{where}: point_running without an index")
        elif kind == "span":
            if not isinstance(event.get("span_id"), str):
                errors.append(f"{where}: span without a string span_id")
            if not event.get("name"):
                errors.append(f"{where}: span without a name")
            if event.get("kind") not in _SPAN_KINDS:
                errors.append(
                    f"{where}: span kind {event.get('kind')!r} not in {_SPAN_KINDS}"
                )
            start = event.get("start_ts")
            end = event.get("end_ts")
            if not isinstance(start, (int, float)) or not isinstance(end, (int, float)):
                errors.append(f"{where}: span without numeric start_ts/end_ts")
            elif end < start:
                errors.append(f"{where}: span ends before it starts ({end} < {start})")
            parent = event.get("parent_id")
            if parent is not None and not isinstance(parent, str):
                errors.append(f"{where}: span parent_id {parent!r} is not a string")
        elif kind == "telemetry_dropped":
            count = event.get("count")
            if not isinstance(count, int) or isinstance(count, bool) or count < 0:
                errors.append(
                    f"{where}: telemetry_dropped count {count!r} is not a "
                    f"non-negative integer"
                )

    if sweep_runs:
        for run, position in sorted(point_runs.items()):
            if run not in sweep_runs:
                errors.append(
                    f"event #{position}: point events for run {run} have no "
                    f"matching sweep_started envelope"
                )

    for (run, index), terminal in sorted(spawned.items(), key=lambda kv: str(kv[0])):
        if not terminal:
            errors.append(
                f"point {index!r} of run {run} was spawned but never reached "
                f"point_completed/point_failed"
            )
    return errors


def assert_valid_runlog(path: pathlib.Path | str) -> list[dict]:
    """Parse *and* validate a run log; raises :class:`RunlogError` if bad."""
    events = read_runlog(path)
    errors = validate_runlog(events)
    if errors:
        raise RunlogError(
            f"{path}: {len(errors)} schema violation(s):\n" + "\n".join(errors)
        )
    return events


def merge_event_field(events: Iterable[Mapping], field: str) -> list[Mapping]:
    """All non-null values of ``field`` across events (helper for reports)."""
    return [event[field] for event in events if event.get(field) is not None]
