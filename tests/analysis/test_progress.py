"""Progress analytics: curves, milestones, front speed, energy, sparkline."""

from __future__ import annotations

import pytest

from repro.analysis.progress import (
    Milestones,
    ascii_sparkline,
    front_speed,
    initially_informed,
    milestones,
    progress_curve,
    progress_table_rows,
    transmissions_per_node,
)
from repro.baselines import RoundRobinBroadcast
from repro.core import SelectAndSend
from repro.sim import run_broadcast
from repro.sim.trace import TraceLevel
from repro.topology import path, star, uniform_complete_layered


def test_progress_curve_monotone_and_complete():
    net = uniform_complete_layered(40, 4)
    result = run_broadcast(net, RoundRobinBroadcast(net.r))
    curve = progress_curve(result)
    assert len(curve) == result.time
    assert curve == sorted(curve)
    assert curve[-1] == net.n
    assert curve[0] >= 1  # the source counts from the start


def test_progress_curve_star_single_slot():
    net = star(12)
    result = run_broadcast(net, RoundRobinBroadcast(net.r))
    curve = progress_curve(result)
    assert curve == [12]


def test_single_node_network_zero_slot_run():
    # Degenerate case: the source is the whole network, the run completes
    # in zero slots, and the curve is empty — but coverage is total.
    net = path(1)
    result = run_broadcast(net, RoundRobinBroadcast(net.r))
    assert result.completed and result.time == 0
    assert progress_curve(result) == []
    assert initially_informed(result) == 1
    marks = milestones(result)
    assert marks == Milestones(half=0, ninety=0, full=0)


def test_initially_informed_counts_only_the_source():
    net = path(8)
    result = run_broadcast(net, RoundRobinBroadcast(net.r))
    assert initially_informed(result) == 1


def test_milestones_source_alone_meets_half_of_two_nodes():
    # With n=2 the source is already 50% coverage before slot 0.
    net = path(2)
    result = run_broadcast(net, RoundRobinBroadcast(net.r))
    marks = milestones(result)
    assert marks.half == 0
    assert marks.full == result.time


def test_milestones_ordering():
    net = path(30)
    result = run_broadcast(net, RoundRobinBroadcast(net.r))
    marks = milestones(result)
    assert marks.half is not None and marks.full is not None
    assert marks.half <= marks.ninety <= marks.full == result.time


def test_milestones_incomplete_run():
    net = path(30)
    result = run_broadcast(net, RoundRobinBroadcast(net.r), max_steps=10)
    marks = milestones(result)
    assert marks.full is None


def test_front_speed_path_round_robin():
    net = path(20)
    result = run_broadcast(net, RoundRobinBroadcast(net.r))
    # Sorted path labels pipeline perfectly: exactly one slot per layer.
    assert front_speed(result) == pytest.approx(1.0)


def test_front_speed_none_for_degenerate():
    net = star(5)
    result = run_broadcast(net, RoundRobinBroadcast(net.r))
    # Star has exactly two layers; speed defined and equals time/1.
    assert front_speed(result) == result.time
    # Single-layer (source only informed) -> None
    incomplete = run_broadcast(path(5), RoundRobinBroadcast(4), max_steps=0)
    assert front_speed(incomplete) is None


def test_transmissions_per_node_requires_full_trace():
    net = path(6)
    result = run_broadcast(net, RoundRobinBroadcast(net.r))
    with pytest.raises(ValueError):
        transmissions_per_node(result.trace)


def test_transmissions_per_node_counts():
    net = star(6)
    result = run_broadcast(
        net, RoundRobinBroadcast(net.r), trace_level=TraceLevel.FULL
    )
    counts = transmissions_per_node(result.trace)
    assert counts == {0: 1}  # one source transmission informs the star


def test_sparkline_shape():
    line = ascii_sparkline([0, 1, 2, 3, 4, 5])
    assert len(line) == 6
    assert line[0] == " " and line[-1] == "@"
    assert ascii_sparkline([]) == ""
    # Longer-than-width series are bucketed to the width.
    assert len(ascii_sparkline(list(range(500)), width=40)) == 40


def test_progress_table_rows():
    net = uniform_complete_layered(30, 3)
    results = {
        "rr": run_broadcast(net, RoundRobinBroadcast(net.r)),
        "ss": run_broadcast(net, SelectAndSend()),
    }
    rows = progress_table_rows(results)
    assert len(rows) == 2
    assert rows[0][0] == "rr"
    assert all(len(row) == 6 for row in rows)
