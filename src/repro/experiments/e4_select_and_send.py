"""E4 — Theorem 3: Select-and-Send broadcasts in O(n log n) on any network.

Also quantifies the price of the ad hoc assumption against the
known-neighbourhood O(n) DFS and the O(nD) round-robin.
"""

from __future__ import annotations

from ..analysis import fit_constant, render_table, select_and_send_bound
from ..baselines import KnownNeighborsDFS, RoundRobinBroadcast
from ..core import SelectAndSend
from ..sim import repeat_broadcast, run_broadcast
from ..topology import gnp_connected, grid, path, random_tree
from .base import ExperimentReport, register
from .forensic_golden import add_forensic_golden

FULL_SIZES = [64, 128, 256, 512]
QUICK_SIZES = [64, 128]


def _families(n: int, seed: int = 5):
    side = max(2, int(n**0.5))
    return {
        "path": path(n, relabel="shuffled", seed=seed),
        "random-tree": random_tree(n, seed=seed),
        "grid": grid(side, side),
        "gnp": gnp_connected(n, min(0.9, 6.0 / n), seed=seed),
    }


@register("e4")
def run(quick: bool = False) -> ExperimentReport:
    """Measure S&S across topology families; fit c * n log n."""
    sizes = QUICK_SIZES if quick else FULL_SIZES
    report = ExperimentReport("e4", "Select-and-Send O(n log n) across families")
    rows, times, params = [], [], []
    for n in sizes:
        for family, net in _families(n).items():
            # S&S is adaptive with exact idle hints: the batch path
            # routes it through the batched event engine, reproducing
            # the reference run bit for bit, faster (deterministic, so
            # one run covers the Monte-Carlo estimate exactly).
            (ss,) = repeat_broadcast(
                net, SelectAndSend(), runs=1, engine="batch",
                require_completion=True,
            )
            dfs = run_broadcast(net, KnownNeighborsDFS(net), require_completion=True)
            rr = run_broadcast(net, RoundRobinBroadcast(net.r), require_completion=True)
            bound = select_and_send_bound(net.n, net.radius)
            rows.append(
                [family, net.n, net.radius, ss.time, ss.time / bound,
                 dfs.time, rr.time]
            )
            times.append(float(ss.time))
            params.append((net.n, net.radius))
    fit = fit_constant(times, params, select_and_send_bound)
    rows.append(["(fit)", "-", "-", f"c={fit.constant:.2f}",
                 f"spread={fit.max_ratio_spread:.2f}", "-", "-"])
    report.add_table(
        render_table(
            ["family", "n", "D", "S&S rounds", "S&S/(n log n)",
             "known-nbrs DFS", "round-robin"],
            rows,
        )
    )
    ratios = [t / select_and_send_bound(n, d) for t, (n, d) in zip(times, params)]
    report.check(
        "time is bounded by a small constant times n log n on every family",
        max(ratios) < 4.0,
        f"max ratio {max(ratios):.2f}",
    )
    import math

    report.check(
        "the ad hoc assumption costs at most an O(log n) factor over the "
        "known-neighbourhood DFS",
        all(
            row[3] <= 6 * math.log2(max(2, row[1])) * row[5]
            for row in rows[:-1]
        ),
    )

    add_forensic_golden(
        report, random_tree(64, seed=5), SelectAndSend,
        seed=0, engines=("reference", "event"),
        expected={
            "slots": 978,
            "informed": 64,
            "total_transmissions": 1078,
            "wasted_slot_fraction": 0.981595,
            "critical_path_depth": 8,
            "redundancy_ratio": 17.111111,
        },
        label="S&S on random_tree(64, seed=5)",
    )
    return report
