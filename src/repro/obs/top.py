"""``repro top`` — a live terminal view of a running sweep.

:class:`TopView` is a pure state machine: it is fed telemetry/runlog
event dicts (the same vocabulary :mod:`repro.obs.runlog` validates) and
renders a snapshot — points done/total with a progress bar, throughput
and ETA, cache hit ratio, retry/timeout/kill/failure counts, per-worker
state, and the bus drop count.  Being pure makes it trivially testable
and source-agnostic: the live command subscribes it to a
:class:`~repro.obs.telemetry.TelemetryHub`, while ``repro top --replay``
feeds it a recorded runlog.

:class:`LiveRenderer` is the thin terminal driver: a hub subscriber
that re-renders at most once per ``interval`` seconds, redrawing in
place on a TTY (ANSI cursor-up) and staying silent otherwise so piping
never produces control characters.
"""

from __future__ import annotations

import time
from typing import Callable, Mapping, Sequence

__all__ = ["LiveRenderer", "TopView", "replay_events"]


def _format_seconds(seconds: float) -> str:
    if seconds < 0 or seconds != seconds:  # negative or NaN
        return "?"
    if seconds < 60:
        return f"{seconds:.0f}s"
    minutes, secs = divmod(int(seconds), 60)
    if minutes < 60:
        return f"{minutes}m{secs:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


class TopView:
    """Aggregates sweep telemetry events into a renderable snapshot.

    Feed events in file/stream order with :meth:`feed`; ask for the
    current screen with :meth:`render`.  Unknown event kinds are ignored,
    so the view tolerates vocabulary growth.
    """

    def __init__(self, clock: Callable[[], float] = time.monotonic) -> None:
        self._clock = clock
        self.name: str | None = None
        self.total = 0
        self.pool_workers = 0
        self.executed = 0
        self.cache_hits = 0
        self.failures = 0
        self.retries = 0
        self.timeouts = 0
        self.kills = 0
        self.spans = 0
        self.dropped = 0
        self.finished: dict | None = None
        #: pid -> {"index": int, "label": str, "ts": float | None}
        self.worker_state: dict[int, dict] = {}
        self._started_clock: float | None = None
        self._finished_clock: float | None = None
        self._first_ts: float | None = None
        self._last_ts: float | None = None

    # -- event intake --------------------------------------------------

    def feed(self, event: Mapping) -> None:
        """Absorb one telemetry/runlog event."""
        if self._started_clock is None:
            self._started_clock = self._clock()
        ts = event.get("ts")
        if isinstance(ts, (int, float)):
            if self._first_ts is None:
                self._first_ts = float(ts)
            self._last_ts = float(ts)
        kind = event.get("event")
        if kind == "sweep_started":
            self.name = event.get("name")
            self.total = int(event.get("points") or 0)
            self.pool_workers = int(event.get("workers") or 0)
        elif kind == "point_cache_hit":
            self.cache_hits += 1
        elif kind == "point_running":
            pid = event.get("pid")
            if pid is not None:
                self.worker_state[pid] = {
                    "index": event.get("index"),
                    "label": event.get("label"),
                    "ts": ts if isinstance(ts, (int, float)) else None,
                }
        elif kind == "point_completed":
            self.executed += 1
            self._clear_workers_running(event.get("index"))
        elif kind == "point_failed":
            self.failures += 1
            self._clear_workers_running(event.get("index"))
        elif kind == "point_retried":
            self.retries += 1
            self._clear_workers_running(event.get("index"))
        elif kind == "point_timed_out":
            self.timeouts += 1
        elif kind == "point_killed":
            self.kills += 1
        elif kind == "span":
            self.spans += 1
        elif kind == "telemetry_dropped":
            count = event.get("count")
            if isinstance(count, int):
                self.dropped = max(self.dropped, count)
        elif kind == "sweep_completed":
            self.finished = dict(event)
            self._finished_clock = self._clock()

    def _clear_workers_running(self, index) -> None:
        if index is None:
            return
        for pid, state in list(self.worker_state.items()):
            if state.get("index") == index:
                del self.worker_state[pid]

    # -- derived numbers ----------------------------------------------

    @property
    def done(self) -> int:
        """Points settled so far (executed + cache hits + failed)."""
        return self.executed + self.cache_hits + self.failures

    @property
    def elapsed(self) -> float:
        """Seconds since the first event (event clock or wall clock)."""
        by_ts = (
            self._last_ts - self._first_ts
            if self._first_ts is not None and self._last_ts is not None
            else 0.0
        )
        if self._started_clock is None:
            by_clock = 0.0
        elif self._finished_clock is not None:
            by_clock = self._finished_clock - self._started_clock
        else:
            by_clock = self._clock() - self._started_clock
        return max(by_ts, by_clock, 0.0)

    @property
    def throughput(self) -> float:
        """Executed points per second (cache hits are free, not counted)."""
        elapsed = self.elapsed
        return self.executed / elapsed if elapsed > 0 else 0.0

    @property
    def eta(self) -> float | None:
        """Estimated seconds to completion, or ``None`` before any rate."""
        remaining = max(0, self.total - self.done)
        if remaining == 0:
            return 0.0
        rate = self.throughput
        return remaining / rate if rate > 0 else None

    # -- rendering -----------------------------------------------------

    def render(self, width: int = 78) -> str:
        """The current snapshot as a multi-line string (no ANSI codes)."""
        lines = []
        title = f"sweep {self.name}" if self.name else "sweep"
        bar_width = 24
        frac = (self.done / self.total) if self.total else 0.0
        filled = int(round(frac * bar_width))
        bar = "#" * filled + "-" * (bar_width - filled)
        eta = self.eta
        eta_text = _format_seconds(eta) if eta is not None else "?"
        lines.append(
            f"{title}  [{bar}] {self.done}/{self.total} "
            f"({frac * 100:.0f}%)  {self.throughput:.2f} pt/s  ETA {eta_text}"
        )
        hit_ratio = (self.cache_hits / self.total * 100) if self.total else 0.0
        lines.append(
            f"cache {self.cache_hits}/{self.total} ({hit_ratio:.0f}%)  "
            f"retries {self.retries}  timeouts {self.timeouts}  "
            f"kills {self.kills}  failed {self.failures}  "
            f"spans {self.spans}  dropped {self.dropped}"
        )
        if self.worker_state:
            for pid in sorted(self.worker_state):
                state = self.worker_state[pid]
                busy = ""
                if state.get("ts") is not None and self._last_ts is not None:
                    busy = f"  ({_format_seconds(self._last_ts - state['ts'])})"
                lines.append(
                    f"  worker {pid}: running {state.get('label')}{busy}"
                )
        elif self.finished is None and self.pool_workers:
            lines.append(f"  {self.pool_workers} worker(s): idle")
        if self.finished is not None:
            lines.append(
                f"done in {_format_seconds(self.elapsed)}: "
                f"executed {self.finished.get('executed')}, "
                f"from cache {self.finished.get('from_cache')}, "
                f"failed {self.finished.get('failed')}"
            )
        return "\n".join(line[:width] for line in lines)


class LiveRenderer:
    """Hub subscriber that redraws a :class:`TopView` on a terminal.

    Args:
        stream: Output stream (``sys.stderr`` for the CLI so stdout stays
            pipeable).
        interval: Minimum seconds between redraws; events arriving faster
            only update the state.
        force_tty: Override TTY detection (tests).
    """

    def __init__(
        self,
        stream,
        interval: float = 0.5,
        clock: Callable[[], float] = time.monotonic,
        force_tty: bool | None = None,
    ) -> None:
        self.view = TopView(clock=clock)
        self.stream = stream
        self.interval = interval
        self._clock = clock
        self._last_render = float("-inf")
        self._last_height = 0
        if force_tty is None:
            self.is_tty = bool(getattr(stream, "isatty", lambda: False)())
        else:
            self.is_tty = force_tty

    def __call__(self, event: Mapping) -> None:
        """The subscriber callback: feed, then maybe redraw."""
        self.view.feed(event)
        now = self._clock()
        if self.is_tty and now - self._last_render >= self.interval:
            self._last_render = now
            self.redraw()

    def redraw(self) -> None:
        text = self.view.render()
        if self._last_height:
            # Move back to the top of the previous frame and clear down.
            self.stream.write(f"\x1b[{self._last_height}F\x1b[J")
        self.stream.write(text + "\n")
        self.stream.flush()
        self._last_height = text.count("\n") + 1

    def finish(self) -> None:
        """Draw the final frame (on any stream, TTY or not)."""
        if self.is_tty:
            self.redraw()
        else:
            self.stream.write(self.view.render() + "\n")
            self.stream.flush()


def replay_events(events: Sequence[Mapping], clock=time.monotonic) -> TopView:
    """Feed a recorded runlog through a fresh view (``repro top --replay``)."""
    view = TopView(clock=clock)
    for event in events:
        view.feed(event)
    return view
