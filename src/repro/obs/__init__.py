"""Observability: metrics, stage timings, and structured run logs.

The subsystem is opt-in end to end — engines, drivers, and the sweep
runner accept ``metrics=`` / ``timings=`` / ``runlog=`` handles that
default to ``None``, and with them absent no instrumentation code runs.
Three building blocks:

* :mod:`repro.obs.metrics` — counters, gauges, and fixed-bucket
  histograms in a :class:`~repro.obs.metrics.MetricsRegistry`;
* :mod:`repro.obs.timings` — ``perf_counter`` stage accumulation
  (:class:`~repro.obs.timings.Timings`), attached to
  :class:`~repro.sim.run.BroadcastResult` and sweep payloads;
* :mod:`repro.obs.runlog` — JSONL lifecycle event logs
  (:class:`~repro.obs.runlog.RunLogger`) plus the schema validator
  CI runs against them.

``repro report <runlog>`` (see :mod:`repro.obs.report`) renders logs
back into tables; metric names and the event schema are documented in
``docs/OBSERVABILITY.md``.
"""

from .metrics import (
    COUNT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SLOT_BUCKETS,
)
from .runlog import (
    DEFAULT_RUNLOG_DIR,
    RunLogger,
    RunlogError,
    assert_valid_runlog,
    default_runlog_path,
    git_sha,
    new_run_id,
    read_runlog,
    validate_runlog,
)
from .timings import Timings

__all__ = [
    "COUNT_BUCKETS",
    "Counter",
    "DEFAULT_RUNLOG_DIR",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RunLogger",
    "RunlogError",
    "SLOT_BUCKETS",
    "Timings",
    "assert_valid_runlog",
    "default_runlog_path",
    "git_sha",
    "new_run_id",
    "read_runlog",
    "validate_runlog",
]
