"""Benchmark-suite plumbing.

Experiments print their result tables through the ``table_reporter``
fixture; tables are echoed in the terminal summary (so the plain
``pytest benchmarks/ --benchmark-only`` transcript contains all data) and
written to ``benchmarks/results/<experiment>.txt`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import pathlib

import pytest

_RESULTS_DIR = pathlib.Path(__file__).parent / "results"
_collected: list[tuple[str, str]] = []


class TableReporter:
    """Collects rendered tables for the terminal summary and result files."""

    def record(self, experiment: str, text: str) -> None:
        _collected.append((experiment, text))
        _RESULTS_DIR.mkdir(exist_ok=True)
        path = _RESULTS_DIR / f"{experiment}.txt"
        with path.open("a") as handle:
            handle.write(text + "\n\n")


@pytest.fixture(scope="session")
def table_reporter():
    # Start each session with fresh result files.
    if _RESULTS_DIR.exists():
        for path in _RESULTS_DIR.glob("*.txt"):
            path.unlink()
    return TableReporter()


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _collected:
        return
    terminalreporter.write_sep("=", "experiment tables")
    for experiment, text in _collected:
        terminalreporter.write_line("")
        terminalreporter.write_line(text)
