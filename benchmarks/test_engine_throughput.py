"""Engine throughput benchmarks (library performance tracking).

Not a paper claim — these keep the engines honest as software.  The
engine workloads come from the shared benchmark registry
(:mod:`repro.obs.suite`), so the numbers pytest-benchmark records here
track the same thunks that ``repro bench`` appends to the
``BENCH_trajectory.jsonl`` trajectory.  Workloads with no registry
equivalent (interactive per-node protocols, engine setup cost, the
batched-vs-serial differential) stay defined locally.
"""

from __future__ import annotations

import time

import pytest

from repro.analysis import render_table
from repro.baselines import RoundRobinBroadcast
from repro.core import KnownRadiusKP, SelectAndSend
from repro.obs.suite import default_registry
from repro.sim import repeat_broadcast, run_broadcast
from repro.topology import gnp_connected, km_hard_layered

#: Registry entries exercised through pytest-benchmark (quick variants —
#: the full workloads belong to ``repro bench``).
REGISTRY_BENCHES = [
    "reference_engine",
    "fast_engine",
    "batched_engine",
    "topology_generation",
    "universal_sequence",
]


@pytest.mark.parametrize("name", REGISTRY_BENCHES)
def test_registry_workload(benchmark, name):
    """One registered workload per test, built once, timed by the fixture."""
    bench = default_registry().get(name)
    thunk = bench.build(True)
    benchmark(thunk)


def test_reference_engine_interactive_protocol(benchmark):
    """Select-and-Send on a 300-node G(n, p): dict-driven protocols.

    Not in the registry — interactive protocols can't run on the
    vectorised engines, and the registry's reference entry pins an
    oblivious workload.
    """
    net = gnp_connected(300, 0.03, seed=9)
    result = benchmark(lambda: run_broadcast(net, SelectAndSend(), require_completion=True))
    assert result.completed


def test_batched_vs_serial_repeat_broadcast(table_reporter):
    """The E1 quick-sweep unit run both ways; batched must win by >= 5x.

    The serial path is ``repeat_broadcast(engine="reference")`` — one
    per-node engine run per seed, which is what the Monte-Carlo loops did
    before batching.  The batched path resolves all trials' channels with
    one sparse product per slot and returns identical per-trial results.
    """
    net = km_hard_layered(256, 64, seed=17)
    algo = KnownRadiusKP(net.r, 64)
    runs = 5

    start = time.perf_counter()
    serial = repeat_broadcast(net, algo, runs=runs, engine="reference")
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    batched = repeat_broadcast(net, algo, runs=runs, engine="batch")
    batched_s = time.perf_counter() - start

    assert [r.time for r in batched] == [r.time for r in serial]
    assert [r.wake_times for r in batched] == [r.wake_times for r in serial]

    speedup = serial_s / batched_s
    slots = sum(r.time for r in serial)
    table_reporter.record(
        "engine-throughput",
        render_table(
            ["path", "wall (s)", "trial-slots/s"],
            [
                ["serial reference", f"{serial_s:.3f}", f"{slots / serial_s:.0f}"],
                ["batched fast", f"{batched_s:.3f}", f"{slots / batched_s:.0f}"],
                ["speedup", f"{speedup:.1f}x", ""],
            ],
            title=f"repeat_broadcast, km_hard_layered(256, 64), {runs} trials",
        ),
    )
    assert speedup >= 5.0, f"batched speedup only {speedup:.1f}x"


def test_fast_engine_setup_cost(benchmark):
    """Adjacency build + first slot: the fixed cost per run."""
    from repro.sim.fast import FastEngine

    net = km_hard_layered(2048, 128, seed=3)
    algo = RoundRobinBroadcast(net.r)

    def setup_and_step():
        engine = FastEngine(net, algo, seed=0)
        engine.run_step()
        return engine

    engine = benchmark(setup_and_step)
    assert engine.step == 1
