"""Selective families.

A family ``F_1, ..., F_t`` of subsets of a ground set ``G`` is
``(m, k)``-selective when for every non-empty ``Z`` subset of ``G`` with
``|Z| <= k`` some member selects exactly one element: ``|F_i & Z| == 1``.
Selective families model collision-free transmission schedules: if the set
of informed in-neighbours of a node is ``Z``, the slot scheduled by a
selecting ``F_i`` delivers a message.

Two sides of the paper use them:

* the **lower bound** (Section 3) needs, for a *small* family, a witness
  set that is *not* selected — that is exactly what makes the jamming
  construction work (step 3 of Fig. 2, backed by the Clementi–Monti–
  Silvestri size bound ``Omega(k log m / log k)``);
* the **baselines** use constructive families (Kautz–Singleton strongly
  selective codes, and greedy/random families) to build deterministic
  broadcast schedules to compare against Select-and-Send.
"""

from __future__ import annotations

import itertools
import random
from typing import Iterable, Sequence

from ..sim.errors import ConfigurationError

__all__ = [
    "is_selective",
    "selects",
    "find_nonselective_witness",
    "greedy_selective_family",
    "kautz_singleton_family",
    "strongly_selective_family",
    "cms_size_lower_bound",
]


def selects(family: Sequence[frozenset[int]], witness: frozenset[int]) -> bool:
    """Whether some member of the family hits ``witness`` exactly once."""
    return any(len(member & witness) == 1 for member in family)


def is_selective(
    family: Sequence[frozenset[int]], ground: Iterable[int], k: int
) -> bool:
    """Exhaustively check ``(|ground|, k)``-selectivity.

    Exponential in ``k`` — intended for tests and small instances only.
    """
    ground_list = sorted(set(ground))
    for size in range(1, min(k, len(ground_list)) + 1):
        for combo in itertools.combinations(ground_list, size):
            if not selects(family, frozenset(combo)):
                return False
    return True


def find_nonselective_witness(
    family: Sequence[frozenset[int]],
    ground: Iterable[int],
    k: int,
    rng: random.Random | None = None,
    exhaustive_limit: int = 2_000_000,
) -> frozenset[int] | None:
    """Find a non-empty ``Z``, ``|Z| <= k``, that no family member selects.

    This is the witness required by step 3 of the adversary construction
    (Fig. 2).  The search is layered from cheap to expensive:

    1.  **Uncovered singleton** — an element in no family member is a
        witness of size 1.
    2.  **Twin pair** — two elements with identical membership traces give
        intersections of size 0 or 2 with every member.
    3.  **Trace-class search** — group elements by membership trace and
        search for a small multiset of traces whose per-member sums avoid
        1 exactly (bounded backtracking).
    4.  **Exhaustive** — for small instances, fall back to checking all
        subsets up to size ``k`` (bounded by ``exhaustive_limit`` checks).

    Returns:
        A witness set, or ``None`` when no witness exists (the family is
        selective for this ground and ``k``) or none was found within the
        search bounds.
    """
    if k < 1:
        raise ConfigurationError(f"k must be positive, got {k}")
    ground_list = sorted(set(ground))
    if not ground_list:
        return None
    members = [frozenset(member) & frozenset(ground_list) for member in family]

    # Layer 1: an element covered by no member.
    covered: set[int] = set()
    for member in members:
        covered |= member
    for x in ground_list:
        if x not in covered:
            return frozenset([x])

    # Layer 2/3: group elements by membership trace.
    traces: dict[tuple[bool, ...], list[int]] = {}
    for x in ground_list:
        trace = tuple(x in member for member in members)
        traces.setdefault(trace, []).append(x)
    for trace, elements in traces.items():
        if len(elements) >= 2 and k >= 2:
            return frozenset(elements[:2])

    # Layer 3: search for <= k trace vectors (with multiplicity capped by
    # class size) whose coordinate-wise sums are never exactly 1.
    witness = _trace_class_search(traces, len(members), k)
    if witness is not None:
        return witness

    # Layer 4: exhaustive within a budget.
    checks = 0
    for size in range(1, min(k, len(ground_list)) + 1):
        for combo in itertools.combinations(ground_list, size):
            checks += 1
            if checks > exhaustive_limit:
                return None
            candidate = frozenset(combo)
            if not selects(members, candidate):
                return candidate
    return None


def _trace_class_search(
    traces: dict[tuple[bool, ...], list[int]], num_members: int, k: int
) -> frozenset[int] | None:
    """Bounded backtracking over trace classes.

    State: per-member counts of chosen elements.  Prune when some member's
    count is exactly 1 and every remaining class misses that member (the
    count could never leave 1).  All classes are singletons here (larger
    classes were consumed by layer 2), so multiplicity is 1.
    """
    class_list = list(traces.items())
    if len(class_list) > 24:  # keep worst-case bounded; layer 4 may still run
        class_list = class_list[:24]

    best: list[int] | None = None

    def backtrack(index: int, chosen: list[int], counts: list[int]) -> bool:
        nonlocal best
        if chosen and all(c != 1 for c in counts):
            best = chosen[:]
            return True
        if len(chosen) >= k or index >= len(class_list):
            return False
        trace, elements = class_list[index]
        # Option A: take one element of this class.
        new_counts = [c + (1 if t else 0) for c, t in zip(counts, trace)]
        if backtrack(index + 1, chosen + [elements[0]], new_counts):
            return True
        # Option B: skip this class.
        return backtrack(index + 1, chosen, counts)

    if backtrack(0, [], [0] * num_members):
        assert best is not None
        return frozenset(best)
    return None


def greedy_selective_family(
    n: int, k: int, rng: random.Random, oversample: int = 4
) -> list[frozenset[int]]:
    """Randomized construction of an ``(n, k)``-selective family.

    Draws ``oversample * k * ceil(log2(n + 1))`` sets per density scale
    ``1/w`` for ``w`` in powers of two up to ``k``.  With these sizes a
    random family is selective with high probability (the classic
    union-bound argument); certification for small parameters is available
    via :func:`is_selective`.

    Returns:
        A family of subsets of ``{0, ..., n-1}`` of size
        ``O(k log n)`` per scale count.
    """
    if n < 1 or k < 1:
        raise ConfigurationError(f"need positive n and k, got n={n}, k={k}")
    log_n = max(1, (n).bit_length())
    family: list[frozenset[int]] = []
    w = 1
    while w <= k:
        for _ in range(oversample * log_n):
            family.append(
                frozenset(x for x in range(n) if rng.random() < 1.0 / w)
            )
        w *= 2
    return family


def _primes_from(start: int, count: int) -> list[int]:
    """The first ``count`` primes >= start (simple trial division)."""
    primes: list[int] = []
    candidate = max(2, start)
    while len(primes) < count:
        is_prime = all(candidate % p for p in range(2, int(candidate**0.5) + 1))
        if is_prime:
            primes.append(candidate)
        candidate += 1
    return primes


def kautz_singleton_family(n: int, k: int) -> list[frozenset[int]]:
    """Deterministic *strongly* ``(n, k)``-selective family.

    Kautz–Singleton superimposed code via Reed–Solomon: identify each label
    with a polynomial of degree ``< m`` over ``F_q`` (``q`` prime,
    ``q^m >= n``, ``q > k (m - 1)``); the set ``S_(i, a)`` collects labels
    whose polynomial takes value ``a`` at point ``i``.  For any ``Z`` with
    ``|Z| <= k`` and any ``x in Z``, two distinct polynomials agree on at
    most ``m - 1`` points, so some evaluation point separates ``x`` from
    all of ``Z - {x}`` — giving *strong* selectivity (every element gets
    selected, not just one).

    The family has ``q^2`` members — size ``O((k log n / log(k log n))^2)``.
    """
    if n < 1 or k < 1:
        raise ConfigurationError(f"need positive n and k, got n={n}, k={k}")
    if n == 1:
        return [frozenset([0])]
    # Choose m, then the smallest prime q with q^m >= n and q > k(m-1).
    best: tuple[int, int] | None = None
    for m in range(1, n.bit_length() + 1):
        (q,) = _primes_from(max(2, k * (m - 1) + 1), 1)
        while q**m < n:
            (q,) = _primes_from(q + 1, 1)
        if best is None or q * q < best[0] * best[0]:
            best = (q, m)
    q, m = best
    family: dict[tuple[int, int], set[int]] = {}
    for label in range(n):
        digits = []
        rest = label
        for _ in range(m):
            digits.append(rest % q)
            rest //= q
        for point in range(q):
            value = 0
            power = 1
            for digit in digits:
                value = (value + digit * power) % q
                power = (power * point) % q
            family.setdefault((point, value), set()).add(label)
    return [frozenset(members) for members in family.values()]


def strongly_selective_family(n: int, k: int) -> list[frozenset[int]]:
    """Alias for the deterministic construction used by the baselines."""
    return kautz_singleton_family(n, k)


def cms_size_lower_bound(m: int, k: int) -> float:
    """Clementi–Monti–Silvestri lower bound on ``(m, k)``-selective size.

    Any ``(m, k)``-selective family has size at least about
    ``k log m / (8 log k)`` — this is the quantity the jamming window of
    the adversary construction is calibrated against (Fig. 2 iterates
    ``ceil(k log(n/4) / (8 log k))`` times).
    """
    if m < 2 or k < 2:
        return 1.0
    import math

    return k * math.log2(m) / (8.0 * math.log2(k))
