"""Progress analytics agree across all three engines (S3).

The analytics in :mod:`repro.analysis.progress` consume only
``wake_times`` / ``layer_times`` from a result, and the engines are
bit-identical on those — so curves, milestones, and front speeds must be
indistinguishable whether a run came from the reference engine, the
vectorised single-run engine, or a :class:`BatchedFastEngine` batch.
"""

from __future__ import annotations

import pytest

from repro.analysis.progress import (
    front_speed,
    initially_informed,
    milestones,
    progress_curve,
)
from repro.baselines import BGIBroadcast, RoundRobinBroadcast
from repro.core import KnownRadiusKP
from repro.sim import run_broadcast
from repro.sim.fast import run_broadcast_batch, run_broadcast_fast
from repro.topology import gnp_connected, path, uniform_complete_layered


def _algorithms(net):
    return [
        RoundRobinBroadcast(net.r),
        BGIBroadcast(net.r),
        KnownRadiusKP(net.r, max(1, net.radius)),
    ]


TOPOLOGIES = [
    pytest.param(lambda: path(17), id="path"),
    pytest.param(lambda: uniform_complete_layered(36, 4), id="layered"),
    pytest.param(lambda: gnp_connected(40, 0.15, seed=5), id="gnp"),
]


@pytest.mark.parametrize("make_net", TOPOLOGIES)
def test_progress_curves_identical_across_engines(make_net):
    net = make_net()
    for algorithm in _algorithms(net):
        reference = run_broadcast(net, algorithm, seed=11)
        fast = run_broadcast_fast(net, algorithm, seed=11)
        batched = run_broadcast_batch(net, algorithm, seeds=[11])[0]
        curve = progress_curve(reference)
        assert progress_curve(fast) == curve
        assert progress_curve(batched) == curve
        assert curve[-1] == net.n


@pytest.mark.parametrize("make_net", TOPOLOGIES)
def test_milestones_and_front_speed_identical_across_engines(make_net):
    net = make_net()
    for algorithm in _algorithms(net):
        reference = run_broadcast(net, algorithm, seed=3)
        fast = run_broadcast_fast(net, algorithm, seed=3)
        batched = run_broadcast_batch(net, algorithm, seeds=[3])[0]
        marks = milestones(reference)
        assert milestones(fast) == marks
        assert milestones(batched) == marks
        assert marks.full == reference.time
        speed = front_speed(reference)
        assert front_speed(fast) == speed
        assert front_speed(batched) == speed


def test_batched_trials_each_carry_their_own_curve():
    # Every trial of one batch is an independent run; its analytics must
    # match the corresponding single-run execution trial by trial.
    net = gnp_connected(30, 0.2, seed=2)
    algorithm = BGIBroadcast(net.r)
    seeds = [5, 6, 7, 8]
    batch = run_broadcast_batch(net, algorithm, seeds=seeds)
    for seed, batched in zip(seeds, batch):
        single = run_broadcast_fast(net, algorithm, seed=seed)
        assert progress_curve(batched) == progress_curve(single)
        assert milestones(batched) == milestones(single)
        assert initially_informed(batched) == 1


def test_batched_single_node_degenerate_curve():
    # S1 regression through the batched path: a 1-node network completes
    # in zero slots on every engine, with empty curves and 0-slot
    # milestones.
    net = path(1)
    algorithm = RoundRobinBroadcast(net.r)
    batched = run_broadcast_batch(net, algorithm, seeds=[0, 1])
    for result in batched:
        assert result.completed and result.time == 0
        assert progress_curve(result) == []
        marks = milestones(result)
        assert (marks.half, marks.ninety, marks.full) == (0, 0, 0)
