"""Vectorised engines for *oblivious* algorithms.

Both randomized algorithms studied in the paper — the Kowalski–Pelc stage
algorithm and BGI Decay — as well as the round-robin and selective-family
deterministic baselines are *oblivious*: a node's decision to transmit in
slot ``t`` depends only on ``(t, label, wake slot, coin flips)``, never on
received message contents.  For such algorithms the channel can be resolved
with one sparse matrix-vector product per slot, which makes the large
parameter sweeps of EXPERIMENTS.md feasible in pure Python.

Two engines live here:

* :class:`FastEngine` — one run, per-node state vectors of shape ``(n,)``.
* :class:`BatchedFastEngine` — ``T`` independent Monte-Carlo trials at
  once, state lifted to ``(T, n)``; one sparse product per slot resolves
  the channel for *every* trial simultaneously.  This is the workhorse of
  :func:`run_broadcast_batch` and the sweep runner.

*Adaptive* algorithms — the paper's token algorithms, whose decisions do
depend on message contents — cannot be vectorised this way, but they have
their own fast path: the event-driven engine in :mod:`repro.sim.event`,
driven by ``Protocol.quiet_until`` idle hints.  Both engine families
resolve the channel from the same precompiled topology,
:class:`repro.sim.channel.ChannelKernel` — this module uses its sparse
``adjacency`` views, the event engine its CSR neighbour arrays.

Semantics are identical to :class:`repro.sim.engine.SynchronousEngine`
(verified per-node, per-slot by ``tests/sim/test_differential.py``):
exactly-one reception, half-duplex, no spontaneous transmissions, nodes
woken in slot ``t`` first act in ``t + 1``, and — because transmission
coins are slot-indexed and derived from the same
:mod:`repro.sim.coins` helpers all engines share — the *same coin flips*
for the same ``(seed, label, step)``.
"""

from __future__ import annotations

from contextlib import nullcontext
from time import perf_counter
from typing import Protocol as TypingProtocol, Sequence, runtime_checkable

import numpy as np

from ..obs.metrics import COUNT_BUCKETS, MetricsRegistry
from ..obs.spans import SpanRecorder
from ..obs.timings import Timings
from .channel import ChannelKernel
from .coins import CoinSource, derive_trial_seeds
from .errors import ConfigurationError
from .faults import CompiledFaults, FaultCounters, FaultPlan, compile_faults, derive_fault_seed
from .network import RadioNetwork
from .guard import check_memory_budget
from .run import (
    BroadcastResult,
    _layer_times_for,
    _record_result_metrics,
    default_max_steps,
)
from .trace import Trace, TraceLevel

__all__ = [
    "VectorizedAlgorithm",
    "FastEngine",
    "BatchedFastEngine",
    "run_broadcast_fast",
    "run_broadcast_batch",
    "ASLEEP",
]

#: Sentinel wake step for nodes that are not informed yet.
ASLEEP: int = np.iinfo(np.int64).max


@runtime_checkable
class VectorizedAlgorithm(TypingProtocol):
    """Structural interface for algorithms runnable on the vector engines.

    Implementors also subclass
    :class:`~repro.sim.protocol.BroadcastAlgorithm` so the same object runs
    on either engine.
    """

    name: str
    deterministic: bool

    def transmit_mask(
        self,
        step: int,
        labels: np.ndarray,
        wake_steps: np.ndarray,
        r: int,
        coins: CoinSource,
    ) -> np.ndarray:
        """Transmit decisions for slot ``step``.

        Args:
            step: Global slot number.
            labels: ``int64`` array of node labels (fixed across steps),
                always of shape ``(n,)``.
            wake_steps: ``int64`` array; ``ASLEEP`` for uninformed nodes.
                Shape ``(n,)`` on :class:`FastEngine`, ``(trials, n)`` on
                :class:`BatchedFastEngine`.  Implementations may ignore
                sleepers — the engine masks them out — but must not let
                them influence other nodes.
            r: Public label bound.
            coins: Slot-indexed coin flips; ``coins.uniform(step)`` has
                the same shape as ``wake_steps``.  Deterministic schedules
                never touch it.

        Returns:
            Boolean array broadcastable to ``wake_steps.shape``: True where
            the node transmits.
        """
        ...  # pragma: no cover - protocol definition


def _check_vectorized(algorithm) -> None:
    if not isinstance(algorithm, VectorizedAlgorithm):
        raise ConfigurationError(
            f"{algorithm!r} does not implement the vectorised interface"
        )


class FastEngine:
    """Array-based synchronous engine for a single run.

    Args:
        network: Topology (directed or undirected).
        algorithm: An oblivious algorithm implementing
            :class:`VectorizedAlgorithm`.
        seed: Master seed; coins are the slot-indexed flips of
            :mod:`repro.sim.coins`, identical to what the reference
            engine's per-node protocols draw.
        faults: Optional :class:`~repro.sim.faults.FaultPlan`; applied
            with exactly the reference engine's semantics.
        metrics: Optional :class:`~repro.obs.metrics.MetricsRegistry`
            (slot/transmission/collision instruments, identical names and
            semantics to the reference engine's).
        timings: Optional :class:`~repro.obs.timings.Timings` accumulating
            the stages ``engine.coins``, ``engine.channel``,
            ``engine.faults`` (⊂ channel), and ``engine.step``.
        trace_level: Channel detail to record into :attr:`trace` —
            identical records to the reference engine's (transmitters,
            deliveries, collisions, woken; asserted by the conformance
            suite).  ``NONE`` (the default) records nothing and adds no
            per-slot work beyond one attribute check.
    """

    def __init__(
        self,
        network: RadioNetwork,
        algorithm: VectorizedAlgorithm,
        seed: int = 0,
        faults: FaultPlan | None = None,
        metrics: MetricsRegistry | None = None,
        timings: Timings | None = None,
        trace_level: TraceLevel = TraceLevel.NONE,
    ):
        _check_vectorized(algorithm)
        self.network = network
        self.algorithm = algorithm
        self.seed = seed
        kernel = ChannelKernel(network)
        self.labels = kernel.labels
        self._index = kernel.index
        self.adjacency = kernel.adjacency
        self.coins = CoinSource.for_run(seed, self.labels)
        self.trace = Trace(level=trace_level)
        self.trace.mark_initially_informed(network.source)
        self._tracing = trace_level is not TraceLevel.NONE
        self._trace_full = trace_level is TraceLevel.FULL
        # Sender identification for FULL traces: at a receiver with
        # exactly one transmitting in-neighbour, the weighted hit count
        # (weight index + 1) *is* that sender's index + 1.
        self._weights = (
            np.arange(network.n, dtype=np.int64) + 1 if self._trace_full else None
        )
        self.wake_steps = np.full(network.n, ASLEEP, dtype=np.int64)
        self.wake_steps[self._index[network.source]] = -1
        # Hot-loop scratch buffers: the per-slot int32 transmit vector and
        # the boolean collision temporaries are written in place instead of
        # freshly allocated every slot (see run_step).
        self._mask_i32 = np.empty(network.n, dtype=np.int32)
        self._coll_buf = np.empty(network.n, dtype=bool)
        self._not_tx_buf = np.empty(network.n, dtype=bool)
        self.step = 0
        self.timings = timings
        self.metrics = metrics
        self._tx_counts: np.ndarray | None = None
        if metrics is not None:
            self._slots_counter = metrics.counter("engine_slots")
            self._tx_counter = metrics.counter("engine_transmissions")
            self._collision_hist = metrics.histogram(
                "collisions_per_slot", COUNT_BUCKETS
            )
            self._tx_counts = np.zeros(network.n, dtype=np.int64)
        self.faults = faults
        self.fault_counters: FaultCounters | None = None
        self._cf: CompiledFaults | None = None
        if faults is not None:
            self._cf = compile_faults(
                faults, network, self._index, self.labels,
                [derive_fault_seed(faults.seed, seed)],
            )
            self.fault_counters = FaultCounters()
            self.trace.fault_counters = self.fault_counters
        # Stateful schedules (e.g. Decay's per-phase activity mask) get a
        # fresh-run notification so algorithm objects can be reused.
        reset = getattr(algorithm, "reset_run", None)
        if reset is not None:
            reset(network.n)

    # ------------------------------------------------------------------

    @property
    def awake(self) -> np.ndarray:
        """Boolean mask of informed nodes."""
        return self.wake_steps != ASLEEP

    @property
    def all_informed(self) -> bool:
        return bool(self.awake.all())

    @property
    def informed_count(self) -> int:
        return int(self.awake.sum())

    @property
    def all_settled(self) -> bool:
        """No further wake possible: informed, or crashed while asleep."""
        cf = self._cf
        if cf is None or not cf.has_crashes:
            return self.all_informed
        return bool((self.awake | (cf.crash_slots <= self.step)).all())

    def run_step(self) -> np.ndarray:
        """Execute one slot; returns the boolean transmit mask used."""
        step = self.step
        awake = self.awake
        cf = self._cf
        timings = self.timings
        t_start = perf_counter() if timings is not None else 0.0
        alive = None
        if cf is not None:
            counters = self.fault_counters
            counters.crashed_nodes += cf.crash_counts.get(step, 0)
            counters.jammed_slots += len(cf.jam_indices.get(step, ()))
            if cf.has_crashes:
                alive = cf.crash_slots > step
        mask = self.algorithm.transmit_mask(
            step, self.labels, self.wake_steps, self.network.r, self.coins
        )
        if timings is not None:
            t_coins = perf_counter()
            timings.add("engine.coins", t_coins - t_start)
        mask = np.asarray(mask, dtype=bool) & awake  # no spontaneous transmissions
        if alive is not None:
            mask &= alive  # crashed nodes are silent forever
        n_coll = 0
        newly = rec_deliver = trace_hits = None
        if mask.any():
            mask_i32 = self._mask_i32
            mask_i32[:] = mask  # in-place bool -> int32 cast, no allocation
            hits = mask_i32 @ self.adjacency
            hits = np.asarray(hits).ravel()
            trace_hits = hits
            if self.metrics is not None:
                coll = np.greater_equal(hits, 2, out=self._coll_buf)
                coll &= np.logical_not(mask, out=self._not_tx_buf)
                n_coll = int(coll.sum())
            if cf is None:
                # Exactly-one rule; transmitters cannot receive (half-duplex)
                # but they are already informed, so only sleepers matter.
                newly = (~awake) & (hits == 1)
                if self._trace_full:
                    rec_deliver = (hits == 1) & ~mask
            else:
                # Fault pipeline, identical to the reference engine:
                # crash -> jam -> loss -> wake-delay.
                t_faults = perf_counter() if timings is not None else 0.0
                delivered = (hits == 1) & ~mask
                if alive is not None:
                    delivered &= alive
                jammed = cf.jam_indices.get(step)
                if jammed is not None and jammed.size:
                    delivered[jammed] = False
                if cf.loss_probability > 0.0 and delivered.any():
                    lost = delivered & (
                        cf.loss_coins.uniform(step) < cf.loss_probability
                    )
                    counters.lost_messages += int(lost.sum())
                    delivered &= ~lost
                sleeping = delivered & ~awake
                if cf.has_delays:
                    delayed = sleeping & (step < cf.deaf_until)
                    counters.delayed_wakes += int(delayed.sum())
                    newly = sleeping & ~delayed
                else:
                    newly = sleeping
                if self._trace_full:
                    # Awake receivers hear too (already informed, never
                    # deaf); sleepers only count if they actually woke.
                    rec_deliver = (delivered & awake) | newly
                if timings is not None:
                    timings.add("engine.faults", perf_counter() - t_faults)
            self.wake_steps[newly] = step
        if timings is not None:
            t_end = perf_counter()
            timings.add("engine.channel", t_end - t_coins)
            timings.add("engine.step", t_end - t_start)
        if self.metrics is not None:
            self._slots_counter.inc()
            self._tx_counter.inc(int(mask.sum()))
            self._tx_counts += mask
            self._collision_hist.observe(n_coll)
        if self._tracing:
            self._record_step(step, mask, trace_hits, alive, rec_deliver, newly)
        self.step += 1
        return mask

    def _record_step(self, step, mask, hits, alive, rec_deliver, newly) -> None:
        """Append slot ``step`` to :attr:`trace` (reference-identical)."""
        labels = self.labels
        transmitters: tuple[int, ...] = ()
        deliveries: dict[int, int] = {}
        collisions: tuple[int, ...] = ()
        woken: tuple[int, ...] = ()
        if hits is not None:  # someone transmitted this slot
            transmitters = tuple(int(v) for v in labels[mask])
            woken = tuple(int(v) for v in labels[newly])
            if self._trace_full:
                colls = (hits >= 2) & ~mask
                if alive is not None:
                    colls &= alive
                collisions = tuple(int(v) for v in labels[colls])
                if rec_deliver.any():
                    senders = np.asarray(
                        (mask * self._weights) @ self.adjacency
                    ).ravel()
                    deliveries = {
                        int(labels[i]): int(labels[senders[i] - 1])
                        for i in np.flatnonzero(rec_deliver)
                    }
        self.trace.record(
            step=step,
            transmitters=transmitters,
            deliveries=deliveries,
            collisions=collisions,
            woken=woken,
            informed=self.informed_count,
        )

    def run(self, max_steps: int, stop_when_informed: bool = True) -> int:
        """Run until completion or the step limit; returns slots executed."""
        executed = 0
        while executed < max_steps:
            if stop_when_informed and self.all_settled:
                break
            self.run_step()
            executed += 1
        return executed

    @property
    def completion_time(self) -> int | None:
        """Slots needed to inform every node, or ``None`` if incomplete."""
        if not self.all_informed:
            return None
        return int(self.wake_steps.max()) + 1

    def wake_times(self) -> dict[int, int]:
        """Map informed labels to their wake slots."""
        return {
            int(label): int(ws)
            for label, ws in zip(self.labels, self.wake_steps)
            if ws != ASLEEP
        }

    def transmission_counts(self) -> list[int] | None:
        """Per-node transmission tallies (label order); ``None`` when
        the engine ran uninstrumented."""
        if self._tx_counts is None:
            return None
        return [int(c) for c in self._tx_counts]


class BatchedFastEngine:
    """Array-based engine running ``T`` independent trials in lock-step.

    Per-node state is lifted to shape ``(trials, n)``; one sparse product
    per slot resolves the channel of every trial at once.  Trial ``t``
    executes *exactly* the run that ``FastEngine(network, algorithm,
    seeds[t])`` would — same coin flips, same wake slots — because coins
    are slot-indexed per ``(seed, label)`` and carry no cross-trial state.

    Args:
        network: Topology (directed or undirected).
        algorithm: An oblivious algorithm implementing
            :class:`VectorizedAlgorithm`.
        seeds: One master seed per trial.
        faults: Optional :class:`~repro.sim.faults.FaultPlan`; crashes,
            jams and delays are identical across trials (the fault
            environment is the adversary), while the loss stream is keyed
            per trial seed — trial ``t`` reproduces exactly
            ``FastEngine(network, algorithm, seeds[t], faults=faults)``.
        metrics: Optional :class:`~repro.obs.metrics.MetricsRegistry`.
            Tallies are *per-trial-slot* and filtered to active
            (unsettled) trials, so they match what the ``trials``
            single-run engines would have recorded in aggregate.
        timings: Optional :class:`~repro.obs.timings.Timings`, shared by
            the whole batch (stage costs are joint across trials).
        trace_level: Per-trial channel traces with the single-run
            engines' exact records (a settled trial stops recording, like
            the run it reproduces stops executing); retrieve with
            :meth:`trace_for`.  ``NONE`` (the default) records nothing.
    """

    def __init__(
        self,
        network: RadioNetwork,
        algorithm: VectorizedAlgorithm,
        seeds: Sequence[int],
        faults: FaultPlan | None = None,
        metrics: MetricsRegistry | None = None,
        timings: Timings | None = None,
        trace_level: TraceLevel = TraceLevel.NONE,
    ):
        _check_vectorized(algorithm)
        if len(seeds) < 1:
            raise ConfigurationError("need at least one trial seed")
        self.network = network
        self.algorithm = algorithm
        self.seeds = [int(s) for s in seeds]
        self.trials = len(self.seeds)
        kernel = ChannelKernel(network)
        self.labels = kernel.labels
        self._index = kernel.index
        # (T, n) @ (n, n) as (adj^T @ mask^T)^T: sparse-first keeps scipy on
        # its fast CSR path for every trial count.
        self._adjacency_t = kernel.adjacency_t
        self.coins = CoinSource.for_batch(self.seeds, self.labels)
        self._traces: list[Trace] | None = None
        self._trace_full = trace_level is TraceLevel.FULL
        self._trace_weights: np.ndarray | None = None
        if trace_level is not TraceLevel.NONE:
            self._traces = []
            for _ in range(self.trials):
                trace = Trace(level=trace_level)
                trace.mark_initially_informed(network.source)
                self._traces.append(trace)
            if self._trace_full:
                self._trace_weights = np.arange(network.n, dtype=np.int64) + 1
        self.wake_steps = np.full((self.trials, network.n), ASLEEP, dtype=np.int64)
        self.wake_steps[:, self._index[network.source]] = -1
        # Hot-loop scratch buffers (see FastEngine): per-slot int32
        # transmit matrix and boolean collision temporaries, written in
        # place instead of freshly allocated every slot.
        self._mask_i32 = np.empty((network.n, self.trials), dtype=np.int32)
        self._coll_buf = np.empty((self.trials, network.n), dtype=bool)
        self._not_tx_buf = np.empty((self.trials, network.n), dtype=bool)
        self.step = 0
        self.timings = timings
        self.metrics = metrics
        self._tx_counts: np.ndarray | None = None
        #: Per-slot collision observations are buffered here and flushed
        #: once per :meth:`run` (histograms are order-invariant, so the
        #: single ``observe_many`` is tally-identical to observing inside
        #: the slot loop — it just skips ~one searchsorted per slot).
        self._collision_chunks: list[np.ndarray] = []
        self._collision_zero_trials = 0
        if metrics is not None:
            self._slots_counter = metrics.counter("engine_slots")
            self._tx_counter = metrics.counter("engine_transmissions")
            self._active_gauge = metrics.gauge("batch_active_trials")
            self._collision_hist = metrics.histogram(
                "collisions_per_slot", COUNT_BUCKETS
            )
            self._tx_counts = np.zeros((self.trials, network.n), dtype=np.int64)
        self.faults = faults
        self._cf: CompiledFaults | None = None
        if faults is not None:
            self._cf = compile_faults(
                faults, network, self._index, self.labels,
                [derive_fault_seed(faults.seed, s) for s in self.seeds],
            )
            # All four tallies are per-trial: although crashes and jams
            # are trial-independent events, a trial stops *accruing* them
            # once it settles (mirroring the single-run engine, which
            # stops executing slots at that point), and settle times
            # differ across trials.  ``_executed`` counts the slots each
            # trial was still active for — the single-run ``engine.step``.
            self._crashed = np.zeros(self.trials, dtype=np.int64)
            self._jammed = np.zeros(self.trials, dtype=np.int64)
            self._lost = np.zeros(self.trials, dtype=np.int64)
            self._delayed = np.zeros(self.trials, dtype=np.int64)
            self._executed = np.zeros(self.trials, dtype=np.int64)
        reset = getattr(algorithm, "reset_run", None)
        if reset is not None:
            reset((self.trials, network.n))

    # ------------------------------------------------------------------

    @property
    def awake(self) -> np.ndarray:
        """Boolean ``(trials, n)`` mask of informed nodes."""
        return self.wake_steps != ASLEEP

    @property
    def trials_informed(self) -> np.ndarray:
        """Boolean ``(trials,)`` vector: which trials have completed."""
        return self.awake.all(axis=1)

    @property
    def all_informed(self) -> bool:
        """Whether *every* trial has informed every node."""
        return bool(self.awake.all())

    @property
    def trials_settled(self) -> np.ndarray:
        """Boolean ``(trials,)`` vector: no further wake possible per trial."""
        cf = self._cf
        awake = self.awake
        if cf is None or not cf.has_crashes:
            return awake.all(axis=1)
        return (awake | (cf.crash_slots <= self.step)).all(axis=1)

    @property
    def all_settled(self) -> bool:
        """Every trial informed everyone or lost them to crashes."""
        return bool(self.trials_settled.all())

    def informed_counts(self) -> np.ndarray:
        """``(trials,)`` vector of informed-node counts."""
        return self.awake.sum(axis=1)

    def run_step(self) -> np.ndarray:
        """Execute one slot across all trials; returns the ``(T, n)`` mask."""
        step = self.step
        awake = self.awake
        cf = self._cf
        timings = self.timings
        t_start = perf_counter() if timings is not None else 0.0
        alive = None
        active = None
        if cf is not None:
            # Counter parity with the single-run engines: a settled trial
            # would have stopped executing there, so its tallies freeze.
            active = ~self.trials_settled
            self._executed += active
            crash_count = cf.crash_counts.get(step, 0)
            if crash_count:
                self._crashed += crash_count * active
            jam_count = len(cf.jam_indices.get(step, ()))
            if jam_count:
                self._jammed += jam_count * active
            if cf.has_crashes:
                alive = cf.crash_slots > step  # (n,), broadcasts over trials
        m_active = None
        if self.metrics is not None:
            # Same freeze rule for metric tallies: settled trials keep
            # stepping as array rows, but the runs they reproduce have
            # already stopped, so their slots no longer count.  Without a
            # fault plan "settled" is just "all awake", which the local
            # ``awake`` already holds — don't recompute the (T, n) mask.
            m_active = active if active is not None else ~awake.all(axis=1)
        rec_active = None
        if self._traces is not None:
            # Trace parity with the single-run engines: a settled trial's
            # run has already stopped, so it records no further slots.
            rec_active = active if active is not None else ~awake.all(axis=1)
        mask = self.algorithm.transmit_mask(
            step, self.labels, self.wake_steps, self.network.r, self.coins
        )
        if timings is not None:
            t_coins = perf_counter()
            timings.add("engine.coins", t_coins - t_start)
        mask = np.broadcast_to(np.asarray(mask, dtype=bool), awake.shape) & awake
        if alive is not None:
            mask = mask & alive  # crashed nodes are silent forever
        collisions = None
        newly = rec_deliver = trace_colls = sender_sums = None
        any_tx = bool(mask.any())
        if any_tx:
            mask_i32 = self._mask_i32
            mask_i32[:] = mask.T  # in-place bool -> int32 cast, no allocation
            hits = (self._adjacency_t @ mask_i32).T
            if self.metrics is not None:
                coll = np.greater_equal(hits, 2, out=self._coll_buf)
                coll &= np.logical_not(mask, out=self._not_tx_buf)
                collisions = coll.sum(axis=1)
            if self._trace_full:
                trace_colls = (hits >= 2) & ~mask
                if alive is not None:
                    trace_colls = trace_colls & alive
                sender_sums = (
                    self._adjacency_t @ (mask * self._trace_weights).T
                ).T
            if cf is None:
                newly = (~awake) & (hits == 1)
                if self._trace_full:
                    rec_deliver = (hits == 1) & ~mask
            else:
                # Fault pipeline, identical to FastEngine per trial row:
                # crash -> jam -> loss -> wake-delay.
                t_faults = perf_counter() if timings is not None else 0.0
                delivered = (hits == 1) & ~mask
                if alive is not None:
                    delivered &= alive
                jammed = cf.jam_indices.get(step)
                if jammed is not None and jammed.size:
                    delivered[:, jammed] = False
                if cf.loss_probability > 0.0 and delivered.any():
                    lost = delivered & (
                        cf.loss_coins.uniform(step) < cf.loss_probability
                    )
                    self._lost += lost.sum(axis=1) * active
                    delivered &= ~lost
                sleeping = delivered & ~awake
                if cf.has_delays:
                    delayed = sleeping & (step < cf.deaf_until)
                    self._delayed += delayed.sum(axis=1) * active
                    newly = sleeping & ~delayed
                else:
                    newly = sleeping
                if self._trace_full:
                    # Awake receivers hear too (already informed, never
                    # deaf); sleepers only count if they actually woke.
                    rec_deliver = (delivered & awake) | newly
                if timings is not None:
                    timings.add("engine.faults", perf_counter() - t_faults)
            self.wake_steps[newly] = step
        if timings is not None:
            t_end = perf_counter()
            timings.add("engine.channel", t_end - t_coins)
            timings.add("engine.step", t_end - t_start)
        if self.metrics is not None:
            # One engine_slots tick per *active trial*, so counters stay
            # comparable with running the trials on single-run engines.
            n_active = int(m_active.sum())
            self._slots_counter.inc(n_active)
            self._active_gauge.set(n_active)
            active_mask = mask & m_active[:, None]
            self._tx_counter.inc(int(active_mask.sum()))
            self._tx_counts += active_mask
            # Collision observations are buffered and flushed once per
            # run (see flush_metrics); a silent slot is n_active zeros.
            if collisions is None:
                self._collision_zero_trials += n_active
            elif n_active:
                self._collision_chunks.append(collisions[m_active])
        if rec_active is not None:
            self._record_batch_step(
                step, mask if any_tx else None,
                rec_deliver, trace_colls, sender_sums, newly, rec_active,
            )
        self.step += 1
        return mask

    def _record_batch_step(
        self, step, mask, rec_deliver, trace_colls, sender_sums, newly, rec_active
    ) -> None:
        """Append slot ``step`` to every still-active trial's trace."""
        labels = self.labels
        counts = self.awake.sum(axis=1)
        full = self._trace_full
        for t in np.flatnonzero(rec_active):
            trace = self._traces[t]
            if mask is None:  # globally silent slot
                trace.record(
                    step=step, transmitters=(), deliveries={},
                    collisions=(), woken=(), informed=int(counts[t]),
                )
                continue
            deliveries: dict[int, int] = {}
            collisions: tuple[int, ...] = ()
            if full:
                row = sender_sums[t]
                deliveries = {
                    int(labels[i]): int(labels[row[i] - 1])
                    for i in np.flatnonzero(rec_deliver[t])
                }
                collisions = tuple(int(v) for v in labels[trace_colls[t]])
            trace.record(
                step=step,
                transmitters=tuple(int(v) for v in labels[mask[t]]),
                deliveries=deliveries,
                collisions=collisions,
                woken=tuple(int(v) for v in labels[newly[t]]),
                informed=int(counts[t]),
            )

    def trace_for(self, trial: int) -> Trace:
        """Per-trial channel trace (an empty ``NONE`` trace when untraced)."""
        if self._traces is None:
            return Trace(level=TraceLevel.NONE)
        trace = self._traces[trial]
        if self._cf is not None:
            trace.fault_counters = self.fault_counters_for(trial)
        return trace

    def flush_metrics(self) -> None:
        """Flush buffered collision observations into the histogram.

        :meth:`run` calls this after its slot loop; callers stepping the
        engine manually with :meth:`run_step` must call it before
        snapshotting the registry.  Idempotent between steps.  Also
        refreshes ``batch_active_trials`` to the *current* unsettled
        count (0 after a completed run) — during the slot loop the gauge
        tracks the count entering each slot.
        """
        if self.metrics is None:
            return
        if self._collision_chunks:
            self._collision_hist.observe_many(np.concatenate(self._collision_chunks))
            self._collision_chunks.clear()
        if self._collision_zero_trials:
            self._collision_hist.observe_repeated(0, self._collision_zero_trials)
            self._collision_zero_trials = 0
        self._active_gauge.set(int((~self.trials_settled).sum()))

    def run(self, max_steps: int, stop_when_informed: bool = True) -> int:
        """Run until every trial settles or the step limit; returns slots.

        Settled trials keep stepping (their wake times and fault tallies
        are frozen, so the extra slots are no-ops for them) until the last
        trial finishes — exactly the per-trial executions of the
        single-run engine.
        """
        executed = 0
        while executed < max_steps:
            if stop_when_informed and self.all_settled:
                break
            self.run_step()
            executed += 1
        self.flush_metrics()
        return executed

    def trial_steps(self, trial: int) -> int:
        """Slots trial ``trial`` executed before settling or the limit.

        Without a fault plan this is the batch's global step count (a
        trial only stops early by completing, in which case its time comes
        from :meth:`completion_times` instead).  Under a plan with crashes
        a trial can settle *incomplete*, and its executed-slot count —
        what the single-run engines report as ``engine.step`` — is frozen
        at that point.
        """
        if self._cf is None:
            return self.step
        return int(self._executed[trial])

    def fault_counters_for(self, trial: int) -> FaultCounters | None:
        """Fault tallies of one trial, identical to its single-run values."""
        if self._cf is None:
            return None
        return FaultCounters(
            crashed_nodes=int(self._crashed[trial]),
            jammed_slots=int(self._jammed[trial]),
            lost_messages=int(self._lost[trial]),
            delayed_wakes=int(self._delayed[trial]),
        )

    def completion_times(self) -> list[int | None]:
        """Per-trial broadcasting times; ``None`` for incomplete trials."""
        done = self.trials_informed
        latest = self.wake_steps.max(axis=1, initial=-1, where=self.awake)
        return [
            int(latest[t]) + 1 if done[t] else None for t in range(self.trials)
        ]

    def wake_times(self, trial: int) -> dict[int, int]:
        """Map informed labels of one trial to their wake slots."""
        row = self.wake_steps[trial]
        return {
            int(label): int(ws)
            for label, ws in zip(self.labels, row)
            if ws != ASLEEP
        }

    def transmission_counts(self, trial: int) -> list[int] | None:
        """Per-node transmission tallies of one trial (label order);
        ``None`` when the engine ran uninstrumented."""
        if self._tx_counts is None:
            return None
        return [int(c) for c in self._tx_counts[trial]]


def run_broadcast_fast(
    network: RadioNetwork,
    algorithm: VectorizedAlgorithm,
    seed: int = 0,
    max_steps: int | None = None,
    faults: FaultPlan | None = None,
    metrics: MetricsRegistry | None = None,
    timings: Timings | None = None,
    spans: SpanRecorder | None = None,
    trace_level: TraceLevel = TraceLevel.NONE,
    allow_large: bool = False,
) -> BroadcastResult:
    """Vectorised counterpart of :func:`repro.sim.run.run_broadcast`.

    ``allow_large`` skips the :func:`~repro.sim.guard.check_memory_budget`
    estimate guard (FULL traces at large ``n * max_steps``)."""
    if max_steps is None:
        max_steps = default_max_steps(network, algorithm)
    check_memory_budget(
        network.n, max_steps, trace_level,
        dense_metrics=metrics is not None, allow_large=allow_large,
    )
    if timings is None and (metrics is not None or spans is not None):
        timings = Timings()
    engine = FastEngine(
        network, algorithm, seed=seed, faults=faults,
        metrics=metrics, timings=timings, trace_level=trace_level,
    )
    with (
        spans.trial_span(
            f"trial[{seed}]", timings,
            seed=seed, algorithm=algorithm.name, n=network.n,
        )
        if spans is not None
        else nullcontext()
    ):
        engine.run(max_steps)
    completed = engine.all_informed
    time = engine.completion_time if completed else engine.step
    wake_times = engine.wake_times()
    result = BroadcastResult(
        completed=completed,
        time=time,
        informed=engine.informed_count,
        n=network.n,
        radius=network.radius,
        algorithm=algorithm.name,
        seed=seed,
        wake_times=wake_times,
        layer_times=_layer_times_for(network, wake_times, engine.wake_steps),
        trace=engine.trace,
        fault_counters=(
            engine.fault_counters.snapshot()
            if engine.fault_counters is not None
            else None
        ),
        timings=timings,
    )
    if metrics is not None:
        _record_result_metrics(metrics, result, engine.transmission_counts())
    return result


def run_broadcast_batch(
    network: RadioNetwork,
    algorithm,
    seeds: Sequence[int] | None = None,
    trials: int | None = None,
    base_seed: int = 0,
    max_steps: int | None = None,
    faults: FaultPlan | None = None,
    metrics: MetricsRegistry | None = None,
    timings: Timings | None = None,
    spans: SpanRecorder | None = None,
    engine: str = "auto",
    trace_level: TraceLevel = TraceLevel.NONE,
    collision_detection: bool = False,
    step_hooks=None,
    allow_large: bool = False,
) -> list[BroadcastResult]:
    """Run many Monte-Carlo trials of one broadcast as a single batch.

    Result ``i`` is *identical* (per-node wake slots and fault counters
    included) to the corresponding single-run engine with seed
    ``seeds[i]`` — batching is purely an execution strategy, not a
    semantic variant.  Two batch engines implement it:

    * ``"batched_fast"`` — the ``(trials, n)`` array program of
      :class:`BatchedFastEngine`; oblivious
      (:class:`VectorizedAlgorithm`) algorithms only, trial ``i``
      reproduces ``run_broadcast_fast(..., seed=seeds[i])``.
    * ``"batched_event"`` — the shared-clock
      :class:`~repro.sim.batched_event.BatchedEventEngine`; any
      protocol-based algorithm, trial ``i`` reproduces
      ``run_broadcast(..., seed=seeds[i], engine="event")`` slot for
      slot (traces, hooks, and fault counters included).

    ``"auto"`` (the default) picks ``batched_fast`` when the algorithm is
    vectorisable and ``batched_event`` otherwise, which makes this the
    single batched entry point for every algorithm in the repo.

    Args:
        network: Topology to broadcast on.
        algorithm: A :class:`VectorizedAlgorithm` and/or
            :class:`~repro.sim.protocol.BroadcastAlgorithm` (see the
            engine table above).
        seeds: Explicit per-trial master seeds.  Mutually exclusive with
            ``trials``.
        trials: Number of trials; seeds default to
            ``derive_trial_seeds(base_seed, trials)`` (``base_seed + i``,
            the :func:`~repro.sim.run.repeat_broadcast` convention).
        base_seed: First trial seed when ``trials`` is given.
        max_steps: Step limit; defaults exactly as in
            :func:`~repro.sim.run.run_broadcast`.
        faults: Optional :class:`~repro.sim.faults.FaultPlan` applied to
            every trial (per-trial loss realisations).
        metrics: Optional :class:`~repro.obs.metrics.MetricsRegistry`
            receiving per-trial-slot engine tallies and per-trial run
            summaries.
        timings: Optional :class:`~repro.obs.timings.Timings`; the batch
            runs as one program, so every returned result carries the
            *same* (shared) timings object.
        spans: Optional :class:`~repro.obs.spans.SpanRecorder`; the whole
            batch records as one ``trial`` span (stage costs are joint).
        engine: ``"auto"``, ``"batched_fast"``, or ``"batched_event"``.
        trace_level: Per-trial channel traces — supported by *both* batch
            engines, with identical records (asserted by the conformance
            suite).
        collision_detection: CD model variant (``batched_event`` only).
        step_hooks: Optional per-trial step hooks (``batched_event``
            only), one entry per trial.

    Returns:
        One :class:`~repro.sim.run.BroadcastResult` per trial, in seed order.
    """
    if seeds is None:
        if trials is None:
            raise ConfigurationError("provide either seeds or trials")
        seeds = derive_trial_seeds(base_seed, trials)
    elif trials is not None and trials != len(seeds):
        raise ConfigurationError(
            f"trials={trials} conflicts with {len(seeds)} explicit seeds"
        )
    if max_steps is None:
        max_steps = default_max_steps(network, algorithm)
    check_memory_budget(
        network.n, max_steps, trace_level, trials=len(seeds),
        dense_metrics=metrics is not None, allow_large=allow_large,
    )
    if timings is None and (metrics is not None or spans is not None):
        timings = Timings()
    if engine == "auto":
        engine = (
            "batched_fast"
            if isinstance(algorithm, VectorizedAlgorithm)
            else "batched_event"
        )
    batch_span = (
        spans.trial_span(
            f"batch[{len(seeds)}]", timings,
            trials=len(seeds), algorithm=algorithm.name, n=network.n,
        )
        if spans is not None
        else nullcontext()
    )
    if engine == "batched_event":
        with batch_span:
            return _run_batched_event(
                network, algorithm, seeds, max_steps, faults, metrics, timings,
                trace_level, collision_detection, step_hooks,
            )
    if engine != "batched_fast":
        raise ConfigurationError(
            f"unknown engine {engine!r}; expected 'auto', 'batched_fast', "
            f"or 'batched_event'"
        )
    if collision_detection or step_hooks is not None:
        raise ConfigurationError(
            "collision detection and step hooks require "
            "engine='batched_event' (the array engine supports neither)"
        )
    engine = BatchedFastEngine(
        network, algorithm, seeds, faults=faults,
        metrics=metrics, timings=timings, trace_level=trace_level,
    )
    with batch_span:
        engine.run(max_steps)
    times = engine.completion_times()
    counts = engine.informed_counts()
    results = []
    for t, seed in enumerate(engine.seeds):
        completed = times[t] is not None
        wake_times = engine.wake_times(t)
        result = BroadcastResult(
            completed=completed,
            time=times[t] if completed else engine.trial_steps(t),
            informed=int(counts[t]),
            n=network.n,
            radius=network.radius,
            algorithm=algorithm.name,
            seed=seed,
            wake_times=wake_times,
            layer_times=_layer_times_for(network, wake_times, engine.wake_steps[t]),
            trace=engine.trace_for(t),
            fault_counters=engine.fault_counters_for(t),
            timings=timings,
        )
        if metrics is not None:
            _record_result_metrics(metrics, result, engine.transmission_counts(t))
        results.append(result)
    return results


def _run_batched_event(
    network, algorithm, seeds, max_steps, faults, metrics, timings,
    trace_level, collision_detection, step_hooks,
) -> list[BroadcastResult]:
    """The ``engine="batched_event"`` arm of :func:`run_broadcast_batch`."""
    # Imported lazily to keep the oblivious array path's import graph flat.
    from .batched_event import BatchedEventEngine

    engine = BatchedEventEngine(
        network, algorithm, seeds,
        faults=faults, metrics=metrics, timings=timings,
        trace_level=trace_level, collision_detection=collision_detection,
        step_hooks=step_hooks,
    )
    engine.run(max_steps)
    times = engine.completion_times()
    results = []
    for t, seed in enumerate(engine.seeds):
        completed = times[t] is not None
        wake_times = engine.wake_times(t)
        result = BroadcastResult(
            completed=completed,
            time=times[t] if completed else engine.trial_steps(t),
            informed=len(wake_times),
            n=network.n,
            radius=network.radius,
            algorithm=algorithm.name,
            seed=seed,
            wake_times=wake_times,
            layer_times=_layer_times_for(network, wake_times),
            trace=engine.trace_for(t),
            fault_counters=engine.fault_counters_for(t),
            timings=timings,
        )
        if metrics is not None:
            _record_result_metrics(metrics, result, engine.transmission_counts(t))
        results.append(result)
    return results
