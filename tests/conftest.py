"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.topology import (
    binary_tree,
    gnp_connected,
    grid,
    path,
    random_tree,
    star,
    uniform_complete_layered,
)


@pytest.fixture
def small_path():
    return path(12)


@pytest.fixture
def small_star():
    return star(10)


@pytest.fixture
def small_tree():
    return binary_tree(15)


@pytest.fixture
def small_grid():
    return grid(4, 5)


@pytest.fixture
def small_gnp():
    return gnp_connected(30, 0.2, seed=7)


@pytest.fixture
def small_layered():
    return uniform_complete_layered(40, 4)


@pytest.fixture
def topology_zoo(small_path, small_star, small_tree, small_grid, small_gnp, small_layered):
    """A dict of named small networks covering the main topology shapes."""
    return {
        "path": small_path,
        "star": small_star,
        "tree": small_tree,
        "grid": small_grid,
        "gnp": small_gnp,
        "layered": small_layered,
        "random_tree": random_tree(25, seed=3),
    }
