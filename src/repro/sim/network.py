"""Radio network model.

A radio network (Section 1.3 of the paper) is a connected graph on nodes
with distinct labels from ``{0, ..., r}`` where ``r`` is linear in the number
of nodes ``n``.  Label ``0`` is the source.  Each node knows a priori only
its own label and ``r``.

Section 2 of the paper analyses the randomized algorithm on *directed*
graphs, so :class:`RadioNetwork` supports both orientations: an edge
``(u, v)`` means ``u``'s transmitter reaches ``v``.  Undirected networks are
stored with both directions present.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

import networkx as nx

from .errors import NetworkError

__all__ = ["RadioNetwork"]


@dataclass(frozen=True, eq=False)
class RadioNetwork:
    """An immutable radio network.

    Use the classmethod constructors (:meth:`undirected`, :meth:`directed`,
    :meth:`from_networkx`) rather than the raw constructor; they normalise
    and validate the topology.

    Attributes:
        out_neighbors: Map from label to the sorted tuple of labels its
            transmissions can reach.
        in_neighbors: Map from label to the sorted tuple of labels whose
            transmissions it can hear.  Identical to ``out_neighbors`` for
            undirected networks.
        r: Upper bound on labels known to every node.  Defaults to the
            largest label present.
        is_directed: Whether the network was built as a directed graph.
    """

    out_neighbors: Mapping[int, tuple[int, ...]]
    in_neighbors: Mapping[int, tuple[int, ...]]
    r: int
    is_directed: bool = False
    _layers_cache: list[tuple[int, ...]] = field(
        default=None, repr=False, compare=False, hash=False
    )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def undirected(
        cls, nodes: Iterable[int], edges: Iterable[tuple[int, int]], r: int | None = None
    ) -> "RadioNetwork":
        """Build an undirected radio network from labels and edges.

        Args:
            nodes: All node labels, including the source ``0``.
            edges: Unordered pairs of labels; both directions are added.
            r: Label upper bound known to the nodes.  Defaults to the
                maximum label present.

        Raises:
            NetworkError: If validation fails (see :meth:`validate`).
        """
        node_set = set(nodes)
        adj: dict[int, set[int]] = {v: set() for v in node_set}
        for u, v in edges:
            if u == v:
                raise NetworkError(f"self-loop at node {u}")
            if u not in node_set or v not in node_set:
                raise NetworkError(f"edge ({u}, {v}) references an unknown node")
            adj[u].add(v)
            adj[v].add(u)
        frozen = {v: tuple(sorted(nbrs)) for v, nbrs in adj.items()}
        net = cls(
            out_neighbors=frozen,
            in_neighbors=frozen,
            r=max(node_set) if r is None else r,
            is_directed=False,
        )
        net.validate()
        return net

    @classmethod
    def directed(
        cls, nodes: Iterable[int], edges: Iterable[tuple[int, int]], r: int | None = None
    ) -> "RadioNetwork":
        """Build a directed radio network; edge ``(u, v)`` points u -> v."""
        node_set = set(nodes)
        out: dict[int, set[int]] = {v: set() for v in node_set}
        inn: dict[int, set[int]] = {v: set() for v in node_set}
        for u, v in edges:
            if u == v:
                raise NetworkError(f"self-loop at node {u}")
            if u not in node_set or v not in node_set:
                raise NetworkError(f"edge ({u}, {v}) references an unknown node")
            out[u].add(v)
            inn[v].add(u)
        net = cls(
            out_neighbors={v: tuple(sorted(s)) for v, s in out.items()},
            in_neighbors={v: tuple(sorted(s)) for v, s in inn.items()},
            r=max(node_set) if r is None else r,
            is_directed=True,
        )
        net.validate()
        return net

    @classmethod
    def from_networkx(cls, graph: nx.Graph, r: int | None = None) -> "RadioNetwork":
        """Build from a :mod:`networkx` graph with integer node labels."""
        if graph.is_directed():
            return cls.directed(graph.nodes, graph.edges, r=r)
        return cls.undirected(graph.nodes, graph.edges, r=r)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Check the model constraints of Section 1.3.

        Ensures labels are distinct non-negative integers bounded by ``r``,
        the source (label ``0``) exists, and every node is reachable from
        the source — otherwise broadcasting could never complete.

        Raises:
            NetworkError: On any violation.
        """
        labels = set(self.out_neighbors)
        if 0 not in labels:
            raise NetworkError("network has no source: a node with label 0 is required")
        for v in labels:
            if not isinstance(v, int) or v < 0:
                raise NetworkError(f"label {v!r} is not a non-negative integer")
            if v > self.r:
                raise NetworkError(f"label {v} exceeds the declared bound r={self.r}")
        reachable = set()
        queue: deque[int] = deque([0])
        reachable.add(0)
        while queue:
            u = queue.popleft()
            for w in self.out_neighbors[u]:
                if w not in reachable:
                    reachable.add(w)
                    queue.append(w)
        if reachable != labels:
            missing = sorted(labels - reachable)[:10]
            raise NetworkError(
                f"{len(labels) - len(reachable)} node(s) unreachable from the source, "
                f"e.g. {missing}"
            )

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def nodes(self) -> tuple[int, ...]:
        """All node labels in increasing order."""
        return tuple(sorted(self.out_neighbors))

    @property
    def n(self) -> int:
        """Number of nodes."""
        return len(self.out_neighbors)

    @property
    def source(self) -> int:
        """The source label (always 0 in this model)."""
        return 0

    def __contains__(self, label: int) -> bool:
        return label in self.out_neighbors

    def __iter__(self) -> Iterator[int]:
        return iter(self.nodes)

    def degree(self, label: int) -> int:
        """Out-degree of ``label`` (== degree for undirected networks)."""
        return len(self.out_neighbors[label])

    def in_degree(self, label: int) -> int:
        """In-degree of ``label`` (== degree for undirected networks)."""
        return len(self.in_neighbors[label])

    @property
    def num_edges(self) -> int:
        """Number of edges (each undirected edge counted once)."""
        total = sum(len(nbrs) for nbrs in self.out_neighbors.values())
        return total if self.is_directed else total // 2

    @property
    def max_in_degree(self) -> int:
        """Largest in-degree in the network."""
        return max(len(nbrs) for nbrs in self.in_neighbors.values())

    # ------------------------------------------------------------------
    # Layers and radius
    # ------------------------------------------------------------------

    def layers(self) -> list[tuple[int, ...]]:
        """BFS layers from the source.

        ``layers()[j]`` is the sorted tuple of nodes at (directed) distance
        ``j`` from the source; the paper calls this the *jth layer*.
        """
        if self._layers_cache is not None:
            return self._layers_cache
        dist = {0: 0}
        order: list[list[int]] = [[0]]
        queue: deque[int] = deque([0])
        while queue:
            u = queue.popleft()
            for w in self.out_neighbors[u]:
                if w not in dist:
                    dist[w] = dist[u] + 1
                    while len(order) <= dist[w]:
                        order.append([])
                    order[dist[w]].append(w)
                    queue.append(w)
        result = [tuple(sorted(layer)) for layer in order]
        # Cache on the frozen dataclass via object.__setattr__ (immutable facade).
        object.__setattr__(self, "_layers_cache", result)
        return result

    @property
    def radius(self) -> int:
        """Eccentricity of the source: the paper's parameter ``D``."""
        return len(self.layers()) - 1

    def distances_from_source(self) -> dict[int, int]:
        """Map each node to its BFS distance from the source."""
        return {v: j for j, layer in enumerate(self.layers()) for v in layer}

    def is_complete_layered(self) -> bool:
        """Whether adjacent pairs are exactly those in consecutive layers.

        This is the paper's *complete layered network* (Section 4.3); the
        check works for both orientations.
        """
        layer_of = self.distances_from_source()
        layers = self.layers()
        for v, nbrs in self.out_neighbors.items():
            j = layer_of[v]
            expected: set[int] = set()
            if not self.is_directed and j > 0:
                expected.update(layers[j - 1])
            if j + 1 < len(layers):
                expected.update(layers[j + 1])
            if set(nbrs) != expected:
                return False
        return True

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------

    def to_networkx(self) -> nx.Graph:
        """Export to a :mod:`networkx` graph (DiGraph when directed)."""
        graph: nx.Graph = nx.DiGraph() if self.is_directed else nx.Graph()
        graph.add_nodes_from(self.nodes)
        for u, nbrs in self.out_neighbors.items():
            for v in nbrs:
                graph.add_edge(u, v)
        return graph

    def as_directed(self) -> "RadioNetwork":
        """Return a directed copy (each undirected edge becomes two arcs)."""
        if self.is_directed:
            return self
        edges = [(u, v) for u, nbrs in self.out_neighbors.items() for v in nbrs]
        return RadioNetwork.directed(self.nodes, edges, r=self.r)

    def describe(self) -> str:
        """One-line human-readable summary used by examples and the CLI."""
        kind = "directed" if self.is_directed else "undirected"
        return (
            f"{kind} radio network: n={self.n}, r={self.r}, D={self.radius}, "
            f"edges={self.num_edges}, max_in_degree={self.max_in_degree}"
        )
